"""Section VI scenario: regional mantle convection with plastic yielding.

A shrunk version of the paper's 8 x 4 x 1 run: three-layer
temperature-dependent viscosity with a lithospheric yield stress, a cold
downwelling slab, and AMR that tracks thermal fronts, viscosity collapse,
and the yielding (weak plate boundary) zones.

Run:  python examples/mantle_yielding.py
"""

import numpy as np

from repro.rhea import MantleConvection, RheaConfig, YieldingViscosity
from repro.rhea.viscosity import element_temperature, strain_rate_invariant


def slab_and_plume(coords):
    x, z = coords[:, 0] / 8.0, coords[:, 2]
    base = 1.0 - z
    slab = -0.45 * np.exp(-(((x - 0.5) / 0.06) ** 2)) * (z > 0.55)
    plume = 0.35 * np.exp(-(((x - 0.25) / 0.1) ** 2 + ((z - 0.15) / 0.15) ** 2))
    return np.clip(base + slab + plume, 0.0, 1.0)


def main():
    cfg = RheaConfig(
        Ra=1e5,
        domain=(8.0, 4.0, 1.0),
        viscosity=YieldingViscosity(sigma_y=500.0),
        initial_level=3,
        min_level=2,
        max_level=6,
        adapt_every=4,
        picard_iterations=2,
        stokes_tol=1e-5,
        target_elements=1400,
        viscosity_weight=0.8,
        yield_weight=1.5,
    )
    sim = MantleConvection(cfg, T_init=slab_and_plume)
    sim.adapt_initial(rounds=2, target=1400)

    print(f"{'cycle':>5} {'#elem':>6} {'vrms':>9} {'Nu':>7} {'MINRES':>7} "
          f"{'eta range':>16} {'yielded':>8}")
    for cycle in range(4):
        sim.run(1)
        d = sim.history[-1]
        law = cfg.viscosity
        mesh = sim.mesh
        T_e = element_temperature(mesh, sim.T)
        z_e = mesh.element_centers()[:, 2]
        edot = strain_rate_invariant(mesh, sim.u)
        yielded = int(law.yielded_mask(T_e, z_e, edot).sum())
        print(
            f"{cycle + 1:>5} {d.n_elements:>6} {d.vrms:>9.3g} {d.nusselt:>7.2f} "
            f"{d.minres_iterations:>7} "
            f"{d.eta_min:>7.1e}..{d.eta_max:<7.1e} {yielded:>8}"
        )

    levels = sim.mesh.leaves.level.astype(int)
    print(f"\nfinal octree levels {levels.min()}..{levels.max()}; "
          f"uniform mesh at level {levels.max()} would need "
          f"{8 ** int(levels.max()):,} elements "
          f"({8 ** int(levels.max()) / sim.mesh.n_elements:.0f}x more)")


if __name__ == "__main__":
    main()
