"""Section VI scenario: regional mantle convection with plastic yielding.

A shrunk version of the paper's 8 x 4 x 1 run: three-layer
temperature-dependent viscosity with a lithospheric yield stress, a cold
downwelling slab, and AMR that tracks thermal fronts, viscosity collapse,
and the yielding (weak plate boundary) zones.

Checkpoint/restart: ``--checkpoint-every N`` snapshots the full solver
state (fields, counters, diagnostics, warm-start data) every N cycles
into ``--checkpoint-dir``; ``--resume`` continues from the newest
checkpoint there with a bitwise-identical trajectory.

Observability (see OBSERVABILITY.md): ``--trace trace.json`` writes a
Chrome-trace timeline of the AMR / Stokes / advection phases;
``--report report.md`` writes the Table IV-style breakdown with solver
counters (MINRES iterations, AMG setups, cache hits).

Run:  python examples/mantle_yielding.py [--trace T] [--report R]
"""

import argparse

import numpy as np

from repro.rhea import MantleConvection, RheaConfig, YieldingViscosity
from repro.rhea.viscosity import element_temperature, strain_rate_invariant


def slab_and_plume(coords):
    x, z = coords[:, 0] / 8.0, coords[:, 2]
    base = 1.0 - z
    slab = -0.45 * np.exp(-(((x - 0.5) / 0.06) ** 2)) * (z > 0.55)
    plume = 0.35 * np.exp(-(((x - 0.25) / 0.1) ** 2 + ((z - 0.15) / 0.15) ** 2))
    return np.clip(base + slab + plume, 0.0, 1.0)


def make_config(initial_level=3, max_level=6, target_elements=1400):
    return RheaConfig(
        Ra=1e5,
        domain=(8.0, 4.0, 1.0),
        viscosity=YieldingViscosity(sigma_y=500.0),
        initial_level=initial_level,
        min_level=2,
        max_level=max_level,
        adapt_every=4,
        picard_iterations=2,
        stokes_tol=1e-5,
        target_elements=target_elements,
        viscosity_weight=0.8,
        yield_weight=1.5,
    )


def main(cycles=4, checkpoint_every=None, checkpoint_dir="checkpoints_yielding",
         resume=False, initial_level=3, max_level=6, target_elements=1400,
         trace=None, report=None):
    from repro import obs

    cfg = make_config(initial_level, max_level, target_elements)
    timer = obs.enable() if (trace is not None or report is not None) else None
    checkpoint = None
    if checkpoint_every:
        from repro.checkpoint import Checkpointer

        checkpoint = Checkpointer(checkpoint_dir, every=checkpoint_every)

    if resume:
        sim = MantleConvection.resume_from(checkpoint_dir, config=cfg)
        print(f"resumed from checkpoint in {checkpoint_dir!r} at "
              f"step {sim.step_count} (t = {sim.sim_time:.3e}, "
              f"{len(sim.history)} cycles recorded)")
    else:
        sim = MantleConvection(cfg, T_init=slab_and_plume)
        sim.adapt_initial(rounds=2, target=target_elements)

    print(f"{'cycle':>5} {'#elem':>6} {'vrms':>9} {'Nu':>7} {'MINRES':>7} "
          f"{'eta range':>16} {'yielded':>8}")
    for _ in range(cycles):
        sim.run(1, checkpoint=checkpoint)
        d = sim.history[-1]
        law = cfg.viscosity
        mesh = sim.mesh
        T_e = element_temperature(mesh, sim.T)
        z_e = mesh.element_centers()[:, 2]
        edot = strain_rate_invariant(mesh, sim.u)
        yielded = int(law.yielded_mask(T_e, z_e, edot).sum())
        print(
            f"{len(sim.history):>5} {d.n_elements:>6} {d.vrms:>9.3g} {d.nusselt:>7.2f} "
            f"{d.minres_iterations:>7} "
            f"{d.eta_min:>7.1e}..{d.eta_max:<7.1e} {yielded:>8}"
        )

    levels = sim.mesh.leaves.level.astype(int)
    print(f"\nfinal octree levels {levels.min()}..{levels.max()}; "
          f"uniform mesh at level {levels.max()} would need "
          f"{8 ** int(levels.max()):,} elements "
          f"({8 ** int(levels.max()) / sim.mesh.n_elements:.0f}x more)")

    if timer is not None:
        obs.disable()
        if trace is not None:
            obs.chrome_trace([timer], trace)
            print(f"chrome trace written to {trace!r} "
                  "(open at https://ui.perfetto.dev)")
        if report is not None:
            rep = obs.generate_report([timer.results()], executed_ranks=1)
            with open(report, "w", encoding="utf-8") as f:
                f.write(obs.markdown_report(rep) + "\n")
            print(f"phase report written to {report!r} "
                  f"(Stokes fraction {100 * rep['fractions']['stokes']:.1f}%)")


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cycles", type=int, default=4,
                    help="convection cycles to run (default 4)")
    ap.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                    help="snapshot the solver state every N cycles")
    ap.add_argument("--checkpoint-dir", default="checkpoints_yielding",
                    help="checkpoint root directory (default checkpoints_yielding)")
    ap.add_argument("--resume", action="store_true",
                    help="resume from the newest checkpoint in --checkpoint-dir")
    ap.add_argument("--trace", default=None, metavar="PATH",
                    help="write a Chrome-trace JSON timeline (Perfetto)")
    ap.add_argument("--report", default=None, metavar="PATH",
                    help="write the Table IV-style phase report (markdown)")
    args = ap.parse_args()
    main(cycles=args.cycles, checkpoint_every=args.checkpoint_every,
         checkpoint_dir=args.checkpoint_dir, resume=args.resume,
         trace=args.trace, report=args.report)
