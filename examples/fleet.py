"""Fleet quickstart: run a multi-tenant batch of convection scenarios.

Covers the PR-8 workflow in ~70 lines:

1. admit a parameter sweep of ``ScenarioSpec`` jobs from two tenants
   (different Rayleigh numbers and rheologies, one shared mesh
   structure);
2. serve scheduling quanta — each quantum advances every runnable
   same-structure job in one lockstep batched cycle;
3. preempt the whole fleet to per-job checkpoints mid-run, resume it
   from the manifest, and finish;
4. print the per-tenant usage report and a batched-vs-serial parity
   check for one job.

Run:  python examples/fleet.py
"""

import tempfile

from repro.fleet import FleetService, ScenarioSpec
from repro.rhea.convection import MantleConvection

# 1. admission: a small sweep — tenant "geo" scans Rayleigh numbers with
#    an Arrhenius rheology, tenant "plates" adds yielding runs.  All
#    specs share initial_level, so the registry interns one mesh and the
#    scheduler batches every job into a single lockstep group.
specs = [
    ScenarioSpec(
        job_id=f"ra{i}", tenant="geo", Ra=10_000.0 * (i + 1),
        activation_energy=4.0, cycles=2, seed=i,
    )
    for i in range(4)
] + [
    ScenarioSpec(
        job_id=f"yield{i}", tenant="plates", Ra=30_000.0,
        viscosity_law="yielding", activation_energy=4.0 + i,
        yield_stress=5.0, cycles=2, seed=10 + i, priority=1,
    )
    for i in range(2)
]

root = tempfile.mkdtemp(prefix="fleet_example_")
svc = FleetService(root=root)
for spec in specs:
    svc.admit(spec)
print(f"admitted {len(svc.jobs)} jobs, "
      f"meshes built={svc.registry.built} shared={svc.registry.shared}")

# 2.+3. serve one quantum, then exhaust a one-quantum budget so the
#    fleet preempts itself to checkpoints; resume and finish
svc.arm_budget(1)
svc.run()
print(f"after budget exhaustion: {svc.statuses()}")

svc = FleetService.resume(root)
served = svc.run()
print(f"resumed fleet served {served} more quanta: {svc.statuses()}")

# 4. accounting: per-tenant usage (flops attributed by per-job solver
#    iteration counts, wall split across the shared batch)
svc.report()
print()
print(svc.accountant.markdown_report(title="Example fleet usage"))

# parity: the batched per-job diagnostics match a serial one-job run
spec = specs[0]
serial = MantleConvection(spec.to_config(), spec.t_init())
serial.run(spec.cycles, adapt=False)
batched = svc.jobs[spec.job_id].sim.history[-1]
ref = serial.history[-1]
print()
print(f"parity {spec.job_id}: batched vrms={batched.vrms:.6f} "
      f"serial vrms={ref.vrms:.6f} "
      f"rel dev={abs(batched.vrms - ref.vrms) / abs(ref.vrms):.2e}")
