"""Section VII / Figure 12 scenario: DG advection on the spherical shell.

Builds the 24-tree cubed-sphere forest (6 caps x 4 octrees), advects a
sharp blob with solid-body rotation using arbitrary-order nodal DG with
upwind fluxes, adapts the forest to follow the blob, and shows how the
space-filling-curve partition is recut every cycle.

Run:  python examples/spherical_advection.py
"""

import numpy as np

from repro.forest import Forest, cubed_sphere_connectivity
from repro.mangll import DGAdvection, solid_body_rotation


def transfer(dg_old, u_old, dg_new):
    from repro.mangll import dg_transfer

    return dg_transfer(dg_old, u_old, dg_new)


def main(order=3, n_cycles=3, n_ranks=64):
    conn = cubed_sphere_connectivity(r_inner=0.6, r_outer=1.0)
    forest = Forest.uniform(conn, 1)
    wind = solid_body_rotation([0.0, 0.0, 1.0])
    dg = DGAdvection(forest, order, wind)

    c = np.array([0.9, 0.0, 0.3])
    c = 0.8 * c / np.linalg.norm(c)
    u = np.exp(-np.sum((dg.nodes() - c) ** 2, axis=1) / 0.02)
    print(f"forest: {conn.n_trees} trees, {len(forest)} elements, DG order {order}"
          f" -> {dg.n_dof} dofs")

    prev = None
    for cycle in range(n_cycles):
        # adapt: refine where the blob has structure, keep 2:1 balance
        ue = u.reshape(dg.ne, dg.n3)
        ind = ue.max(axis=1) - ue.min(axis=1)
        refine = (ind > 0.25 * ind.max()) & (forest.flat_levels() < 3)
        forest2, _ = forest.refine(refine).balance()
        dg2 = DGAdvection(forest2, order, wind)
        u = transfer(dg, u, dg2)
        forest, dg = forest2, dg2

        dt = dg.cfl_dt(0.3)
        n = max(int(0.25 / dt), 1)
        u = dg.advance(u, 0.25 / n, n)

        ranks = forest.partition_assignments(n_ranks)
        if prev is None:
            churn = "-"
        elif len(prev) != len(ranks):
            churn = "100% (recut)"  # element count changed: full repartition
        else:
            churn = f"{100 * (prev != ranks).mean():.0f}%"
        prev = ranks
        hist = forest.level_histogram()
        print(
            f"cycle {cycle + 1}: {len(forest):>5} elements, levels "
            f"{{{', '.join(f'{k}: {v}' for k, v in sorted(hist.items()))}}}, "
            f"mass {dg.total_mass(u):.4f}, partition churn {churn}"
        )


if __name__ == "__main__":
    main()
