"""Section V scenario: the distributed AMR pipeline on simulated ranks.

Runs the full Figure-4 cycle (MarkElements -> Coarsen/Refine -> Balance ->
Partition -> ExtractMesh -> InterpolateFields -> TransferFields) on P
simulated MPI ranks, advecting a thin spherical front with a rotating
velocity, then prints the per-function timing breakdown and communication
totals the Section-V benchmarks are built on.

Checkpoint/restart: ``--checkpoint-every N`` snapshots the distributed
state every N cycles into ``--checkpoint-dir``; ``--resume`` restarts
from the newest checkpoint there — on *any* rank count, since shards
concatenate along the Morton curve and repartition on load.

Observability (see OBSERVABILITY.md): ``--trace trace.json`` writes a
Chrome-trace timeline (one track per rank, open at
https://ui.perfetto.dev); ``--report report.md`` writes the paper's
Table IV-style per-phase breakdown.

Run:  python examples/parallel_amr.py [P] [--trace T] [--report R]
"""

import argparse

from repro.amr import ParAmrPipeline, RotatingFrontWorkload, rotating_velocity
from repro.parallel import run_spmd_with_comms


def main(p=4, cycles=3, checkpoint_every=None, checkpoint_dir="checkpoints_amr",
         resume=False, target=600, max_level=6, trace=None, report=None,
         conformance=None):
    from repro import obs

    if conformance is not None:
        from repro.analysis.conformance import install_schedule

        install_schedule(conformance)
        print(f"schedule conformance enabled from {conformance!r} "
              "(requires REPRO_SANITIZE=1 to observe collectives)")

    workload = RotatingFrontWorkload(velocity=rotating_velocity(scale=3.0))
    observe = trace is not None or report is not None
    checkpoint = None
    if checkpoint_every:
        from repro.checkpoint import Checkpointer

        checkpoint = Checkpointer(checkpoint_dir, every=checkpoint_every)

    def kernel(comm):
        timer = obs.enable(comm) if observe else None
        if resume:
            pipe = ParAmrPipeline.resume_from(comm, checkpoint_dir, workload=workload)
        else:
            pipe = ParAmrPipeline(
                comm, workload=workload, coarse_level=2, max_level=max_level
            )
        start_cycle = pipe.cycles_done
        for _ in range(cycles):
            pipe.adapt(target=target)
            pipe.advance_time(0.1, cfl=0.5)
            pipe.cycles_done += 1
            if checkpoint is not None and checkpoint.due(pipe.cycles_done):
                checkpoint.save_pipeline(pipe)
        if timer is not None:
            obs.disable()
        # collect global quantities while the SPMD world is still alive
        # (collectives cannot be issued after run_spmd returns)
        return {
            "n_global": pipe.pt.global_count(),
            "levels": pipe.pt.level_histogram(),
            "steps": pipe.steps_taken,
            "sim_time": pipe.sim_time,
            "start_cycle": start_cycle,
            "timings": pipe.timing_breakdown(),
            "amr_fraction": pipe.amr_fraction(),
            "history": pipe.adapt_history,
            "phase_results": timer.results() if timer is not None else None,
            "trace_data": timer.trace_data() if timer is not None else None,
        }

    print(f"running the SPMD AMR pipeline on {p} simulated ranks ...")
    results, comms = run_spmd_with_comms(p, kernel)
    pipe = results[0]

    if resume:
        print(f"resumed from checkpoint in {checkpoint_dir!r} "
              f"at cycle {pipe['start_cycle']}")
    print(f"\nglobal elements: {pipe['n_global']}, levels {pipe['levels']}")
    print(f"steps taken: {pipe['steps']} (t = {pipe['sim_time']:.3f})")

    print("\nper-function timing (rank 0, seconds):")
    for name, t in sorted(pipe["timings"].items(), key=lambda kv: -kv[1]):
        print(f"  {name:<18} {t:8.4f}")
    print(f"  AMR fraction of total: {100 * pipe['amr_fraction']:.1f}%")

    print("\nadaptation history (global):")
    for i, h in enumerate(pipe["history"]):
        print(
            f"  step {i + 1}: {h.n_before} -> {h.n_after} "
            f"(+{h.n_refined} refined, -{h.n_coarsened} coarsened, "
            f"+{h.n_balance_added} balance)"
        )

    s = comms[0].stats
    print(f"\nrank-0 communication: {s.total_collective_calls} collectives, "
          f"{s.p2p_messages} p2p messages, {s.total_bytes / 1e6:.2f} MB total")

    if trace is not None:
        obs.chrome_trace([r["trace_data"] for r in results], trace)
        print(f"chrome trace written to {trace!r} "
              "(open at https://ui.perfetto.dev)")
    if report is not None:
        rep = obs.generate_report(
            [r["phase_results"] for r in results], executed_ranks=p
        )
        with open(report, "w", encoding="utf-8") as f:
            f.write(obs.markdown_report(rep) + "\n")
        print(f"phase report written to {report!r} "
              f"(AMR fraction {100 * rep['amr_fraction']:.1f}%)")


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("ranks", nargs="?", type=int, default=4,
                    help="simulated rank count (default 4)")
    ap.add_argument("--cycles", type=int, default=3,
                    help="adapt+advance cycles to run (default 3)")
    ap.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                    help="snapshot the distributed state every N cycles")
    ap.add_argument("--checkpoint-dir", default="checkpoints_amr",
                    help="checkpoint root directory (default checkpoints_amr)")
    ap.add_argument("--resume", action="store_true",
                    help="resume from the newest checkpoint in --checkpoint-dir")
    ap.add_argument("--trace", default=None, metavar="PATH",
                    help="write a Chrome-trace JSON timeline (Perfetto)")
    ap.add_argument("--report", default=None, metavar="PATH",
                    help="write the Table IV-style phase report (markdown)")
    ap.add_argument("--conformance", default=None, metavar="PATH",
                    help="check the run against a static comm schedule JSON "
                         "(from python -m repro.analysis.commflow); needs "
                         "REPRO_SANITIZE=1")
    args = ap.parse_args()
    main(args.ranks, cycles=args.cycles, checkpoint_every=args.checkpoint_every,
         checkpoint_dir=args.checkpoint_dir, resume=args.resume,
         trace=args.trace, report=args.report, conformance=args.conformance)
