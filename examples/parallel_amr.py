"""Section V scenario: the distributed AMR pipeline on simulated ranks.

Runs the full Figure-4 cycle (MarkElements -> Coarsen/Refine -> Balance ->
Partition -> ExtractMesh -> InterpolateFields -> TransferFields) on P
simulated MPI ranks, advecting a thin spherical front with a rotating
velocity, then prints the per-function timing breakdown and communication
totals the Section-V benchmarks are built on.

Run:  python examples/parallel_amr.py [P]
"""

import sys

import numpy as np

from repro.amr import ParAmrPipeline, RotatingFrontWorkload, rotating_velocity
from repro.parallel import run_spmd_with_comms


def main(p=4):
    workload = RotatingFrontWorkload(velocity=rotating_velocity(scale=3.0))

    def kernel(comm):
        pipe = ParAmrPipeline(comm, workload=workload, coarse_level=2, max_level=6)
        for _ in range(3):
            pipe.adapt(target=600)
            pipe.advance_time(0.1, cfl=0.5)
        # collect global quantities while the SPMD world is still alive
        # (collectives cannot be issued after run_spmd returns)
        return {
            "n_global": pipe.pt.global_count(),
            "levels": pipe.pt.level_histogram(),
            "steps": pipe.steps_taken,
            "timings": pipe.timing_breakdown(),
            "amr_fraction": pipe.amr_fraction(),
            "history": pipe.adapt_history,
        }

    print(f"running the SPMD AMR pipeline on {p} simulated ranks ...")
    results, comms = run_spmd_with_comms(p, kernel)
    pipe = results[0]

    print(f"\nglobal elements: {pipe['n_global']}, levels {pipe['levels']}")
    print(f"steps taken: {pipe['steps']}")

    print("\nper-function timing (rank 0, seconds):")
    for name, t in sorted(pipe["timings"].items(), key=lambda kv: -kv[1]):
        print(f"  {name:<18} {t:8.4f}")
    print(f"  AMR fraction of total: {100 * pipe['amr_fraction']:.1f}%")

    print("\nadaptation history (global):")
    for i, h in enumerate(pipe["history"]):
        print(
            f"  step {i + 1}: {h.n_before} -> {h.n_after} "
            f"(+{h.n_refined} refined, -{h.n_coarsened} coarsened, "
            f"+{h.n_balance_added} balance)"
        )

    s = comms[0].stats
    print(f"\nrank-0 communication: {s.total_collective_calls} collectives, "
          f"{s.p2p_messages} p2p messages, {s.total_bytes / 1e6:.2f} MB total")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
