"""Quickstart: build an adapted octree mesh and solve a PDE on it.

Covers the core workflow in ~60 lines:

1. build and refine a linear octree, enforce 2:1 balance;
2. extract a hexahedral mesh with hanging-node constraints;
3. assemble and solve a variable-coefficient Poisson problem;
4. run one AMR cycle driven by an error indicator.

Run:  python examples/quickstart.py
"""

import numpy as np
import scipy.sparse.linalg as spla

from repro.amr import adapt_mesh
from repro.fem import apply_dirichlet, assemble_scalar
from repro.fem.hexops import ElementOps
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.rhea import gradient_indicator

# 1. octree: start uniform, refine toward the domain center, balance 2:1
tree = LinearOctree.uniform(3)
centers = tree.leaves.centers()
mask = np.linalg.norm(centers - 0.5, axis=1) < 0.3
tree = tree.refine(mask)
tree = balance(tree, "corner").tree
print(f"octree: {len(tree)} leaves, levels {tree.levels.min()}..{tree.levels.max()}")

# 2. mesh extraction (hanging nodes become algebraic constraints)
mesh = extract_mesh(tree)
print(
    f"mesh: {mesh.n_elements} elements, {mesh.n_nodes} nodes "
    f"({int(mesh.hanging.sum())} hanging), {mesh.n_independent} dofs"
)

# 3. Poisson solve: -div(eta grad u) = 1, u = 0 on the boundary,
#    with a viscosity jump across z = 0.5
ops = ElementOps()
eta = np.where(mesh.element_centers()[:, 2] > 0.5, 100.0, 1.0)
K = assemble_scalar(mesh, ops.stiffness(mesh.element_sizes(), eta))
b = mesh.Z.T @ (assemble_scalar(mesh, ops.mass(mesh.element_sizes()), constrain=False) @ np.ones(mesh.n_nodes))
bdofs = mesh.dof_of_node[np.flatnonzero(mesh.boundary_node_mask())]
K, b = apply_dirichlet(K, b, np.unique(bdofs[bdofs >= 0]))
u = spla.spsolve(K.tocsc(), b)
print(f"Poisson solve: max u = {u.max():.5f}")

# 4. one AMR cycle: refine where the solution varies fastest
u_full = mesh.expand(u)
eta_ind = gradient_indicator(mesh, u_full)
new_mesh, fields, report = adapt_mesh(
    mesh, eta_ind, target=2 * mesh.n_elements, fields={"u": u_full}
)
print(
    f"AMR: {report.n_before} -> {report.n_after} elements "
    f"({report.n_refined} refined, {report.n_coarsened} coarsened, "
    f"{report.n_balance_added} from balance)"
)
print(f"transferred field max: {fields['u'].max():.5f}")
