"""Tests for VTK export."""

import numpy as np
import pytest

from repro.mesh import extract_mesh, write_vtk
from repro.octree import LinearOctree, balance


def small_mesh():
    t = LinearOctree.uniform(1)
    mask = np.zeros(8, dtype=bool)
    mask[0] = True
    return extract_mesh(balance(t.refine(mask), "corner").tree)


class TestWriteVtk:
    def test_structure(self, tmp_path):
        mesh = small_mesh()
        path = tmp_path / "mesh.vtk"
        T = mesh.node_coords()[:, 2]
        write_vtk(
            str(path), mesh,
            point_fields={"T": T},
            cell_fields={"level": mesh.leaves.level.astype(float)},
        )
        text = path.read_text().splitlines()
        assert text[0].startswith("# vtk DataFile")
        assert "DATASET UNSTRUCTURED_GRID" in text
        assert f"POINTS {mesh.n_nodes} double" in text
        assert f"CELLS {mesh.n_elements} {mesh.n_elements * 9}" in text
        assert f"CELL_TYPES {mesh.n_elements}" in text
        assert f"POINT_DATA {mesh.n_nodes}" in text
        assert f"CELL_DATA {mesh.n_elements}" in text
        # every cell line lists 8 vertices with valid indices
        start = text.index(f"CELLS {mesh.n_elements} {mesh.n_elements * 9}") + 1
        for line in text[start : start + mesh.n_elements]:
            parts = line.split()
            assert parts[0] == "8"
            idx = list(map(int, parts[1:]))
            assert len(idx) == 8
            assert max(idx) < mesh.n_nodes and min(idx) >= 0

    def test_vtk_hex_ordering_is_right_handed(self, tmp_path):
        """The bottom quad (first 4 vertices) must be CCW seen from above
        (VTK_HEXAHEDRON convention) — signed volume positive."""
        mesh = extract_mesh(LinearOctree.uniform(0))
        path = tmp_path / "one.vtk"
        write_vtk(str(path), mesh)
        lines = path.read_text().splitlines()
        cell_line = lines[lines.index("CELLS 1 9") + 1]
        order = list(map(int, cell_line.split()[1:]))
        pts = mesh.node_coords()[order]
        # bottom face CCW: cross product of consecutive edges points +z
        e1 = pts[1] - pts[0]
        e2 = pts[2] - pts[1]
        assert np.cross(e1, e2)[2] > 0
        # top directly above bottom
        np.testing.assert_allclose(pts[4:, :2], pts[:4, :2])

    def test_field_length_validation(self, tmp_path):
        mesh = small_mesh()
        with pytest.raises(ValueError):
            write_vtk(str(tmp_path / "x.vtk"), mesh, point_fields={"b": np.zeros(3)})
        with pytest.raises(ValueError):
            write_vtk(str(tmp_path / "y.vtk"), mesh, cell_fields={"c": np.zeros(3)})
