"""Tests for VTK export."""

import numpy as np
import pytest

from repro.mesh import extract_mesh, write_vtk
from repro.octree import LinearOctree, balance


def small_mesh():
    t = LinearOctree.uniform(1)
    mask = np.zeros(8, dtype=bool)
    mask[0] = True
    return extract_mesh(balance(t.refine(mask), "corner").tree)


class TestWriteVtk:
    def test_structure(self, tmp_path):
        mesh = small_mesh()
        path = tmp_path / "mesh.vtk"
        T = mesh.node_coords()[:, 2]
        write_vtk(
            str(path), mesh,
            point_fields={"T": T},
            cell_fields={"level": mesh.leaves.level.astype(float)},
        )
        text = path.read_text().splitlines()
        assert text[0].startswith("# vtk DataFile")
        assert "DATASET UNSTRUCTURED_GRID" in text
        assert f"POINTS {mesh.n_nodes} double" in text
        assert f"CELLS {mesh.n_elements} {mesh.n_elements * 9}" in text
        assert f"CELL_TYPES {mesh.n_elements}" in text
        assert f"POINT_DATA {mesh.n_nodes}" in text
        assert f"CELL_DATA {mesh.n_elements}" in text
        # every cell line lists 8 vertices with valid indices
        start = text.index(f"CELLS {mesh.n_elements} {mesh.n_elements * 9}") + 1
        for line in text[start : start + mesh.n_elements]:
            parts = line.split()
            assert parts[0] == "8"
            idx = list(map(int, parts[1:]))
            assert len(idx) == 8
            assert max(idx) < mesh.n_nodes and min(idx) >= 0

    def test_vtk_hex_ordering_is_right_handed(self, tmp_path):
        """The bottom quad (first 4 vertices) must be CCW seen from above
        (VTK_HEXAHEDRON convention) — signed volume positive."""
        mesh = extract_mesh(LinearOctree.uniform(0))
        path = tmp_path / "one.vtk"
        write_vtk(str(path), mesh)
        lines = path.read_text().splitlines()
        cell_line = lines[lines.index("CELLS 1 9") + 1]
        order = list(map(int, cell_line.split()[1:]))
        pts = mesh.node_coords()[order]
        # bottom face CCW: cross product of consecutive edges points +z
        e1 = pts[1] - pts[0]
        e2 = pts[2] - pts[1]
        assert np.cross(e1, e2)[2] > 0
        # top directly above bottom
        np.testing.assert_allclose(pts[4:, :2], pts[:4, :2])

    def test_field_length_validation(self, tmp_path):
        mesh = small_mesh()
        with pytest.raises(ValueError):
            write_vtk(str(tmp_path / "x.vtk"), mesh, point_fields={"b": np.zeros(3)})
        with pytest.raises(ValueError):
            write_vtk(str(tmp_path / "y.vtk"), mesh, cell_fields={"c": np.zeros(3)})


class TestStepTimeMetadata:
    def test_field_block_written(self, tmp_path):
        mesh = small_mesh()
        path = tmp_path / "m.vtk"
        write_vtk(str(path), mesh, step=42, time=0.125)
        lines = path.read_text().splitlines()
        i = lines.index("FIELD FieldData 2")
        assert i == lines.index("DATASET UNSTRUCTURED_GRID") + 1
        assert lines[i + 1] == "CYCLE 1 1 int"
        assert lines[i + 2] == "42"
        assert lines[i + 3] == "TIME 1 1 double"
        assert float(lines[i + 4]) == 0.125

    def test_time_round_trips_at_full_precision(self, tmp_path):
        mesh = small_mesh()
        t = 0.1 + 0.2  # not exactly representable in decimal
        path = tmp_path / "m.vtk"
        write_vtk(str(path), mesh, step=0, time=t)
        lines = path.read_text().splitlines()
        assert float(lines[lines.index("TIME 1 1 double") + 1]) == t

    def test_omitted_when_not_given(self, tmp_path):
        mesh = small_mesh()
        path = tmp_path / "m.vtk"
        write_vtk(str(path), mesh)
        assert "FIELD" not in path.read_text()


class TestVtkSeries:
    def test_monotone_steps_enforced(self, tmp_path):
        from repro.mesh import VtkSeries

        mesh = small_mesh()
        s = VtkSeries(str(tmp_path / "run"))
        s.write(mesh, step=3, time=0.3)
        s.write(mesh, step=5, time=0.5)
        with pytest.raises(ValueError, match="does not extend"):
            s.write(mesh, step=5, time=0.6)
        with pytest.raises(ValueError, match="restored counters"):
            s.write(mesh, step=0, time=0.6)
        with pytest.raises(ValueError, match="moves backwards"):
            s.write(mesh, step=6, time=0.4)

    def test_resume_scans_existing_files(self, tmp_path):
        """A resumed run reopening the series cannot clobber outputs a
        previous run already wrote."""
        from repro.mesh import VtkSeries

        mesh = small_mesh()
        s1 = VtkSeries(str(tmp_path / "run"))
        s1.write(mesh, step=1, time=0.1)
        s1.write(mesh, step=2, time=0.2)
        s2 = VtkSeries(str(tmp_path / "run"))  # fresh object, same prefix
        assert s2.last_step == 2
        with pytest.raises(ValueError):
            s2.write(mesh, step=2, time=0.3)
        path = s2.write(mesh, step=7, time=0.3)
        assert path.endswith("run_000007.vtk")
        # metadata inside the file carries the restored counters
        lines = open(path).read().splitlines()
        assert lines[lines.index("CYCLE 1 1 int") + 1] == "7"

    def test_unrelated_files_ignored(self, tmp_path):
        from repro.mesh import VtkSeries

        (tmp_path / "other_000099.vtk").write_text("")
        (tmp_path / "run_bad.vtk").write_text("")
        s = VtkSeries(str(tmp_path / "run"))
        assert s.last_step is None
