"""Doc-vs-argparse flag consistency checker (repro.analysis.docflags)."""

from pathlib import Path

import pytest

from repro.analysis.docflags import check_repo, example_flags, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write_repo(root: Path, readme: str) -> Path:
    (root / "examples").mkdir()
    (root / "examples" / "demo.py").write_text(
        "import argparse\n"
        "ap = argparse.ArgumentParser()\n"
        'ap.add_argument("--cycles", type=int)\n'
        'ap.add_argument("--trace", default=None)\n'
    )
    (root / "examples" / "plain.py").write_text('print("no args")\n')
    (root / "README.md").write_text(readme)
    return root


class TestExampleFlags:
    def test_parses_argparse_flags(self, tmp_path):
        _write_repo(tmp_path, "")
        flags = example_flags(tmp_path)
        assert flags["demo"] == {"--cycles", "--trace"}
        assert flags["plain"] is None  # no parser at all


class TestCheckRepo:
    def test_clean_repo(self, tmp_path):
        _write_repo(
            tmp_path,
            "Run `examples/demo.py --cycles 3 --trace t.json`.\n"
            "`examples/plain.py` needs no arguments.\n",
        )
        assert check_repo(tmp_path) == []

    def test_unknown_flag_on_command_line(self, tmp_path):
        _write_repo(tmp_path, "Run `examples/demo.py --bogus 1`.\n")
        (d,) = check_repo(tmp_path)
        assert "--bogus" in d.message and d.line == 1

    def test_flag_on_wrapped_bullet_line(self, tmp_path):
        # the README style that drifted: a bullet whose flags sit on the
        # soft-wrapped continuation line
        _write_repo(
            tmp_path,
            "- `examples/demo.py` — a demo; supports\n"
            "  `--cycles` and `--missing`.\n",
        )
        (d,) = check_repo(tmp_path)
        assert "--missing" in d.message

    def test_backslash_continuation(self, tmp_path):
        _write_repo(
            tmp_path,
            "```sh\npython examples/demo.py \\\n    --bogus2 1\n```\n",
        )
        (d,) = check_repo(tmp_path)
        assert "--bogus2" in d.message

    def test_flagless_example_with_documented_flag(self, tmp_path):
        _write_repo(tmp_path, "`examples/plain.py` takes `--anything`.\n")
        (d,) = check_repo(tmp_path)
        assert "takes no flags" in d.message

    def test_next_sentence_not_charged(self, tmp_path):
        # flags in a later sentence belong to some other tool, not to
        # the example mentioned earlier in the bullet
        _write_repo(
            tmp_path,
            "- `examples/demo.py --cycles 2` runs the demo.  The lint\n"
            "  job uses `--commflow` separately.\n",
        )
        assert check_repo(tmp_path) == []

    def test_unknown_example_reported(self, tmp_path):
        _write_repo(tmp_path, "See `examples/ghost.py --cycles 1`.\n")
        (d,) = check_repo(tmp_path)
        assert "unknown example" in d.message


class TestRealRepo:
    def test_repo_docs_are_clean(self):
        assert check_repo(REPO_ROOT) == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        _write_repo(tmp_path, "Run `examples/demo.py --bogus 1`.\n")
        assert main([str(tmp_path)]) == 1
        assert "--bogus" in capsys.readouterr().out
        assert main([str(REPO_ROOT)]) == 0
