"""Property-based tests for MARKELEMENTS invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import mark_elements


@st.composite
def indicator_case(draw):
    n = draw(st.integers(16, 400))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["uniform", "peaked", "bimodal"]))
    if kind == "uniform":
        eta = rng.random(n)
    elif kind == "peaked":
        eta = np.exp(-rng.random(n) * 10)
    else:
        eta = np.where(rng.random(n) < 0.2, rng.random(n), 1e-4 * rng.random(n))
    levels = rng.integers(1, 7, n)
    target = draw(st.integers(max(8, n // 4), 4 * n))
    return eta, levels, target


class TestMarkProperties:
    @given(indicator_case())
    @settings(max_examples=40, deadline=None)
    def test_masks_are_disjoint_and_capped(self, case):
        eta, levels, target = case
        res = mark_elements(eta, levels, target, max_level=6, min_level=1)
        # refine and coarsen never overlap
        assert not np.any(res.refine & res.coarsen)
        # level caps respected
        assert not np.any(res.refine & (levels >= 6))
        assert not np.any(res.coarsen & (levels <= 1))
        # thresholds are ordered
        assert res.coarsen_threshold <= res.refine_threshold or res.coarsen_threshold == 0.0

    @given(indicator_case())
    @settings(max_examples=40, deadline=None)
    def test_expected_count_formula(self, case):
        eta, levels, target = case
        res = mark_elements(eta, levels, target, max_level=6, min_level=1)
        n = len(eta)
        expect = n + 7 * res.refine.sum() - 7 * (res.coarsen.sum() // 8)
        assert res.expected_count == expect

    @given(indicator_case())
    @settings(max_examples=30, deadline=None)
    def test_growth_targets_approached_monotonically(self, case):
        """Raising the target never shrinks the expected outcome."""
        eta, levels, target = case
        lo = mark_elements(eta, levels, target, max_level=6, min_level=1)
        hi = mark_elements(eta, levels, 2 * target, max_level=6, min_level=1)
        assert hi.expected_count >= lo.expected_count - max(
            int(0.15 * lo.expected_count), 8
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_refinement_marks_highest_indicators(self, seed):
        rng = np.random.default_rng(seed)
        eta = rng.random(200)
        levels = np.full(200, 3)
        res = mark_elements(eta, levels, target=400)
        if res.refine.any() and (~res.refine).any():
            assert eta[res.refine].min() >= eta[~res.refine].max() - 1e-12

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_coarsening_marks_lowest_indicators(self, seed):
        rng = np.random.default_rng(seed)
        eta = rng.random(256)
        levels = np.full(256, 3)
        res = mark_elements(eta, levels, target=64)
        if res.coarsen.any():
            unmarked = ~res.coarsen & ~res.refine
            if unmarked.any():
                assert eta[res.coarsen].max() <= eta[unmarked].min() + 1e-12
