"""Tests for the distributed octree (repro.octree.partree).

The central invariant is *P-invariance*: every parallel tree operation
must produce the identical global tree for any rank count, matching the
serial algorithms.
"""

import numpy as np
import pytest

from repro.octree import (
    LinearOctree,
    balance,
    balance_tree,
    coarsen_tree,
    gather_tree,
    is_balanced,
    new_tree,
    owners_of_keys,
    partition_markers,
    partition_tree,
    refine_tree,
)
from repro.parallel import run_spmd

PS = [1, 2, 4, 7]


def spmd(p, fn, *args):
    return run_spmd(p, fn, *args)


class TestNewTree:
    @pytest.mark.parametrize("p", PS)
    def test_global_tree_matches_serial(self, p):
        def kernel(comm):
            pt = new_tree(comm, 2)
            return gather_tree(pt)

        out = spmd(p, kernel)
        serial = LinearOctree.uniform(2)
        for t in out:
            assert t.leaves.equals(serial.leaves)

    @pytest.mark.parametrize("p", [3, 5])
    def test_load_balanced(self, p):
        def kernel(comm):
            return len(new_tree(comm, 2))

        counts = spmd(p, kernel)
        assert sum(counts) == 64
        assert max(counts) - min(counts) <= 1

    def test_global_count_and_offset(self):
        def kernel(comm):
            pt = new_tree(comm, 2)
            return pt.global_count(), pt.global_offset(), len(pt)

        out = spmd(4, kernel)
        assert all(o[0] == 64 for o in out)
        offsets = [o[1] for o in out]
        lens = [o[2] for o in out]
        assert offsets == [0, *np.cumsum(lens)[:-1].tolist()]


class TestPartitionMarkers:
    def test_markers_route_keys_to_owners(self):
        def kernel(comm):
            pt = new_tree(comm, 2)
            markers = partition_markers(comm, pt.local)
            # every rank checks that its own first/last keys map back to it
            if len(pt):
                owners = owners_of_keys(markers, pt.keys[[0, -1]])
                return owners.tolist() == [comm.rank, comm.rank]
            return True

        assert all(spmd(4, kernel))

    def test_empty_rank_owns_nothing(self):
        def kernel(comm):
            # put everything on rank 0 by building a tiny tree on 4 ranks
            pt = new_tree(comm, 0)  # 1 leaf total
            markers = partition_markers(comm, pt.local)
            owners = owners_of_keys(markers, np.array([0, 12345], dtype=np.uint64))
            return owners.tolist()

        out = spmd(4, kernel)
        for o in out:
            assert o == [0, 0]


class TestRefineCoarsenParallel:
    @pytest.mark.parametrize("p", PS)
    def test_refine_matches_serial(self, p):
        def kernel(comm):
            pt = new_tree(comm, 2)
            offset = pt.global_offset()
            gmask = np.arange(64) % 3 == 0
            pt = refine_tree(pt, gmask[offset : offset + len(pt)])
            return gather_tree(pt)

        serial = LinearOctree.uniform(2).refine(np.arange(64) % 3 == 0)
        for t in spmd(p, kernel):
            assert t.leaves.equals(serial.leaves)

    def test_coarsen_local_families(self):
        def kernel(comm):
            pt = new_tree(comm, 2)
            pt, nfam = coarsen_tree(pt, np.ones(len(pt), dtype=bool))
            return gather_tree(pt), comm.allreduce(nfam)

        # on 1 rank all 8 families coarsen -> uniform level 1
        (t, nfam), = spmd(1, kernel)
        assert nfam == 8
        assert t.leaves.equals(LinearOctree.uniform(1).leaves)

    def test_coarsen_resolves_split_families(self):
        def kernel(comm):
            pt = new_tree(comm, 1)  # 8 leaves over 3 ranks: family split
            pt, nfam = coarsen_tree(pt, np.ones(len(pt), dtype=bool))
            return comm.allreduce(nfam), gather_tree(pt)

        out = spmd(3, kernel)
        nfam, t = out[0]
        assert nfam == 1  # split family is still coarsened (P-invariance)
        assert len(t) == 1 and t.levels[0] == 0


class TestBalanceParallel:
    @staticmethod
    def _unbalanced_kernel(comm, depth=4):
        """Refine toward the domain center on whichever rank holds it
        (center refinement creates genuine 2:1 violations; see the serial
        balance tests for why domain corners do not)."""
        from repro.octree import ROOT_LEN, morton_encode

        mid = ROOT_LEN // 2
        ckey = morton_encode(np.array([mid]), np.array([mid]), np.array([mid]))
        pt = new_tree(comm, 1)
        for _ in range(depth):
            markers = partition_markers(comm, pt.local)
            owner = owners_of_keys(markers, ckey)[0]
            mask = np.zeros(len(pt), dtype=bool)
            if comm.rank == owner and len(pt):
                idx = np.searchsorted(pt.keys, ckey[0], side="right") - 1
                mask[idx] = True
            pt = refine_tree(pt, mask)
        return pt

    @pytest.mark.parametrize("p", PS)
    def test_balance_matches_serial(self, p):
        def kernel(comm):
            pt = self._unbalanced_kernel(comm)
            pt, added, rounds = balance_tree(pt)
            return gather_tree(pt), added, rounds

        # serial reference
        def serial_tree():
            from repro.octree import ROOT_LEN

            mid = ROOT_LEN // 2
            t = LinearOctree.uniform(1)
            for _ in range(4):
                mask = np.zeros(len(t), dtype=bool)
                idx = t.find_containing(
                    np.array([mid]), np.array([mid]), np.array([mid])
                )[0]
                mask[idx] = True
                t = t.refine(mask)
            return t

        ref = balance(serial_tree())
        for t, added, rounds in spmd(p, kernel):
            assert t.leaves.equals(ref.tree.leaves)
            assert added == ref.leaves_added
            assert is_balanced(t)

    @pytest.mark.parametrize("connectivity", ["face", "edge", "corner"])
    def test_connectivities(self, connectivity):
        def kernel(comm):
            pt = self._unbalanced_kernel(comm, depth=3)
            pt, _, _ = balance_tree(pt, connectivity)
            return gather_tree(pt)

        for t in spmd(3, kernel):
            assert is_balanced(t, connectivity)
            assert t.is_complete()


class TestPartitionTree:
    @pytest.mark.parametrize("p", [2, 4, 7])
    def test_partition_equalizes_counts(self, p):
        def kernel(comm):
            pt = new_tree(comm, 2)
            # refine only rank 0's leaves -> severe imbalance
            mask = np.zeros(len(pt), dtype=bool)
            if comm.rank == 0:
                mask[:] = True
            pt = refine_tree(pt, mask)
            before = comm.allgather(len(pt))
            pt, plan = partition_tree(pt)
            after = comm.allgather(len(pt))
            return before, after, gather_tree(pt)

        for before, after, t in spmd(p, kernel):
            assert max(after) - min(after) <= 1
            assert sum(after) == sum(before)
            assert t.is_complete()

    def test_partition_preserves_global_order(self):
        def kernel(comm):
            pt = new_tree(comm, 2)
            mask = np.zeros(len(pt), dtype=bool)
            if comm.rank == 1:
                mask[:] = True
            pt = refine_tree(pt, mask)
            g_before = gather_tree(pt)
            pt, _ = partition_tree(pt)
            g_after = gather_tree(pt)
            return g_before, g_after

        for g_before, g_after in spmd(4, kernel):
            assert g_before.leaves.equals(g_after.leaves)

    def test_transfer_plan_routes_element_data(self):
        def kernel(comm):
            pt = new_tree(comm, 2)
            offset = pt.global_offset()
            data = offset + np.arange(len(pt), dtype=np.float64)
            mask = np.zeros(len(pt), dtype=bool)
            if comm.rank == 0:
                mask[:] = True
            # NOTE: refine would invalidate per-element data; partition only
            pt2, plan = partition_tree(pt)
            new_data = plan.transfer(comm, data)
            assert len(new_data) == len(pt2)
            # global concatenation in rank order must be 0..63
            return comm.allgather(new_data)

        out = spmd(4, kernel)
        full = np.concatenate(out[0])
        np.testing.assert_array_equal(full, np.arange(64, dtype=np.float64))

    def test_weighted_partition(self):
        def kernel(comm):
            pt = new_tree(comm, 2)
            offset = pt.global_offset()
            # weight 10 for first half of curve, 1 for the rest
            gw = np.where(np.arange(64) < 32, 10.0, 1.0)
            w = gw[offset : offset + len(pt)]
            pt, _ = partition_tree(pt, weights=w)
            local_w = gw[pt.comm.exscan(0) if False else 0]  # placeholder
            return len(pt), gather_tree(pt)

        out = spmd(4, kernel)
        counts = [o[0] for o in out]
        # heavy ranks get fewer leaves; order preserved
        assert counts[0] < counts[-1]
        assert out[0][1].is_complete()

    def test_weights_length_checked(self):
        def kernel(comm):
            pt = new_tree(comm, 1)
            partition_tree(pt, weights=np.ones(len(pt) + 1))

        with pytest.raises(ValueError):
            spmd(2, kernel)
