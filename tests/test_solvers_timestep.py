"""Tests for the explicit time integrators."""

import numpy as np
import pytest

from repro.solvers import LowStorageRK45, heun_step


class TestHeun:
    def test_exact_for_linear_rate(self):
        """du/dt = c is integrated exactly."""
        u = heun_step(lambda u: np.array([2.0]), np.array([1.0]), 0.5)
        assert u[0] == pytest.approx(2.0)

    def test_second_order_on_exponential(self):
        """Heun is O(dt^2) accurate: halving dt cuts error ~4x."""
        errs = []
        for n in (20, 40):
            u = np.array([1.0])
            dt = 1.0 / n
            for _ in range(n):
                u = heun_step(lambda v: v, u, dt)
            errs.append(abs(u[0] - np.e))
        assert errs[0] / errs[1] > 3.0


class TestLowStorageRK45:
    def test_coefficients_consistency(self):
        """B coefficients of a consistent RK scheme relate to C stages."""
        rk = LowStorageRK45()
        assert len(rk.A) == len(rk.B) == len(rk.C) == 5
        assert rk.A[0] == 0.0
        assert rk.C[0] == 0.0

    def test_exact_on_polynomial_rates(self):
        """4th order: integrates du/dt = t^3 exactly."""
        rk = LowStorageRK45()
        u = rk.step(lambda v, t: np.array([t**3]), np.array([0.0]), 0.0, 1.0)
        assert u[0] == pytest.approx(0.25, abs=1e-12)

    def test_fourth_order_convergence(self):
        rk = LowStorageRK45()

        def solve(n):
            u = np.array([1.0])
            return rk.advance(lambda v, t: v, u, 0.0, 1.0 / n, n)[0]

        e1 = abs(solve(8) - np.e)
        e2 = abs(solve(16) - np.e)
        assert e1 / e2 > 12.0  # ~16x for 4th order

    def test_advance_does_not_mutate_input(self):
        rk = LowStorageRK45()
        u0 = np.ones(3)
        rk.advance(lambda v, t: -v, u0, 0.0, 0.1, 5)
        np.testing.assert_array_equal(u0, 1.0)

    def test_linear_stability_decay(self):
        """Stiff decay within the stability region stays bounded."""
        rk = LowStorageRK45()
        u = rk.advance(lambda v, t: -2.0 * v, np.array([1.0]), 0.0, 0.1, 100)
        assert 0 < u[0] < 1.0
