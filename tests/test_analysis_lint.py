"""Unit tests for the SPMD correctness linter (repro.analysis.lint).

Every rule R1-R6 is pinned with true-positive fixtures (the defect
MUST be flagged) and false-positive fixtures (legitimate idioms that
MUST NOT be flagged), plus the suppression and baseline workflows.
"""

import json
import textwrap

from repro.analysis.lint import (
    Finding,
    apply_baseline,
    lint_source,
    load_baseline,
    main,
    write_baseline,
)

HOT = "src/repro/fem/fixture.py"  # R3 active (fem/)
HOT_LOOP = "src/repro/fem/assembly.py"  # R4 active (vectorized module stem)
COLD = "src/repro/octree/fixture.py"  # R3/R4 inactive


def rules(src: str, path: str = COLD) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(src), path)]


def findings(src: str, path: str = COLD) -> list[Finding]:
    return lint_source(textwrap.dedent(src), path)


# --------------------------------------------------------------------------
# R1: collective symmetry


class TestR1TruePositives:
    def test_collective_under_rank_if(self):
        src = """
        def f(comm):
            if comm.rank == 0:
                comm.barrier()
        """
        assert rules(src) == ["R1"]

    def test_collective_in_rank_derived_for(self):
        src = """
        def f(comm):
            r = comm.rank * 2
            for i in range(r):
                comm.allreduce(i)
        """
        assert rules(src) == ["R1"]

    def test_collective_under_exscan_while(self):
        src = """
        def f(comm, n):
            off = comm.exscan(n)
            while off > 0:
                comm.allgather(off)
                off -= 1
        """
        assert rules(src) == ["R1"]

    def test_collective_under_recv_derived_branch(self):
        src = """
        def f(comm):
            data = comm.recv(0)
            if len(data) > 0:
                total = comm.allreduce(data.sum())
        """
        assert rules(src) == ["R1"]

    def test_finding_names_op_and_control_line(self):
        src = """
        def f(comm):
            if comm.rank == 0:
                comm.bcast(1)
        """
        (f,) = findings(src)
        assert f.rule == "R1"
        assert "bcast" in f.message
        assert "'if'" in f.message


class TestR1FalsePositives:
    def test_unconditional_collective(self):
        src = """
        def f(comm, x):
            comm.barrier()
            return comm.allreduce(x)
        """
        assert rules(src) == []

    def test_branch_on_symmetric_allreduce_result(self):
        # allreduce results are replicated on every rank: branching on
        # them keeps the collective sequence symmetric
        src = """
        def f(comm, local_err):
            err = comm.allreduce(local_err, "max")
            if err > 1e-6:
                comm.barrier()
        """
        assert rules(src) == []

    def test_rank_branch_without_collective(self):
        src = """
        def f(comm, msg):
            if comm.rank == 0:
                print(msg)
        """
        assert rules(src) == []

    def test_rank_ternary_inside_collective_arg(self):
        # the SimComm idiom itself: every rank still calls bcast
        src = """
        def f(comm, obj, root):
            return comm.bcast(obj if comm.rank == root else None)
        """
        assert rules(src) == []

    def test_branch_on_replicated_config(self):
        src = """
        def f(comm, cfg):
            if cfg.verbose:
                comm.barrier()
        """
        assert rules(src) == []


# --------------------------------------------------------------------------
# R2: cache purity


class TestR2TruePositives:
    def test_inplace_op_on_cached_get(self):
        src = """
        def f(mesh, build):
            sizes = operator_cache(mesh).get("element_sizes", build)
            sizes *= 2.0
        """
        assert rules(src) == ["R2"]

    def test_element_write_through_cache_handle(self):
        src = """
        def f(mesh, build):
            cache = operator_cache(mesh)
            Z = cache.get("Z", build)
            Z[0] = 1.0
        """
        assert rules(src) == ["R2"]

    def test_mutating_ufunc_on_cached_getter(self):
        src = """
        import numpy as np
        def f(mesh, idx):
            c = mesh.element_centers()
            np.add.at(c, idx, 1.0)
        """
        assert rules(src) == ["R2"]

    def test_out_kwarg_targets_cached_value(self):
        src = """
        import numpy as np
        def f(mesh, build):
            v = operator_cache(mesh).get("v", build)
            np.multiply(v, 2.0, out=v)
        """
        assert rules(src) == ["R2"]

    def test_attribute_write_on_cached_object(self):
        src = """
        def f(mesh, build):
            sc = operator_cache(mesh).get("scatter", build)
            sc.indices = None
        """
        assert rules(src) == ["R2"]


class TestR2FalsePositives:
    def test_copy_launders_cached_value(self):
        src = """
        def f(mesh, build):
            sizes = operator_cache(mesh).get("element_sizes", build)
            mine = sizes.copy()
            mine *= 2.0
        """
        assert rules(src) == []

    def test_arithmetic_produces_fresh_array(self):
        src = """
        def f(mesh, build):
            sizes = operator_cache(mesh).get("element_sizes", build)
            scaled = sizes * 2.0
            scaled += 1.0
        """
        assert rules(src) == []

    def test_reads_of_cached_value(self):
        src = """
        def f(mesh, build):
            sizes = operator_cache(mesh).get("element_sizes", build)
            total = sizes.sum() + sizes[0]
            return total
        """
        assert rules(src) == []

    def test_mutating_uncached_array_is_fine(self):
        src = """
        import numpy as np
        def f(n):
            a = np.zeros(n, dtype=np.float64)
            a[0] = 1.0
            a += 2.0
            np.add.at(a, [0], 1.0)
        """
        assert rules(src) == []

    def test_rebinding_to_copy_then_mutating(self):
        src = """
        def f(mesh, build):
            v = operator_cache(mesh).get("v", build)
            v = v.copy()
            v[0] = 3.0
        """
        assert rules(src) == []


# --------------------------------------------------------------------------
# R3: dtype discipline


class TestR3TruePositives:
    def test_zeros_without_dtype(self):
        assert rules("import numpy as np\nb = np.zeros(10)\n", HOT) == ["R3"]

    def test_array_without_dtype(self):
        assert rules("import numpy as np\na = np.array([1.0, 2.0])\n", HOT) == ["R3"]

    def test_empty_without_dtype(self):
        assert rules("import numpy as np\ne = np.empty((3, 3))\n", HOT) == ["R3"]

    def test_float32_mixed_into_literal_accumulator(self):
        src = """
        import numpy as np
        def f(n):
            data = np.zeros(n, dtype=np.float32)
            acc = 0.0
            acc += data.sum()
            return acc
        """
        assert rules(src, HOT) == ["R3"]


class TestR3FalsePositives:
    def test_explicit_dtype_passes(self):
        src = """
        import numpy as np
        a = np.zeros(10, dtype=np.float64)
        b = np.array([1.0], dtype=np.float64)
        c = np.empty(3, dtype=np.int64)
        """
        assert rules(src, HOT) == []

    def test_cold_path_not_checked(self):
        assert rules("import numpy as np\nb = np.zeros(10)\n", COLD) == []

    def test_like_constructors_inherit_dtype(self):
        src = """
        import numpy as np
        def f(x):
            return np.zeros_like(x) + np.empty_like(x)
        """
        assert rules(src, HOT) == []

    def test_float64_accumulation_is_fine(self):
        src = """
        import numpy as np
        def f(n):
            data = np.zeros(n, dtype=np.float64)
            acc = 0.0
            acc += data.sum()
            return acc
        """
        assert rules(src, HOT) == []


# --------------------------------------------------------------------------
# R4: hot-loop hygiene


class TestR4TruePositives:
    def test_range_over_elements(self):
        src = """
        def f(n_elements):
            for e in range(n_elements):
                pass
        """
        assert rules(src, HOT_LOOP) == ["R4"]

    def test_enumerate_loop(self):
        src = """
        def f(rows):
            for i, r in enumerate(rows):
                pass
        """
        assert rules(src, HOT_LOOP) == ["R4"]

    def test_nested_per_entry_loop(self):
        src = """
        def f(mats):
            for e in range(len(mats)):
                for k in range(mats[e].size):
                    pass
        """
        assert sorted(rules(src, HOT_LOOP)) == ["R4", "R4"]


class TestR4FalsePositives:
    def test_small_constant_range(self):
        src = """
        def f():
            for a in range(3):
                for c in range(8):
                    pass
        """
        assert rules(src, HOT_LOOP) == []

    def test_allow_loop_marker(self):
        src = """
        def f(ne):
            for e in range(ne):  # lint: allow-loop (legacy path)
                pass
        """
        assert rules(src, HOT_LOOP) == []

    def test_allow_loop_marker_on_previous_line(self):
        src = """
        def f(ne):
            # lint: allow-loop
            for e in range(ne):
                pass
        """
        assert rules(src, HOT_LOOP) == []

    def test_cold_module_not_checked(self):
        src = """
        def f(ne):
            for e in range(ne):
                pass
        """
        assert rules(src, COLD) == []

    def test_plain_iteration_not_flagged(self):
        src = """
        def f(items):
            for x in items:
                pass
        """
        assert rules(src, HOT_LOOP) == []


# --------------------------------------------------------------------------
# suppression, baseline, CLI


class TestSuppression:
    def test_disable_comment(self):
        src = """
        def f(comm):
            if comm.rank == 0:
                comm.barrier()  # lint: disable=R1
        """
        assert rules(src) == []

    def test_disable_wrong_rule_keeps_finding(self):
        src = """
        def f(comm):
            if comm.rank == 0:
                comm.barrier()  # lint: disable=R2
        """
        assert rules(src) == ["R1"]

    def test_disable_list(self):
        src = "import numpy as np\nb = np.zeros(10)  # lint: disable=R2, R3\n"
        assert rules(src, HOT) == []


class TestBaseline:
    def test_roundtrip_and_new_finding(self, tmp_path):
        old = findings("import numpy as np\nb = np.zeros(10)\n", HOT)
        bl_file = tmp_path / "baseline.json"
        write_baseline(old, bl_file)
        baseline = load_baseline(bl_file)
        # identical findings are fully grandfathered
        assert apply_baseline(old, baseline) == []
        # a new finding (different snippet) is reported
        new = findings(
            "import numpy as np\nb = np.zeros(10)\nc = np.empty(4)\n", HOT
        )
        fresh = apply_baseline(new, baseline)
        assert [f.snippet for f in fresh] == ["c = np.empty(4)"]

    def test_baseline_survives_line_shift(self, tmp_path):
        old = findings("import numpy as np\nb = np.zeros(10)\n", HOT)
        bl_file = tmp_path / "baseline.json"
        write_baseline(old, bl_file)
        shifted = findings(
            "import numpy as np\n\n\n# comment\nb = np.zeros(10)\n", HOT
        )
        assert apply_baseline(shifted, load_baseline(bl_file)) == []

    def test_baseline_is_a_multiset(self, tmp_path):
        one = findings("import numpy as np\nb = np.zeros(10)\n", HOT)
        bl_file = tmp_path / "b.json"
        write_baseline(one, bl_file)
        twice = findings(
            "import numpy as np\nb = np.zeros(10)\nb = np.zeros(10)\n", HOT
        )
        fresh = apply_baseline(twice, load_baseline(bl_file))
        assert len(fresh) == 1  # only the second occurrence is new


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "src" / "repro" / "fem" / "ok.py"
        f.parent.mkdir(parents=True)
        f.write_text("import numpy as np\na = np.zeros(3, dtype=np.float64)\n")
        assert main([str(tmp_path / "src"), "--no-baseline"]) == 0

    def test_finding_exits_nonzero_and_prints_location(self, tmp_path, capsys):
        f = tmp_path / "src" / "repro" / "fem" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import numpy as np\na = np.zeros(3)\n")
        assert main([str(tmp_path / "src"), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2" in out and "R3" in out

    def test_write_then_check_baseline(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        # path component 'fem' puts the file in R3 scope
        fem = tmp_path / "fem"
        fem.mkdir()
        f = fem / "bad.py"
        f.write_text("import numpy as np\na = np.zeros(3)\n")
        bl = tmp_path / "bl.json"
        assert main([str(fem), "--write-baseline", str(bl)]) == 0
        assert json.loads(bl.read_text())["findings"]
        assert main([str(fem), "--baseline", str(bl)]) == 0

    def test_missing_required_baseline_errors(self, tmp_path):
        fem = tmp_path / "fem"
        fem.mkdir()
        (fem / "x.py").write_text("pass\n")
        assert main([str(fem), "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_syntax_error_reported(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        assert main([str(f), "--no-baseline"]) == 1


# --------------------------------------------------------------------------
# R5: unordered dict iteration while serializing state (checkpoint scope)

CKPT = "src/repro/checkpoint/fixture.py"  # R5 + R6 active (checkpoint/)
OBS = "src/repro/obs/fixture.py"  # R6 active (obs/)


def r5(src: str) -> list[str]:
    """R5 findings on a checkpoint-path fixture (the path also activates
    R6, which these bare fixtures trip by design — filter it out)."""
    return [r for r in rules(src, CKPT) if r != "R6"]


class TestR5TruePositives:
    def test_items_in_for_loop(self):
        src = """
        def pack(arrays):
            for name, arr in arrays.items():
                emit(name, arr)
        """
        assert r5(src) == ["R5"]

    def test_keys_in_for_loop(self):
        src = """
        def pack(arrays):
            for name in arrays.keys():
                emit(name)
        """
        assert r5(src) == ["R5"]

    def test_values_through_enumerate(self):
        src = """
        def pack(arrays):
            for i, arr in enumerate(arrays.values()):
                emit(i, arr)
        """
        assert r5(src) == ["R5"]

    def test_items_in_comprehension(self):
        src = """
        def digest(arrays):
            return [h(a) for _, a in arrays.items()]
        """
        assert r5(src) == ["R5"]

    def test_message_mentions_sorted_and_digests(self):
        src = """
        def pack(arrays):
            for k in arrays.keys():
                emit(k)
        """
        f = [x for x in findings(src, CKPT) if x.rule == "R5"][0]
        assert "sorted" in f.message and "digest" in f.message


class TestR5FalsePositives:
    def test_sorted_items_is_fine(self):
        src = """
        def pack(arrays):
            for name in sorted(arrays):
                emit(name)
            for name, arr in sorted(arrays.items()):
                emit(name, arr)
        """
        assert r5(src) == []

    def test_inactive_outside_checkpoint_paths(self):
        src = """
        def pack(arrays):
            for name, arr in arrays.items():
                emit(name, arr)
        """
        assert rules(src, COLD) == []
        assert rules(src, HOT) == []

    def test_iteration_without_serialization_views(self):
        src = """
        def pack(names):
            for name in names:
                emit(name)
        """
        assert r5(src) == []

    def test_suppression_comment(self):
        src = """
        def pack(arrays):
            for name, arr in arrays.items():  # lint: disable=R5
                emit(name, arr)
        """
        assert r5(src) == []


# --------------------------------------------------------------------------
# R6: public-API docstrings (documented packages only)


class TestR6TruePositives:
    def test_missing_module_docstring(self):
        src = """
        X = 1
        """
        assert rules(src, OBS) == ["R6"]

    def test_missing_function_docstring(self):
        src = '''
        """Module."""

        def public():
            return 1
        '''
        f = findings(src, OBS)
        assert [x.rule for x in f] == ["R6"]
        assert "public function 'public'" in f[0].message

    def test_missing_class_and_method_docstrings(self):
        src = '''
        """Module."""

        class Thing:
            def run(self):
                return 1
        '''
        msgs = [x.message for x in findings(src, OBS)]
        assert len(msgs) == 2
        assert any("public class 'Thing'" in m for m in msgs)
        assert any("public method 'run'" in m for m in msgs)

    def test_active_in_perf_and_checkpoint_paths(self):
        src = """
        def public():
            return 1
        """
        assert rules(src, "src/repro/perf/fixture.py") == ["R6", "R6"]
        assert rules(src, CKPT) == ["R6", "R6"]


class TestR6FalsePositives:
    def test_documented_symbols_pass(self):
        src = '''
        """Module."""

        class Thing:
            """A thing."""

            def run(self):
                """Run it."""
                return 1

        def public():
            """Do it."""
            return 1
        '''
        assert rules(src, OBS) == []

    def test_private_and_dunder_names_exempt(self):
        src = '''
        """Module."""

        class _Internal:
            def anything(self):
                return 1

        class Thing:
            """A thing."""

            def __init__(self):
                self.x = 1

            def _helper(self):
                return 2
        '''
        assert rules(src, OBS) == []

    def test_nested_functions_exempt(self):
        src = '''
        """Module."""

        def public():
            """Documented."""
            def inner():
                return 1
            return inner
        '''
        assert rules(src, OBS) == []

    def test_methods_of_private_class_exempt(self):
        src = '''
        """Module."""

        class _Hidden:
            class Inner:
                def run(self):
                    return 1
        '''
        assert rules(src, OBS) == []

    def test_inactive_outside_documented_packages(self):
        src = """
        def public():
            return 1
        """
        assert rules(src, COLD) == []
        assert rules(src, HOT) == []

    def test_suppression_comment(self):
        src = '''
        """Module."""

        def public():  # lint: disable=R6
            return 1
        '''
        assert rules(src, OBS) == []


# --------------------------------------------------------------------------
# R5 on sets: salted iteration order while serializing state


class TestR5SetTruePositives:
    def test_set_literal_iteration(self):
        src = """
        def pack(emit):
            names = {"T", "keys", "levels"}
            for name in names:
                emit(name)
        """
        assert r5(src) == ["R5"]

    def test_set_call_iteration(self):
        src = """
        def pack(arrays, emit):
            pending = set(arrays)
            for name in pending:
                emit(name)
        """
        assert r5(src) == ["R5"]

    def test_set_comprehension_iteration(self):
        src = """
        def pack(arrays, emit):
            stems = {n.split("/")[0] for n in arrays}
            for s in stems:
                emit(s)
        """
        assert r5(src) == ["R5"]

    def test_set_union_iteration(self):
        src = """
        def pack(a, b, emit):
            left = set(a)
            right = set(b)
            both = left | right
            for name in both:
                emit(name)
        """
        assert r5(src) == ["R5"]

    def test_set_method_union_iteration(self):
        src = """
        def pack(a, b, emit):
            left = set(a)
            for name in left.union(b):
                emit(name)
        """
        assert r5(src) == ["R5"]

    def test_set_through_enumerate(self):
        src = """
        def pack(arrays, emit):
            names = set(arrays)
            for i, name in enumerate(names):
                emit(i, name)
        """
        assert r5(src) == ["R5"]

    def test_message_mentions_sorted(self):
        src = """
        def pack(emit):
            names = {"a", "b"}
            for n in names:
                emit(n)
        """
        f = [x for x in findings(src, CKPT) if x.rule == "R5"][0]
        assert "sorted" in f.message


class TestR5SetFalsePositives:
    def test_sorted_set_is_fine(self):
        src = """
        def pack(arrays, emit):
            names = set(arrays)
            for name in sorted(names):
                emit(name)
        """
        assert r5(src) == []

    def test_rebound_to_list_is_fine(self):
        src = """
        def pack(arrays, emit):
            names = set(arrays)
            names = sorted(names)
            for name in names:
                emit(name)
        """
        assert r5(src) == []

    def test_membership_test_is_fine(self):
        src = """
        def pack(arrays, emit):
            skip = {"tmp"}
            for name in sorted(arrays):
                if name in skip:
                    continue
                emit(name)
        """
        assert r5(src) == []

    def test_inactive_outside_checkpoint(self):
        src = """
        def pack(emit):
            names = {"a", "b"}
            for n in names:
                emit(n)
        """
        assert rules(src, COLD) == []


# --------------------------------------------------------------------------
# --format=github annotations


class TestGithubFormat:
    def test_annotations_emitted(self, tmp_path, capsys):
        fem = tmp_path / "fem"
        fem.mkdir()
        (fem / "bad.py").write_text("import numpy as np\na = np.zeros(3)\n")
        assert main([str(fem), "--no-baseline", "--format=github"]) == 1
        out = capsys.readouterr().out
        line = [ln for ln in out.splitlines() if ln.startswith("::error ")][0]
        assert "file=" in line and "line=2" in line and "repro-lint R3" in line

    def test_newlines_escaped(self, tmp_path, capsys):
        fem = tmp_path / "fem"
        fem.mkdir()
        (fem / "bad.py").write_text("import numpy as np\na = np.zeros(3)\n")
        main([str(fem), "--no-baseline", "--format=github"])
        out = capsys.readouterr().out
        for ln in out.splitlines():
            if ln.startswith("::error "):
                assert "\n" not in ln[1:]

    def test_clean_tree_emits_nothing(self, tmp_path, capsys):
        fem = tmp_path / "fem"
        fem.mkdir()
        (fem / "ok.py").write_text("x = 1\n")
        assert main([str(fem), "--no-baseline", "--format=github"]) == 0
        assert "::error" not in capsys.readouterr().out


# --------------------------------------------------------------------------
# R10: module-global mutable state inside SPMD kernels


class TestR10TruePositives:
    def test_read_of_module_dict_in_kernel(self):
        src = """
        _registry = {}

        def kernel(comm, x):
            return _registry.get(comm.rank)
        """
        assert rules(src) == ["R10"]

    def test_global_declared_none_still_flagged(self):
        # the seeded bug: `_fault` is None at module scope but rebound
        # through `global` — reading it in a kernel is still stale-prone
        src = """
        _fault = None

        def arm(rank):
            global _fault
            _fault = {"rank": rank}

        def kernel(comm):
            if _fault is not None:
                raise RuntimeError
        """
        assert rules(src) == ["R10"]

    def test_global_statement_inside_kernel_does_not_launder(self):
        src = """
        _state = None

        def setup():
            global _state
            _state = {}

        def kernel(comm):
            global _state
            return _state
        """
        assert rules(src) == ["R10"]

    def test_mutable_ctor_call_counts(self):
        src = """
        import collections
        _cache = collections.OrderedDict()

        def kernel(my_comm):
            return len(_cache)
        """
        assert rules(src) == ["R10"]

    def test_comm_like_param_anywhere(self):
        src = """
        _seen = []

        def kernel(a, b, *, checked_comm):
            _seen.append(a)
        """
        assert rules(src) == ["R10"]

    def test_finding_names_kernel_and_global(self):
        src = """
        _slots = []

        def exchange(comm):
            return _slots[comm.rank]
        """
        (f,) = findings(src)
        assert f.rule == "R10"
        assert "'exchange'" in f.message and "'_slots'" in f.message


class TestR10FalsePositives:
    def test_all_caps_constant_exempt(self):
        src = """
        TABLE = {"a": 1}

        def kernel(comm):
            return TABLE["a"]
        """
        assert rules(src) == []

    def test_function_without_comm_param_ignored(self):
        src = """
        _registry = {}

        def helper(x):
            return _registry.get(x)
        """
        assert rules(src) == []

    def test_local_shadow_not_flagged(self):
        src = """
        _buf = []

        def kernel(comm):
            _buf = [comm.rank]
            return _buf
        """
        assert rules(src) == []

    def test_immutable_global_not_flagged(self):
        src = """
        _tag = 7

        def kernel(comm):
            return _tag
        """
        assert rules(src) == []

    def test_nested_helper_judged_separately(self):
        # the nested def has no comm param; the outer kernel never reads
        # the global itself
        src = """
        _registry = {}

        def kernel(comm):
            def fmt(x):
                return x
            return fmt(comm.rank)
        """
        assert rules(src) == []

    def test_disable_comment(self):
        src = """
        _fault = None

        def arm():
            global _fault
            _fault = {}

        def kernel(comm):
            f = _fault  # lint: disable=R10
            return f
        """
        assert rules(src) == []
