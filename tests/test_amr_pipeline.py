"""Tests for MARKELEMENTS, the serial adaptation driver, and the SPMD
pipeline — including P-invariance of the distributed transport solver."""

import numpy as np
import pytest

from repro.amr import (
    ParAmrPipeline,
    adapt_mesh,
    mark_elements,
    rotating_velocity,
)
from repro.fem import AdvectionDiffusion, ParAdvectionDiffusion
from repro.mesh import extract_mesh
from repro.mesh.parmesh import extract_parmesh
from repro.octree import LinearOctree, balance, balance_tree, new_tree, partition_tree
from repro.parallel import run_spmd


class TestMarkElements:
    def test_hits_target_count(self):
        rng = np.random.default_rng(0)
        eta = rng.random(1000)
        levels = np.full(1000, 4)
        res = mark_elements(eta, levels, target=2000, tol=0.1)
        assert abs(res.expected_count - 2000) <= 0.15 * 2000

    def test_coarsening_when_target_below(self):
        rng = np.random.default_rng(1)
        eta = rng.random(1024)
        levels = np.full(1024, 4)
        res = mark_elements(eta, levels, target=600, tol=0.1)
        assert res.coarsen.sum() > 0
        assert res.expected_count < 1024 * 1.05

    def test_level_caps_respected(self):
        eta = np.array([10.0, 10.0, 0.0, 0.0])
        levels = np.array([6, 3, 1, 3])
        res = mark_elements(eta, levels, target=20, max_level=6, min_level=1)
        assert not res.refine[0]  # already at max level
        assert not res.coarsen[2]  # already at min level

    def test_zero_indicator_no_marks(self):
        res = mark_elements(np.zeros(10), np.full(10, 3), target=100)
        assert not res.refine.any() and not res.coarsen.any()

    def test_validation(self):
        with pytest.raises(ValueError):
            mark_elements(np.ones(3), np.ones(4), 10)
        with pytest.raises(ValueError):
            mark_elements(-np.ones(3), np.ones(3), 10)

    def test_parallel_matches_serial(self):
        rng = np.random.default_rng(2)
        eta_g = rng.random(64)
        levels_g = np.full(64, 2)
        ref = mark_elements(eta_g, levels_g, target=150)

        def kernel(comm):
            lo, _ = comm.global_offsets(16)
            res = mark_elements(
                eta_g[lo : lo + 16], levels_g[lo : lo + 16], target=150, comm=comm
            )
            return res.refine_threshold, res.expected_count

        for thr, cnt in run_spmd(4, kernel):
            assert thr == pytest.approx(ref.refine_threshold)
            assert cnt == ref.expected_count


class TestSerialAdaptDriver:
    def test_adapt_counts_and_timings(self):
        mesh = extract_mesh(balance(LinearOctree.uniform(3), "corner").tree)
        c = mesh.element_centers()
        eta = np.exp(-np.linalg.norm(c - 0.5, axis=1) ** 2 / 0.02)
        new_mesh, _, rep = adapt_mesh(mesh, eta, target=700)
        assert rep.n_after == new_mesh.n_elements
        assert rep.n_refined > 0
        assert rep.n_before == 512
        assert set(rep.timings) >= {
            "MarkElements", "CoarsenTree", "RefineTree",
            "BalanceTree", "ExtractMesh", "InterpolateFields",
        }

    def test_field_transfer_preserves_linears(self):
        mesh = extract_mesh(LinearOctree.uniform(2))
        coords = mesh.node_coords()
        T = coords[:, 0] + 2 * coords[:, 2]
        eta = np.linspace(0, 1, mesh.n_elements)
        new_mesh, fields, _ = adapt_mesh(mesh, eta, target=100, fields={"T": T})
        nc = new_mesh.node_coords()
        np.testing.assert_allclose(fields["T"], nc[:, 0] + 2 * nc[:, 2], atol=1e-9)


class TestParAdvectionPInvariance:
    def test_distributed_step_matches_serial(self):
        """The gold test: one explicit SUPG step on P ranks equals the
        serial step, node for node."""
        wind = rotating_velocity(scale=2.0)

        # serial reference
        tree = balance(LinearOctree.uniform(2), "corner").tree
        mesh = extract_mesh(tree)
        centers = mesh.element_centers()
        eq = AdvectionDiffusion(mesh, 1e-4, wind(centers))
        coords = mesh.node_coords()
        T0 = np.sin(np.pi * coords[:, 0]) * np.cos(np.pi * coords[:, 1])
        T_ind = T0[mesh.indep_nodes]
        dt = 1e-3
        T_ref = eq.advance(T_ind, dt, 3)
        ref_map = {}
        from repro.mesh import node_keys

        keys_ref = node_keys(mesh.node_coords_int[mesh.indep_nodes])
        for k, v in zip(keys_ref, T_ref):
            ref_map[int(k)] = v

        def kernel(comm):
            pt = new_tree(comm, 2)
            pt, _, _ = balance_tree(pt, "corner")
            pt, _ = partition_tree(pt)
            pm = extract_parmesh(pt)
            peq = ParAdvectionDiffusion(pm, 1e-4, wind)
            c = pm.mesh.node_coords()
            T0l = np.sin(np.pi * c[:, 0]) * np.cos(np.pi * c[:, 1])
            Tl = T0l[pm.mesh.indep_nodes]
            Tl = peq.advance(Tl, dt, 3)
            ks = node_keys(pm.mesh.node_coords_int[pm.mesh.indep_nodes])
            mine = pm.node_owner[pm.mesh.indep_nodes] == comm.rank
            return ks[mine], Tl[mine]

        for p in [1, 2, 4]:
            out = run_spmd(p, kernel)
            seen = 0
            for ks, vals in out:
                for k, v in zip(ks, vals):
                    assert ref_map[int(k)] == pytest.approx(v, abs=1e-11)
                    seen += 1
            assert seen == len(ref_map)

    def test_cfl_agrees_with_serial(self):
        wind = rotating_velocity(scale=1.0)
        tree = balance(LinearOctree.uniform(2), "corner").tree
        mesh = extract_mesh(tree)
        eq = AdvectionDiffusion(mesh, 1e-4, wind(mesh.element_centers()))
        dt_ref = eq.cfl_dt(0.4)

        def kernel(comm):
            pt = new_tree(comm, 2)
            pm = extract_parmesh(pt)
            return ParAdvectionDiffusion(pm, 1e-4, wind).cfl_dt(0.4)

        for dt in run_spmd(3, kernel):
            assert dt == pytest.approx(dt_ref)


class TestParAmrPipeline:
    @pytest.mark.parametrize("p", [1, 3])
    def test_cycles_run_and_track_target(self, p):
        def kernel(comm):
            pipe = ParAmrPipeline(comm, coarse_level=2, max_level=5)
            pipe.run_cycles(n_cycles=2, steps_per_cycle=3, target=300)
            return (
                pipe.pt.global_count(),
                pipe.adapt_history[-1],
                pipe.timing_breakdown(),
                pipe.amr_fraction(),
            )

        for n, stats, timings, frac in run_spmd(p, kernel):
            assert 100 < n < 1200
            assert stats.n_after == n
            assert stats.n_refined + stats.n_coarsened > 0
            assert "TimeIntegration" in timings and "BalanceTree" in timings
            assert 0.0 < frac < 1.0

    @pytest.mark.parametrize("cycles,steps,target", [(2, 2, 250), (2, 3, 400)])
    def test_p_invariant_global_tree(self, cycles, steps, target):
        """After identical cycles, the distributed tree is identical for
        every rank count.  The (2, 3, 400) case is the formerly P-variant
        regime: it needs both the quantized marking thresholds and
        split-family coarsening to hold at P=3."""

        def kernel(comm):
            pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
            pipe.run_cycles(n_cycles=cycles, steps_per_cycle=steps, target=target)
            from repro.octree import gather_tree

            g = gather_tree(pipe.pt)
            return g.keys.copy(), g.levels.copy()

        ref_keys, ref_levels = run_spmd(1, kernel)[0]
        for p in [2, 3, 4]:
            for keys, levels in run_spmd(p, kernel):
                np.testing.assert_array_equal(keys, ref_keys)
                np.testing.assert_array_equal(levels, ref_levels)

    def test_front_drives_refinement(self):
        def kernel(comm):
            pipe = ParAmrPipeline(comm, coarse_level=2, max_level=5)
            pipe.adapt(target=400)
            # refined elements should concentrate near the front radius
            mesh = pipe.pm.mesh
            owned = pipe.pm.owned_elements
            centers = mesh.element_centers()[owned]
            levels = mesh.leaves.level[owned].astype(float)
            r = np.linalg.norm(
                centers - np.asarray(pipe.workload.front_center), axis=1
            )
            near = np.abs(r - pipe.workload.front_radius) < 0.08
            ln = levels[near].sum() if near.any() else 0.0
            cn = near.sum()
            lf = levels[~near].sum() if (~near).any() else 0.0
            cf = (~near).sum()
            tot = comm.allreduce(np.array([ln, cn, lf, cf]))
            return tot[0] / max(tot[1], 1), tot[2] / max(tot[3], 1)

        for near_avg, far_avg in run_spmd(2, kernel):
            assert near_avg > far_avg
