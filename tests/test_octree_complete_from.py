"""Tests for complete_from (minimal octree completion from seeds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import LinearOctree, OctantArray, ROOT_LEN, complete_from


class TestCompleteFrom:
    def test_empty_gives_root(self):
        t = complete_from(OctantArray.empty())
        assert len(t) == 1
        assert t.is_complete()

    def test_root_seed(self):
        t = complete_from(OctantArray.root())
        assert len(t) == 1

    def test_single_deep_seed(self):
        h = ROOT_LEN >> 4
        seed = OctantArray([0], [0], [0], [4])
        t = complete_from(seed)
        assert t.is_complete()
        # the seed is a leaf of the result
        idx = t.find_containing(np.array([0]), np.array([0]), np.array([0]))[0]
        assert t.levels[idx] == 4
        # minimality: only the ancestor chain was split -> 1 + 7*4 leaves
        assert len(t) == 1 + 7 * 4

    def test_seeds_preserved_as_leaves(self):
        rng = np.random.default_rng(0)
        # pick random disjoint seeds by refining a reference tree
        ref = LinearOctree.uniform(2)
        for _ in range(2):
            ref = ref.refine(rng.random(len(ref)) < 0.2)
        pick = rng.random(len(ref)) < 0.1
        seeds = ref.leaves[pick]
        t = complete_from(seeds)
        assert t.is_complete()
        pos = np.searchsorted(t.keys, seeds.keys())
        np.testing.assert_array_equal(t.keys[pos], seeds.keys())
        np.testing.assert_array_equal(t.levels[pos], seeds.level)

    def test_overlapping_seeds_rejected(self):
        a = OctantArray([0, 0], [0, 0], [0, 0], [1, 2])  # nested
        with pytest.raises(ValueError):
            complete_from(a)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_seed_sets(self, seed):
        rng = np.random.default_rng(seed)
        ref = LinearOctree.uniform(1)
        for _ in range(3):
            ref = ref.refine(rng.random(len(ref)) < 0.3)
        pick = rng.random(len(ref)) < 0.15
        seeds = ref.leaves[pick]
        t = complete_from(seeds)
        assert t.is_complete()
        if len(seeds):
            pos = np.searchsorted(t.keys, seeds.keys())
            np.testing.assert_array_equal(t.levels[pos], seeds.level)
            # minimality: no leaf deeper than the deepest seed
            assert t.levels.max() <= seeds.level.max()
