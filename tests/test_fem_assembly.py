"""Assembly + Poisson patch/convergence tests on adapted meshes."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem import apply_dirichlet, assemble_rhs, assemble_scalar, lumped_mass
from repro.fem.hexops import ElementOps
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance

OPS = ElementOps()


def adapted_mesh(seed=0, rounds=2, start=1, domain=(1.0, 1.0, 1.0)):
    rng = np.random.default_rng(seed)
    tree = LinearOctree.uniform(start)
    for _ in range(rounds):
        tree = tree.refine(rng.random(len(tree)) < 0.3)
    return extract_mesh(balance(tree, "corner").tree, domain)


def solve_poisson(mesh, f_exact, u_exact):
    """Solve -lap u = f with Dirichlet BC from u_exact; return L_inf error
    at independent nodes."""
    sizes = mesh.element_sizes()
    K = assemble_scalar(mesh, OPS.stiffness(sizes))
    coords = mesh.node_coords()
    # consistent load: M f with f sampled nodally (2nd-order accurate)
    Mfull = assemble_scalar(mesh, OPS.mass(sizes), constrain=False)
    b = mesh.Z.T @ (Mfull @ f_exact(coords))
    bdofs = mesh.dof_of_node[np.flatnonzero(mesh.boundary_node_mask())]
    bdofs = np.unique(bdofs[bdofs >= 0])
    uvals = u_exact(coords[mesh.indep_nodes[bdofs]])
    K, b = apply_dirichlet(K, b, bdofs, uvals)
    u = spla.spsolve(K.tocsc(), b)
    return np.abs(u - u_exact(coords[mesh.indep_nodes])).max()


class TestPatch:
    def test_linear_patch_exact_on_adapted_mesh(self):
        """Linear solutions are reproduced exactly, hanging nodes and all
        (the classic patch test for nonconforming constraints)."""
        mesh = adapted_mesh(seed=5)
        err = solve_poisson(
            mesh,
            f_exact=lambda c: np.zeros(len(c)),
            u_exact=lambda c: 2 * c[:, 0] - c[:, 1] + 3 * c[:, 2] + 1,
        )
        assert err < 1e-9

    def test_patch_on_scaled_domain(self):
        mesh = adapted_mesh(seed=2, domain=(8.0, 4.0, 1.0))
        err = solve_poisson(
            mesh,
            f_exact=lambda c: np.zeros(len(c)),
            u_exact=lambda c: 0.5 * c[:, 0] + c[:, 2],
        )
        assert err < 1e-9


class TestConvergence:
    def test_h2_convergence_uniform(self):
        """Manufactured u = sin(pi x) sin(pi y) sin(pi z) converges at
        O(h^2) in the max norm on uniform meshes."""

        def u_exact(c):
            return np.sin(np.pi * c[:, 0]) * np.sin(np.pi * c[:, 1]) * np.sin(np.pi * c[:, 2])

        def f_exact(c):
            return 3 * np.pi**2 * u_exact(c)

        errs = []
        for lvl in (2, 3):
            mesh = extract_mesh(LinearOctree.uniform(lvl))
            errs.append(solve_poisson(mesh, f_exact, u_exact))
        rate = np.log2(errs[0] / errs[1])
        assert 1.6 < rate < 2.6

    def test_adapted_mesh_solution_reasonable(self):
        def u_exact(c):
            return np.sin(np.pi * c[:, 0]) * np.sin(np.pi * c[:, 1]) * np.sin(np.pi * c[:, 2])

        def f_exact(c):
            return 3 * np.pi**2 * u_exact(c)

        mesh = adapted_mesh(seed=1, rounds=2, start=2)
        err = solve_poisson(mesh, f_exact, u_exact)
        assert err < 0.05


class TestLumpedMass:
    def test_total_mass(self):
        mesh = adapted_mesh(seed=3, domain=(2.0, 1.0, 1.0))
        ml = lumped_mass(mesh, OPS.mass(mesh.element_sizes()))
        np.testing.assert_allclose(ml.sum(), 2.0, rtol=1e-12)

    def test_positive(self):
        mesh = adapted_mesh(seed=4)
        ml = lumped_mass(mesh, OPS.mass(mesh.element_sizes()))
        assert ml.min() > 0


class TestRhs:
    def test_constant_load_total(self):
        mesh = adapted_mesh(seed=6)
        load = OPS.mass(mesh.element_sizes()).sum(axis=2)  # int N_i per elem
        b = assemble_rhs(mesh, load)
        # sum over constrained rhs = integral of 1 (Z^T preserves totals
        # since Z rows sum to 1 and column sums distribute)
        np.testing.assert_allclose(b.sum(), 1.0, rtol=1e-12)

    def test_shape_checks(self):
        mesh = adapted_mesh(seed=6)
        with pytest.raises(ValueError):
            assemble_rhs(mesh, np.zeros((3, 8)))
        with pytest.raises(ValueError):
            assemble_scalar(mesh, np.zeros((3, 8, 8)))


class TestDirichletHelper:
    def test_values_and_symmetry(self):
        mesh = extract_mesh(LinearOctree.uniform(1))
        K = assemble_scalar(mesh, OPS.stiffness(mesh.element_sizes()))
        b = np.zeros(mesh.n_independent)
        dofs = np.array([0, 5])
        K2, b2 = apply_dirichlet(K, b, dofs, np.array([1.0, 2.0]))
        assert (abs(K2 - K2.T) > 1e-14).nnz == 0
        x = spla.spsolve(K2.tocsc(), b2)
        assert x[0] == pytest.approx(1.0)
        assert x[5] == pytest.approx(2.0)

    def test_boolean_mask_accepted(self):
        mesh = extract_mesh(LinearOctree.uniform(1))
        K = assemble_scalar(mesh, OPS.stiffness(mesh.element_sizes()))
        mask = np.zeros(mesh.n_independent, dtype=bool)
        mask[3] = True
        K2, _ = apply_dirichlet(K, None, mask)
        assert K2[3, 3] == 1.0
