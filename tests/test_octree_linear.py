"""Unit + property tests for LinearOctree (repro.octree.linear)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import LinearOctree, ROOT_LEN, morton_encode


def random_adapted_tree(rng: np.random.Generator, rounds: int = 3, start_level: int = 1):
    """Refine random leaf subsets a few times: generic complete test tree."""
    tree = LinearOctree.uniform(start_level)
    for _ in range(rounds):
        mask = rng.random(len(tree)) < 0.3
        tree = tree.refine(mask)
    return tree


class TestCompleteness:
    def test_uniform_complete(self):
        for lvl in (0, 1, 2, 3):
            assert LinearOctree.uniform(lvl).is_complete()

    def test_incomplete_detected(self):
        t = LinearOctree.uniform(1)
        broken = LinearOctree(t.leaves[:-1], presorted=True)
        assert not broken.is_complete()

    def test_refine_preserves_completeness(self):
        rng = np.random.default_rng(0)
        tree = random_adapted_tree(rng)
        assert tree.is_complete()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_refinement_complete(self, seed):
        rng = np.random.default_rng(seed)
        tree = random_adapted_tree(rng, rounds=2)
        assert tree.is_complete()
        # leaves strictly increasing in Morton order
        k = tree.keys.astype(object)
        assert np.all(np.diff(k) > 0)


class TestRefineCoarsen:
    def test_refine_none_returns_self(self):
        t = LinearOctree.uniform(1)
        assert t.refine(np.zeros(8, dtype=bool)) is t

    def test_refine_counts(self):
        t = LinearOctree.uniform(1)
        mask = np.zeros(8, dtype=bool)
        mask[2] = True
        t2 = t.refine(mask)
        assert len(t2) == 7 + 8

    def test_mask_length_checked(self):
        t = LinearOctree.uniform(1)
        with pytest.raises(ValueError):
            t.refine(np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            t.coarsen(np.zeros(3, dtype=bool))

    def test_coarsen_full_family(self):
        t = LinearOctree.uniform(2)  # 64 leaves, 8 families
        mask = np.zeros(64, dtype=bool)
        mask[:8] = True  # first family (contiguous in Morton order)
        t2, nfam = t.coarsen(mask)
        assert nfam == 1
        assert len(t2) == 64 - 8 + 1
        assert t2.is_complete()

    def test_coarsen_partial_family_ignored(self):
        t = LinearOctree.uniform(2)
        mask = np.zeros(64, dtype=bool)
        mask[:7] = True  # 7 of 8 siblings
        t2, nfam = t.coarsen(mask)
        assert nfam == 0
        assert t2 is t

    def test_coarsen_mixed_levels_not_a_family(self):
        t = LinearOctree.uniform(1)
        mask = np.zeros(8, dtype=bool)
        mask[0] = True
        t = t.refine(mask)  # leaves: 8 fine + 7 coarse
        # mark everything; only the 8 fine siblings form a family
        t2, nfam = t.coarsen(np.ones(len(t), dtype=bool))
        assert nfam == 1
        assert len(t2) == 8
        assert t2.is_complete()

    def test_coarsen_refine_roundtrip(self):
        rng = np.random.default_rng(42)
        tree = random_adapted_tree(rng)
        n = len(tree)
        mask = np.zeros(n, dtype=bool)
        mask[n // 3] = True
        fine = tree.refine(mask)
        # coarsen exactly the new children back
        back, nfam = fine.coarsen(fine.levels > tree.levels.max())
        assert back.is_complete()

    def test_coarsen_root_level_guard(self):
        t = LinearOctree.uniform(0)
        t2, nfam = t.coarsen(np.ones(1, dtype=bool))
        assert nfam == 0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_coarsen_preserves_completeness(self, seed):
        rng = np.random.default_rng(seed)
        tree = random_adapted_tree(rng, rounds=2)
        mask = rng.random(len(tree)) < 0.7
        t2, _ = tree.coarsen(mask)
        assert t2.is_complete()


class TestQueries:
    def test_find_containing_uniform(self):
        t = LinearOctree.uniform(1)
        h = ROOT_LEN // 2
        idx = t.find_containing(
            np.array([0, h, 0]), np.array([0, 0, h]), np.array([0, 0, 0])
        )
        # anchor points map to leaves 0, 1 (x-neighbor), 2 (y-neighbor)
        assert idx[0] == 0
        assert t.leaves.x[idx[1]] == h and t.leaves.y[idx[1]] == 0
        assert t.leaves.y[idx[2]] == h

    def test_every_center_found_in_own_leaf(self):
        rng = np.random.default_rng(7)
        tree = random_adapted_tree(rng)
        h = tree.leaves.lengths()
        idx = tree.find_containing(
            tree.leaves.x + h // 2, tree.leaves.y + h // 2, tree.leaves.z + h // 2
        )
        np.testing.assert_array_equal(idx, np.arange(len(tree)))

    def test_contains_points(self):
        t = LinearOctree.uniform(1)
        pk = morton_encode(np.array([0]), np.array([0]), np.array([0]))
        assert t.contains_points(np.array([0]), pk)[0]
        assert not t.contains_points(np.array([1]), pk)[0]

    def test_level_histogram(self):
        t = LinearOctree.uniform(1)
        mask = np.zeros(8, dtype=bool)
        mask[0] = True
        t = t.refine(mask)
        assert t.level_histogram() == {1: 7, 2: 8}


class TestRefineBy:
    def test_refine_to_target_levels(self):
        t = LinearOctree.uniform(1)
        target = np.full(8, 1, dtype=np.int64)
        target[0] = 3
        t2 = t.refine_by(target)
        assert t2.is_complete()
        assert t2.levels.max() == 3
        hist = t2.level_histogram()
        assert hist[3] >= 8
