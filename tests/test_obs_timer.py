"""Phase-timer semantics: nesting, reentrancy, thread-local binding,
CommStats delta attribution, disabled-mode behavior, and the cross-rank
imbalance reduction."""

import threading

import numpy as np
import pytest

from repro import obs
from repro.obs.timer import PhaseTimer
from repro.parallel import run_spmd


@pytest.fixture(autouse=True)
def _unbound():
    """Every test starts and ends with timing disabled on this thread."""
    obs.disable()
    yield
    obs.disable()


# -- nesting / reentrancy ----------------------------------------------------


def test_nested_phases_compose_paths():
    timer = obs.enable()
    with obs.phase("stokes"):
        with obs.phase("assemble"):
            pass
        with obs.phase("minres"):
            pass
    res = timer.results()
    assert set(res) == {"stokes", "stokes/assemble", "stokes/minres"}
    assert res["stokes"]["count"] == 1
    assert res["stokes/assemble"]["count"] == 1


def test_reentering_same_phase_accumulates_one_record():
    timer = obs.enable()
    for _ in range(5):  # lint: allow-loop (test repetition)
        with obs.phase("amr"):
            pass
    res = timer.results()
    assert res["amr"]["count"] == 5
    assert res["amr"]["wall_s"] >= 0.0


def test_recursive_reentry_nests_paths():
    timer = obs.enable()

    def recurse(depth):
        if depth == 0:
            return
        with obs.phase("f"):
            recurse(depth - 1)

    recurse(3)
    res = timer.results()
    assert set(res) == {"f", "f/f", "f/f/f"}
    assert all(res[p]["count"] == 1 for p in res)


def test_self_time_excludes_children():
    timer = obs.enable()
    with obs.phase("outer"):
        with obs.phase("inner"):
            x = 0.0
        for _ in range(1000):  # lint: allow-loop (burn a little wall time)
            x += 1.0
    res = timer.results()
    outer, inner = res["outer"], res["outer/inner"]
    assert outer["wall_s"] >= inner["wall_s"]
    assert outer["self_s"] == pytest.approx(outer["wall_s"] - inner["wall_s"])


def test_open_phase_not_reported_until_exit():
    timer = obs.enable()
    ctx = obs.phase("open")
    ctx.__enter__()
    assert "open" not in timer.results()
    ctx.__exit__(None, None, None)
    assert "open" in timer.results()


def test_exception_still_closes_phase():
    timer = obs.enable()
    with pytest.raises(ValueError):
        with obs.phase("risky"):
            raise ValueError("boom")
    assert timer.results()["risky"]["count"] == 1
    # the stack unwound: a new phase is top-level, not "risky/next"
    with obs.phase("next"):
        pass
    assert "next" in timer.results()


# -- counters ----------------------------------------------------------------


def test_counter_attaches_to_innermost_open_phase():
    timer = obs.enable()
    with obs.phase("stokes"):
        with obs.phase("minres"):
            obs.counter("iterations", 7)
        obs.counter("picard", 1)
    res = timer.results()
    assert res["stokes/minres"]["counters"] == {"iterations": 7}
    assert res["stokes"]["counters"] == {"picard": 1}


def test_counter_outside_any_phase_lands_on_timer_level_record():
    timer = obs.enable()
    obs.counter("orphan", 3)
    obs.counter("orphan", 2)
    assert timer.results()[""]["counters"] == {"orphan": 5}


# -- disabled mode -----------------------------------------------------------


def test_disabled_phase_is_shared_noop_singleton():
    assert obs.active() is None
    assert obs.phase("a") is obs.phase("b") is obs.NULL_PHASE
    with obs.phase("ignored"):
        obs.counter("ignored", 10)  # must not raise, must not record


def test_enable_disable_roundtrip():
    timer = obs.enable()
    assert obs.active() is timer
    assert obs.disable() is timer
    assert obs.active() is None
    assert obs.disable() is None


def test_attached_restores_previous_binding():
    outer = obs.enable()
    inner = PhaseTimer()
    with obs.attached(inner):
        assert obs.active() is inner
        with obs.phase("x"):
            pass
    assert obs.active() is outer
    assert "x" in inner.results()
    assert "x" not in outer.results()


def test_binding_is_thread_local():
    timer = obs.enable()
    seen = {}

    def worker():
        seen["active"] = obs.active()
        with obs.phase("w"):
            pass

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert seen["active"] is None  # other thread never saw our timer
    assert "w" not in timer.results()


def test_record_events_false_skips_timeline():
    timer = obs.enable(record_events=False)
    with obs.phase("p"):
        pass
    assert timer.events == []
    assert "p" in timer.results()


def test_event_cap_counts_drops():
    timer = PhaseTimer(max_events=3)
    with obs.attached(timer):
        for _ in range(5):  # lint: allow-loop (exceed the event cap)
            with obs.phase("e"):
                pass
    assert len(timer.events) == 3
    assert timer.events_dropped == 2
    assert timer.results()["e"]["count"] == 5  # records unaffected


# -- CommStats attribution ---------------------------------------------------


def test_comm_deltas_attributed_to_innermost_phase_chain():
    def kernel(comm):
        timer = obs.enable(comm)
        with obs.phase("outer"):
            comm.allreduce(np.float64(1.0))
            with obs.phase("inner"):
                comm.allreduce(np.float64(2.0))
                comm.allreduce(np.float64(3.0))
            comm.allreduce(np.float64(4.0))
        obs.disable()
        return timer.results()

    per_rank = run_spmd(2, kernel)
    for res in per_rank:  # lint: allow-loop (per-rank assertions)
        # inclusive: outer sees all 4 collectives, inner exactly 2
        assert res["outer"]["collective_calls"] == 4
        assert res["outer/inner"]["collective_calls"] == 2
        assert res["outer/inner"]["collective_bytes"] == 16


def test_p2p_attribution_with_interleaved_phases():
    def kernel(comm):
        timer = obs.enable(comm)
        other = 1 - comm.rank
        payload = np.arange(4, dtype=np.float64)
        with obs.phase("talk"):
            comm.send(payload, other)
            comm.recv(other)
        with obs.phase("quiet"):
            pass
        obs.disable()
        return timer.results()

    per_rank = run_spmd(2, kernel)
    for res in per_rank:  # lint: allow-loop (per-rank assertions)
        assert res["talk"]["p2p_messages"] == 1  # sends counted at sender
        assert res["talk"]["p2p_bytes"] == 32
        assert res["quiet"]["p2p_messages"] == 0
        assert res["quiet"]["collective_calls"] == 0


def test_timer_reduce_is_collective_and_replicated():
    def kernel(comm):
        timer = obs.enable(comm)
        with obs.phase("work"):
            comm.allreduce(1)
        obs.disable()
        return timer.reduce()

    reduced = run_spmd(2, kernel)
    assert reduced[0] == reduced[1]
    assert reduced[0]["work"]["ranks_present"] == 2


def test_reduce_without_comm_returns_none():
    assert PhaseTimer().reduce() is None


# -- imbalance reduction -----------------------------------------------------


def _rank_result(wall, counters=None):
    return {
        "slow": {
            "count": 1,
            "wall_s": wall,
            "self_s": wall,
            "p2p_messages": 0,
            "p2p_bytes": 0,
            "collective_calls": 0,
            "collective_bytes": 0,
            "flops": 0.0,
            "counters": dict(counters or {}),
        }
    }


def test_imbalance_min_median_max_sum():
    per_rank = [_rank_result(w) for w in (1.0, 2.0, 3.0, 10.0)]
    stats = obs.imbalance(per_rank)["slow"]
    assert stats["wall_s"] == {"min": 1.0, "median": 2.5, "max": 10.0, "sum": 16.0}
    assert stats["imbalance"] == pytest.approx(10.0 / 2.5)
    assert stats["ranks_present"] == 4
    assert stats["count"] == 4


def test_imbalance_missing_rank_contributes_zero():
    per_rank = [_rank_result(2.0), {}]
    stats = obs.imbalance(per_rank)["slow"]
    assert stats["wall_s"]["min"] == 0
    assert stats["wall_s"]["max"] == 2.0
    assert stats["ranks_present"] == 1


def test_imbalance_sums_counters_across_ranks():
    per_rank = [
        _rank_result(1.0, {"refined": 3}),
        _rank_result(1.0, {"refined": 5, "coarsened": 2}),
    ]
    stats = obs.imbalance(per_rank)["slow"]
    assert stats["counters"] == {"refined": 8, "coarsened": 2}
