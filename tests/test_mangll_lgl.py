"""Tests for LGL operators and the derivative kernels."""

import numpy as np
import pytest

from repro.mangll import (
    DerivativeKernel,
    diff_matrix,
    lagrange_basis_at,
    lagrange_matrix,
    lgl_nodes,
    matrix_flops,
    tensor_flops,
)


class TestLglNodes:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_endpoints_and_symmetry(self, p):
        x, w = lgl_nodes(p)
        assert len(x) == p + 1
        assert x[0] == -1.0 and x[-1] == 1.0
        np.testing.assert_allclose(x, -x[::-1], atol=1e-13)
        np.testing.assert_allclose(w, w[::-1], atol=1e-13)

    @pytest.mark.parametrize("p", [1, 2, 3, 6])
    def test_weights_sum_to_two(self, p):
        _, w = lgl_nodes(p)
        np.testing.assert_allclose(w.sum(), 2.0, rtol=1e-13)

    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_quadrature_exactness(self, p):
        """LGL is exact for polynomials of degree 2p - 1."""
        x, w = lgl_nodes(p)
        for deg in range(2 * p):
            exact = 2.0 / (deg + 1) if deg % 2 == 0 else 0.0
            np.testing.assert_allclose((w * x**deg).sum(), exact, atol=1e-12)

    def test_p2_known_values(self):
        x, w = lgl_nodes(2)
        np.testing.assert_allclose(x, [-1, 0, 1])
        np.testing.assert_allclose(w, [1 / 3, 4 / 3, 1 / 3])

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            lgl_nodes(0)


class TestDiffMatrix:
    @pytest.mark.parametrize("p", [1, 3, 5, 8])
    def test_exact_on_polynomials(self, p):
        x, _ = lgl_nodes(p)
        D = diff_matrix(x)
        for deg in range(p + 1):
            u = x**deg
            du = deg * x ** max(deg - 1, 0) if deg > 0 else np.zeros_like(x)
            np.testing.assert_allclose(D @ u, du, atol=1e-10)

    def test_constant_row_sums(self):
        x, _ = lgl_nodes(4)
        np.testing.assert_allclose(diff_matrix(x).sum(axis=1), 0.0, atol=1e-12)


class TestLagrange:
    def test_interpolation_identity(self):
        x, _ = lgl_nodes(3)
        M = lagrange_matrix(x, x)
        np.testing.assert_allclose(M, np.eye(4), atol=1e-12)

    def test_interpolation_exact_for_polynomials(self):
        x, _ = lgl_nodes(3)
        pts = np.linspace(-1, 1, 11)
        M = lagrange_basis_at(x, pts)
        u = 2 * x**3 - x + 0.5
        np.testing.assert_allclose(M @ u, 2 * pts**3 - pts + 0.5, atol=1e-12)

    def test_partition_of_unity(self):
        x, _ = lgl_nodes(5)
        M = lagrange_basis_at(x, np.linspace(-1, 1, 7))
        np.testing.assert_allclose(M.sum(axis=1), 1.0, atol=1e-12)


class TestDerivativeKernel:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_variants_agree(self, p):
        kern = DerivativeKernel(p)
        rng = np.random.default_rng(0)
        u = rng.standard_normal((5, (p + 1) ** 3))
        for a, b in zip(kern.gradient_matrix(u), kern.gradient_tensor(u)):
            np.testing.assert_allclose(a, b, atol=1e-11)

    def test_gradient_exact_on_trilinear(self):
        p = 3
        kern = DerivativeKernel(p)
        g = kern.nodes
        T, S, R = np.meshgrid(g, g, g, indexing="ij")
        u = (2 * R + 3 * S - S * T).ravel()[None, :]
        dr, ds, dt = kern.gradient_tensor(u)
        np.testing.assert_allclose(dr[0], 2.0, atol=1e-11)
        np.testing.assert_allclose(ds[0], (3 - T).ravel(), atol=1e-11)
        np.testing.assert_allclose(dt[0], (-S).ravel(), atol=1e-11)

    def test_flop_counts(self):
        assert matrix_flops(4) == 6 * 5**6
        assert tensor_flops(4) == 6 * 5**4
        kern = DerivativeKernel(2)
        assert kern.flops("matrix", 10) == 10 * 6 * 3**6
        assert kern.flops("tensor", 10) == 10 * 6 * 3**4

    def test_flop_ratio_at_p6(self):
        """Paper: at p = 6 the tensor variant does ~20x fewer flops."""
        ratio = matrix_flops(6) / tensor_flops(6)
        assert ratio == pytest.approx(49.0)  # (p+1)^2
        # the paper's "20 times fewer" counts the full operator; the
        # element derivative alone is (p+1)^2 = 49x

    def test_unknown_variant(self):
        kern = DerivativeKernel(1)
        with pytest.raises(ValueError):
            kern.gradient(np.zeros((1, 8)), "quantum")
        with pytest.raises(ValueError):
            kern.flops("quantum", 1)
