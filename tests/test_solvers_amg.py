"""Tests for smoothed-aggregation AMG."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem import apply_dirichlet, assemble_scalar
from repro.fem.hexops import ElementOps
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.solvers import SmoothedAggregationAMG, aggregate, strength_graph

OPS = ElementOps()


def laplace_7pt(n):
    """Standard 7-point Laplacian on an n^3 grid (the Fig. 9 reference)."""
    e = np.ones(n)
    T = sp.diags([-e[:-1], 2 * e, -e[:-1]], [-1, 0, 1])
    I = sp.identity(n)
    return sp.csr_matrix(
        sp.kron(sp.kron(T, I), I) + sp.kron(sp.kron(I, T), I) + sp.kron(sp.kron(I, I), T)
    )


def poisson_fem(level=3, viscosity_contrast=1.0, seed=0):
    """Variable-coefficient FEM Poisson on an adapted mesh with Dirichlet
    boundary (the actual preconditioner block of the Stokes solver)."""
    rng = np.random.default_rng(seed)
    tree = LinearOctree.uniform(level)
    tree = tree.refine(rng.random(len(tree)) < 0.2)
    tree = balance(tree, "corner").tree
    mesh = extract_mesh(tree)
    eta = np.exp(rng.uniform(0, np.log(viscosity_contrast + 1e-300), mesh.n_elements)) \
        if viscosity_contrast > 1 else np.ones(mesh.n_elements)
    K = assemble_scalar(mesh, OPS.stiffness(mesh.element_sizes(), eta))
    bdofs = mesh.dof_of_node[np.flatnonzero(mesh.boundary_node_mask())]
    bdofs = np.unique(bdofs[bdofs >= 0])
    K, _ = apply_dirichlet(K, None, bdofs)
    return sp.csr_matrix(K)


class TestStrengthAndAggregation:
    def test_strength_graph_symmetric_no_diag(self):
        A = laplace_7pt(5)
        S = strength_graph(A, 0.1)
        assert (abs(S - S.T)).nnz == 0
        assert S.diagonal().sum() == 0

    def test_aggregate_covers_all_nodes(self):
        A = laplace_7pt(6)
        S = strength_graph(A, 0.1)
        agg, n_agg = aggregate(S)
        assert agg.min() >= 0
        assert agg.max() == n_agg - 1
        assert 1 < n_agg < A.shape[0]

    def test_aggregates_nontrivial_size(self):
        A = laplace_7pt(8)
        agg, n_agg = aggregate(strength_graph(A, 0.1))
        # SA on a 7-pt stencil should coarsen by roughly 8-27x
        assert A.shape[0] / n_agg > 3


class TestHierarchy:
    def test_multiple_levels(self):
        amg = SmoothedAggregationAMG(laplace_7pt(10), max_coarse=30)
        assert amg.n_levels >= 3
        sizes = amg.grid_sizes()
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))
        assert sizes[-1] <= 30 or amg.n_levels == 20

    def test_operator_complexity_bounded(self):
        amg = SmoothedAggregationAMG(laplace_7pt(10))
        assert 1.0 <= amg.operator_complexity < 3.5


class TestVcycle:
    def test_vcycle_is_symmetric_operator(self):
        """Symmetry of the V-cycle (needed for MINRES preconditioning)."""
        A = laplace_7pt(5)
        amg = SmoothedAggregationAMG(A, max_coarse=20)
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((2, A.shape[0]))
        lhs = x @ amg.vcycle(y)
        rhs = y @ amg.vcycle(x)
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_vcycle_positive_definite(self):
        A = laplace_7pt(4)
        amg = SmoothedAggregationAMG(A, max_coarse=10)
        rng = np.random.default_rng(1)
        for _ in range(5):
            r = rng.standard_normal(A.shape[0])
            assert r @ amg.vcycle(r) > 0

    def test_solve_laplace(self):
        A = laplace_7pt(8)
        amg = SmoothedAggregationAMG(A)
        b = np.ones(A.shape[0])
        x, its, ok = amg.solve(b, tol=1e-8, maxiter=60)
        assert ok
        assert np.linalg.norm(b - A @ x) <= 1e-7 * np.linalg.norm(b)

    def test_convergence_factor_bounded(self):
        """V-cycle iteration count grows slowly (bounded factor) as the
        grid refines — the property behind Fig. 2's flat iteration
        counts."""
        its = []
        for n in (6, 12):
            A = laplace_7pt(n)
            amg = SmoothedAggregationAMG(A)
            _, k, ok = amg.solve(np.ones(A.shape[0]), tol=1e-8, maxiter=100)
            assert ok
            its.append(k)
        assert its[1] <= its[0] + 10

    def test_variable_viscosity_fem_poisson(self):
        """AMG handles the adapted-mesh, 10^4-contrast coefficient Poisson
        block (the hard case the paper highlights)."""
        A = poisson_fem(level=2, viscosity_contrast=1e4, seed=3)
        amg = SmoothedAggregationAMG(A)
        b = np.ones(A.shape[0])
        x, its, ok = amg.solve(b, tol=1e-8, maxiter=100)
        assert ok
        assert its < 60

    def test_zero_rhs(self):
        A = laplace_7pt(4)
        amg = SmoothedAggregationAMG(A)
        x, its, ok = amg.solve(np.zeros(A.shape[0]))
        assert ok and its == 0
        np.testing.assert_array_equal(x, 0.0)

    def test_tiny_matrix_direct(self):
        A = sp.csr_matrix(np.diag([2.0, 3.0]))
        amg = SmoothedAggregationAMG(A, max_coarse=10)
        np.testing.assert_allclose(amg.vcycle(np.array([2.0, 3.0])), [1.0, 1.0])


class TestVectorizedAggregation:
    """The vectorized aggregation (parallel-MIS pass 1, argmax-weight
    pass 2) against the sequential reference."""

    def _valid_partition(self, S, agg, n_agg):
        n = S.shape[0]
        assert agg.shape == (n,)
        assert agg.min() >= 0 and agg.max() == n_agg - 1
        assert len(np.unique(agg)) == n_agg  # no empty aggregates

    @pytest.mark.parametrize("m", [6, 10])
    def test_valid_partition_model_poisson(self, m):
        from repro.solvers import aggregate_reference

        S = strength_graph(laplace_7pt(m), 0.08)
        agg, n_agg = aggregate(S)
        self._valid_partition(S, agg, n_agg)
        _, n_ref = aggregate_reference(S)
        # quality pin: the vectorized pass must coarsen at least as
        # aggressively as the sequential greedy (fewer, larger aggregates)
        # while keeping aggregates within the sane SA size band
        assert n_agg <= n_ref
        assert S.shape[0] / n_agg >= 3

    def test_valid_partition_random_graphs(self):
        rng = np.random.default_rng(3)
        for n, d in ((100, 4), (700, 8)):
            rows = np.repeat(np.arange(n), d)
            cols = rng.integers(0, n, n * d)
            G = sp.csr_matrix((np.ones(n * d), (rows, cols)), shape=(n, n))
            G = sp.csr_matrix(((G + G.T) > 0).astype(float))
            G.setdiag(0)
            G.eliminate_zeros()
            agg, n_agg = aggregate(sp.csr_matrix(G))
            self._valid_partition(G, agg, n_agg)

    def test_empty_graph_all_singletons(self):
        from repro.solvers import aggregate_reference

        S = sp.csr_matrix((7, 7))
        agg, n_agg = aggregate(S)
        agg_r, n_r = aggregate_reference(S)
        assert n_agg == n_r == 7
        assert np.array_equal(agg, agg_r)

    def test_pass1_roots_have_disjoint_neighborhoods(self):
        """Parallel-MIS roots are pairwise at distance >= 3, so no node is
        claimed by two roots: every aggregate from pass 1 is a star."""
        S = strength_graph(laplace_7pt(8), 0.08)
        agg, n_agg = aggregate(S)
        # every member of an aggregate is the root or adjacent to it:
        # aggregate diameter <= 2 for star-shaped pass-1 aggregates, and
        # pass-2/3 members are adjacent to an assigned member, so every
        # aggregate stays connected in S + I
        for a in range(min(n_agg, 50)):
            members = np.flatnonzero(agg == a)
            sub = S[members][:, members]
            nc = sp.csgraph.connected_components(sub + sp.eye(len(members)))[0]
            assert nc == 1

    def test_pass2_prefers_most_connected_aggregate(self):
        """A straggler with 1 strong link to aggregate A and 2 to
        aggregate B must join B (argmax of strong-connection weight),
        where the sequential reference just took the first hit."""
        # priorities pin roots 0 and 2 in pass 1, giving stars {0, 1}
        # (agg A) and {2, 3, 4} (agg B); node 5 has decided neighbors but
        # no adjacent root, so it survives as a pass-2 straggler with one
        # link into A (via 1) and two into B (via 3, 4)
        edges = [(0, 1), (2, 3), (2, 4), (5, 1), (5, 3), (5, 4)]
        rows = [e[0] for e in edges] + [e[1] for e in edges]
        cols = [e[1] for e in edges] + [e[0] for e in edges]
        S = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(6, 6))
        agg, n_agg = aggregate(S, prio=np.array([0.0, 5.0, 1.0, 4.0, 3.0, 2.0]))
        assert n_agg == 2
        assert agg[0] == agg[1]
        assert agg[2] == agg[3] == agg[4]
        assert agg[1] != agg[3]
        assert agg[5] == agg[3]  # argmax weight: B (2 links) over A (1)

    def test_pass2_reference_takes_first_hit(self):
        """Documents the behavior the argmax pass 2 replaces: the
        sequential reference attaches a straggler to the aggregate of its
        first assigned neighbor regardless of connection weight."""
        from repro.solvers import aggregate_reference

        edges = [(0, 1), (2, 3), (2, 4), (5, 1), (5, 3), (5, 4)]
        rows = [e[0] for e in edges] + [e[1] for e in edges]
        cols = [e[1] for e in edges] + [e[0] for e in edges]
        S = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(6, 6))
        agg, n_agg = aggregate_reference(S)
        assert agg[5] == agg[1]  # first hit, despite 2 links into B

    def test_legacy_toggles_restore(self):
        import repro.solvers.amg as amg_mod
        from repro.solvers import legacy_aggregation, legacy_smoother

        assert amg_mod.USE_VECTORIZED_AGGREGATION
        with legacy_aggregation():
            assert not amg_mod.USE_VECTORIZED_AGGREGATION
            amg = SmoothedAggregationAMG(laplace_7pt(6))
            assert amg.n_levels >= 2
        assert amg_mod.USE_VECTORIZED_AGGREGATION
        assert amg_mod.USE_FACTORIZED_SMOOTHER
        with legacy_smoother():
            amg = SmoothedAggregationAMG(laplace_7pt(6))
            b = np.ones(6**3)
            x, it, conv = amg.solve(b, tol=1e-8)
            assert conv
        assert amg_mod.USE_FACTORIZED_SMOOTHER

    def test_smoother_paths_agree(self):
        """Factorized triangular solves must reproduce the per-sweep
        spsolve_triangular smoother to solver accuracy."""
        from repro.solvers import legacy_smoother

        A = laplace_7pt(6)
        b = np.sin(np.arange(A.shape[0]))
        amg_fast = SmoothedAggregationAMG(A)
        with legacy_smoother():
            amg_slow = SmoothedAggregationAMG(A)
        z_fast = amg_fast.vcycle(b)
        z_slow = amg_slow.vcycle(b)
        np.testing.assert_allclose(z_fast, z_slow, rtol=1e-10, atol=1e-12)
