"""Tests for smoothed-aggregation AMG."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem import apply_dirichlet, assemble_scalar
from repro.fem.hexops import ElementOps
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.solvers import SmoothedAggregationAMG, aggregate, strength_graph

OPS = ElementOps()


def laplace_7pt(n):
    """Standard 7-point Laplacian on an n^3 grid (the Fig. 9 reference)."""
    e = np.ones(n)
    T = sp.diags([-e[:-1], 2 * e, -e[:-1]], [-1, 0, 1])
    I = sp.identity(n)
    return sp.csr_matrix(
        sp.kron(sp.kron(T, I), I) + sp.kron(sp.kron(I, T), I) + sp.kron(sp.kron(I, I), T)
    )


def poisson_fem(level=3, viscosity_contrast=1.0, seed=0):
    """Variable-coefficient FEM Poisson on an adapted mesh with Dirichlet
    boundary (the actual preconditioner block of the Stokes solver)."""
    rng = np.random.default_rng(seed)
    tree = LinearOctree.uniform(level)
    tree = tree.refine(rng.random(len(tree)) < 0.2)
    tree = balance(tree, "corner").tree
    mesh = extract_mesh(tree)
    eta = np.exp(rng.uniform(0, np.log(viscosity_contrast + 1e-300), mesh.n_elements)) \
        if viscosity_contrast > 1 else np.ones(mesh.n_elements)
    K = assemble_scalar(mesh, OPS.stiffness(mesh.element_sizes(), eta))
    bdofs = mesh.dof_of_node[np.flatnonzero(mesh.boundary_node_mask())]
    bdofs = np.unique(bdofs[bdofs >= 0])
    K, _ = apply_dirichlet(K, None, bdofs)
    return sp.csr_matrix(K)


class TestStrengthAndAggregation:
    def test_strength_graph_symmetric_no_diag(self):
        A = laplace_7pt(5)
        S = strength_graph(A, 0.1)
        assert (abs(S - S.T)).nnz == 0
        assert S.diagonal().sum() == 0

    def test_aggregate_covers_all_nodes(self):
        A = laplace_7pt(6)
        S = strength_graph(A, 0.1)
        agg, n_agg = aggregate(S)
        assert agg.min() >= 0
        assert agg.max() == n_agg - 1
        assert 1 < n_agg < A.shape[0]

    def test_aggregates_nontrivial_size(self):
        A = laplace_7pt(8)
        agg, n_agg = aggregate(strength_graph(A, 0.1))
        # SA on a 7-pt stencil should coarsen by roughly 8-27x
        assert A.shape[0] / n_agg > 3


class TestHierarchy:
    def test_multiple_levels(self):
        amg = SmoothedAggregationAMG(laplace_7pt(10), max_coarse=30)
        assert amg.n_levels >= 3
        sizes = amg.grid_sizes()
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))
        assert sizes[-1] <= 30 or amg.n_levels == 20

    def test_operator_complexity_bounded(self):
        amg = SmoothedAggregationAMG(laplace_7pt(10))
        assert 1.0 <= amg.operator_complexity < 3.5


class TestVcycle:
    def test_vcycle_is_symmetric_operator(self):
        """Symmetry of the V-cycle (needed for MINRES preconditioning)."""
        A = laplace_7pt(5)
        amg = SmoothedAggregationAMG(A, max_coarse=20)
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((2, A.shape[0]))
        lhs = x @ amg.vcycle(y)
        rhs = y @ amg.vcycle(x)
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_vcycle_positive_definite(self):
        A = laplace_7pt(4)
        amg = SmoothedAggregationAMG(A, max_coarse=10)
        rng = np.random.default_rng(1)
        for _ in range(5):
            r = rng.standard_normal(A.shape[0])
            assert r @ amg.vcycle(r) > 0

    def test_solve_laplace(self):
        A = laplace_7pt(8)
        amg = SmoothedAggregationAMG(A)
        b = np.ones(A.shape[0])
        x, its, ok = amg.solve(b, tol=1e-8, maxiter=60)
        assert ok
        assert np.linalg.norm(b - A @ x) <= 1e-7 * np.linalg.norm(b)

    def test_convergence_factor_bounded(self):
        """V-cycle iteration count grows slowly (bounded factor) as the
        grid refines — the property behind Fig. 2's flat iteration
        counts."""
        its = []
        for n in (6, 12):
            A = laplace_7pt(n)
            amg = SmoothedAggregationAMG(A)
            _, k, ok = amg.solve(np.ones(A.shape[0]), tol=1e-8, maxiter=100)
            assert ok
            its.append(k)
        assert its[1] <= its[0] + 10

    def test_variable_viscosity_fem_poisson(self):
        """AMG handles the adapted-mesh, 10^4-contrast coefficient Poisson
        block (the hard case the paper highlights)."""
        A = poisson_fem(level=2, viscosity_contrast=1e4, seed=3)
        amg = SmoothedAggregationAMG(A)
        b = np.ones(A.shape[0])
        x, its, ok = amg.solve(b, tol=1e-8, maxiter=100)
        assert ok
        assert its < 60

    def test_zero_rhs(self):
        A = laplace_7pt(4)
        amg = SmoothedAggregationAMG(A)
        x, its, ok = amg.solve(np.zeros(A.shape[0]))
        assert ok and its == 0
        np.testing.assert_array_equal(x, 0.0)

    def test_tiny_matrix_direct(self):
        A = sp.csr_matrix(np.diag([2.0, 3.0]))
        amg = SmoothedAggregationAMG(A, max_coarse=10)
        np.testing.assert_allclose(amg.vcycle(np.array([2.0, 3.0])), [1.0, 1.0])
