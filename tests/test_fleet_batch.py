"""Tests for batched MINRES and lockstep batched-vs-serial parity."""

import numpy as np
import pytest

from repro.fleet import FleetService, ScenarioSpec, batched_minres
from repro.fleet.batch import BatchGroup
from repro.rhea.convection import MantleConvection
from repro.solvers import minres


def random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    w = rng.uniform(0.5, 5.0, n)
    return Q @ np.diag(w) @ Q.T


class TestBatchedMinres:
    def test_matches_serial_per_column(self):
        """Each column of the batched recurrence is the serial
        Paige-Saunders recurrence: identical iterations, same solution."""
        n, nb = 40, 5
        A = random_spd(n, seed=1)
        B = np.random.default_rng(2).standard_normal((n, nb))
        res = batched_minres(A, B, tol=1e-10)
        assert res.converged.all()
        for j in range(nb):
            ser = minres(A, B[:, j], tol=1e-10)
            assert res.iterations[j] == ser.iterations
            np.testing.assert_allclose(res.X[:, j], ser.x, atol=1e-9)

    def test_per_column_tolerances(self):
        n, nb = 40, 4
        A = random_spd(n, seed=3)
        B = np.random.default_rng(4).standard_normal((n, nb))
        tol = np.array([1e-2, 1e-6, 1e-10, 1e-4])
        res = batched_minres(A, B, tol=tol)
        assert res.converged.all()
        # looser columns stop strictly earlier than the tightest one
        assert res.iterations[0] < res.iterations[2]
        assert res.iterations[3] < res.iterations[2]

    def test_masked_zero_column_frozen_bitwise(self):
        """A zero rhs/guess column — the finished-tenant mask — converges
        at iteration 0 and is never written to."""
        n, nb = 30, 3
        A = random_spd(n, seed=5)
        B = np.random.default_rng(6).standard_normal((n, nb))
        B[:, 1] = 0.0
        res = batched_minres(A, B, tol=1e-10)
        assert res.converged.all()
        assert res.iterations[1] == 0
        np.testing.assert_array_equal(res.X[:, 1], 0.0)
        # the live columns are unperturbed by the masked one
        for j in (0, 2):
            np.testing.assert_allclose(
                res.X[:, j], minres(A, B[:, j], tol=1e-10).x, atol=1e-9
            )

    def test_warm_start_column_converges_immediately(self):
        n, nb = 25, 2
        A = random_spd(n, seed=7)
        X = np.random.default_rng(8).standard_normal((n, nb))
        B = A @ X
        X0 = np.zeros((n, nb))
        X0[:, 1] = X[:, 1]
        res = batched_minres(A, B, X0=X0, tol=1e-8)
        assert res.iterations[1] == 0
        np.testing.assert_array_equal(res.X[:, 1], X[:, 1])

    def test_compaction_bitwise_identical(self):
        """The factory/compaction path drops converged columns without
        changing any surviving column's arithmetic: iteration counts and
        solutions match the uncompacted recurrence exactly."""
        n, nb = 50, 8
        A = random_spd(n, seed=9)
        B = np.random.default_rng(10).standard_normal((n, nb))
        # staggered tolerances force several compaction events
        tol = np.logspace(-3, -11, nb)

        def factory(cols):
            return (lambda X: A @ X), (lambda R: R)

        plain = batched_minres(A, B.copy(), tol=tol)
        compact = batched_minres(A, B.copy(), tol=tol, factory=factory)
        assert compact.converged.all()
        np.testing.assert_array_equal(plain.iterations, compact.iterations)
        np.testing.assert_array_equal(plain.X, compact.X)
        # residual history keeps full width with retired columns frozen
        assert all(r.shape == (nb,) for r in compact.residuals)

    def test_compaction_with_per_column_operators(self):
        """Compaction rebuilds operators on surviving global indices."""
        n, nb = 40, 6
        A = random_spd(n, seed=11)
        scale = np.linspace(1.0, 2.0, nb)  # A_j = scale_j * A

        def apply_full(X):
            return (A @ X) * scale[None, :]

        def factory(cols, scale=scale):
            sub = scale[cols]
            return (lambda X: (A @ X) * sub[None, :]), (lambda R: R)

        B = np.random.default_rng(12).standard_normal((n, nb))
        tol = np.logspace(-4, -10, nb)
        plain = batched_minres(apply_full, B.copy(), tol=tol)
        compact = batched_minres(apply_full, B.copy(), tol=tol, factory=factory)
        np.testing.assert_array_equal(plain.iterations, compact.iterations)
        np.testing.assert_array_equal(plain.X, compact.X)
        for j in range(nb):
            ser = minres(lambda x, j=j: scale[j] * (A @ x), B[:, j], tol=tol[j])
            np.testing.assert_allclose(compact.X[:, j], ser.x, atol=1e-8)

    def test_indefinite_preconditioner_rejected(self):
        A = random_spd(10, seed=13)
        B = np.ones((10, 2))
        with pytest.raises(ValueError, match="positive definite"):
            batched_minres(A, B, M=lambda R: -R)


def heterogeneous_specs(cycles=2):
    """Three deliberately different rheologies on one mesh structure."""
    return [
        ScenarioSpec(job_id="ra", tenant="t0", Ra=1e4, activation_energy=3.0,
                     initial_level=2, cycles=cycles, seed=0),
        ScenarioSpec(job_id="stiff", tenant="t1", Ra=4e4,
                     activation_energy=6.0, initial_level=2, cycles=cycles,
                     seed=1),
        ScenarioSpec(job_id="yld", tenant="t2", Ra=2e4,
                     viscosity_law="yielding", activation_energy=4.0,
                     yield_stress=4.0, initial_level=2, cycles=cycles,
                     seed=2),
    ]


def max_rel_dev(a, b):
    dev = 0.0
    for x, y in ((a.vrms, b.vrms), (a.nusselt, b.nusselt),
                 (a.mean_T, b.mean_T)):
        dev = max(dev, abs(x - y) / max(abs(y), 1e-30))
    return dev


class TestBatchedSerialParity:
    def test_heterogeneous_specs_match_serial(self, monkeypatch):
        """Satellite 2: three heterogeneous tenants batched together
        reproduce their serial one-job diagnostics to solver tolerance,
        with the sanitizer verifying the pack/unpack freezes."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        specs = heterogeneous_specs(cycles=2)
        svc = FleetService()
        for spec in specs:
            svc.admit(spec)
        svc.run()
        assert set(svc.statuses().values()) == {"done"}
        for spec in specs:
            serial = MantleConvection(spec.to_config(), spec.t_init())
            serial.run(spec.cycles, adapt=False)
            hist = svc.jobs[spec.job_id].sim.history
            assert len(hist) == len(serial.history) == spec.cycles
            for got, ref in zip(hist, serial.history):
                assert got.step == ref.step
                assert max_rel_dev(got, ref) < 1e-4

    def test_finished_tenant_drops_out(self, monkeypatch):
        """A job with a shorter cycle budget retires mid-fleet; its state
        is frozen (sanitize-verified) and the others are unperturbed."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        short = ScenarioSpec(job_id="short", tenant="t0", Ra=1e4,
                             activation_energy=3.0, initial_level=2,
                             cycles=1, seed=0)
        long = ScenarioSpec(job_id="long", tenant="t1", Ra=2e4,
                            activation_energy=4.0, initial_level=2,
                            cycles=3, seed=1)
        svc = FleetService()
        svc.admit(short)
        svc.admit(long)
        svc.run()
        assert svc.statuses() == {"short": "done", "long": "done"}
        done_T = svc.jobs["short"].sim.T.copy()
        # the retired tenant's diagnostics match its solo run
        solo = MantleConvection(short.to_config(), short.t_init())
        solo.run(1, adapt=False)
        assert max_rel_dev(svc.jobs["short"].sim.history[-1],
                           solo.history[-1]) < 1e-4
        # and further fleet quanta never touched it
        np.testing.assert_array_equal(done_T, svc.jobs["short"].sim.T)

    def test_group_admission_checks(self):
        specs = heterogeneous_specs(cycles=1)
        svc = FleetService()
        sims = [svc.admit(s).sim for s in specs]
        other = MantleConvection(specs[0].to_config(), specs[0].t_init())
        with pytest.raises(ValueError, match="interned Mesh object"):
            BatchGroup(sims + [other])
        with pytest.raises(ValueError, match="empty batch group"):
            BatchGroup([])
