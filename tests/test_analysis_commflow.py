"""Tests for the interprocedural comm-flow analyzer (repro.analysis.commflow)
and the runtime schedule-conformance monitor (repro.analysis.conformance).

Synthetic-package fixtures pin R7/R8/R9 true positives (with call-chain
attribution), laundered negatives, suppression and the baseline
workflow; the ScheduleNFA and the conformance monitor get unit tests;
and the real AMR pipeline is run under REPRO_SANITIZE at P=1 and P=3
against its own generated schedule, including a seeded violation (a
skipped collective) that must produce a structured mismatch.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.commflow import (
    ScheduleNFA,
    build_program,
    build_schedule,
    commflow_findings,
)
from repro.analysis.conformance import (
    ScheduleMismatch,
    install_schedule,
    observe_collective,
    schedule_installed,
    schedule_phase,
    uninstall_schedule,
)
from repro.analysis.lint import main as lint_main
from repro.analysis.sanitize import install as sanitize_install
from repro.analysis.sanitize import uninstall as sanitize_uninstall

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _clean():
    """Never leak an installed schedule or comm factory into other tests."""
    yield
    uninstall_schedule()
    sanitize_uninstall()


def write_pkg(tmp_path, **files) -> str:
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for name, src in files.items():
        (pkg / f"{name}.py").write_text(textwrap.dedent(src))
    return str(pkg)


def analyze(tmp_path, **files):
    return commflow_findings([write_pkg(tmp_path, **files)])


def rules(tmp_path, **files) -> list:
    return [f.rule for f in analyze(tmp_path, **files)]


# --------------------------------------------------------------------------
# call graph + summaries


class TestCallGraph:
    def test_cross_module_collective_summary(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            a="""
            from .b import helper

            def f(comm):
                helper(comm)
            """,
            b="""
            def helper(comm):
                comm.barrier()
            """,
        )
        prog = build_program([pkg])
        s = prog.summary("pkg.a.f")
        assert s.has_collective
        assert s.chain[0][0] == "pkg.b.helper"
        assert s.chain[-1][0] == "barrier"

    def test_method_resolution_through_constructor_type(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            a="""
            from .b import Helper

            def f(comm):
                h = Helper(comm)
                return h.gather_all()
            """,
            b="""
            class Helper:
                def __init__(self, comm):
                    self.comm = comm

                def gather_all(self):
                    return self.comm.allgather(1)
            """,
        )
        prog = build_program([pkg])
        s = prog.summary("pkg.a.f")
        assert s.has_collective
        assert s.chain[0][0] == "pkg.b.Helper.gather_all"

    def test_convenience_ops_canonicalized(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            a="""
            def f(comm, n):
                comm.global_offsets(n)
            """,
        )
        prog = build_program([pkg])
        tree = prog.schedule_tree("pkg.a.f")
        assert tree["op"] == "allgather"


class TestScheduleTree:
    def test_loop_and_choice_structure(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            a="""
            def f(comm, n, flag):
                comm.barrier()
                for i in range(n):
                    comm.allreduce(i)
                if flag:
                    comm.allgather(n)
            """,
        )
        tree = build_program([pkg]).schedule_tree("pkg.a.f")
        kinds = [next(iter(node)) for node in tree["seq"]]
        assert kinds == ["op", "loop", "choice"]
        assert tree["seq"][1]["loop"]["op"] == "allreduce"
        arms = tree["seq"][2]["choice"]
        assert {"seq": []} in arms  # the guard may be skipped

    def test_raising_branch_excluded(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            a="""
            def f(comm, ok):
                if not ok:
                    comm.barrier()
                    raise RuntimeError("diverged")
                comm.allreduce(1)
            """,
        )
        tree = build_program([pkg]).schedule_tree("pkg.a.f")
        assert json.dumps(tree).count('"barrier"') == 0

    def test_while_else_keeps_postloop_reachable(self, tmp_path):
        # the else clause only runs when the loop never breaks, so the
        # trailing collective must stay in the schedule
        pkg = write_pkg(
            tmp_path,
            a="""
            def f(comm, n):
                while n > 0:
                    if comm.allreduce(n) == 0:
                        break
                    n -= 1
                else:
                    raise RuntimeError("no convergence")
                return comm.allgather(n)
            """,
        )
        tree = build_program([pkg]).schedule_tree("pkg.a.f")
        assert '"allgather"' in json.dumps(tree)


# --------------------------------------------------------------------------
# R7: rank-dependent call chains reaching a collective


class TestR7TruePositives:
    def test_guarded_call_depth_one(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            def helper(comm):
                comm.barrier()

            def f(comm):
                if comm.rank == 0:
                    helper(comm)
            """,
        )
        assert [f.rule for f in fs] == ["R7"]
        assert "helper" in fs[0].message and "barrier" in fs[0].message

    def test_chain_attribution_depth_two(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            from .b import outer

            def f(comm):
                if comm.rank > 0:
                    outer(comm)
            """,
            b="""
            def inner(comm):
                comm.allreduce(1)

            def outer(comm):
                inner(comm)
            """,
        )
        assert [f.rule for f in fs] == ["R7"]
        assert "outer" in fs[0].message
        assert "inner" in fs[0].message
        assert "allreduce" in fs[0].message

    def test_param_rank_taint_lexically_invisible(self, tmp_path):
        # the guard is tainted through a parameter named rank, which the
        # lexical R1 rule cannot see — R7 must pick it up
        fs = analyze(
            tmp_path,
            a="""
            def g(comm, rank):
                if rank == 0:
                    comm.barrier()
            """,
        )
        assert [f.rule for f in fs] == ["R7"]
        assert "R1" in fs[0].message


class TestR7Negatives:
    def test_lexical_rank_guard_left_to_r1(self, tmp_path):
        # R1 already flags this exact line; commflow must stay silent
        assert (
            rules(
                tmp_path,
                a="""
                def f(comm):
                    if comm.rank == 0:
                        comm.barrier()
                """,
            )
            == []
        )

    def test_symmetric_guard_is_fine(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def helper(comm):
                    comm.barrier()

                def f(comm, x):
                    flag = comm.allreduce(x)
                    if flag:
                        helper(comm)
                """,
            )
            == []
        )

    def test_unguarded_call_is_fine(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def helper(comm):
                    comm.barrier()

                def f(comm, n):
                    if n > 3:
                        helper(comm)
                """,
            )
            == []
        )

    def test_guarded_call_without_collective_is_fine(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def helper(x):
                    return x + 1

                def f(comm):
                    if comm.rank == 0:
                        helper(1)
                """,
            )
            == []
        )

    def test_suppression_comment(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def helper(comm):
                    comm.barrier()

                def f(comm):
                    if comm.rank == 0:
                        helper(comm)  # lint: disable=R7
                """,
            )
            == []
        )


# --------------------------------------------------------------------------
# R8: p2p pairing & deadlock


class TestR8:
    def test_ring_recv_before_send_deadlocks(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            def shift(comm, x):
                got = comm.recv(comm.rank + 1)
                comm.send(x, comm.rank - 1)
                return got
            """,
        )
        assert "R8" in [f.rule for f in fs]
        f = [f for f in fs if "precedes" in f.message][0]
        assert "rank+1" in f.message

    def test_send_first_ring_is_fine(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def shift(comm, x):
                    comm.send(x, comm.rank - 1)
                    return comm.recv(comm.rank + 1)
                """,
            )
            == []
        )

    def test_sendrecv_is_fine(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def shift(comm, x):
                    return comm.sendrecv(x, comm.rank - 1, comm.rank + 1)
                """,
            )
            == []
        )

    def test_guarded_master_worker_is_fine(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def funnel(comm, x):
                    if comm.rank == 1:  # lint: disable=R7
                        comm.send(x, 0)
                        return x
                    return comm.recv(1)
                """,
            )
            == []
        )

    def test_unmatched_recv_reported(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            def lonely(comm):
                return comm.recv(comm.rank + 1)
            """,
        )
        assert [f.rule for f in fs] == ["R8"]
        assert "no matching send" in fs[0].message

    def test_tag_mismatch_reported_both_ways(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            def tags(comm, x):
                comm.send(x, 0, tag=7)
                return comm.recv(0, tag=3)
            """,
        )
        msgs = " | ".join(f.message for f in fs)
        assert [f.rule for f in fs] == ["R8", "R8"]
        assert "no matching recv" in msgs and "no matching send" in msgs

    def test_interprocedural_deadlock_through_helper(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            def pull(comm):
                return comm.recv(comm.rank + 1)

            def push(comm, x):
                comm.send(x, comm.rank - 1)

            def step(comm, x):
                got = pull(comm)
                push(comm, x)
                return got
            """,
        )
        assert any("precedes" in f.message for f in fs)


# --------------------------------------------------------------------------
# R9: shared-buffer publication


class TestR9:
    def test_mutate_after_alltoall(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            def exchange(comm, bufs):
                out = comm.alltoall(bufs)
                bufs[0] = None
                return out
            """,
        )
        assert [f.rule for f in fs] == ["R9"]
        assert "alltoall" in fs[0].message

    def test_mutate_after_send(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            def push(comm, buf):
                comm.send(buf, comm.rank - 1)
                buf.fill(0.0)
                return comm.recv(comm.rank + 1)
            """,
        )
        assert "R9" in [f.rule for f in fs]

    def test_published_copy_is_fine(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def exchange(comm, bufs):
                    out = comm.alltoall(list(bufs))
                    bufs[0] = None
                    return out
                """,
            )
            == []
        )

    def test_rebind_clears_publication(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def exchange(comm, bufs, fresh):
                    out = comm.alltoall(bufs)
                    bufs = fresh()
                    bufs[0] = None
                    return out
                """,
            )
            == []
        )

    def test_mutation_of_cached_return_through_call(self, tmp_path):
        fs = analyze(
            tmp_path,
            a="""
            def fetch(cache, key):
                val = cache.get(key)
                return val

            def use(cache, key):
                op = fetch(cache, key)
                op[0] = 2.0
                return op
            """,
        )
        assert [f.rule for f in fs] == ["R9"]
        assert "fetch" in fs[0].message and "cached" in fs[0].message

    def test_copy_of_cached_return_is_fine(self, tmp_path):
        assert (
            rules(
                tmp_path,
                a="""
                def fetch(cache, key):
                    val = cache.get(key)
                    return val

                def use(cache, key):
                    op = fetch(cache, key).copy()
                    op[0] = 2.0
                    return op
                """,
            )
            == []
        )


# --------------------------------------------------------------------------
# lint CLI integration (--commflow merge + baseline)


class TestLintIntegration:
    BAD = """
    def helper(comm):
        comm.barrier()

    def f(comm):
        if comm.rank == 0:
            helper(comm)
    """

    def test_commflow_findings_merged(self, tmp_path, capsys):
        pkg = write_pkg(tmp_path, a=self.BAD)
        assert lint_main([pkg, "--commflow", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "R7" in out

    def test_without_flag_commflow_rules_silent(self, tmp_path, capsys):
        pkg = write_pkg(tmp_path, a=self.BAD)
        assert lint_main([pkg, "--no-baseline"]) == 0

    def test_baseline_workflow(self, tmp_path, capsys):
        pkg = write_pkg(tmp_path, a=self.BAD)
        bl = tmp_path / "bl.json"
        assert lint_main([pkg, "--commflow", "--write-baseline", str(bl)]) == 0
        assert any(
            e["rule"] == "R7" for e in json.loads(bl.read_text())["findings"]
        )
        assert lint_main([pkg, "--commflow", "--baseline", str(bl)]) == 0

    def test_repo_src_is_baseline_clean(self, capsys):
        # the acceptance gate: commflow over the real tree, no findings
        assert commflow_findings([SRC]) == []


# --------------------------------------------------------------------------
# ScheduleNFA


def _t(op, site=None):
    return {"op": op, "site": site}


class TestScheduleNFA:
    def test_sequence(self):
        nfa = ScheduleNFA.from_tree({"seq": [_t("a"), _t("b")]})
        st = nfa.initial()
        assert not nfa.accepts(st)
        st = nfa.feed(st, "a", "x.py:1")
        assert st and not nfa.accepts(st)
        assert nfa.feed(st, "a", "x.py:1") == set()
        st = nfa.feed(st, "b", "x.py:2")
        assert nfa.accepts(st)

    def test_choice_including_empty_arm(self):
        nfa = ScheduleNFA.from_tree(
            {"seq": [_t("a"), {"choice": [_t("b"), {"seq": []}]}]}
        )
        st = nfa.feed(nfa.initial(), "a", "s")
        assert nfa.accepts(st)  # skip the optional arm
        st2 = nfa.feed(st, "b", "s")
        assert nfa.accepts(st2)

    def test_loop_zero_or_more(self):
        nfa = ScheduleNFA.from_tree({"seq": [{"loop": _t("a")}, _t("b")]})
        st = nfa.initial()
        for _ in range(3):
            st = nfa.feed(st, "a", "s")
            assert st
        st = nfa.feed(st, "b", "s")
        assert nfa.accepts(st)
        assert nfa.accepts(nfa.feed(nfa.initial(), "b", "s"))

    def test_site_must_match_when_given(self):
        nfa = ScheduleNFA.from_tree(_t("a", "x.py:3"))
        assert nfa.feed(nfa.initial(), "a", "y.py:9") == set()
        assert nfa.accepts(nfa.feed(nfa.initial(), "a", "x.py:3"))

    def test_expected_lists_frontier(self):
        nfa = ScheduleNFA.from_tree({"choice": [_t("a", "s1"), _t("b", "s2")]})
        exp = nfa.expected(nfa.initial())
        assert ("a", "s1") in exp and ("b", "s2") in exp


# --------------------------------------------------------------------------
# conformance monitor (unit)


def _doc(tree, phase="p", qname="q.f"):
    return {"version": 1, "entries": {phase: {"qname": qname, "tree": tree}}}


class TestConformanceMonitor:
    def test_inert_without_schedule(self):
        uninstall_schedule()
        assert not schedule_installed()
        with schedule_phase("p"):
            observe_collective("anything", "x.py:1")  # must not raise

    def test_matching_stream_passes(self):
        install_schedule(_doc({"seq": [_t("allreduce"), _t("barrier")]}))
        with schedule_phase("p"):
            observe_collective("allreduce", "a.py:1")
            observe_collective("barrier", "a.py:2")

    def test_unknown_phase_is_noop(self):
        install_schedule(_doc(_t("allreduce")))
        with schedule_phase("other"):
            observe_collective("gather", "a.py:1")

    def test_wrong_op_raises_with_structured_diff(self):
        install_schedule(_doc({"seq": [_t("allreduce"), _t("barrier")]}))
        with pytest.raises(ScheduleMismatch) as exc:
            with schedule_phase("p"):
                observe_collective("allreduce", "a.py:1")
                observe_collective("allgather", "a.py:2")
        d = exc.value.diff
        assert d["phase"] == "p"
        assert d["entry"] == "q.f"
        assert d["position"] == 1
        assert d["observed"] == {"op": "allgather", "site": "a.py:2"}
        assert {"op": "barrier", "site": None} in d["expected"]
        assert d["history"] == [("allreduce", "a.py:1")]
        assert "barrier" in exc.value.report()

    def test_skipped_collective_raises_on_exit(self):
        install_schedule(_doc({"seq": [_t("allreduce"), _t("barrier")]}))
        with pytest.raises(ScheduleMismatch) as exc:
            with schedule_phase("p"):
                observe_collective("allreduce", "a.py:1")
        assert exc.value.diff["observed"] is None
        assert "skipped" in str(exc.value)

    def test_body_exception_not_masked(self):
        install_schedule(_doc({"seq": [_t("allreduce"), _t("barrier")]}))
        with pytest.raises(ValueError):
            with schedule_phase("p"):
                raise ValueError("boom")

    def test_nested_phases_both_observe(self):
        install_schedule(
            {
                "entries": {
                    "outer": {"qname": "q.o", "tree": {"seq": [_t("a"), _t("b")]}},
                    "inner": {"qname": "q.i", "tree": _t("b")},
                }
            }
        )
        with schedule_phase("outer"):
            observe_collective("a", "s")
            with schedule_phase("inner"):
                observe_collective("b", "s")

    def test_env_autoload(self, tmp_path, monkeypatch):
        p = tmp_path / "sched.json"
        p.write_text(json.dumps(_doc(_t("allreduce"))))
        uninstall_schedule()
        monkeypatch.setenv("REPRO_COMMFLOW_SCHEDULE", str(p))
        import repro.analysis.conformance as conf

        monkeypatch.setattr(conf, "_ENV_TRIED", False)
        monkeypatch.setattr(conf, "_COMPILED", None)
        assert schedule_installed()


# --------------------------------------------------------------------------
# end-to-end: the real pipeline against its own schedule


@pytest.fixture(scope="module")
def schedule_doc():
    return build_schedule([SRC])


def _run_pipeline(p, schedule, cycles=1):
    from repro.amr import ParAmrPipeline
    from repro.parallel import run_spmd

    install_schedule(schedule)
    sanitize_install(timeout=30.0)

    def kernel(comm):
        pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
        for _ in range(cycles):
            pipe.adapt(target=300)
            pipe.advance(2)
        pipe.advance_time(0.05)
        return pipe.pt.global_count()

    return run_spmd(p, kernel)


class TestPipelineConformance:
    def test_schedule_has_all_entries(self, schedule_doc):
        assert set(schedule_doc["entries"]) == {
            "init",
            "adapt",
            "advance",
            "advance_time",
        }
        for entry in schedule_doc["entries"].values():
            assert entry["tree"] is not None

    def test_conforms_one_rank(self, schedule_doc):
        counts = _run_pipeline(1, schedule_doc)
        assert counts[0] > 0

    def test_conforms_three_ranks(self, schedule_doc):
        counts = _run_pipeline(3, schedule_doc)
        assert len(set(counts)) == 1

    def test_seeded_skipped_collective_detected(self, schedule_doc, monkeypatch):
        from repro.amr import ParAmrPipeline
        from repro.fem import ParAdvectionDiffusion
        from repro.parallel import run_spmd

        # skip the CFL allreduce[min] — a classic divergence seed
        monkeypatch.setattr(
            ParAdvectionDiffusion, "cfl_dt", lambda self, cfl=0.4: 1e-3
        )
        install_schedule(schedule_doc)
        sanitize_install(timeout=30.0)

        def kernel(comm):
            pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
            try:
                pipe.advance(1)
            except ScheduleMismatch as e:
                return e.diff
            return None

        diffs = run_spmd(1, kernel)
        assert diffs[0] is not None
        assert diffs[0]["phase"] == "advance"
        assert any(
            e["op"] == "allreduce" and "paradvection" in (e["site"] or "")
            for e in diffs[0]["expected"]
        )
