"""Tests for the rank-sharded checkpoint container format: pack/unpack
round trips, digest verification, manifest validation, atomicity of the
write protocol, and retention."""

import json
import os

import numpy as np
import pytest

from repro.checkpoint import (
    FORMAT_VERSION,
    ManifestError,
    ShardIntegrityError,
    latest_checkpoint,
    list_checkpoints,
)
from repro.checkpoint.format import (
    FORMAT_NAME,
    MANIFEST_NAME,
    Manifest,
    apply_retention,
    pack_arrays,
    read_manifest,
    read_shard,
    shard_name,
    step_dirname,
    unpack_arrays,
    write_manifest,
    write_shard,
)


def _sample_arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "octants/x": rng.integers(0, 2**20, 37, dtype=np.int64),
        "octants/level": rng.integers(0, 8, 37, dtype=np.int64),
        "field/T": rng.random((37, 8)),
    }


class TestPackUnpack:
    def test_round_trip_bitwise(self):
        arrays = _sample_arrays()
        payload, entries = pack_arrays(arrays)
        out = unpack_arrays(payload, entries)
        assert set(out) == set(arrays)
        for name in arrays:
            assert out[name].dtype == arrays[name].dtype
            assert out[name].shape == arrays[name].shape
            assert np.array_equal(
                out[name].view(np.uint8), arrays[name].view(np.uint8)
            )

    def test_layout_is_name_sorted(self):
        # byte layout must not depend on dict insertion order
        a = _sample_arrays()
        b = {k: a[k] for k in reversed(list(a))}
        pa, ea = pack_arrays(a)
        pb, eb = pack_arrays(b)
        assert pa == pb
        assert [e.name for e in ea] == sorted(a)
        assert [e.to_json() for e in ea] == [e.to_json() for e in eb]

    def test_truncated_payload_rejected(self):
        payload, entries = pack_arrays(_sample_arrays())
        with pytest.raises(Exception):
            unpack_arrays(payload[:-8], entries)


class TestShardIO:
    def test_write_read_round_trip(self, tmp_path):
        arrays = _sample_arrays()
        info = write_shard(tmp_path / shard_name(0), arrays)
        assert info.file == shard_name(0)
        out = read_shard(tmp_path, info)
        for name in arrays:
            assert np.array_equal(out[name], arrays[name])

    def test_corrupted_shard_rejected_with_named_shard(self, tmp_path):
        arrays = _sample_arrays()
        info = write_shard(tmp_path / shard_name(2), arrays)
        path = tmp_path / shard_name(2)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip one bit mid-payload
        path.write_bytes(bytes(raw))
        with pytest.raises(ShardIntegrityError) as exc:
            read_shard(tmp_path, info)
        # structured error: names the shard and refuses the restore
        assert exc.value.shard == shard_name(2)
        assert shard_name(2) in str(exc.value)
        assert "refused" in str(exc.value)
        assert exc.value.expected != exc.value.actual

    def test_truncated_shard_rejected(self, tmp_path):
        arrays = _sample_arrays()
        info = write_shard(tmp_path / shard_name(0), arrays)
        path = tmp_path / shard_name(0)
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(ShardIntegrityError):
            read_shard(tmp_path, info)


class TestManifest:
    def _manifest(self, tmp_path):
        info = write_shard(tmp_path / shard_name(0), _sample_arrays())
        return Manifest(
            nranks=1, step=3, time=0.5, meta={"kind": "test"}, shards=[info]
        )

    def test_round_trip(self, tmp_path):
        m = self._manifest(tmp_path)
        write_manifest(tmp_path, m)
        m2 = read_manifest(tmp_path)
        assert m2.nranks == 1 and m2.step == 3 and m2.time == 0.5
        assert m2.version == FORMAT_VERSION
        assert m2.shards[0].digest == m.shards[0].digest

    def test_unknown_format_rejected(self, tmp_path):
        m = self._manifest(tmp_path)
        write_manifest(tmp_path, m)
        doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
        doc["format"] = "not-a-checkpoint"
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(doc))
        with pytest.raises(ManifestError):
            read_manifest(tmp_path)

    def test_future_version_rejected(self, tmp_path):
        m = self._manifest(tmp_path)
        write_manifest(tmp_path, m)
        doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
        doc["version"] = FORMAT_VERSION + 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(doc))
        with pytest.raises(ManifestError):
            read_manifest(tmp_path)

    def test_format_name_written(self, tmp_path):
        write_manifest(tmp_path, self._manifest(tmp_path))
        doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert doc["format"] == FORMAT_NAME


class TestDirectoryLayout:
    def test_step_dirname_zero_padded_and_sortable(self):
        assert step_dirname(7) == "step_00000007"
        assert step_dirname(123456) == "step_00123456"

    def _make_checkpoint(self, root, step):
        d = root / step_dirname(step)
        d.mkdir()
        info = write_shard(d / shard_name(0), _sample_arrays(step))
        write_manifest(d, Manifest(1, step, float(step), {}, [info]))
        return d

    def test_list_and_latest(self, tmp_path):
        for s in (4, 2, 8):
            self._make_checkpoint(tmp_path, s)
        # incomplete directory (no manifest) is invisible
        (tmp_path / step_dirname(16)).mkdir()
        # unrelated entries are ignored
        (tmp_path / "notes.txt").write_text("hi")
        cps = list_checkpoints(tmp_path)
        assert [s for s, _ in cps] == [2, 4, 8]
        path = latest_checkpoint(tmp_path)
        assert os.path.basename(path) == step_dirname(8)

    def test_latest_of_empty_root(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_retention_keeps_newest_k(self, tmp_path):
        for s in range(1, 6):
            self._make_checkpoint(tmp_path, s)
        apply_retention(tmp_path, keep=2)
        assert [s for s, _ in list_checkpoints(tmp_path)] == [4, 5]

    def test_retention_disabled(self, tmp_path):
        for s in range(1, 4):
            self._make_checkpoint(tmp_path, s)
        apply_retention(tmp_path, keep=None)
        apply_retention(tmp_path, keep=0)
        assert len(list_checkpoints(tmp_path)) == 3
