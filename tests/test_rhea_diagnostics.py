"""Tests for geodynamic diagnostics (depth profiles, mobility, plateness)."""

import numpy as np
import pytest

from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.rhea import depth_profile, plateness, surface_mobility
from repro.rhea.diagnostics import depth_profiles_table


def mesh(level=2, adapted=False):
    t = LinearOctree.uniform(level)
    if adapted:
        rng = np.random.default_rng(0)
        t = balance(t.refine(rng.random(len(t)) < 0.3), "corner").tree
    return extract_mesh(t)


class TestDepthProfile:
    def test_linear_in_z(self):
        m = mesh(3)
        vals = m.element_centers()[:, 2]
        z, avg = depth_profile(m, vals, n_bins=8)
        np.testing.assert_allclose(avg, z, atol=1e-12)

    def test_adapted_mesh_volume_weighting(self):
        m = mesh(2, adapted=True)
        z, avg = depth_profile(m, np.ones(m.n_elements), n_bins=4)
        np.testing.assert_allclose(avg[~np.isnan(avg)], 1.0)

    def test_validation(self):
        m = mesh(1)
        with pytest.raises(ValueError):
            depth_profile(m, np.zeros(3))


class TestSurfaceMobility:
    def test_uniform_horizontal_flow_mobility_one(self):
        m = mesh(2)
        u = np.tile([1.0, 0.0, 0.0], (m.n_nodes, 1))
        assert surface_mobility(m, u) == pytest.approx(1.0)

    def test_stagnant_lid_low_mobility(self):
        """Flow confined to depth: surface speed ~ 0."""
        m = mesh(3)
        c = m.node_coords()
        u = np.zeros((m.n_nodes, 3))
        u[:, 0] = np.where(c[:, 2] < 0.5, 1.0, 0.0)
        assert surface_mobility(m, u) < 0.2

    def test_zero_flow_nan(self):
        m = mesh(1)
        assert np.isnan(surface_mobility(m, np.zeros((m.n_nodes, 3))))


class TestPlateness:
    def test_rigid_translation_low_plateness_signal(self):
        """Uniform surface motion has zero strain: plateness undefined."""
        m = mesh(2)
        u = np.tile([1.0, 0.0, 0.0], (m.n_nodes, 1))
        assert np.isnan(plateness(m, u))

    def test_localized_shear_high_plateness(self):
        """Two rigid plates with a narrow boundary: almost all surface
        strain in the boundary cells."""
        m = mesh(3)
        c = m.node_coords()
        u = np.zeros((m.n_nodes, 3))
        u[:, 0] = np.tanh((c[:, 1] - 0.5) / 0.05)
        p = plateness(m, u, quantile=0.8)
        assert p > 0.6

    def test_distributed_shear_lower_plateness(self):
        m = mesh(3)
        c = m.node_coords()
        u_loc = np.zeros((m.n_nodes, 3))
        u_loc[:, 0] = np.tanh((c[:, 1] - 0.5) / 0.05)
        u_dist = np.zeros((m.n_nodes, 3))
        u_dist[:, 0] = c[:, 1]  # uniform shear
        assert plateness(m, u_loc) > plateness(m, u_dist)


class TestProfilesTable:
    def test_from_simulation(self):
        from repro.rhea import MantleConvection, RheaConfig

        sim = MantleConvection(RheaConfig(initial_level=2, picard_iterations=1))
        sim.solve_stokes()
        out = depth_profiles_table(sim)
        assert set(out) == {"z", "T", "log10_eta", "edot"}
        assert len(out["z"]) == len(out["T"])
        # conductive-ish profile decreases with height
        valid = ~np.isnan(out["T"])
        assert out["T"][valid][0] > out["T"][valid][-1]
