"""Tests for the Stokes system + block preconditioner + MINRES stack."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.fem import StokesSystem
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.solvers import StokesBlockPreconditioner, minres


def make_mesh(level=2, adapt=False, seed=0, domain=(1.0, 1.0, 1.0)):
    tree = LinearOctree.uniform(level)
    if adapt:
        rng = np.random.default_rng(seed)
        tree = tree.refine(rng.random(len(tree)) < 0.25)
        tree = balance(tree, "corner").tree
    return extract_mesh(tree, domain)


def buoyancy(mesh, amplitude=1.0):
    """Smooth vertical body force (Ra T e_z analog)."""
    c = mesh.node_coords()
    f = np.zeros((mesh.n_nodes, 3))
    f[:, 2] = amplitude * np.sin(np.pi * c[:, 0]) * np.cos(np.pi * c[:, 2])
    return f


def solve_stokes(stokes, tol=1e-8, maxiter=400):
    prec = StokesBlockPreconditioner(stokes)
    b = stokes.rhs()
    res = minres(stokes.matvec, b, M=prec.apply, tol=tol, maxiter=maxiter)
    return stokes.project_pressure_mean(res.x), res


class TestAssembledSystem:
    def test_saddle_operator_symmetric(self):
        mesh = make_mesh(level=1)
        st = StokesSystem(mesh, np.ones(mesh.n_elements), buoyancy(mesh))
        K = sp.bmat([[st.A, st.B.T], [st.B, -st.C]], format="csr")
        assert (abs(K - K.T) > 1e-12).nnz == 0

    def test_matvec_matches_blocks(self):
        mesh = make_mesh(level=1)
        st = StokesSystem(mesh, np.ones(mesh.n_elements), buoyancy(mesh))
        K = sp.bmat([[st.A, st.B.T], [st.B, -st.C]], format="csr")
        rng = np.random.default_rng(0)
        x = rng.standard_normal(st.n_dof)
        np.testing.assert_allclose(st.matvec(x), K @ x, atol=1e-12)

    def test_input_validation(self):
        mesh = make_mesh(level=1)
        with pytest.raises(ValueError):
            StokesSystem(mesh, np.ones(3))
        with pytest.raises(ValueError):
            StokesSystem(mesh, -np.ones(mesh.n_elements))
        with pytest.raises(ValueError):
            StokesSystem(mesh, np.ones(mesh.n_elements), bc="slippery")

    def test_bc_dofs_identity_rows(self):
        mesh = make_mesh(level=1)
        st = StokesSystem(mesh, np.ones(mesh.n_elements))
        d = st.bc.dofs
        rows = st.A[d]
        # unit diagonal, nothing else
        assert rows.nnz == len(d)
        np.testing.assert_allclose(rows.data, 1.0)
        # divergence ignores constrained dofs
        assert abs(st.B[:, d]).sum() == 0


class TestSolve:
    def test_matches_direct_solve(self):
        """MINRES + block preconditioner reproduces the direct solution
        (pressure compared up to its constant null space)."""
        mesh = make_mesh(level=1)
        st = StokesSystem(mesh, np.ones(mesh.n_elements), buoyancy(mesh))
        x, res = solve_stokes(st, tol=1e-12)
        assert res.converged
        # direct reference with one pinned pressure dof
        K = sp.bmat([[st.A, st.B.T], [st.B, -st.C]], format="csr").tolil()
        b = st.rhs()
        pin = st.n_u  # first pressure dof
        K[pin, :] = 0.0
        K[:, pin] = 0.0
        K[pin, pin] = 1.0
        b = b.copy()
        b[pin] = 0.0
        xd = spla.spsolve(sp.csc_matrix(K), b)
        xd = st.project_pressure_mean(xd)
        np.testing.assert_allclose(x[: st.n_u], xd[: st.n_u], atol=1e-6)
        np.testing.assert_allclose(x[st.n_u :], xd[st.n_u :], atol=1e-5)

    def test_velocity_nearly_divergence_free(self):
        mesh = make_mesh(level=2)
        st = StokesSystem(mesh, np.ones(mesh.n_elements), buoyancy(mesh))
        x, res = solve_stokes(st, tol=1e-10)
        assert res.converged
        # the stabilized continuity equation holds exactly: B u = C p
        # (the divergence itself is only zero up to the consistency error
        # of the Dohrmann-Bochev stabilization, which vanishes with h)
        u, p = x[: st.n_u], x[st.n_u :]
        np.testing.assert_allclose(st.B @ u, st.C @ p, atol=1e-9)
        div = st.velocity_divergence_norm(x)
        assert div < 0.1 * max(np.linalg.norm(u), 1e-30) + 1e-8

    def test_free_slip_normal_velocity_zero(self):
        mesh = make_mesh(level=2, adapt=True, seed=1)
        st = StokesSystem(mesh, np.ones(mesh.n_elements), buoyancy(mesh))
        x, res = solve_stokes(st)
        n = mesh.n_independent
        for a in range(3):
            d = st.bc.per_component[a]
            np.testing.assert_allclose(x[a * n + d], 0.0, atol=1e-12)

    def test_variable_viscosity_converges(self):
        """4 orders of magnitude viscosity contrast (Section VI regime)."""
        mesh = make_mesh(level=2, adapt=True, seed=2)
        c = mesh.element_centers()
        eta = np.where(c[:, 2] > 0.5, 1e2, 1e-2)
        st = StokesSystem(mesh, eta, buoyancy(mesh))
        x, res = solve_stokes(st, tol=1e-8, maxiter=600)
        assert res.converged

    def test_iterations_insensitive_to_refinement(self):
        """The Figure-2 property at test scale: MINRES iterations stay in
        a narrow band as the mesh refines."""
        its = []
        for level in (1, 2):
            mesh = make_mesh(level=level)
            c = mesh.element_centers()
            eta = np.exp(3.0 * c[:, 2])  # smooth variation
            st = StokesSystem(mesh, eta, buoyancy(mesh))
            _, res = solve_stokes(st, tol=1e-8)
            assert res.converged
            its.append(res.iterations)
        assert its[1] < 3 * max(its[0], 10)

    def test_zero_force_zero_flow(self):
        mesh = make_mesh(level=1)
        st = StokesSystem(mesh, np.ones(mesh.n_elements))
        x, res = solve_stokes(st)
        np.testing.assert_allclose(x, 0.0, atol=1e-12)


class TestPreconditioner:
    def test_apply_is_spd(self):
        mesh = make_mesh(level=1)
        st = StokesSystem(mesh, np.ones(mesh.n_elements))
        prec = StokesBlockPreconditioner(st)
        rng = np.random.default_rng(3)
        x, y = rng.standard_normal((2, st.n_dof))
        assert x @ prec.apply(y) == pytest.approx(y @ prec.apply(x), rel=1e-9)
        assert x @ prec.apply(x) > 0

    def test_vcycle_counter(self):
        mesh = make_mesh(level=1)
        st = StokesSystem(mesh, np.ones(mesh.n_elements))
        prec = StokesBlockPreconditioner(st)
        prec.apply(np.ones(st.n_dof))
        assert prec.n_vcycles == 3
