"""Unit tests for the markdown link checker (repro.analysis.linkcheck)."""

import textwrap

from repro.analysis.linkcheck import (
    check_file,
    check_paths,
    extract_links,
    github_slug,
    heading_slugs,
    main,
)


def write(tmp_path, name, text):
    p = tmp_path / name
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(textwrap.dedent(text), encoding="utf-8")
    return p


# -- slugs -------------------------------------------------------------------


class TestSlugs:
    def test_basic_lowercase_hyphens(self):
        assert github_slug("Quick start") == "quick-start"

    def test_punctuation_stripped_hyphens_kept(self):
        assert github_slug("Phase timers & traces") == "phase-timers--traces"
        assert github_slug("Measured-vs-modeled policy") == "measured-vs-modeled-policy"

    def test_markup_stripped(self):
        assert github_slug("The `repro.obs` package") == "the-reproobs-package"
        assert github_slug("See [docs](x.md) here") == "see-docs-here"

    def test_duplicate_headings_suffixed(self):
        md = "# A\n## A\n### B\n# A\n"
        assert heading_slugs(md) == {"a", "a-1", "a-2", "b"}

    def test_headings_inside_fences_ignored(self):
        md = "# Real\n```\n# Fake\n```\n"
        assert heading_slugs(md) == {"real"}


# -- extraction --------------------------------------------------------------


class TestExtraction:
    def test_inline_reference_and_image_links(self):
        md = textwrap.dedent("""
            see [a](one.md) and ![img](pic.png)
            [ref]: two.md
        """)
        assert [t for _, t in extract_links(md)] == ["one.md", "pic.png", "two.md"]

    def test_code_fences_and_spans_skipped(self):
        md = textwrap.dedent("""
            `[not](a-link.md)` but [yes](real.md)
            ```
            [also not](fenced.md)
            ```
        """)
        assert [t for _, t in extract_links(md)] == ["real.md"]

    def test_line_numbers_reported(self):
        md = "x\n[a](one.md)\n"
        assert extract_links(md) == [(2, "one.md")]


# -- checking ----------------------------------------------------------------


class TestChecking:
    def test_live_relative_link_and_anchor(self, tmp_path):
        write(tmp_path, "target.md", "# Hello World\n")
        a = write(tmp_path, "a.md", "[t](target.md) [h](target.md#hello-world) [s](#local)\n\n# Local\n")
        assert check_file(a, root=tmp_path) == []

    def test_dead_file_reported_with_location(self, tmp_path):
        a = write(tmp_path, "a.md", "x\n\n[t](missing.md)\n")
        dead = check_file(a, root=tmp_path)
        assert len(dead) == 1
        assert dead[0].line == 3
        assert "missing.md" in dead[0].message

    def test_dead_anchor_reported(self, tmp_path):
        write(tmp_path, "target.md", "# Hello\n")
        a = write(tmp_path, "a.md", "[h](target.md#nope)\n")
        dead = check_file(a, root=tmp_path)
        assert len(dead) == 1
        assert "nope" in dead[0].message

    def test_external_links_never_checked(self, tmp_path):
        a = write(
            tmp_path, "a.md",
            "[w](https://example.com/x) [m](mailto:x@y.z) [c](http://dead.invalid)\n",
        )
        assert check_file(a, root=tmp_path) == []

    def test_links_resolve_relative_to_linking_file(self, tmp_path):
        write(tmp_path, "docs/inner.md", "[up](../top.md)\n")
        write(tmp_path, "top.md", "# Top\n")
        assert check_paths([tmp_path], root=tmp_path) == []

    def test_directory_links_allowed(self, tmp_path):
        (tmp_path / "sub").mkdir()
        a = write(tmp_path, "a.md", "[d](sub)\n")
        assert check_file(a, root=tmp_path) == []

    def test_skip_dirs_not_descended(self, tmp_path):
        write(tmp_path, ".git/junk.md", "[x](gone.md)\n")
        write(tmp_path, "a.md", "fine\n")
        assert check_paths([tmp_path], root=tmp_path) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        write(tmp_path, "a.md", "[ok](#a)\n\n# A\n")
        assert main([str(tmp_path)]) == 0
        write(tmp_path, "b.md", "[bad](missing.md)\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "missing.md" in out


class TestRepoDocs:
    def test_repo_markdown_has_no_dead_links(self):
        assert check_paths(["."], root=".") == []
