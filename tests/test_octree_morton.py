"""Unit + property tests for Morton encoding (repro.octree.morton)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree.morton import (
    MAX_LEVEL,
    ROOT_LEN,
    compact3,
    key_range_size,
    morton_decode,
    morton_encode,
    octant_length,
    spread3,
)

coord = st.integers(min_value=0, max_value=ROOT_LEN - 1)


class TestSpreadCompact:
    def test_spread_zero_one(self):
        assert spread3(np.array([0]))[0] == 0
        assert spread3(np.array([1]))[0] == 1
        assert spread3(np.array([2]))[0] == 8  # bit 1 -> bit 3

    def test_compact_inverts_spread(self):
        v = np.arange(0, ROOT_LEN, 104729, dtype=np.uint64)  # stride by a prime
        np.testing.assert_array_equal(compact3(spread3(v)), v)

    def test_top_bit(self):
        v = np.array([ROOT_LEN - 1], dtype=np.uint64)
        s = spread3(v)
        assert compact3(s)[0] == ROOT_LEN - 1


class TestEncodeDecode:
    @given(coord, coord, coord)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, x, y, z):
        k = morton_encode(np.array([x]), np.array([y]), np.array([z]))
        xd, yd, zd = morton_decode(k)
        assert (xd[0], yd[0], zd[0]) == (x, y, z)

    def test_axis_significance(self):
        """z is the most significant axis: (z,y,x) traversal order."""
        kx = morton_encode(np.array([1]), np.array([0]), np.array([0]))[0]
        ky = morton_encode(np.array([0]), np.array([1]), np.array([0]))[0]
        kz = morton_encode(np.array([0]), np.array([0]), np.array([1]))[0]
        assert kx < ky < kz

    def test_encode_is_monotone_on_diagonal(self):
        v = np.arange(100, dtype=np.int64)
        keys = morton_encode(v, v, v)
        assert np.all(np.diff(keys.astype(np.float64)) > 0)

    def test_max_key_fits_uint64(self):
        m = ROOT_LEN - 1
        k = morton_encode(np.array([m]), np.array([m]), np.array([m]))[0]
        assert int(k) == (1 << (3 * MAX_LEVEL)) - 1

    @given(coord, coord, coord, coord, coord, coord)
    @settings(max_examples=100, deadline=None)
    def test_containment_iff_key_interval(self, x, y, z, px, py, pz):
        """A point lies in an octant's cube iff its key lies in the
        octant's Morton interval — the fundamental linear-octree fact."""
        level = 3
        h = ROOT_LEN >> level
        ax, ay, az = (x // h) * h, (y // h) * h, (z // h) * h
        inside_cube = (
            ax <= px < ax + h and ay <= py < ay + h and az <= pz < az + h
        )
        k0 = int(morton_encode(np.array([ax]), np.array([ay]), np.array([az]))[0])
        pk = int(morton_encode(np.array([px]), np.array([py]), np.array([pz]))[0])
        inside_interval = k0 <= pk < k0 + int(key_range_size(level))
        assert inside_cube == inside_interval


class TestSizes:
    def test_octant_length(self):
        assert octant_length(0) == ROOT_LEN
        assert octant_length(MAX_LEVEL) == 1
        np.testing.assert_array_equal(
            octant_length(np.array([1, 2])), [ROOT_LEN // 2, ROOT_LEN // 4]
        )

    def test_key_range_size(self):
        assert int(key_range_size(MAX_LEVEL)) == 1
        assert int(key_range_size(0)) == 1 << (3 * MAX_LEVEL)
        assert int(key_range_size(1)) * 8 == int(key_range_size(0))
