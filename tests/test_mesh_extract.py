"""Tests for serial mesh extraction and hanging-node constraints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance


def refined_tree(seed=0, rounds=2, frac=0.3, start=1):
    rng = np.random.default_rng(seed)
    tree = LinearOctree.uniform(start)
    for _ in range(rounds):
        mask = rng.random(len(tree)) < frac
        tree = tree.refine(mask)
    return balance(tree, "corner").tree


def one_refined_tree():
    """Uniform level-1 tree with one leaf refined: the canonical
    hanging-node configuration."""
    t = LinearOctree.uniform(1)
    mask = np.zeros(8, dtype=bool)
    mask[0] = True
    return balance(t.refine(mask), "corner").tree


class TestUniformMesh:
    def test_counts_level1(self):
        m = extract_mesh(LinearOctree.uniform(1))
        assert m.n_elements == 8
        assert m.n_nodes == 27  # 3^3 lattice
        assert m.n_independent == 27
        assert not m.hanging.any()

    def test_counts_level2(self):
        m = extract_mesh(LinearOctree.uniform(2))
        assert m.n_elements == 64
        assert m.n_nodes == 125  # 5^3

    def test_element_nodes_vertex_order(self):
        """Vertex i of an element sits at anchor + corner_offset(i)*h."""
        m = extract_mesh(LinearOctree.uniform(1))
        leaves = m.tree.leaves
        h = leaves.lengths()
        for i in range(8):
            dx, dy, dz = (i & 1), (i >> 1) & 1, (i >> 2) & 1
            expect = np.stack(
                [leaves.x + dx * h, leaves.y + dy * h, leaves.z + dz * h], axis=1
            )
            np.testing.assert_array_equal(
                m.node_coords_int[m.element_nodes[:, i]], expect
            )

    def test_z_is_identity_for_conforming(self):
        m = extract_mesh(LinearOctree.uniform(1))
        assert (m.Z - np.eye(27)).nnz == 0 if hasattr(m.Z - np.eye(27), "nnz") else True
        np.testing.assert_allclose(m.Z.toarray(), np.eye(27))

    def test_domain_scaling(self):
        m = extract_mesh(LinearOctree.uniform(1), domain=(8.0, 4.0, 1.0))
        c = m.node_coords()
        assert c[:, 0].max() == 8.0
        assert c[:, 1].max() == 4.0
        assert c[:, 2].max() == 1.0
        np.testing.assert_allclose(m.element_sizes()[0], [4.0, 2.0, 0.5])


class TestHangingNodes:
    def test_one_refined_leaf_hanging_count(self):
        m = extract_mesh(one_refined_tree())
        # refining one of 8 corner leaves adds face centers on 3 interior
        # faces and edge midpoints on interior edges
        assert m.hanging.sum() > 0
        # hanging nodes carry no dofs
        assert m.n_independent == m.n_nodes - m.hanging.sum()

    def test_constraint_rows_are_partition_of_unity(self):
        """Every Z row sums to 1 (constant fields are reproduced)."""
        m = extract_mesh(refined_tree())
        row_sums = np.asarray(m.Z.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 1.0, atol=1e-12)

    def test_no_hanging_parent_in_Z(self):
        m = extract_mesh(refined_tree(seed=3))
        # Z columns correspond to independent nodes only, by construction;
        # check shape and that each independent node maps to itself
        assert m.Z.shape == (m.n_nodes, m.n_independent)
        sub = m.Z[m.indep_nodes]
        np.testing.assert_allclose(sub.toarray(), np.eye(m.n_independent))

    def test_linear_field_is_continuous(self):
        """Expanding a linear function of the independent nodes must give
        exactly the linear function at hanging nodes (trilinear elements
        reproduce linears; constraints interpolate linearly)."""
        m = extract_mesh(refined_tree(seed=1))
        coords = m.node_coords()
        lin = 2.0 * coords[:, 0] - 3.0 * coords[:, 1] + 0.5 * coords[:, 2] + 1.0
        u_full = m.expand(lin[m.indep_nodes])
        np.testing.assert_allclose(u_full, lin, atol=1e-10)

    def test_hanging_weights_are_half_or_quarter_composites(self):
        m = extract_mesh(one_refined_tree())
        hang_rows = m.Z[np.flatnonzero(m.hanging)]
        for i in range(hang_rows.shape[0]):
            w = hang_rows[i].data
            assert np.all(w > 0)
            assert np.isclose(w.sum(), 1.0)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_meshes_reproduce_linears(self, seed):
        m = extract_mesh(refined_tree(seed=seed, rounds=2, frac=0.25))
        coords = m.node_coords()
        lin = coords @ np.array([1.3, -0.7, 2.9]) + 0.4
        u_full = m.expand(lin[m.indep_nodes])
        np.testing.assert_allclose(u_full, lin, atol=1e-9)


class TestBoundary:
    def test_boundary_mask_uniform(self):
        m = extract_mesh(LinearOctree.uniform(1))
        assert m.boundary_node_mask().sum() == 26  # 27 - 1 interior
        assert m.boundary_node_mask(axis=0, side=0).sum() == 9
        assert m.boundary_node_mask(axis=2, side=1).sum() == 9


class TestInterpolateAt:
    def test_nodal_exactness(self):
        m = extract_mesh(refined_tree(seed=2))
        coords = m.node_coords()
        lin = coords @ np.array([1.0, 2.0, 3.0])
        u_full = m.expand(lin[m.indep_nodes])
        # evaluate at element centers: linear -> exact
        centers = m.element_centers()
        vals = m.interpolate_at(u_full, centers)
        np.testing.assert_allclose(vals, centers @ np.array([1.0, 2.0, 3.0]), atol=1e-9)

    def test_constant_field(self):
        m = extract_mesh(LinearOctree.uniform(2))
        u = np.ones(m.n_nodes)
        pts = np.random.default_rng(0).random((50, 3))
        np.testing.assert_allclose(m.interpolate_at(u, pts), 1.0)

    def test_domain_scaled_interpolation(self):
        m = extract_mesh(LinearOctree.uniform(2), domain=(8.0, 4.0, 1.0))
        coords = m.node_coords()
        f = coords[:, 0] * 0.25
        pts = np.array([[4.0, 2.0, 0.5], [8.0, 4.0, 1.0], [0.0, 0.0, 0.0]])
        np.testing.assert_allclose(m.interpolate_at(f, pts), [1.0, 2.0, 0.0], atol=1e-12)


class TestGuards:
    def test_max_level_guard(self):
        from repro.octree import MAX_LEVEL
        from repro.octree.linear import LinearOctree as LT

        # a tree with a leaf at MAX_LEVEL cannot be meshed (midpoints
        # would be fractional)
        deep = LT.uniform(0)
        for _ in range(MAX_LEVEL):
            mask = np.zeros(len(deep), dtype=bool)
            mask[0] = True
            deep = deep.refine(mask)
        with pytest.raises(ValueError):
            extract_mesh(deep)
