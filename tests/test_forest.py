"""Tests for forest-of-octrees connectivity, transforms, and balance."""

import numpy as np
import pytest

from repro.forest import (
    Forest,
    brick_connectivity,
    cubed_sphere_connectivity,
    unit_cube,
)
from repro.octree import ROOT_LEN


class TestConnectivityBasics:
    def test_unit_cube_all_boundary(self):
        conn = unit_cube()
        assert conn.n_trees == 1
        assert len(conn.boundary_faces()) == 6

    def test_brick_face_counts(self):
        conn = brick_connectivity(2, 1, 1)
        assert conn.n_trees == 2
        # one shared face: each tree has 5 boundary faces
        assert len(conn.boundary_faces()) == 10
        fc = conn.face_connections[0][1]  # +x face of tree 0
        assert fc is not None
        assert fc.neighbor_tree == 1
        assert fc.neighbor_face == 0

    def test_brick_transform_is_translation(self):
        conn = brick_connectivity(2, 1, 1)
        fc = conn.face_connections[0][1]
        pts = np.array([[ROOT_LEN + 5, 7, 9]])  # beyond +x face of tree 0
        q = fc.transform(pts)
        np.testing.assert_array_equal(q, [[5, 7, 9]])

    def test_brick_3d_interior_tree(self):
        conn = brick_connectivity(3, 3, 3)
        # center tree (index 13) has all 6 faces connected
        assert all(conn.face_connections[13][f] is not None for f in range(6))

    def test_transforms_are_mutually_inverse(self):
        conn = brick_connectivity(2, 2, 2)
        for t in range(conn.n_trees):
            for f in range(6):
                fc = conn.face_connections[t][f]
                if fc is None:
                    continue
                back = conn.face_connections[fc.neighbor_tree][fc.neighbor_face]
                assert back.neighbor_tree == t
                R = np.array(fc.R)
                Rb = np.array(back.R)
                np.testing.assert_array_equal(Rb @ R, np.eye(3, dtype=np.int64))

    def test_tree_map_corners(self):
        conn = brick_connectivity(2, 1, 1)
        ref = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        np.testing.assert_allclose(conn.tree_map(1, ref), [[1, 0, 0], [2, 1, 1]])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            brick_connectivity(0, 1, 1)


class TestCubedSphere:
    def test_24_trees_no_boundary_faces_laterally(self):
        conn = cubed_sphere_connectivity()
        assert conn.n_trees == 24
        # boundary faces are exactly the inner+outer shell faces: 48
        assert len(conn.boundary_faces()) == 48

    def test_radii(self):
        conn = cubed_sphere_connectivity(r_inner=0.5, r_outer=1.0)
        r = np.linalg.norm(conn.vertices, axis=1)
        assert set(np.round(r, 9)) == {0.5, 1.0}

    def test_positive_jacobians(self):
        conn = cubed_sphere_connectivity()
        for t in range(24):
            v = conn.vertices[conn.tree_vertices[t]]
            J = np.stack([v[1] - v[0], v[2] - v[0], v[4] - v[0]], axis=1)
            assert np.linalg.det(J) > 0

    def test_transforms_consistent(self):
        """Round-tripping any point across a face connection and back is
        the identity."""
        conn = cubed_sphere_connectivity()
        rng = np.random.default_rng(0)
        for t in range(24):
            for f in range(6):
                fc = conn.face_connections[t][f]
                if fc is None:
                    continue
                back = conn.face_connections[fc.neighbor_tree][fc.neighbor_face]
                pts = rng.integers(0, ROOT_LEN, size=(5, 3))
                np.testing.assert_array_equal(back.transform(fc.transform(pts)), pts)

    def test_geometric_face_match(self):
        """Physical locations agree across each face gluing: a point just
        outside tree A maps to the same physical point inside tree B."""
        conn = cubed_sphere_connectivity()
        checked = 0
        for t in range(24):
            for f in range(6):
                fc = conn.face_connections[t][f]
                if fc is None:
                    continue
                # a point on A's face f
                axis, side = f // 2, f % 2
                ref = np.array([[0.3, 0.7, 0.25]])
                ref[0, axis] = float(side)
                pA = (ref * ROOT_LEN).astype(np.int64)
                pB = fc.transform(pA)
                xA = conn.tree_map(t, pA / ROOT_LEN)
                xB = conn.tree_map(fc.neighbor_tree, pB / ROOT_LEN)
                np.testing.assert_allclose(xA, xB, atol=1e-9)
                checked += 1
        assert checked == 24 * 4  # every lateral face is glued


class TestForest:
    def test_uniform_counts(self):
        forest = Forest.uniform(brick_connectivity(2, 1, 1), 1)
        assert len(forest) == 16
        assert forest.is_complete()
        assert forest.is_balanced()

    def test_refine_flat_mask(self):
        forest = Forest.uniform(brick_connectivity(2, 1, 1), 1)
        mask = np.zeros(16, dtype=bool)
        mask[0] = mask[15] = True
        f2 = forest.refine(mask)
        assert len(f2) == 16 - 2 + 16
        assert f2.is_complete()

    def test_coarsen(self):
        forest = Forest.uniform(brick_connectivity(2, 1, 1), 1)
        f2, nfam = forest.coarsen(np.ones(16, dtype=bool))
        assert nfam == 2
        assert len(f2) == 2

    def test_cross_tree_balance(self):
        """Deep refinement against a tree face forces refinement in the
        face-neighbor tree."""
        conn = brick_connectivity(2, 1, 1)
        forest = Forest.uniform(conn, 1)
        # refine tree 0's leaf at its +x face repeatedly
        for _ in range(3):
            offs = forest.tree_offsets()
            t0 = forest.trees[0]
            # pick the leaf containing a point near the +x face center
            idx = t0.find_containing(
                np.array([ROOT_LEN - 1]), np.array([ROOT_LEN // 2]), np.array([ROOT_LEN // 2])
            )[0]
            mask = np.zeros(len(forest), dtype=bool)
            mask[offs[0] + idx] = True
            forest = forest.refine(mask)
        assert not forest.is_balanced()
        balanced, added = forest.balance()
        assert added > 0
        assert balanced.is_balanced()
        # tree 1 must have been refined beyond level 1
        assert balanced.trees[1].levels.max() >= 2

    def test_balance_idempotent(self):
        conn = brick_connectivity(2, 2, 1)
        forest = Forest.uniform(conn, 1)
        rng = np.random.default_rng(1)
        for _ in range(2):
            forest = forest.refine(rng.random(len(forest)) < 0.3)
        balanced, _ = forest.balance()
        again, added = balanced.balance()
        assert added == 0

    def test_sphere_balance(self):
        conn = cubed_sphere_connectivity()
        forest = Forest.uniform(conn, 1)
        rng = np.random.default_rng(2)
        forest = forest.refine(rng.random(len(forest)) < 0.3)
        forest = forest.refine(rng.random(len(forest)) < 0.3)
        balanced, _ = forest.balance()
        assert balanced.is_balanced()
        assert balanced.is_complete()

    def test_neighbor_leaf_within_and_across(self):
        conn = brick_connectivity(2, 1, 1)
        forest = Forest.uniform(conn, 1)
        # inside point
        t, l = forest.neighbor_leaf(0, np.array([[5, 5, 5]]))
        assert t[0] == 0 and l[0] >= 0
        # beyond +x face -> tree 1
        t, l = forest.neighbor_leaf(0, np.array([[ROOT_LEN + 5, 5, 5]]))
        assert t[0] == 1 and l[0] >= 0
        # beyond -x face -> forest boundary
        t, l = forest.neighbor_leaf(0, np.array([[-5, 5, 5]]))
        assert t[0] == -1

    def test_partition_assignments(self):
        forest = Forest.uniform(brick_connectivity(2, 1, 1), 2)
        ranks = forest.partition_assignments(4)
        assert len(ranks) == len(forest)
        counts = np.bincount(ranks, minlength=4)
        assert counts.max() - counts.min() <= 1
        assert np.all(np.diff(ranks) >= 0)  # contiguous along the curve

    def test_weighted_partition(self):
        forest = Forest.uniform(unit_cube(), 2)
        w = np.ones(len(forest))
        w[:8] = 100.0
        ranks = forest.partition_assignments(4, weights=w)
        assert np.bincount(ranks, minlength=4)[0] < len(forest) // 4

    def test_level_histogram_and_centers(self):
        forest = Forest.uniform(cubed_sphere_connectivity(), 1)
        assert forest.level_histogram() == {1: 24 * 8}
        c = forest.leaf_centers()
        assert c.shape == (len(forest), 3)
        r = np.linalg.norm(c, axis=1)
        assert r.min() > 0.4 and r.max() < 1.1
