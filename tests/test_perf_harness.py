"""Tests for the perf harness (measured + modeled scaling)."""

import pytest

from repro.parallel import CommStats
from repro.perf import (
    format_table,
    measured_pipeline_run,
    model_strong_scaling,
    model_weak_scaling,
)


def comm_template():
    s = CommStats()
    s.record_collective("allreduce", 8)
    s.record_collective("allgather", 8)
    for _ in range(4):
        s.record_collective("alltoall", 4096)
    s.record_p2p(1 << 16)
    return s


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5


class TestModelWeak:
    def test_efficiency_decreases_with_p(self):
        rows = model_weak_scaling([1, 64, 4096, 62464], 131000, 32, comm_template())
        eff = [r["efficiency"] for r in rows]
        assert eff[0] == 1.0
        assert all(eff[i] >= eff[i + 1] for i in range(len(eff) - 1))
        assert eff[-1] > 0.2  # surface-to-volume keeps it reasonable

    def test_compute_time_constant(self):
        rows = model_weak_scaling([1, 1024], 1000, 10, comm_template())
        assert rows[0]["t_compute"] == rows[1]["t_compute"]
        assert rows[1]["t_comm"] > rows[0]["t_comm"]

    def test_elements_scale(self):
        rows = model_weak_scaling([1, 8], 100, 1, comm_template())
        assert rows[1]["elements"] == 800


class TestModelStrong:
    def test_speedup_grows_then_saturates(self):
        rows = model_strong_scaling(
            [256, 1024, 4096, 32768], 531e6, 32, comm_template()
        )
        sp = [r["speedup"] for r in rows]
        assert sp[0] == pytest.approx(256)
        assert all(sp[i] < sp[i + 1] for i in range(len(sp) - 1))
        # efficiency decays with P
        eff = [r["efficiency"] for r in rows]
        assert all(eff[i] >= eff[i + 1] - 1e-12 for i in range(len(eff) - 1))

    def test_small_problem_saturates_earlier(self):
        small = model_strong_scaling([1, 512, 8192], 2e6, 32, comm_template())
        large = model_strong_scaling([1, 512, 8192], 2e9, 32, comm_template())
        assert small[-1]["efficiency"] < large[-1]["efficiency"]


class TestMeasuredRun:
    def test_pipeline_run_collects_everything(self):
        out = measured_pipeline_run(
            2, coarse_level=2, max_level=4, target=200, cycles=1, steps_per_cycle=2
        )
        assert out["p"] == 2
        assert out["n_elements"] > 50
        assert out["total_time"] > 0
        assert "TimeIntegration" in out["timings"]
        assert out["comm_per_rank"].total_collective_calls > 0
        assert len(out["adapt_history"]) == 1
