"""Smoke tests: the shipped examples must run end to end."""

import pathlib
import runpy
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


class TestExamples:
    def test_quickstart_runs(self, capsys):
        runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "octree:" in out
        assert "Poisson solve" in out
        assert "AMR:" in out

    def test_parallel_amr_runs(self, capsys):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import parallel_amr

            parallel_amr.main(2)
        finally:
            sys.path.pop(0)
        out = capsys.readouterr().out
        assert "AMR fraction" in out
        assert "adaptation history" in out

    def test_parallel_amr_checkpoint_resume(self, capsys, tmp_path, monkeypatch):
        """--checkpoint-every / --resume round trip, across rank counts."""
        monkeypatch.chdir(tmp_path)
        sys.path.insert(0, str(EXAMPLES))
        try:
            import parallel_amr

            parallel_amr.main(2, cycles=2, checkpoint_every=1,
                              checkpoint_dir="ck", target=250, max_level=4)
            assert (tmp_path / "ck").is_dir()
            parallel_amr.main(3, cycles=1, checkpoint_every=1,
                              checkpoint_dir="ck", resume=True,
                              target=250, max_level=4)
        finally:
            sys.path.pop(0)
        out = capsys.readouterr().out
        assert "resumed from checkpoint in 'ck' at cycle 2" in out

    def test_mantle_yielding_runs_small(self, capsys):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import mantle_yielding

            mantle_yielding.main(cycles=1, initial_level=2, max_level=3,
                                 target_elements=200)
        finally:
            sys.path.pop(0)
        out = capsys.readouterr().out
        assert "vrms" in out
        assert "final octree levels" in out

    def test_mantle_yielding_checkpoint_resume(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        sys.path.insert(0, str(EXAMPLES))
        try:
            import mantle_yielding

            mantle_yielding.main(cycles=2, checkpoint_every=1,
                                 checkpoint_dir="ck", initial_level=2,
                                 max_level=3, target_elements=200)
            assert (tmp_path / "ck").is_dir()
            mantle_yielding.main(cycles=1, checkpoint_every=1,
                                 checkpoint_dir="ck", resume=True,
                                 initial_level=2, max_level=3,
                                 target_elements=200)
        finally:
            sys.path.pop(0)
        out = capsys.readouterr().out
        assert "resumed from checkpoint in 'ck'" in out
        assert "2 cycles recorded" in out

    def test_spherical_advection_runs(self, capsys):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import spherical_advection

            spherical_advection.main(order=2, n_cycles=1, n_ranks=8)
        finally:
            sys.path.pop(0)
        out = capsys.readouterr().out
        assert "forest: 24 trees" in out
        assert "cycle 1:" in out
