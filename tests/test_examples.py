"""Smoke tests: the shipped examples must run end to end."""

import pathlib
import runpy
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


class TestExamples:
    def test_quickstart_runs(self, capsys):
        runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "octree:" in out
        assert "Poisson solve" in out
        assert "AMR:" in out

    def test_parallel_amr_runs(self, capsys):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import parallel_amr

            parallel_amr.main(2)
        finally:
            sys.path.pop(0)
        out = capsys.readouterr().out
        assert "AMR fraction" in out
        assert "adaptation history" in out

    def test_spherical_advection_runs(self, capsys):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import spherical_advection

            spherical_advection.main(order=2, n_cycles=1, n_ranks=8)
        finally:
            sys.path.pop(0)
        out = capsys.readouterr().out
        assert "forest: 24 trees" in out
        assert "cycle 1:" in out
