"""Tests for fleet scenario specs and config admission validation."""

import numpy as np
import pytest

from repro.fleet import ScenarioSpec, SpecError
from repro.rhea import ArrheniusViscosity, RheaConfig, YieldingViscosity
from repro.rhea.convection import ConfigError


class TestScenarioSpecValidation:
    def test_valid_spec_is_chainable(self):
        spec = ScenarioSpec(job_id="a", Ra=1e4)
        assert spec.validate() is spec

    def test_collects_every_violation(self):
        """Admission reports all problems at once, not just the first."""
        spec = ScenarioSpec(
            job_id="", viscosity_law="banana", Ra=-1.0, cycles=0,
        )
        with pytest.raises(SpecError) as exc:
            spec.validate()
        fields = {f for f, _ in exc.value.errors}
        assert {"job_id", "viscosity_law", "Ra", "cycles"} <= fields

    def test_error_messages_name_field_and_value(self):
        with pytest.raises(SpecError, match=r"viscosity_law: must be "
                           r"'arrhenius' or 'yielding', got 'maxwell'"):
            ScenarioSpec(job_id="a", viscosity_law="maxwell").validate()
        with pytest.raises(SpecError, match=r"Ra: must be a finite number"):
            ScenarioSpec(job_id="a", Ra=float("nan")).validate()

    def test_job_id_shape(self):
        # '/' would collide with per-job checkpoint namespaces
        with pytest.raises(SpecError, match="must not contain '/'"):
            ScenarioSpec(job_id="a/b").validate()
        with pytest.raises(SpecError, match="surrounding whitespace"):
            ScenarioSpec(job_id=" a ").validate()
        with pytest.raises(SpecError, match="non-empty string"):
            ScenarioSpec(job_id=7).validate()

    def test_yield_stress_only_for_yielding(self):
        with pytest.raises(SpecError, match="only meaningful"):
            ScenarioSpec(job_id="a", viscosity_law="arrhenius",
                         yield_stress=5.0).validate()
        with pytest.raises(SpecError, match="yield_stress: must be > 0"):
            ScenarioSpec(job_id="a", viscosity_law="yielding",
                         yield_stress=-2.0).validate()
        ScenarioSpec(job_id="a", viscosity_law="yielding",
                     yield_stress=4.0).validate()

    def test_scheduling_fields(self):
        with pytest.raises(SpecError, match="deadline: must be > 0"):
            ScenarioSpec(job_id="a", deadline=0.0).validate()
        with pytest.raises(SpecError, match="priority: must be an integer"):
            ScenarioSpec(job_id="a", priority=1.5).validate()
        with pytest.raises(SpecError, match="adapt_cycles"):
            ScenarioSpec(job_id="a", adapt_cycles=-1).validate()


class TestScenarioSpecMaterialization:
    def test_to_config_builds_named_law(self):
        cfg = ScenarioSpec(job_id="a", viscosity_law="yielding",
                           yield_stress=4.5, activation_energy=5.0).to_config()
        assert isinstance(cfg.viscosity, YieldingViscosity)
        assert cfg.viscosity.sigma_y == 4.5
        cfg = ScenarioSpec(job_id="a", eta0=2.0).to_config()
        assert isinstance(cfg.viscosity, ArrheniusViscosity)

    def test_to_config_propagates_config_error(self):
        """Fields the spec passes through verbatim still hit RheaConfig's
        own eager validation."""
        spec = ScenarioSpec(job_id="a", cfl=-0.5)
        with pytest.raises(ConfigError) as exc:
            spec.to_config()
        assert "cfl" in {f for f, _ in exc.value.errors}

    def test_t_init_is_seed_deterministic(self):
        coords = np.random.default_rng(0).random((50, 3))
        a = ScenarioSpec(job_id="a", seed=3).t_init()(coords)
        b = ScenarioSpec(job_id="b", seed=3).t_init()(coords)
        c = ScenarioSpec(job_id="c", seed=4).t_init()(coords)
        np.testing.assert_array_equal(a, b)
        assert np.any(a != c)


class TestScenarioSpecSerialization:
    def test_json_roundtrip(self):
        spec = ScenarioSpec(
            job_id="j1", tenant="geo", Ra=3e4, viscosity_law="yielding",
            yield_stress=5.0, activation_energy=4.0, cycles=3, seed=7,
            priority=2, deadline=12.0, domain=(1.0, 2.0, 1.0),
        )
        d = spec.to_json()
        assert d["domain"] == [1.0, 2.0, 1.0]  # JSON-serializable
        assert ScenarioSpec.from_json(d) == spec

    def test_unknown_field_rejected(self):
        d = ScenarioSpec(job_id="j1").to_json()
        d["turbo"] = True
        with pytest.raises(SpecError, match="turbo: unknown field"):
            ScenarioSpec.from_json(d)


class TestRheaConfigValidation:
    def test_default_config_valid(self):
        RheaConfig()

    def test_collects_every_violation(self):
        with pytest.raises(ConfigError) as exc:
            RheaConfig(Ra=-1.0, cfl=0.0, fem_variant="banana")
        fields = {f for f, _ in exc.value.errors}
        assert {"Ra", "cfl", "fem_variant"} <= fields

    def test_choice_message(self):
        with pytest.raises(ConfigError, match=r"fem_variant: must be "
                           r"'tensor' or 'matrix', got 'banana'"):
            RheaConfig(fem_variant="banana")
        with pytest.raises(ConfigError, match=r"velocity_bc: must be "
                           r"'free_slip' or 'no_slip'"):
            RheaConfig(velocity_bc="periodic")

    def test_level_ordering(self):
        with pytest.raises(ConfigError, match=r"min_level <= initial_level "
                           r"<= max_level"):
            RheaConfig(min_level=3, initial_level=2, max_level=4)
        with pytest.raises(ConfigError, match="levels must be integers"):
            RheaConfig(initial_level=2.5)

    def test_domain_and_viscosity(self):
        with pytest.raises(ConfigError, match="3 positive extents"):
            RheaConfig(domain=(1.0, 2.0))
        with pytest.raises(ConfigError, match="3 positive extents"):
            RheaConfig(domain=(1.0, -1.0, 1.0))
        with pytest.raises(ConfigError, match="must be callable"):
            RheaConfig(viscosity=42)

    def test_nonfinite_rejected(self):
        with pytest.raises(ConfigError, match="stokes_tol"):
            RheaConfig(stokes_tol=float("inf"))
