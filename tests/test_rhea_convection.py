"""Integration tests for the coupled RHEA convection loop (small scale)."""

import numpy as np
import pytest

from repro.rhea import (
    MantleConvection,
    RheaConfig,
    YieldingViscosity,
    conductive_profile,
    gradient_indicator,
    combined_indicator,
    adjoint_weighted_indicator,
)


def small_config(**kw):
    base = dict(
        Ra=1e4,
        initial_level=2,
        min_level=1,
        max_level=4,
        adapt_every=4,
        picard_iterations=2,
        stokes_tol=1e-6,
        stokes_maxiter=300,
    )
    base.update(kw)
    return RheaConfig(**base)


class TestSetup:
    def test_initial_fields(self):
        sim = MantleConvection(small_config())
        assert sim.mesh.n_elements == 64
        assert sim.T.shape == (sim.mesh.n_nodes,)
        assert 0.0 <= sim.T.min() and sim.T.max() <= 1.0
        np.testing.assert_array_equal(sim.u, 0.0)

    def test_conductive_profile_bounds(self):
        c = np.random.default_rng(0).random((100, 3))
        T = conductive_profile(c)
        assert T.min() >= 0 and T.max() <= 1
        # hot at the bottom
        assert conductive_profile(np.array([[0.5, 0.5, 0.0]]))[0] > \
               conductive_profile(np.array([[0.5, 0.5, 1.0]]))[0]


class TestStokesCoupling:
    def test_hot_plume_rises(self):
        """A hot blob at the bottom center must induce upward flow there:
        the fundamental buoyancy sanity check."""

        def T_init(c):
            r2 = (c[:, 0] - 0.5) ** 2 + (c[:, 1] - 0.5) ** 2 + (c[:, 2] - 0.3) ** 2
            return 0.8 * np.exp(-r2 / 0.05)

        sim = MantleConvection(small_config(), T_init=T_init)
        stats = sim.solve_stokes()
        assert stats["converged"]
        # velocity at nodes near the blob center
        c = sim.mesh.node_coords()
        near = np.linalg.norm(c - [0.5, 0.5, 0.3], axis=1) < 0.25
        assert sim.u[near, 2].mean() > 0

    def test_zero_temperature_no_flow(self):
        sim = MantleConvection(small_config(), T_init=lambda c: np.zeros(len(c)))
        sim.solve_stokes()
        assert sim.vrms() < 1e-10

    def test_picard_with_yielding_law(self):
        cfg = small_config(
            viscosity=YieldingViscosity(sigma_y=10.0), picard_iterations=3, Ra=1e4
        )
        sim = MantleConvection(cfg)
        stats = sim.solve_stokes()
        assert stats["converged"]
        assert stats["picard_iterations"] >= 1
        assert stats["eta_max"] >= stats["eta_min"] > 0


class TestTimeStepping:
    def test_temperature_stays_bounded(self):
        sim = MantleConvection(small_config())
        sim.solve_stokes()
        sim.advance_temperature(5)
        assert sim.T.min() > -0.1
        assert sim.T.max() < 1.2

    def test_time_advances(self):
        sim = MantleConvection(small_config())
        sim.solve_stokes()
        dt = sim.advance_temperature(3)
        assert dt > 0
        assert sim.sim_time == pytest.approx(3 * dt)
        assert sim.step_count == 3


class TestAdaptation:
    def test_adapt_keeps_target(self):
        def T_init(c):
            return 0.5 * (1 - np.tanh((c[:, 2] - 0.5) / 0.05))

        sim = MantleConvection(small_config(max_level=4), T_init=T_init)
        target = 200
        report = sim.adapt(target=target)
        assert report.n_after == sim.mesh.n_elements
        # within mark tolerance + balance additions
        assert 0.4 * target < sim.mesh.n_elements < 3 * target

    def test_adapt_transfers_temperature(self):
        def T_init(c):
            return 1.0 - c[:, 2]

        sim = MantleConvection(small_config(), T_init=T_init)
        sim.adapt(target=150)
        c = sim.mesh.node_coords()
        np.testing.assert_allclose(sim.T, 1.0 - c[:, 2], atol=1e-9)

    def test_refinement_follows_front(self):
        def T_init(c):
            return 0.5 * (1 - np.tanh((c[:, 2] - 0.5) / 0.03))

        sim = MantleConvection(small_config(initial_level=3, max_level=5), T_init=T_init)
        sim.adapt(target=800)
        centers = sim.mesh.element_centers()
        levels = sim.mesh.tree.levels
        near = np.abs(centers[:, 2] - 0.5) < 0.15
        far = np.abs(centers[:, 2] - 0.5) > 0.3
        assert levels[near].astype(float).mean() > levels[far].astype(float).mean()


class TestRunLoop:
    def test_short_run_produces_history(self):
        sim = MantleConvection(small_config(target_elements=100))
        hist = sim.run(2)
        assert len(hist) == 2
        d = hist[-1]
        assert d.n_elements == sim.mesh.n_elements
        assert d.vrms >= 0
        assert np.isfinite(d.mean_T)
        assert d.minres_iterations > 0
        assert "Stokes" in d.timings and "TimeIntegration" in d.timings

    def test_convection_generates_motion(self):
        sim = MantleConvection(small_config(Ra=1e5))
        sim.run(2, adapt=False)
        assert sim.history[-1].vrms > 0.1


class TestIndicators:
    def test_gradient_indicator_peaks_at_front(self):
        sim = MantleConvection(
            small_config(initial_level=3),
            T_init=lambda c: 0.5 * (1 - np.tanh((c[:, 2] - 0.5) / 0.05)),
        )
        ind = gradient_indicator(sim.mesh, sim.T)
        centers = sim.mesh.element_centers()
        at_front = np.abs(centers[:, 2] - 0.5) < 0.1
        assert ind[at_front].mean() > 3 * ind[~at_front].mean()

    def test_combined_indicator_adds_viscosity_term(self):
        sim = MantleConvection(small_config(initial_level=2))
        eta = np.ones(sim.mesh.n_elements)
        eta[0] = 1e4  # sharp viscosity jump at element 0
        base = combined_indicator(sim.mesh, sim.T, None)
        comb = combined_indicator(sim.mesh, sim.T, eta, viscosity_weight=1.0)
        assert comb[0] > base[0]

    def test_adjoint_indicator_positive_and_finite(self):
        sim = MantleConvection(small_config(initial_level=2))
        vel = np.tile([1.0, 0.0, 0.0], (sim.mesh.n_elements, 1))
        ind = adjoint_weighted_indicator(sim.mesh, sim.T, vel, kappa=0.1)
        assert np.all(np.isfinite(ind))
        assert np.all(ind >= 0)
        assert ind.max() > 0
