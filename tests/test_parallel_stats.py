"""Pin the CommStats payload accounting and the cross-rank merging.

The machine model prices recorded byte counts, so the accounting must be
position-independent (a value costs the same bare or inside a
container) and deterministic; these tests pin the rules of
``payload_nbytes`` and the semantics of ``merge_stats`` / ``since``.
"""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.parallel import CommStats, merge_stats, payload_nbytes, run_spmd


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_ndarray_exact_buffer(self):
        assert payload_nbytes(np.zeros(5, dtype=np.float64)) == 40
        assert payload_nbytes(np.zeros((2, 3), dtype=np.int32)) == 24
        assert payload_nbytes(np.zeros(0, dtype=np.float64)) == 0

    def test_numpy_scalar_itemsize(self):
        # itemsize, not a flat 8: float32 is 4 bytes, int16 is 2
        assert payload_nbytes(np.float64(1.0)) == 8
        assert payload_nbytes(np.float32(1.0)) == 4
        assert payload_nbytes(np.int16(3)) == 2
        assert payload_nbytes(np.bool_(True)) == 1

    def test_numpy_scalar_consistent_through_containers(self):
        # the historical inconsistency: scalars reached through a
        # container must cost exactly what the bare scalar costs
        for s in (np.float32(2.0), np.int64(7), np.float64(0.5)):
            bare = payload_nbytes(s)
            assert payload_nbytes([s]) == bare
            assert payload_nbytes((s,)) == bare
            assert payload_nbytes({s}) == bare
            assert payload_nbytes({0: s}) == bare + payload_nbytes(0)

    def test_python_scalars_flat_8(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(3.5) == 8
        assert payload_nbytes(True) == 8
        assert payload_nbytes(1 + 2j) == 8

    def test_bytes_like(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(3)) == 3
        assert payload_nbytes(memoryview(b"xy")) == 2

    def test_containers_sum_recursively(self):
        a = np.zeros(4, dtype=np.float64)  # 32
        assert payload_nbytes([a, a]) == 64
        assert payload_nbytes((a, [a, 1])) == 32 + 32 + 8
        assert payload_nbytes({"k": a}) == payload_nbytes("k") + 32

    def test_dataclass_sums_fields(self):
        @dataclass
        class Msg:
            arr: np.ndarray
            n: int
            tag: np.float32

        m = Msg(arr=np.zeros(3, dtype=np.float64), n=1, tag=np.float32(0.0))
        expected = 24 + 8 + 4
        assert payload_nbytes(m) == expected
        # and through a container, identically
        assert payload_nbytes([m]) == expected

    def test_nested_dataclass(self):
        @dataclass
        class Inner:
            x: np.ndarray

        @dataclass
        class Outer:
            inner: Inner
            items: list = field(default_factory=list)

        o = Outer(inner=Inner(x=np.zeros(2, dtype=np.int64)), items=[1, 2])
        assert payload_nbytes(o) == 16 + 16

    def test_dataclass_type_not_instance_falls_back(self):
        @dataclass
        class D:
            x: int = 0

        # the class object itself is not a payload; getsizeof fallback
        assert payload_nbytes(D) > 0


class TestCommStatsMerging:
    def _stats(self, msgs, nbytes, coll):
        s = CommStats()
        for _ in range(msgs):
            s.record_p2p(nbytes)
        for name, (calls, b) in coll.items():
            for _ in range(calls):
                s.record_collective(name, b)
        return s

    def test_merge_stats_sums_over_ranks(self):
        a = self._stats(2, 10, {"allreduce": (3, 8)})
        b = self._stats(1, 5, {"allreduce": (1, 8), "allgather": (2, 16)})
        m = merge_stats([a, b])
        assert m.p2p_messages == 3
        assert m.p2p_bytes == 25
        assert m.collective_calls == {"allreduce": 4, "allgather": 2}
        assert m.collective_bytes == {"allreduce": 32, "allgather": 32}
        assert m.total_collective_calls == 6
        assert m.total_bytes == 25 + 64

    def test_merge_stats_empty(self):
        m = merge_stats([])
        assert m.p2p_messages == 0 and m.total_bytes == 0

    def test_snapshot_is_deep(self):
        s = self._stats(1, 4, {"bcast": (1, 8)})
        snap = s.snapshot()
        s.record_collective("bcast", 8)
        assert snap.collective_calls["bcast"] == 1
        assert s.collective_calls["bcast"] == 2

    def test_since_delta_drops_zero_entries(self):
        s = self._stats(1, 4, {"bcast": (1, 8), "allreduce": (2, 8)})
        snap = s.snapshot()
        s.record_collective("allreduce", 8)
        s.record_p2p(6)
        d = s.since(snap)
        assert d.p2p_messages == 1 and d.p2p_bytes == 6
        assert d.collective_calls == {"allreduce": 1}
        assert "bcast" not in d.collective_calls

    def test_merge_from_spmd_run(self):
        def kernel(comm):
            comm.allreduce(np.float64(comm.rank))
            if comm.rank == 0:
                comm.send(np.zeros(4, dtype=np.float64), dest=1)
            if comm.rank == 1:
                comm.recv(source=0)
            return comm.stats.snapshot()

        per_rank = run_spmd(2, kernel)
        m = merge_stats(per_rank)
        assert m.collective_calls["allreduce"] == 2
        # each rank contributed one float64 scalar -> 8 bytes
        assert m.collective_bytes["allreduce"] == 16
        assert m.p2p_messages == 1
        assert m.p2p_bytes == 32

    def test_flops_accumulate_and_merge(self):
        a = CommStats()
        a.add_flops(100)
        b = CommStats()
        b.add_flops(50)
        assert merge_stats([a, b]).flops == pytest.approx(150.0)


class TestPairwiseMerge:
    """Out-of-order partial merges (the process backend folds worker
    stats as replies arrive) must neither reorder-sensitively differ nor
    double-count."""

    def _stats(self, msgs, nbytes, coll):
        s = CommStats()
        for _ in range(msgs):
            s.record_p2p(nbytes)
        for name, (calls, b) in coll.items():
            for _ in range(calls):
                s.record_collective(name, b)
        return s

    def _key(self, s):
        return (
            s.p2p_messages,
            s.p2p_bytes,
            dict(s.collective_calls),
            dict(s.collective_bytes),
            s.flops,
        )

    def test_merge_is_pure(self):
        a = self._stats(2, 10, {"allreduce": (3, 8)})
        b = self._stats(1, 5, {"allgather": (2, 16)})
        ka, kb = self._key(a), self._key(b)
        m = a.merge(b)
        assert self._key(a) == ka and self._key(b) == kb  # operands intact
        assert m.p2p_messages == 3
        assert m.collective_calls == {"allreduce": 3, "allgather": 2}

    def test_commutative(self):
        a = self._stats(2, 10, {"allreduce": (3, 8)})
        b = self._stats(1, 5, {"allreduce": (1, 4), "barrier": (2, 0)})
        assert self._key(a.merge(b)) == self._key(b.merge(a))

    def test_associative_any_fold_order(self):
        parts = [
            self._stats(1, 8, {"allreduce": (1, 8)}),
            self._stats(2, 4, {"allgather": (2, 16)}),
            self._stats(0, 0, {"barrier": (3, 0)}),
        ]
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        swapped = parts[2].merge(parts[0]).merge(parts[1])
        assert self._key(left) == self._key(right) == self._key(swapped)
        assert self._key(left) == self._key(merge_stats(parts))

    def test_iadd_accumulates_in_place(self):
        acc = CommStats()
        acc += self._stats(1, 8, {"allreduce": (1, 8)})
        acc += self._stats(2, 4, {"allreduce": (1, 8)})
        assert acc.p2p_messages == 3
        assert acc.collective_calls == {"allreduce": 2}
        assert acc.collective_bytes == {"allreduce": 16}

    def test_self_merge_doubles_without_runaway(self):
        # the aliasing trap: s += s must exactly double, not loop or
        # double-count through the shared dicts
        s = self._stats(2, 10, {"allreduce": (3, 8), "barrier": (1, 0)})
        s += s
        assert s.p2p_messages == 4
        assert s.p2p_bytes == 40
        assert s.collective_calls == {"allreduce": 6, "barrier": 2}
        assert s.collective_bytes == {"allreduce": 48, "barrier": 0}
        m = s.merge(s)
        assert m.collective_calls == {"allreduce": 12, "barrier": 4}

    def test_add_and_sum_builtin(self):
        a = self._stats(1, 8, {"allreduce": (1, 8)})
        b = self._stats(1, 2, {"barrier": (1, 0)})
        total = sum([a, b])  # __radd__ seeds from int 0
        assert self._key(total) == self._key(a.merge(b))
        assert self._key(a + b) == self._key(a.merge(b))
