"""Tests for preconditioned CG."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import SmoothedAggregationAMG, cg


def spd_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    return Q @ np.diag(rng.uniform(0.5, 5.0, n)) @ Q.T


class TestCG:
    def test_solves_spd(self):
        A = spd_matrix(40, seed=1)
        b = np.ones(40)
        res = cg(A, b, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, np.linalg.solve(A, b), atol=1e-7)

    def test_zero_rhs(self):
        res = cg(spd_matrix(5), np.zeros(5))
        assert res.converged and res.iterations == 0

    def test_initial_guess(self):
        A = spd_matrix(10, seed=2)
        xt = np.arange(10.0)
        res = cg(A, A @ xt, x0=xt.copy(), tol=1e-12)
        assert res.iterations == 0

    def test_amg_preconditioner_accelerates(self):
        """CG + AMG V-cycle converges far faster than plain CG on a
        Laplacian — the Fig. 9 configuration."""
        n = 10
        e = np.ones(n)
        T = sp.diags([-e[:-1], 2 * e, -e[:-1]], [-1, 0, 1])
        I = sp.identity(n)
        A = sp.csr_matrix(
            sp.kron(sp.kron(T, I), I) + sp.kron(sp.kron(I, T), I)
            + sp.kron(sp.kron(I, I), T)
        )
        b = np.ones(A.shape[0])
        plain = cg(A, b, tol=1e-8, maxiter=500)
        amg = SmoothedAggregationAMG(A)
        prec = cg(A, b, M=amg.vcycle, tol=1e-8, maxiter=500)
        assert prec.converged
        assert prec.iterations < 0.5 * plain.iterations
        np.testing.assert_allclose(prec.x, plain.x, atol=1e-5)

    def test_indefinite_rejected(self):
        A = np.diag([1.0, -1.0])
        with pytest.raises(ValueError):
            cg(A, np.ones(2))

    def test_residual_history_decreases_overall(self):
        A = spd_matrix(30, seed=3)
        res = cg(A, np.ones(30), tol=1e-10)
        assert res.residuals[-1] < res.residuals[0]
        assert res.final_residual == res.residuals[-1]
