"""Runtime sanitizer tests (repro.analysis.sanitize).

Covers the CheckedComm collective-divergence detector (structured
mismatch reports instead of deadlocks), the seeded delivery fuzzer,
the freeze/verify cache-mutation guards, and their wiring into
opcache / CachedScatter / LaggedStokesPreconditioner under
REPRO_SANITIZE=1.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.sanitize import (
    CacheMutationError,
    CheckedComm,
    CollectiveMismatch,
    checked_comm_factory,
    freeze,
    install,
    maybe_freeze,
    maybe_verify,
    uninstall,
    verify_frozen,
)
from repro.fem import StokesSystem
from repro.mesh import extract_mesh
from repro.mesh.opcache import operator_cache
from repro.octree import LinearOctree
from repro.parallel import run_spmd
from repro.parallel.simcomm import get_comm_factory, run_spmd_with_comms
from repro.solvers import LaggedStokesPreconditioner


@pytest.fixture(autouse=True)
def _clean_factory():
    """Never leak a comm factory (or stray env) into other tests."""
    yield
    uninstall()


def _mesh(level=1):
    return extract_mesh(LinearOctree.uniform(level))


def _stokes(level=1):
    mesh = _mesh(level)
    f = np.zeros((mesh.n_nodes, 3))
    f[:, 2] = mesh.node_coords()[:, 0]
    return StokesSystem(mesh, np.ones(mesh.n_elements), f)


# --------------------------------------------------------------------------
# CheckedComm: symmetric programs are transparent


class TestCheckedCommTransparent:
    def test_collectives_match_plain_simcomm(self):
        def kernel(comm):
            x = np.arange(3, dtype=np.float64) + comm.rank
            total = comm.allreduce(x)
            parts = comm.allgather(comm.rank)
            off = comm.exscan(comm.rank + 1)
            root_val = comm.bcast(42 if comm.rank == 0 else None)
            comm.barrier()
            return total.sum(), parts, off, root_val

        plain = run_spmd(4, kernel)
        install(timeout=5.0)
        try:
            checked = run_spmd(4, kernel)
        finally:
            uninstall()
        assert checked == plain

    def test_env_substitutes_checked_comm(self, monkeypatch):
        kernel = lambda comm: type(comm).__name__  # noqa: E731
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert run_spmd(2, kernel) == ["CheckedComm", "CheckedComm"]
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert run_spmd(2, kernel) == ["SimComm", "SimComm"]

    def test_install_uninstall_roundtrip(self):
        install()
        assert get_comm_factory() is not None
        uninstall()
        assert get_comm_factory() is None


# --------------------------------------------------------------------------
# CheckedComm: divergence raises a structured report, never hangs


class TestDivergence:
    def test_op_divergence_reports_rank_op_site(self):
        def kernel(comm):
            if comm.rank == 1:
                return comm.allgather(comm.rank)  # lint: disable=R1 (deliberate divergence)
            return comm.allreduce(comm.rank)

        install(timeout=5.0)
        with pytest.raises(CollectiveMismatch) as ei:
            run_spmd(3, kernel)
        exc = ei.value
        assert "allgather" in str(exc) and "allreduce" in str(exc)
        assert set(exc.report) == {0, 1, 2}
        ops = {r: m["op"] for r, m in exc.report.items()}
        assert ops[1] == "allgather"
        assert ops[0] == "allreduce[sum]" and ops[2] == "allreduce[sum]"
        for m in exc.report.values():
            assert "test_analysis_sanitize.py" in m["site"]
            assert m["seq"] == 0

    def test_payload_dtype_divergence(self):
        def kernel(comm):
            dt = np.float32 if comm.rank == 0 else np.float64
            return comm.allreduce(np.ones(4, dtype=dt))

        install(timeout=5.0)
        with pytest.raises(CollectiveMismatch) as ei:
            run_spmd(2, kernel)
        assert "float32" in str(ei.value) and "float64" in str(ei.value)

    def test_call_site_divergence(self):
        def kernel(comm):
            if comm.rank == 0:
                comm.barrier()  # lint: disable=R1 (deliberate divergence)
            else:
                comm.barrier()  # lint: disable=R1 (deliberate divergence)
            return True

        install(timeout=5.0)
        with pytest.raises(CollectiveMismatch) as ei:
            run_spmd(2, kernel)
        # same op, different source lines: both sites appear in the report
        sites = {m["site"] for m in ei.value.report.values()}
        assert len(sites) == 2

    def test_missing_rank_times_out_instead_of_deadlocking(self):
        def kernel(comm):
            if comm.rank != 0:
                comm.barrier()  # rank 0 never shows up  # lint: disable=R1
            return comm.rank

        install(timeout=0.5)
        with pytest.raises(CollectiveMismatch) as ei:
            run_spmd(3, kernel)
        assert "no matching collective" in str(ei.value)
        # recent per-rank history is embedded for debugging
        assert "barrier" in str(ei.value)

    def test_count_divergence_detected_across_iterations(self):
        def kernel(comm):
            n = 3 if comm.rank == 0 else 2
            for _ in range(n):
                comm.allreduce(1.0)  # lint: disable=R1 (deliberate divergence)
            return comm.rank

        install(timeout=0.5)
        with pytest.raises(CollectiveMismatch):
            run_spmd(2, kernel)


# --------------------------------------------------------------------------
# delivery fuzzer


class TestDeliveryFuzzer:
    @staticmethod
    def _ring(comm):
        nxt = (comm.rank + 1) % comm.size
        prv = (comm.rank - 1) % comm.size
        for i in range(4):
            comm.send(comm.rank * 10 + i, nxt, tag=0)
            comm.send(np.full(2, comm.rank * 10 + i, np.float64), nxt, tag=1)
        ints = [comm.recv(prv, tag=0) for _ in range(4)]
        arrs = [float(comm.recv(prv, tag=1)[0]) for _ in range(4)]
        return ints, arrs

    def test_seeded_fuzz_preserves_channel_fifo(self):
        expected = run_spmd(4, self._ring)
        held_total = 0
        for seed in range(5):
            try:
                install(timeout=10.0, fuzz_seed=seed)
                results, comms = run_spmd_with_comms(4, self._ring)
            finally:
                uninstall()
            assert results == expected, f"fuzz seed {seed} changed results"
            held_total += sum(c.n_held for c in comms)
        assert held_total > 0  # the fuzzer actually perturbed delivery

    def test_fuzz_is_deterministic_per_seed(self):
        def run(seed):
            try:
                install(timeout=10.0, fuzz_seed=seed)
                _, comms = run_spmd_with_comms(4, self._ring)
            finally:
                uninstall()
            return [(c.n_held, c.n_shuffles) for c in comms]

        assert run(7) == run(7)

    def test_finalize_flushes_unreceived_messages(self):
        def kernel(comm):
            if comm.rank == 0:
                comm.send("tail", 1, tag=9)
            return None

        try:
            install(timeout=10.0, fuzz_seed=3)
            _, comms = run_spmd_with_comms(2, kernel)
        finally:
            uninstall()
        assert not comms[0]._pending  # _finalize drained held channels


# --------------------------------------------------------------------------
# freeze / verify primitives


class TestFreezeVerify:
    def test_roundtrip_unchanged(self):
        val = {"a": np.arange(5, dtype=np.float64), "b": [np.eye(2)]}
        tok = freeze(val)
        verify_frozen(val, tok, context="t")  # no raise

    def test_detects_array_mutation(self):
        a = np.arange(4, dtype=np.float64)
        tok = freeze(a)
        a[2] = 99.0
        with pytest.raises(CacheMutationError, match="mutated in place"):
            verify_frozen(a, tok)

    def test_detects_sparse_data_mutation(self):
        A = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        tok = freeze(A)
        A.data[0] = -1.0
        with pytest.raises(CacheMutationError):
            verify_frozen(A, tok)

    def test_detects_sparse_structure_mutation(self):
        A = sp.coo_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        tok = freeze(A)
        A.row[0] = 1
        with pytest.raises(CacheMutationError):
            verify_frozen(A, tok)

    def test_none_token_is_noop(self):
        a = np.zeros(3)
        verify_frozen(a, None)  # unsanitized call sites pass through

    def test_maybe_variants_follow_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert maybe_freeze(np.zeros(2)) is None
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        a = np.zeros(2)
        tok = maybe_freeze(a)
        assert isinstance(tok, str)
        a += 1
        with pytest.raises(CacheMutationError):
            maybe_verify(a, tok)


# --------------------------------------------------------------------------
# guards wired into the cache layers


class TestOpcacheGuard:
    def test_mutating_cached_geometry_fires_on_next_access(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        mesh = _mesh()
        sizes = mesh.element_sizes()
        mesh.element_sizes()  # clean hit verifies fine
        sizes *= 2.0  # in-place write to the memoized array  # lint: disable=R2
        with pytest.raises(CacheMutationError, match="element_sizes"):
            mesh.element_sizes()

    def test_token_adopted_for_pre_sanitize_entries(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        mesh = _mesh()
        centers = mesh.element_centers()  # cached without a token
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        mesh.element_centers()  # hit adopts a fingerprint
        centers[0, 0] += 1.0  # lint: disable=R2 (deliberate mutation)
        with pytest.raises(CacheMutationError):
            mesh.element_centers()

    def test_unsanitized_mutation_goes_unchecked(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        mesh = _mesh()
        mesh.element_sizes()[:] = -1.0
        mesh.element_sizes()  # no guard without REPRO_SANITIZE


class TestCachedScatterGuard:
    def test_pattern_mutation_detected(self, monkeypatch):
        from repro.mesh.opcache import CachedScatter

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rows = np.array([0, 1, 1, 2])
        cols = np.array([0, 0, 1, 2])
        scatter = CachedScatter(rows, cols, (3, 3))
        scatter.assemble(np.ones(4))  # clean replay
        scatter.indices[0] = 2  # corrupt the frozen sparsity pattern
        with pytest.raises(CacheMutationError, match="CachedScatter"):
            scatter.assemble(np.ones(4))


class TestLaggedPrecGuard:
    def test_hierarchy_mutation_detected_on_reuse(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        st = _stokes()
        lag = LaggedStokesPreconditioner(rtol=0.5)
        prec = lag.get(st)
        assert lag.get(st) is prec and lag.n_reuses == 1  # clean reuse
        prec.amg[0].levels[0].A.data[0] += 1.0  # poison the lagged setup
        with pytest.raises(CacheMutationError, match="AMG hierarchy"):
            lag.get(st)

    def test_invalidate_clears_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        st = _stokes()
        lag = LaggedStokesPreconditioner(rtol=0.5)
        prec = lag.get(st)
        prec.amg[0].levels[0].A.data[0] += 1.0
        lag.invalidate()
        assert lag.get(st) is not prec  # rebuild, no stale token to trip
        assert lag.n_builds == 2


class TestStructuralInvalidation:
    def test_adapt_still_invalidates_under_sanitizer(self, monkeypatch):
        from repro.rhea import MantleConvection, RheaConfig

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cfg = RheaConfig(
            initial_level=2,
            picard_iterations=2,
            adapt_every=1,
            stokes_tol=1e-8,
            max_level=3,
            target_elements=100,
        )
        sim = MantleConvection(cfg)
        sim.solve_stokes()
        old_mesh = sim.mesh
        assert len(operator_cache(old_mesh).tokens) > 0
        sim.adapt()
        assert sim.mesh is not old_mesh
        cache = operator_cache(sim.mesh)
        assert cache is not operator_cache(old_mesh)
        # nothing carries over: only what adapt() itself rebuilt is present
        assert "Z3" not in cache.store
        assert set(cache.tokens) == set(cache.store)
        sim.solve_stokes()  # repopulates cleanly: no mutation alarms


# --------------------------------------------------------------------------
# direct construction (no factory) still works


class TestDirectConstruction:
    def test_checked_comm_single_rank_inline(self):
        from repro.parallel.simcomm import SimWorld

        world = SimWorld(1)
        comm = CheckedComm(world, 0, timeout=1.0)
        assert comm.allreduce(3) == 3
        assert comm.allgather("x") == ["x"]
        comm.barrier()

    def test_factory_builds_configured_comms(self):
        from repro.parallel.simcomm import SimWorld

        f = checked_comm_factory(timeout=2.5, fuzz_seed=11)
        comm = f(SimWorld(1), 0)
        assert comm.timeout == 2.5
        assert comm._rng is not None


# --------------------------------------------------------------------------
# REPRO_SANITIZE_TIMEOUT environment override


class TestTimeoutEnv:
    def test_env_overrides_default(self, monkeypatch):
        from repro.parallel.simcomm import SimWorld

        monkeypatch.setenv("REPRO_SANITIZE_TIMEOUT", "3.5")
        comm = CheckedComm(SimWorld(1), 0)
        assert comm.timeout == 3.5

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        from repro.parallel.simcomm import SimWorld

        monkeypatch.setenv("REPRO_SANITIZE_TIMEOUT", "3.5")
        comm = CheckedComm(SimWorld(1), 0, timeout=1.0)
        assert comm.timeout == 1.0

    def test_unset_env_keeps_default(self, monkeypatch):
        from repro.parallel.simcomm import SimWorld

        monkeypatch.delenv("REPRO_SANITIZE_TIMEOUT", raising=False)
        comm = CheckedComm(SimWorld(1), 0)
        assert comm.timeout == CheckedComm.DEFAULT_TIMEOUT

    def test_garbage_env_falls_back_to_default(self, monkeypatch):
        from repro.parallel.simcomm import SimWorld

        monkeypatch.setenv("REPRO_SANITIZE_TIMEOUT", "soon")
        comm = CheckedComm(SimWorld(1), 0)
        assert comm.timeout == CheckedComm.DEFAULT_TIMEOUT
