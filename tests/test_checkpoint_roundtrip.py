"""Property tests for checkpoint save -> restore round trips.

The contract under test: a snapshot taken on N ranks restores onto M
ranks for any N, M with the *identical* global octree (shards
concatenate in Morton order and repartition over the SFC) and bitwise
identical element-corner temperature — corner values replicate exactly
across ranks, so resharding never rounds.
"""

import numpy as np
import pytest

from repro.amr import ParAmrPipeline
from repro.checkpoint import (
    ShardIntegrityError,
    load_checkpoint,
    restore_pipeline,
    save_pipeline,
    sfc_segment,
)
from repro.mesh import node_keys
from repro.octree import gather_tree
from repro.parallel import run_spmd

# Parameters for which the adapted tree is bitwise P-invariant (the
# same regime as test_amr_pipeline::test_p_invariant_global_tree).
CYCLES, STEPS, TARGET = 2, 2, 250


def _state(comm, pipe):
    """Rank-count-independent fingerprint of the distributed state:
    gathered global tree + owned (node Morton key -> T) pairs."""
    g = gather_tree(pipe.pt)
    pm = pipe.pm
    ks = node_keys(pm.mesh.node_coords_int[pm.mesh.indep_nodes])
    mine = pm.node_owner[pm.mesh.indep_nodes] == comm.rank
    return {
        "keys": g.keys.copy(),
        "levels": g.levels.copy(),
        "node_keys": ks[mine],
        "T": pipe.T[mine].copy(),
        "steps": pipe.steps_taken,
        "cycles": pipe.cycles_done,
        "time": pipe.sim_time,
    }


def _field_map(outs):
    fm = {}
    for o in outs:
        for k, v in zip(o["node_keys"], o["T"]):
            fm[int(k)] = v
    return fm


def _run_and_save(n_ranks, root):
    def kernel(comm):
        pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
        pipe.run_cycles(n_cycles=CYCLES, steps_per_cycle=STEPS, target=TARGET)
        save_pipeline(pipe, root)
        return _state(comm, pipe)

    return run_spmd(n_ranks, kernel)


def _restore(m_ranks, root):
    def kernel(comm):
        return _state(comm, restore_pipeline(comm, root))

    return run_spmd(m_ranks, kernel)


class TestSfcSegment:
    @pytest.mark.parametrize("total", [0, 1, 7, 64, 251])
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7])
    def test_partition_is_contiguous_and_balanced(self, total, size):
        hi_prev = 0
        for rank in range(size):
            lo, hi = sfc_segment(total, size, rank)
            assert lo == hi_prev  # contiguous, in rank order
            assert 0 <= hi - lo <= total // size + 1
            hi_prev = hi
        assert hi_prev == total  # full cover


class TestIdentityRoundTrip:
    def test_serial_save_restore_is_bitwise(self, tmp_path):
        root = str(tmp_path / "ck")
        saved = _run_and_save(1, root)[0]
        out = _restore(1, root)[0]
        np.testing.assert_array_equal(out["keys"], saved["keys"])
        np.testing.assert_array_equal(out["levels"], saved["levels"])
        np.testing.assert_array_equal(out["node_keys"], saved["node_keys"])
        # identity: every temperature dof bit-for-bit
        np.testing.assert_array_equal(out["T"], saved["T"])
        assert out["steps"] == saved["steps"]
        assert out["cycles"] == saved["cycles"]
        assert out["time"] == saved["time"]


class TestReshardRoundTrip:
    @pytest.mark.parametrize("n_save", [1, 2, 3, 4])
    def test_restore_on_any_rank_count(self, n_save, tmp_path):
        root = str(tmp_path / "ck")
        saved = _run_and_save(n_save, root)
        ref_map = _field_map(saved)
        for m in [1, 2, 3, 4]:
            outs = _restore(m, root)
            for o in outs:
                # Morton-order preservation: the concatenated global
                # tree is identical whatever the restore rank count
                np.testing.assert_array_equal(o["keys"], saved[0]["keys"])
                np.testing.assert_array_equal(o["levels"], saved[0]["levels"])
                assert o["steps"] == saved[0]["steps"]
                assert o["cycles"] == saved[0]["cycles"]
            got_map = _field_map(outs)
            assert got_map.keys() == ref_map.keys()
            # bitwise: element-corner replication makes resharding exact
            assert all(got_map[k] == ref_map[k] for k in ref_map)


class TestSanitizeIntegration:
    def test_frozen_token_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        root = str(tmp_path / "ck")
        saved = _run_and_save(2, root)
        manifest, _ = load_checkpoint(root)
        assert all(s.frozen is not None for s in manifest.shards)
        outs = _restore(3, root)
        assert _field_map(outs).keys() == _field_map(saved).keys()

    def test_tampered_frozen_token_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        root = str(tmp_path / "ck")
        _run_and_save(1, root)
        import json
        import os

        from repro.checkpoint import resolve_checkpoint
        from repro.checkpoint.format import MANIFEST_NAME

        path = resolve_checkpoint(root)
        mpath = os.path.join(path, MANIFEST_NAME)
        with open(mpath) as fh:
            doc = json.load(fh)
        doc["shards"][0]["frozen"] = "0" * len(doc["shards"][0]["frozen"])
        with open(mpath, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(ShardIntegrityError):
            load_checkpoint(root)
