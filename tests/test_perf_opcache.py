"""Tests for the setup-amortization layer: operator cache, cached
scatter assembly, lagged preconditioner, warm starts, and the perf
regression mini-suite."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mesh.opcache import (
    CachedScatter,
    cache_disabled,
    cache_stats,
    operator_cache,
    reset_cache_stats,
)
from repro.octree import LinearOctree
from repro.rhea import MantleConvection, RheaConfig


class TestCachedScatter:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_coo_assembly(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 40, 35
        nnz = 500
        rows = rng.integers(0, m, nnz)
        cols = rng.integers(0, n, nnz)
        scatter = CachedScatter(rows, cols, (m, n))
        for _ in range(3):
            data = rng.standard_normal(nnz)
            A = scatter.assemble(data)
            B = sp.coo_matrix((data, (rows, cols)), shape=(m, n)).tocsr()
            B.sum_duplicates()
            B.sort_indices()
            assert np.array_equal(A.indptr, B.indptr)
            assert np.array_equal(A.indices, B.indices)
            np.testing.assert_allclose(A.data, B.data, rtol=1e-15)

    def test_replay_does_not_mutate_pattern(self):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 10, 60)
        cols = rng.integers(0, 10, 60)
        scatter = CachedScatter(rows, cols, (10, 10))
        A1 = scatter.assemble(np.ones(60))
        idx = scatter.indices.copy()
        # operations that would normally canonicalize in place
        _ = A1 @ np.ones(10)
        _ = A1.T @ A1
        A2 = scatter.assemble(np.ones(60))
        assert np.array_equal(scatter.indices, idx)
        assert np.array_equal(A1.toarray(), A2.toarray())


def _mini_config(**kw):
    base = dict(
        initial_level=2,
        picard_iterations=2,
        adapt_every=1,
        stokes_tol=1e-8,
    )
    base.update(kw)
    return RheaConfig(**base)


def _three_steps(cfg):
    sim = MantleConvection(cfg, tree=LinearOctree.uniform(cfg.initial_level))
    iters = 0
    for _ in range(3):
        stats = sim.solve_stokes()
        iters += stats["minres_iterations"]
        sim.advance_temperature(1)
    return sim, iters


class TestCacheTransparency:
    def test_bitwise_identical_on_off(self):
        """Memoization must never change arithmetic: a 3-step convection
        run with the cache on and off produces bitwise-identical fields.
        (Lag rtol=0.0 reuses the AMG hierarchy only for bitwise-unchanged
        viscosity, which is itself value-transparent.)"""
        on, it_on = _three_steps(
            _mini_config(cache_operators=True, prec_lag_rtol=0.0)
        )
        off, it_off = _three_steps(
            _mini_config(cache_operators=False, prec_lag_rtol=0.0)
        )
        assert it_on == it_off
        assert np.array_equal(on.T, off.T)
        assert np.array_equal(on.u, off.u)
        assert on.vrms() == off.vrms()

    def test_cache_counters(self):
        reset_cache_stats()
        sim, _ = _three_steps(_mini_config())
        stats = cache_stats()
        assert stats["hits"] > 0 and stats["misses"] > 0
        local = operator_cache(sim.mesh)
        assert local.hits > 0

    def test_disabled_context_bypasses_store(self):
        sim = MantleConvection(_mini_config())
        cache = operator_cache(sim.mesh)
        with cache_disabled():
            val = cache.get("probe", lambda: np.arange(3))
        assert "probe" not in cache.store
        assert np.array_equal(val, np.arange(3))


class TestInvalidation:
    def test_adapt_produces_fresh_cache(self):
        """Structural invalidation: adapt() yields a new mesh object and
        with it an empty cache — nothing survives from the old mesh."""
        cfg = _mini_config(max_level=3, target_elements=100)
        sim = MantleConvection(cfg)
        sim.solve_stokes()
        old_mesh = sim.mesh
        old_cache = operator_cache(old_mesh)
        assert len(old_cache.store) > 0
        sim.adapt()
        assert sim.mesh is not old_mesh
        new_cache = operator_cache(sim.mesh)
        assert new_cache is not old_cache
        assert "Z3" not in new_cache.store  # no Stokes operators carried over
        # a solve on the adapted mesh repopulates with correctly-sized ops
        sim.solve_stokes()
        Z3_old = old_cache.store["Z3"]
        Z3_new = new_cache.store["Z3"]
        assert Z3_new.shape[0] == 3 * sim.mesh.n_nodes
        assert Z3_new.shape != Z3_old.shape

    def test_lagged_prec_rebuilds_after_adapt(self):
        cfg = _mini_config(max_level=3, target_elements=100)
        sim = MantleConvection(cfg)
        sim.solve_stokes()
        builds0 = sim._prec_lag.n_builds
        sim.adapt()
        sim.solve_stokes()
        assert sim._prec_lag.n_builds > builds0


class TestLaggedPreconditioner:
    def test_iterations_within_20_percent_of_rebuild(self):
        """Acceptance bound: lagging the AMG setup may not inflate MINRES
        iterations by more than 20% over rebuild-every-pass."""
        _, it_lag = _three_steps(_mini_config(prec_lag_rtol=0.3))
        _, it_rebuild = _three_steps(_mini_config(prec_lag_rtol=None))
        assert it_lag <= 1.2 * it_rebuild

    def test_reuse_happens_between_picard_passes(self):
        sim, _ = _three_steps(_mini_config(prec_lag_rtol=0.5))
        assert sim._prec_lag.n_reuses > 0
        assert sim._prec_lag.n_builds >= 1

    def test_zero_rtol_reuses_only_bitwise_equal_viscosity(self):
        from repro.solvers import LaggedStokesPreconditioner

        lag = LaggedStokesPreconditioner(rtol=0.0)
        eta = np.array([1.0, 2.0, 3.0])
        lag._eta_ref = eta.copy()
        assert lag.drift(eta) == 0.0
        assert lag.drift(eta * (1 + 1e-15)) > 0.0
        assert lag.drift(np.ones(5)) == np.inf  # shape change


class TestWarmStart:
    def test_warm_start_reduces_total_iterations(self):
        _, it_warm = _three_steps(_mini_config(warm_start=True, prec_lag_rtol=None))
        _, it_cold = _three_steps(_mini_config(warm_start=False, prec_lag_rtol=None))
        assert it_warm <= it_cold

    def test_minres_zero_x0_matches_cold_start(self):
        """x0 of zeros must take exactly the legacy cold-start path."""
        from repro.solvers import minres

        rng = np.random.default_rng(0)
        A = rng.standard_normal((30, 30))
        A = A + A.T + 30 * np.eye(30)
        b = rng.standard_normal(30)
        r_none = minres(A, b, tol=1e-10)
        r_zero = minres(A, b, x0=np.zeros(30), tol=1e-10)
        assert r_none.iterations == r_zero.iterations
        assert np.array_equal(r_none.x, r_zero.x)

    def test_minres_warm_start_converges_to_same_solution(self):
        from repro.solvers import minres

        rng = np.random.default_rng(1)
        A = rng.standard_normal((40, 40))
        A = A + A.T + 40 * np.eye(40)
        b = rng.standard_normal(40)
        x_exact = np.linalg.solve(A, b)
        cold = minres(A, b, tol=1e-10)
        warm = minres(A, b, x0=x_exact + 1e-6 * rng.standard_normal(40), tol=1e-10)
        assert warm.converged and cold.converged
        assert warm.iterations < cold.iterations
        np.testing.assert_allclose(warm.x, x_exact, rtol=0, atol=1e-7)


class TestPerfSuiteSmoke:
    def test_smoke_suite_emits_all_scenarios(self):
        from repro.perf.regress import run_suite

        out = run_suite(smoke=True)
        sc = out["scenarios"]
        assert set(sc) == {
            "stokes_repeat",
            "convection_mini",
            "dg_cubed_sphere",
            "amg_setup",
        }
        assert sc["stokes_repeat"]["cache_hits"] > 0
        assert sc["convection_mini"]["cache_hits"] > 0
        assert sc["convection_mini"]["prec_reuses"] >= 0
        assert sc["dg_cubed_sphere"]["rate_bitwise_equal"] is True
        assert sc["amg_setup"]["n_agg_vectorized"] <= sc["amg_setup"]["n_agg_reference"]
        assert sc["stokes_repeat"]["vrms_rel_diff"] < 1e-4

    def test_checkpoint_suite_smoke(self, tmp_path, monkeypatch):
        from repro.perf.regress import main, run_checkpoint_suite

        out = run_checkpoint_suite(smoke=True)
        co = out["scenarios"]["checkpoint_overhead"]
        assert 0.0 < co["snapshot_fraction"] < 1.0
        assert co["shard_bytes_per_element"] > 0
        assert co["restore_ranks"] != co["ranks"]
        assert co["restore_s"] > 0
        # CLI path writes the JSON artifact
        monkeypatch.chdir(tmp_path)
        assert main(["--suite", "checkpoint", "--smoke"]) == 0
        assert (tmp_path / "BENCH_checkpoint_smoke.json").exists()
