"""Analytic checks of the tensor-product element matrices."""

import numpy as np

from repro.fem.hexops import ElementOps

OPS = ElementOps()
SIZES = np.array([[1.0, 1.0, 1.0], [0.5, 0.25, 2.0]])


def corner_coords(sizes):
    """(n, 8, 3) vertex coordinates of elements anchored at the origin."""
    out = np.zeros((len(sizes), 8, 3))
    for i in range(8):
        out[:, i, 0] = (i & 1) * sizes[:, 0]
        out[:, i, 1] = ((i >> 1) & 1) * sizes[:, 1]
        out[:, i, 2] = ((i >> 2) & 1) * sizes[:, 2]
    return out


class TestMass:
    def test_total_mass_is_volume(self):
        M = OPS.mass(SIZES)
        np.testing.assert_allclose(M.sum(axis=(1, 2)), SIZES.prod(axis=1))

    def test_symmetric_positive_definite(self):
        M = OPS.mass(SIZES)
        for Me in M:
            np.testing.assert_allclose(Me, Me.T)
            assert np.linalg.eigvalsh(Me).min() > 0

    def test_coefficient_scaling(self):
        M1 = OPS.mass(SIZES, 1.0)
        M3 = OPS.mass(SIZES, np.array([3.0, 5.0]))
        np.testing.assert_allclose(M3[0], 3 * M1[0])
        np.testing.assert_allclose(M3[1], 5 * M1[1])

    def test_linear_exactness(self):
        """v^T M u with nodal linears equals the exact integral of the
        product over the box (trilinear quadrature is exact to bilinear)."""
        sizes = np.array([[2.0, 3.0, 4.0]])
        M = OPS.mass(sizes)[0]
        c = corner_coords(sizes)[0]
        u = c[:, 0]  # u = x
        one = np.ones(8)
        # int_box x = hx^2/2 * hy * hz
        np.testing.assert_allclose(one @ M @ u, 2.0**2 / 2 * 3 * 4)


class TestStiffness:
    def test_annihilates_constants(self):
        K = OPS.stiffness(SIZES)
        np.testing.assert_allclose(K @ np.ones(8), 0.0, atol=1e-14)

    def test_dirichlet_energy_of_linear(self):
        """u = x on a box: integral |grad u|^2 = volume."""
        sizes = np.array([[2.0, 3.0, 4.0]])
        K = OPS.stiffness(sizes)[0]
        u = corner_coords(sizes)[0][:, 0]
        np.testing.assert_allclose(u @ K @ u, 24.0)

    def test_spd_on_mean_zero(self):
        K = OPS.stiffness(SIZES, np.array([1.0, 7.0]))
        for Ke in K:
            np.testing.assert_allclose(Ke, Ke.T, atol=1e-14)
            w = np.linalg.eigvalsh(Ke)
            assert w[0] > -1e-12 and w[1] > 1e-12  # exactly one zero mode


class TestConvection:
    def test_constant_velocity_linear_field(self):
        """sum_i [C u]_i = int a . grad(u); for u = x, a = (2,0,0) this is
        2 * volume."""
        sizes = np.array([[2.0, 3.0, 4.0]])
        C = OPS.convection(sizes, np.array([[2.0, 0.0, 0.0]]))[0]
        u = corner_coords(sizes)[0][:, 0]
        np.testing.assert_allclose(np.ones(8) @ C @ u, 2.0 * 24.0)

    def test_annihilates_constants(self):
        C = OPS.convection(SIZES, np.array([[1.0, 2.0, 3.0], [0.5, 0, 0]]))
        np.testing.assert_allclose(C @ np.ones(8), 0.0, atol=1e-14)

    def test_supg_mass_is_transpose(self):
        vel = np.array([[1.0, -2.0, 0.5], [3.0, 0.0, 1.0]])
        C = OPS.convection(SIZES, vel)
        S = OPS.supg_mass(SIZES, vel)
        np.testing.assert_allclose(S, np.swapaxes(C, 1, 2))


class TestGradGrad:
    def test_matches_streamline_energy(self):
        """u = a.x (linear along the wind): u^T GG u = |a|^4 * volume,
        since (a.grad u) = |a|^2 everywhere."""
        sizes = np.array([[2.0, 3.0, 4.0]])
        a = np.array([[1.0, 2.0, -1.0]])
        GG = OPS.grad_grad(sizes, a)[0]
        c = corner_coords(sizes)[0]
        u = c @ a[0]
        expect = (a[0] @ a[0]) ** 2 * 24.0
        np.testing.assert_allclose(u @ GG @ u, expect)

    def test_psd(self):
        GG = OPS.grad_grad(SIZES, np.array([[1.0, 1.0, 1.0], [0.1, -2.0, 0.4]]))
        for Ge in GG:
            np.testing.assert_allclose(Ge, Ge.T, atol=1e-13)
            assert np.linalg.eigvalsh(Ge).min() > -1e-12


class TestStrainStiffness:
    def test_symmetry(self):
        K = OPS.strain_stiffness(SIZES, np.array([1.0, 10.0]))
        for Ke in K:
            np.testing.assert_allclose(Ke, Ke.T, atol=1e-12)

    def test_six_rigid_body_modes(self):
        """The strain form annihilates exactly the 6 rigid motions
        (3 translations + 3 linearized rotations)."""
        sizes = np.array([[1.0, 1.0, 1.0]])
        K = OPS.strain_stiffness(sizes, np.array([2.0]))[0]
        w = np.linalg.eigvalsh(K)
        assert np.sum(np.abs(w) < 1e-10) == 6
        assert w.min() > -1e-10

    def test_rotation_mode_explicit(self):
        sizes = np.array([[1.0, 1.0, 1.0]])
        K = OPS.strain_stiffness(sizes, np.array([1.0]))[0]
        c = corner_coords(sizes)[0]
        # rotation about z: u = (-y, x, 0); component-blocked layout
        u = np.concatenate([-c[:, 1], c[:, 0], np.zeros(8)])
        np.testing.assert_allclose(K @ u, 0.0, atol=1e-12)

    def test_shear_energy(self):
        """u = (y, 0, 0): strain form energy = 2 eta int e:e = eta * V."""
        sizes = np.array([[2.0, 3.0, 4.0]])
        eta = 5.0
        K = OPS.strain_stiffness(sizes, np.array([eta]))[0]
        c = corner_coords(sizes)[0]
        u = np.concatenate([c[:, 1], np.zeros(8), np.zeros(8)])
        # (grad u + grad u^T):grad u for u=(y,0,0): e12=e21=1/2 ->
        # integrand eta * (du1/dy)*(du1/dy + du2/dx)= eta*1 -> eta*V
        np.testing.assert_allclose(u @ K @ u, eta * 24.0)

    def test_viscosity_scaling(self):
        K1 = OPS.strain_stiffness(SIZES, np.array([1.0, 1.0]))
        K9 = OPS.strain_stiffness(SIZES, np.array([9.0, 9.0]))
        np.testing.assert_allclose(K9, 9 * K1)


class TestDivergence:
    def test_divergence_of_linear_flow(self):
        """u = (x, 0, 0): B u tested with 1 gives int div u = volume."""
        sizes = np.array([[2.0, 3.0, 4.0]])
        B = OPS.divergence(sizes)[0]
        c = corner_coords(sizes)[0]
        u = np.concatenate([c[:, 0], np.zeros(8), np.zeros(8)])
        np.testing.assert_allclose(np.ones(8) @ B @ u, 24.0)

    def test_divergence_free_shear(self):
        sizes = np.array([[1.0, 1.0, 1.0]])
        B = OPS.divergence(sizes)[0]
        c = corner_coords(sizes)[0]
        u = np.concatenate([c[:, 1], np.zeros(8), np.zeros(8)])  # u=(y,0,0)
        np.testing.assert_allclose(B @ u, 0.0, atol=1e-14)


class TestPressureStabilization:
    def test_annihilates_constants(self):
        C = OPS.pressure_stabilization(SIZES, np.array([1.0, 100.0]))
        np.testing.assert_allclose(C @ np.ones(8), 0.0, atol=1e-13)

    def test_psd(self):
        C = OPS.pressure_stabilization(SIZES, np.array([1.0, 0.01]))
        for Ce in C:
            np.testing.assert_allclose(Ce, Ce.T, atol=1e-13)
            assert np.linalg.eigvalsh(Ce).min() > -1e-12

    def test_inverse_viscosity_scaling(self):
        C1 = OPS.pressure_stabilization(SIZES, np.array([1.0, 1.0]))
        C4 = OPS.pressure_stabilization(SIZES, np.array([4.0, 4.0]))
        np.testing.assert_allclose(C1, 4 * C4)
