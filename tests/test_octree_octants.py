"""Unit tests for OctantArray (repro.octree.octants)."""

import numpy as np
import pytest

from repro.octree import MAX_LEVEL, ROOT_LEN, OctantArray, directions_for


class TestConstructors:
    def test_root(self):
        r = OctantArray.root()
        assert len(r) == 1
        assert r.level[0] == 0
        assert r.lengths()[0] == ROOT_LEN
        assert r.is_valid()

    def test_empty(self):
        e = OctantArray.empty()
        assert len(e) == 0
        assert e.is_valid()

    def test_uniform_count_and_order(self):
        u = OctantArray.uniform(2)
        assert len(u) == 64
        assert u.is_valid()
        keys = u.keys()
        assert np.all(np.diff(keys.astype(object)) > 0)  # strictly increasing

    def test_uniform_level_bounds(self):
        with pytest.raises(ValueError):
            OctantArray.uniform(-1)
        with pytest.raises(ValueError):
            OctantArray.uniform(MAX_LEVEL + 1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OctantArray([0, 1], [0], [0], [0])


class TestTreeRelations:
    def test_children_cover_parent(self):
        p = OctantArray([0], [0], [0], [3])
        c = p.children()
        assert len(c) == 8
        assert np.all(c.level == 4)
        # children tile the parent's key interval exactly
        start, end = c.sort().key_ranges()
        ps, pe = p.key_ranges()
        assert start[0] == ps[0] and end[-1] == pe[0]
        assert np.all(end[:-1] == start[1:])

    def test_children_morton_order_within_family(self):
        p = OctantArray.uniform(1)
        c = p.children()
        for i in range(len(p)):
            fam = c[8 * i : 8 * i + 8]
            k = fam.keys()
            assert np.all(np.diff(k.astype(object)) > 0)

    def test_parent_of_children_is_self(self):
        p = OctantArray.uniform(2)
        c = p.children()
        back = c.parents()
        # every child's parent equals the original octant
        np.testing.assert_array_equal(back.x, np.repeat(p.x, 8))
        np.testing.assert_array_equal(back.level, np.repeat(p.level, 8))

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            OctantArray.root().parents()

    def test_cannot_refine_past_max_level(self):
        o = OctantArray([0], [0], [0], [MAX_LEVEL])
        with pytest.raises(ValueError):
            o.children()

    def test_sibling_ids(self):
        p = OctantArray([0], [0], [0], [0])
        c = p.children()
        np.testing.assert_array_equal(c.sibling_ids(), np.arange(8))

    def test_ancestors_at(self):
        o = OctantArray([ROOT_LEN // 2 + ROOT_LEN // 4], [0], [0], [2])
        a = o.ancestors_at(1)
        assert a.x[0] == ROOT_LEN // 2 and a.level[0] == 1
        same = o.ancestors_at(2)
        assert same.x[0] == o.x[0]
        with pytest.raises(ValueError):
            o.ancestors_at(3)


class TestGeometry:
    def test_centers_of_root(self):
        np.testing.assert_allclose(OctantArray.root().centers(), [[0.5, 0.5, 0.5]])

    def test_corners_unit(self):
        c = OctantArray.root().corners_unit()
        assert c.shape == (1, 8, 3)
        np.testing.assert_allclose(c[0, 0], [0, 0, 0])
        np.testing.assert_allclose(c[0, 7], [1, 1, 1])
        np.testing.assert_allclose(c[0, 1], [1, 0, 0])  # x fastest

    def test_neighbor_anchors_and_domain_mask(self):
        u = OctantArray.uniform(1)  # 8 octants of half size
        nx, ny, nz, ok = u.neighbor_anchors(np.array([1, 0, 0]))
        # the 4 octants at x=0 have a valid +x neighbor, the rest fall out
        assert ok.sum() == 4
        assert np.all(nx[ok] == ROOT_LEN // 2)

    def test_is_valid_rejects_misaligned(self):
        o = OctantArray([3], [0], [0], [1])  # anchor not multiple of length
        assert not o.is_valid()

    def test_is_valid_rejects_out_of_domain(self):
        o = OctantArray([ROOT_LEN], [0], [0], [1])
        assert not o.is_valid()


class TestProtocol:
    def test_sort_by_key(self):
        u = OctantArray.uniform(1)
        rev = u[np.arange(len(u))[::-1]]
        s = rev.sort()
        assert s.equals(u)

    def test_concat_and_getitem(self):
        a = OctantArray.uniform(1)
        b = OctantArray.concat([a[:3], a[3:]])
        assert b.equals(a)
        assert OctantArray.concat([]).equals(OctantArray.empty())

    def test_copy_independent(self):
        a = OctantArray.uniform(1)
        b = a.copy()
        b.x[0] = 99
        assert a.x[0] != 99

    def test_equals(self):
        a = OctantArray.uniform(1)
        assert a.equals(a.copy())
        assert not a.equals(a[:4])


class TestDirections:
    def test_counts(self):
        assert len(directions_for("face")) == 6
        assert len(directions_for("edge")) == 18
        assert len(directions_for("corner")) == 26

    def test_unknown(self):
        with pytest.raises(ValueError):
            directions_for("diagonal")
