"""Tests for RHEA viscosity laws and strain-rate computation."""

import numpy as np
import pytest

from repro.mesh import extract_mesh
from repro.octree import LinearOctree
from repro.rhea import (
    ArrheniusViscosity,
    YieldingViscosity,
    element_temperature,
    strain_rate_invariant,
)


class TestArrhenius:
    def test_isoviscous(self):
        law = ArrheniusViscosity(eta0=2.0, E=0.0)
        np.testing.assert_allclose(law(np.array([0.0, 0.5, 1.0]), np.zeros(3)), 2.0)

    def test_temperature_weakening(self):
        law = ArrheniusViscosity(eta0=1.0, E=6.9)
        eta = law(np.array([0.0, 1.0]), np.zeros(2))
        assert eta[0] / eta[1] == pytest.approx(np.exp(6.9))

    def test_clipping(self):
        law = ArrheniusViscosity(eta0=1.0, E=100.0, eta_min=1e-3, eta_max=10.0)
        eta = law(np.array([0.0, 1.0]), np.zeros(2))
        assert eta[1] == 1e-3


class TestYielding:
    def test_three_layers(self):
        law = YieldingViscosity()
        T = np.zeros(3)
        z = np.array([0.95, 0.85, 0.5])
        eta = law(T, z)
        np.testing.assert_allclose(eta, [10.0, 0.8, 50.0])

    def test_four_orders_of_magnitude(self):
        """The paper's regime: viscosities range over ~4 orders of
        magnitude across temperature and layering."""
        law = YieldingViscosity()
        T = np.array([1.0, 0.0])
        z = np.array([0.85, 0.5])  # hot aesthenosphere vs cold lower mantle
        eta = law(T, z)
        assert eta[1] / eta[0] > 1e4

    def test_yielding_caps_stress(self):
        law = YieldingViscosity(sigma_y=1.0)
        T = np.zeros(2)
        z = np.array([0.95, 0.95])
        edot = np.array([1e-6, 100.0])  # slow vs fast deformation
        eta = law(T, z, edot)
        assert eta[0] == pytest.approx(10.0)  # unyielded
        assert eta[1] == pytest.approx(1.0 / 200.0)  # sigma_y / (2 edot)

    def test_yielding_only_in_lithosphere(self):
        law = YieldingViscosity(sigma_y=1e-6)
        T = np.zeros(2)
        z = np.array([0.5, 0.95])
        edot = np.array([100.0, 100.0])
        eta = law(T, z, edot)
        assert eta[0] == pytest.approx(50.0)  # deep: no yielding
        assert eta[1] < 1e-3

    def test_yielded_mask(self):
        law = YieldingViscosity(sigma_y=1.0)
        mask = law.yielded_mask(
            np.zeros(2), np.array([0.95, 0.95]), np.array([1e-6, 100.0])
        )
        np.testing.assert_array_equal(mask, [False, True])


class TestStrainRate:
    @staticmethod
    def mesh():
        return extract_mesh(LinearOctree.uniform(2))

    def test_rigid_translation_zero(self):
        m = self.mesh()
        u = np.tile([1.0, 2.0, 3.0], (m.n_nodes, 1))
        np.testing.assert_allclose(strain_rate_invariant(m, u), 0.0, atol=1e-12)

    def test_rigid_rotation_zero(self):
        m = self.mesh()
        c = m.node_coords()
        u = np.stack([-c[:, 1], c[:, 0], np.zeros(m.n_nodes)], axis=1)
        np.testing.assert_allclose(strain_rate_invariant(m, u), 0.0, atol=1e-12)

    def test_simple_shear(self):
        """u = (2y, 0, 0): e_xy = 1, second invariant sqrt(0.5*2*1) = 1."""
        m = self.mesh()
        c = m.node_coords()
        u = np.stack([2 * c[:, 1], np.zeros(m.n_nodes), np.zeros(m.n_nodes)], axis=1)
        np.testing.assert_allclose(strain_rate_invariant(m, u), 1.0, atol=1e-12)

    def test_uniaxial_extension(self):
        """u = (x, 0, 0): e = diag(1,0,0), invariant sqrt(1/2)."""
        m = self.mesh()
        c = m.node_coords()
        u = np.stack([c[:, 0], np.zeros(m.n_nodes), np.zeros(m.n_nodes)], axis=1)
        np.testing.assert_allclose(
            strain_rate_invariant(m, u), np.sqrt(0.5), atol=1e-12
        )

    def test_shape_check(self):
        m = self.mesh()
        with pytest.raises(ValueError):
            strain_rate_invariant(m, np.zeros((3, m.n_nodes)))


class TestElementTemperature:
    def test_linear_gives_centers(self):
        m = extract_mesh(LinearOctree.uniform(1))
        c = m.node_coords()
        T = c[:, 2]
        np.testing.assert_allclose(
            element_temperature(m, T), m.element_centers()[:, 2], atol=1e-12
        )
