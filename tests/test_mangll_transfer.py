"""Tests for DG field transfer between nested forests."""

import numpy as np
import pytest

from repro.forest import Forest, cubed_sphere_connectivity, unit_cube
from repro.mangll import DGAdvection, dg_transfer, solid_body_rotation


def wind(x):
    return np.broadcast_to([1.0, 0.0, 0.0], x.shape).copy()


def make_pair(p=3, seed=0):
    """A forest and a refined+balanced version of it, with DG on both."""
    f1 = Forest.uniform(unit_cube(), 1)
    rng = np.random.default_rng(seed)
    f2, _ = f1.refine(rng.random(len(f1)) < 0.5).balance()
    dg1 = DGAdvection(f1, p, wind)
    dg2 = DGAdvection(f2, p, wind)
    return dg1, dg2


class TestRefinementTransfer:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_exact_for_polynomials(self, p):
        """Refinement transfer reproduces any degree-p tensor polynomial
        exactly (the polynomial space embeds)."""
        dg1, dg2 = make_pair(p=p)

        def poly(x):
            return (x[:, 0] ** p + 2 * x[:, 1] - x[:, 2] ** min(p, 2) + 0.5)

        u1 = poly(dg1.nodes())
        u2 = dg_transfer(dg1, u1, dg2)
        np.testing.assert_allclose(u2, poly(dg2.nodes()), atol=1e-10)

    def test_identity_on_same_forest(self):
        dg1, _ = make_pair()
        u = np.random.default_rng(1).standard_normal(dg1.n_dof)
        np.testing.assert_allclose(dg_transfer(dg1, u, dg1), u, atol=1e-12)

    def test_mass_preserved_under_refinement(self):
        """Exact embedding preserves integrals."""
        dg1, dg2 = make_pair(p=3, seed=2)
        u1 = np.exp(-np.sum((dg1.nodes() - 0.4) ** 2, axis=1) / 0.05)
        u2 = dg_transfer(dg1, u1, dg2)
        # not exactly equal (u1 is not a polynomial) but very close
        assert abs(dg1.total_mass(u1) - dg2.total_mass(u2)) < 2e-3 * abs(
            dg1.total_mass(u1)
        )


class TestCoarseningTransfer:
    def test_constants_preserved(self):
        dg1, dg2 = make_pair(p=2, seed=3)
        # coarsen: transfer from the finer dg2 back to dg1
        u2 = np.full(dg2.n_dof, 4.2)
        u1 = dg_transfer(dg2, u2, dg1)
        np.testing.assert_allclose(u1, 4.2, atol=1e-12)

    def test_linears_preserved(self):
        """Nodal injection samples exactly for fields continuous across
        the fine elements."""
        dg1, dg2 = make_pair(p=2, seed=4)

        def lin(x):
            return 2 * x[:, 0] - x[:, 1] + 0.25 * x[:, 2]

        u2 = lin(dg2.nodes())
        u1 = dg_transfer(dg2, u2, dg1)
        np.testing.assert_allclose(u1, lin(dg1.nodes()), atol=1e-10)


class TestValidation:
    def test_order_mismatch_rejected(self):
        f = Forest.uniform(unit_cube(), 1)
        dg1 = DGAdvection(f, 2, wind)
        dg2 = DGAdvection(f, 3, wind)
        with pytest.raises(ValueError):
            dg_transfer(dg1, np.zeros(dg1.n_dof), dg2)


class TestSphereTransfer:
    def test_round_trip_on_sphere(self):
        conn = cubed_sphere_connectivity(r_inner=0.6, r_outer=1.0)
        f1 = Forest.uniform(conn, 0)
        rng = np.random.default_rng(5)
        f2, _ = f1.refine(rng.random(len(f1)) < 0.4).balance()
        w = solid_body_rotation()
        dg1 = DGAdvection(f1, 2, w)
        dg2 = DGAdvection(f2, 2, w)
        u1 = np.exp(-np.sum((dg1.nodes() - 0.5) ** 2, axis=1) / 0.1)
        u2 = dg_transfer(dg1, u1, dg2)
        back = dg_transfer(dg2, u2, dg1)
        # refine-then-coarsen is the identity on the coarse space
        np.testing.assert_allclose(back, u1, atol=1e-9)
