"""Matrix-free geometric multigrid: hierarchy, transfers, smoother,
V-cycle, and the GMG Stokes block preconditioner.

The load-bearing invariants pinned here:

- the coarsened forest yields *nested* FE spaces (every fine element has
  exactly one coarse ancestor-or-self; constant fields survive the
  viscosity averaging exactly),
- trilinear prolongation is the exact subspace embedding (identity at
  coincident nodes, exact on globally linear fields),
- the matrix-free level operator and its closed-form diagonal match the
  assembled Dirichlet-constrained scalar Poisson operator,
- one V-cycle is an SPD operator (so MINRES accepts it),
- the full preconditioner solves Stokes to the same answer as the AMG
  path with a comparable iteration count and *zero* sparse assembly, and
- the whole solve is bitwise identical across rank counts and SPMD
  backends under ``REPRO_SANITIZE=1``.
"""

import numpy as np
import pytest

from repro.fem import (
    ElementOps,
    StokesSystem,
    apply_dirichlet,
    assemble_scalar,
    assembly_counts,
    reset_assembly_counts,
)
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.solvers import (
    ChebyshevSmoother,
    GMGStokesPreconditioner,
    LaggedStokesPreconditioner,
    MatFreeScalarPoisson,
    StokesBlockPreconditioner,
    coarse_viscosities,
    mesh_hierarchy,
    minres,
    prolongation,
)
from repro.solvers.gmg import component_bc_dofs

OPS = ElementOps()


def _mesh(level=2, frac=0.25, seed=0):
    """A hanging-node test mesh: uniform base + random refinement."""
    tree = LinearOctree.uniform(level)
    if frac:
        rng = np.random.default_rng(seed)
        tree = tree.refine(rng.random(len(tree)) < frac)
        tree = balance(tree, "corner").tree
    return extract_mesh(tree, (1.0, 1.0, 1.0))


def _problem(mesh, contrast=1e4):
    """Smooth high-contrast viscosity blob + a divergence-free-ish load."""
    c = mesh.node_coords()[mesh.element_nodes].mean(axis=1)
    r2 = ((c - 0.5) ** 2).sum(axis=1)
    eta = np.exp(np.log(contrast) * np.exp(-r2 / 0.08))
    xyz = mesh.node_coords()
    bf = np.zeros((mesh.n_nodes, 3))
    bf[:, 2] = np.sin(np.pi * xyz[:, 0]) * np.cos(np.pi * xyz[:, 2])
    return eta, bf


def _assembled_block(mesh, eta, bc_kind, axis):
    """Reference: the assembled Dirichlet-constrained Poisson block."""
    K = assemble_scalar(mesh, OPS.stiffness(mesh.element_sizes(), eta))
    Ka, _ = apply_dirichlet(K, None, component_bc_dofs(mesh, bc_kind, axis))
    return Ka


class TestHierarchy:
    def test_levels_shrink_and_nest(self):
        mesh = _mesh(level=2, frac=0.3)
        hier = mesh_hierarchy(mesh, max_coarse=30)
        sizes = [m.n_independent for m in hier.meshes]
        assert len(sizes) >= 3
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        # nestedness: the mapped coarse element geometrically contains
        # the fine element (anchor and far corner both inside)
        for lvl, emap in enumerate(hier.elem_maps):
            lf = hier.meshes[lvl].leaves
            lc = hier.meshes[lvl + 1].leaves
            hf, hc = lf.lengths(), lc.lengths()[emap]
            for f, c in ((lf.x, lc.x[emap]), (lf.y, lc.y[emap]), (lf.z, lc.z[emap])):
                assert np.all(f >= c)
                assert np.all(f + hf <= c + hc)

    def test_constant_viscosity_preserved(self):
        mesh = _mesh()
        hier = mesh_hierarchy(mesh, max_coarse=30)
        etas = coarse_viscosities(hier, np.full(mesh.n_elements, 3.5))
        for e, m in zip(etas, hier.meshes):
            assert e.shape == (m.n_elements,)
            assert np.array_equal(e, np.full(m.n_elements, 3.5))

    def test_cached_per_mesh(self):
        mesh = _mesh()
        assert mesh_hierarchy(mesh) is mesh_hierarchy(mesh)

    def test_requires_tree(self):
        mesh = _mesh(level=1, frac=0.0)
        object.__setattr__(mesh, "tree", None)
        with pytest.raises(ValueError, match="mesh.tree"):
            mesh_hierarchy(mesh)


class TestProlongation:
    @pytest.mark.parametrize("frac", [0.0, 0.35])
    def test_linear_fields_exact(self, frac):
        mesh = _mesh(level=2, frac=frac, seed=3)
        hier = mesh_hierarchy(mesh, max_coarse=30)
        mf, mc = hier.meshes[0], hier.meshes[1]
        P = prolongation(mf, mc)

        def lin(m):
            x = m.node_coords()[m.indep_nodes]
            return 1.0 + 2.0 * x[:, 0] - 3.0 * x[:, 1] + 0.5 * x[:, 2]

        assert np.max(np.abs(P @ lin(mc) - lin(mf))) < 1e-13

    @pytest.mark.parametrize("frac", [0.0, 0.35])
    def test_identity_at_coincident_nodes(self, frac):
        # coarse independent nodes are fine independent nodes, and the
        # embedding restricted to them is exactly the identity
        mesh = _mesh(level=2, frac=frac, seed=4)
        hier = mesh_hierarchy(mesh, max_coarse=30)
        mf, mc = hier.meshes[0], hier.meshes[1]
        P = prolongation(mf, mc)
        fpos = {
            tuple(c): i
            for i, c in enumerate(mf.node_coords_int[mf.indep_nodes].tolist())
        }
        idx = np.array(
            [fpos[tuple(c)] for c in mc.node_coords_int[mc.indep_nodes].tolist()]
        )
        rng = np.random.default_rng(0)
        uc = rng.standard_normal(mc.n_independent)
        uf = P @ uc
        assert np.array_equal(uf[idx], uc)
        # restriction round-trip through the injection is also exact
        assert np.array_equal((P.T @ uf)[np.argsort(idx)].shape, uc.shape)


class TestMatFreeOperator:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_apply_matches_assembled(self, axis):
        mesh = _mesh(level=2, frac=0.25, seed=1)
        eta, _ = _problem(mesh, contrast=1e4)
        bc_dofs = component_bc_dofs(mesh, "free_slip", axis)
        op = MatFreeScalarPoisson(mesh, eta, bc_dofs)
        Ka = _assembled_block(mesh, eta, "free_slip", axis)
        rng = np.random.default_rng(axis)
        x = rng.standard_normal(mesh.n_independent)
        scale = np.max(np.abs(Ka @ x))
        assert np.max(np.abs(op.apply(x) - Ka @ x)) < 1e-12 * scale

    def test_multicolumn_apply(self):
        mesh = _mesh(level=1, frac=0.5, seed=2)
        eta, _ = _problem(mesh)
        op = MatFreeScalarPoisson(
            mesh, eta, component_bc_dofs(mesh, "free_slip", 0)
        )
        rng = np.random.default_rng(0)
        X = rng.standard_normal((mesh.n_independent, 5))
        cols = np.stack([op.apply(X[:, j]) for j in range(5)], axis=1)
        assert np.array_equal(op.apply(X), cols)

    def test_diagonal_exact(self):
        mesh = _mesh(level=2, frac=0.25, seed=1)
        eta, _ = _problem(mesh, contrast=1e4)
        for axis in range(3):
            op = MatFreeScalarPoisson(
                mesh, eta, component_bc_dofs(mesh, "free_slip", axis)
            )
            ref = _assembled_block(mesh, eta, "free_slip", axis).diagonal()
            assert np.max(np.abs(op.diagonal() - ref)) < 1e-12 * np.max(ref)

    def test_viscosity_update_reweights(self):
        mesh = _mesh(level=1, frac=0.5, seed=2)
        eta, _ = _problem(mesh)
        op = MatFreeScalarPoisson(
            mesh, np.ones(mesh.n_elements), component_bc_dofs(mesh, "no_slip", 0)
        )
        op.update_viscosity(eta)
        fresh = MatFreeScalarPoisson(
            mesh, eta, component_bc_dofs(mesh, "no_slip", 0)
        )
        x = np.linspace(-1, 1, mesh.n_independent)
        assert np.array_equal(op.apply(x), fresh.apply(x))
        assert np.array_equal(op.diagonal(), fresh.diagonal())


class TestChebyshev:
    def test_eigenvalue_bounds(self):
        mesh = _mesh(level=1, frac=0.5, seed=5)
        eta, _ = _problem(mesh, contrast=1e2)
        op = MatFreeScalarPoisson(
            mesh, eta, component_bc_dofs(mesh, "free_slip", 0)
        )
        sm = ChebyshevSmoother(op)
        Ka = _assembled_block(mesh, eta, "free_slip", 0).toarray()
        lam = np.linalg.eigvals(Ka / op.diagonal()[:, None]).real
        assert sm.lmax >= 0.95 * lam.max()
        assert sm.lmax <= 2.0 * lam.max()
        assert sm.lmin == pytest.approx(sm.lmax / sm.lmin_ratio)

    def test_smoother_reduces_residual(self):
        mesh = _mesh(level=1, frac=0.5, seed=5)
        eta, _ = _problem(mesh)
        op = MatFreeScalarPoisson(
            mesh, eta, component_bc_dofs(mesh, "free_slip", 1)
        )
        sm = ChebyshevSmoother(op)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(op.n)
        x = sm.apply(b)
        assert np.linalg.norm(b - op.apply(x)) < np.linalg.norm(b)


class TestVcycleSPD:
    def test_vcycle_is_spd(self):
        mesh = _mesh(level=1, frac=0.6, seed=6)
        eta, bf = _problem(mesh, contrast=1e3)
        st = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
        prec = GMGStokesPreconditioner(st, max_coarse=20)
        g = prec.gmg[0]
        assert g.n_levels >= 2
        n = g.levels[0].op.n
        M = np.stack([g.vcycle(e) for e in np.eye(n)], axis=1)
        sym = np.max(np.abs(M - M.T)) / np.max(np.abs(M))
        assert sym < 1e-12
        w = np.linalg.eigvalsh(0.5 * (M + M.T))
        assert w.min() > 0


class TestStokesPreconditioner:
    def test_matches_amg_solution(self):
        mesh = _mesh(level=2, frac=0.25, seed=0)
        eta, bf = _problem(mesh, contrast=1e4)
        st = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
        amg = StokesBlockPreconditioner(st)
        gmg = GMGStokesPreconditioner(st)
        ra = minres(st.matvec, st.rhs(), M=amg.apply, tol=1e-8, maxiter=600)
        rg = minres(st.matvec, st.rhs(), M=gmg.apply, tol=1e-8, maxiter=600)
        assert ra.converged and rg.converged
        xa = st.project_pressure_mean(ra.x)
        xg = st.project_pressure_mean(rg.x)
        rel = np.linalg.norm(xg - xa) / np.linalg.norm(xa)
        assert rel < 1e-6
        assert rg.iterations <= 1.5 * ra.iterations

    def test_zero_assembly_on_solve(self):
        # the acceptance invariant: the GMG-preconditioned solve performs
        # no sparse assembly at any level (the tensor-variant StokesSystem
        # is already matrix-free; AMG setup is what used to assemble)
        mesh = _mesh(level=2, frac=0.25, seed=7)
        eta, bf = _problem(mesh)
        st = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
        reset_assembly_counts()
        prec = GMGStokesPreconditioner(st)
        res = minres(st.matvec, st.rhs(), M=prec.apply, tol=1e-6, maxiter=400)
        assert res.converged
        assert assembly_counts() == {"scalar": 0, "vector": 0, "divergence": 0}
        # sanity that the counter is live: the AMG path does assemble
        reset_assembly_counts()
        StokesBlockPreconditioner(st)
        assert assembly_counts()["scalar"] > 0

    def test_update_viscosity_matches_fresh_build(self):
        mesh = _mesh(level=1, frac=0.5, seed=8)
        eta1, bf = _problem(mesh, contrast=1e2)
        eta2, _ = _problem(mesh, contrast=1e4)
        st1 = StokesSystem(mesh, eta1, bf, bc="free_slip", variant="tensor")
        st2 = StokesSystem(mesh, eta2, bf, bc="free_slip", variant="tensor")
        prec = GMGStokesPreconditioner(st1)
        prec.update_viscosity(eta2)
        prec.refresh_schur(st2)
        fresh = GMGStokesPreconditioner(st2)
        r = np.linspace(-1, 1, st2.n_dof)
        assert np.array_equal(prec.apply(r), fresh.apply(r))

    def test_operator_complexity_and_grid_sizes(self):
        mesh = _mesh(level=2, frac=0.2, seed=9)
        eta, bf = _problem(mesh)
        st = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
        prec = GMGStokesPreconditioner(st, max_coarse=30)
        sizes = prec.grid_sizes()
        assert sizes[0] == mesh.n_independent
        assert 1.0 < prec.operator_complexity < 2.0


class TestLaggedGMG:
    def test_reuse_and_invalidate(self):
        mesh = _mesh(level=1, frac=0.5, seed=10)
        eta, bf = _problem(mesh)
        st = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
        lag = LaggedStokesPreconditioner(rtol=0.5, kind="gmg")
        p1 = lag.get(st)
        assert isinstance(p1, GMGStokesPreconditioner)
        assert lag.get(st) is p1
        assert (lag.n_builds, lag.n_reuses) == (1, 1)
        # drift beyond rtol rebuilds
        st2 = StokesSystem(mesh, eta * 3.0, bf, bc="free_slip", variant="tensor")
        p2 = lag.get(st2)
        assert p2 is not p1
        lag.invalidate()
        assert lag.get(st2) is not p2
        assert lag.n_builds == 3

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            LaggedStokesPreconditioner(kind="ilu")


# -- cross-backend / cross-rank bitwise equivalence -----------------------------


def _gmg_solve_kernel(comm, level, contrast):
    """One GMG-preconditioned Stokes solve per rank (identical problem on
    every rank: the digest must agree across ranks, rank counts, and
    backends)."""
    from repro.perf.regress import _state_digest

    tree = LinearOctree.uniform(level)
    rng = np.random.default_rng(42)
    tree = tree.refine(rng.random(len(tree)) < 0.25)
    tree = balance(tree, "corner").tree
    mesh = extract_mesh(tree, (1.0, 1.0, 1.0))
    c = mesh.node_coords()[mesh.element_nodes].mean(axis=1)
    eta = np.exp(np.log(contrast) * np.exp(-((c - 0.5) ** 2).sum(axis=1) / 0.08))
    xyz = mesh.node_coords()
    bf = np.zeros((mesh.n_nodes, 3))
    bf[:, 2] = np.sin(np.pi * xyz[:, 0]) * np.cos(np.pi * xyz[:, 2])
    st = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
    prec = GMGStokesPreconditioner(st)
    res = minres(st.matvec, st.rhs(), M=prec.apply, tol=1e-7, maxiter=400)
    comm.barrier()
    return _state_digest(np.asarray(res.residuals), res.x)


class TestCrossBackendBitwise:
    def test_digest_invariant(self, monkeypatch):
        from repro.parallel import run_spmd
        from repro.parallel import procomm

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        digests = set()
        for p in (1, 2, 4):
            digests.update(run_spmd(p, _gmg_solve_kernel, 1, 1e3, backend="thread"))
        if procomm.available():
            for p in (2, 4):
                digests.update(
                    run_spmd(p, _gmg_solve_kernel, 1, 1e3, backend="process")
                )
            procomm.shutdown_pools()
        assert len(digests) == 1


class TestRheaIntegration:
    def test_config_validation(self):
        from repro.rhea import ConfigError, RheaConfig

        with pytest.raises(ConfigError, match="stokes_preconditioner"):
            RheaConfig(stokes_preconditioner="ilu")

    def test_short_gmg_run_with_adapt(self):
        from repro.rhea import MantleConvection, RheaConfig

        cfg = RheaConfig(
            Ra=1e4,
            initial_level=2,
            min_level=1,
            max_level=3,
            adapt_every=2,
            picard_iterations=2,
            stokes_tol=1e-6,
            stokes_maxiter=400,
            target_elements=100,
            stokes_preconditioner="gmg",
        )
        sim = MantleConvection(cfg)
        hist = sim.run(2)
        assert len(hist) == 2
        assert hist[-1].minres_iterations > 0
        assert np.isfinite(hist[-1].vrms)
        assert np.isfinite(hist[-1].mean_T)
