"""Fault-injected crash / restart determinism tests.

The paper's production requirement: a run killed mid-flight must resume
from its last snapshot — possibly on a different rank count — and
reproduce the uninterrupted trajectory.  Same-rank-count restarts are
bitwise; restarts onto a *different* rank count keep the octree bitwise
and temperature within FP-reassociation noise of ghost-exchange
summation (the same 1e-11 envelope the seed's P-invariance test uses).
"""

import numpy as np
import pytest

from repro.amr import ParAmrPipeline
from repro.checkpoint import (
    Checkpointer,
    ShardIntegrityError,
    list_checkpoints,
    save_pipeline,
)
from repro.checkpoint.format import shard_name, step_dirname
from repro.mesh import node_keys
from repro.octree import gather_tree
from repro.parallel import InjectedFault, fault_injection, run_spmd
from repro.rhea import MantleConvection, RheaConfig

CYCLES, STEPS, TARGET = 4, 3, 400  # formerly P-variant; see quantized marking
FAIL_STEP = 6  # steps_taken at the start of cycle 3


def _state(comm, pipe):
    g = gather_tree(pipe.pt)
    pm = pipe.pm
    ks = node_keys(pm.mesh.node_coords_int[pm.mesh.indep_nodes])
    mine = pm.node_owner[pm.mesh.indep_nodes] == comm.rank
    return {
        "keys": g.keys.copy(),
        "levels": g.levels.copy(),
        "node_keys": ks[mine],
        "T": pipe.T[mine].copy(),
        "steps": pipe.steps_taken,
    }


def _field_map(outs):
    fm = {}
    for o in outs:
        for k, v in zip(o["node_keys"], o["T"]):
            fm[int(k)] = v
    return fm


def _uninterrupted(p):
    def kernel(comm):
        pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
        pipe.run_cycles(CYCLES, STEPS, TARGET)
        return _state(comm, pipe)

    return run_spmd(p, kernel)


def _crash(p, root, fail_rank):
    """Run with per-cycle checkpointing, killing ``fail_rank`` at
    FAIL_STEP.  Returns the checkpoints left on disk."""

    def kernel(comm):
        pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
        pipe.run_cycles(CYCLES, STEPS, TARGET,
                        checkpoint=Checkpointer(root, every=1))
        return None

    with fault_injection(rank=fail_rank, step=FAIL_STEP):
        with pytest.raises(InjectedFault):
            run_spmd(p, kernel)
    return [s for s, _ in list_checkpoints(root)]


def _resume(m, root):
    def kernel(comm):
        pipe = ParAmrPipeline.resume_from(comm, root)
        pipe.run_cycles(CYCLES - pipe.cycles_done, STEPS, TARGET)
        return _state(comm, pipe)

    return run_spmd(m, kernel)


class TestPipelineRestart:
    @pytest.fixture(scope="class")
    def crashed(self, tmp_path_factory):
        """One crashed 2-rank run + its uninterrupted reference."""
        root = str(tmp_path_factory.mktemp("crash") / "ck")
        steps_on_disk = _crash(2, root, fail_rank=1)
        ref = _uninterrupted(2)
        return root, steps_on_disk, ref

    def test_crash_leaves_complete_checkpoints(self, crashed):
        _, steps_on_disk, _ = crashed
        # cycles 1 and 2 completed before the injected kill at cycle 3
        assert steps_on_disk == [3, 6]

    def test_same_rank_count_resume_is_bitwise(self, crashed):
        root, _, ref = crashed
        outs = _resume(2, root)
        for o, r in zip(outs, ref):
            np.testing.assert_array_equal(o["keys"], r["keys"])
            np.testing.assert_array_equal(o["levels"], r["levels"])
            assert o["steps"] == r["steps"]
        got, want = _field_map(outs), _field_map(ref)
        assert got.keys() == want.keys()
        assert all(got[k] == want[k] for k in want)  # bitwise

    @pytest.mark.parametrize("m", [1, 3])
    def test_resume_on_different_rank_count(self, m, crashed):
        root, _, ref = crashed
        outs = _resume(m, root)
        for o in outs:
            # octree trajectory is bitwise even across rank counts
            np.testing.assert_array_equal(o["keys"], ref[0]["keys"])
            np.testing.assert_array_equal(o["levels"], ref[0]["levels"])
            assert o["steps"] == ref[0]["steps"]
        got, want = _field_map(outs), _field_map(ref)
        assert got.keys() == want.keys()
        for k in want:
            # ghost-exchange reassociation bound (seed P-invariance test)
            assert got[k] == pytest.approx(want[k], abs=1e-11)


class TestCorruptedRestore:
    def test_corrupted_shard_refused_with_named_shard(self, tmp_path):
        root = str(tmp_path / "ck")

        def save_kernel(comm):
            pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
            pipe.run_cycles(1, STEPS, TARGET)
            save_pipeline(pipe, root)

        run_spmd(2, save_kernel)
        shard = tmp_path / "ck" / step_dirname(STEPS) / shard_name(1)
        raw = bytearray(shard.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        shard.write_bytes(bytes(raw))

        def restore_kernel(comm):
            ParAmrPipeline.resume_from(comm, root)

        with pytest.raises(ShardIntegrityError) as exc:
            run_spmd(1, restore_kernel)
        assert exc.value.shard == shard_name(1)
        assert shard_name(1) in str(exc.value)


def _small_cfg():
    return RheaConfig(
        Ra=1e4,
        initial_level=2,
        min_level=1,
        max_level=4,
        adapt_every=4,
        picard_iterations=2,
        stokes_tol=1e-6,
        stokes_maxiter=300,
    )


class TestConvectionRestart:
    def test_crash_resume_reproduces_trajectory(self, tmp_path):
        root = str(tmp_path / "ck")
        cfg = _small_cfg()

        ref = MantleConvection(_small_cfg())
        ref.run(4)

        sim = MantleConvection(cfg)
        with fault_injection(rank=0, step=8):
            with pytest.raises(InjectedFault):
                sim.run(4, checkpoint=Checkpointer(root, every=1))
        assert [s for s, _ in list_checkpoints(root)] == [4, 8]

        res = MantleConvection.resume_from(root, config=_small_cfg())
        assert res.step_count == 8 and len(res.history) == 2
        res.run(2)

        assert len(res.history) == len(ref.history) == 4
        for d, rd in zip(res.history, ref.history):
            assert d.step == rd.step
            assert d.vrms == pytest.approx(rd.vrms, rel=1e-10)
            assert d.nusselt == pytest.approx(rd.nusselt, rel=1e-10)
            # warm-start state (lagged preconditioner, pressure guess)
            # was restored exactly, so Krylov iteration counts match too
            assert d.minres_iterations == rd.minres_iterations
        np.testing.assert_array_equal(res.T, ref.T)
        np.testing.assert_array_equal(res.mesh.leaves.keys(), ref.mesh.leaves.keys())

    def test_resume_without_solver_state_still_tracks(self, tmp_path):
        """Dropping the warm-start payload changes iteration counts at
        most — the trajectory itself stays within solver tolerance."""
        root = str(tmp_path / "ck")
        cfg = _small_cfg()
        ref = MantleConvection(_small_cfg())
        ref.run(3)

        sim = MantleConvection(cfg)
        sim.run(2, checkpoint=Checkpointer(root, every=1))
        res = MantleConvection.resume_from(
            root, config=_small_cfg(), include_solver_state=False
        )
        res.run(1)
        assert res.history[-1].vrms == pytest.approx(
            ref.history[-1].vrms, rel=1e-6
        )
