"""Parity and accounting tests for the matrix-free apply engine.

The tensor-variant applies must agree with the assembled-CSR operators to
machine precision (the 2-point Gauss rule is exact for every Q1
integrand), on hanging-node meshes, under both BC kinds, and across
extreme viscosity contrast.
"""

import numpy as np
import pytest

from repro.fem import AdvectionDiffusion, StokesSystem, assemble_scalar, lumped_mass
from repro.fem.hexops import ElementOps
from repro.fem.matfree import (
    MatFreeAdvectionOperator,
    MatFreeStokesOperator,
    advection_apply_flops,
    apply_scalar_mass,
    csr_apply_flops,
    lumped_scalar_mass,
    saddle_apply_bytes,
    saddle_apply_flops,
)
from repro.mangll.tensor import (
    matrix_bytes,
    matrix_flops,
    tensor_bytes,
    tensor_flops,
)
from repro.mesh import extract_mesh
from repro.parallel.machine import RANGER
from repro.octree import LinearOctree, balance

_OPS = ElementOps()


def make_mesh(level=2, seed=0, domain=(1.0, 1.0, 1.0)):
    tree = LinearOctree.uniform(level)
    rng = np.random.default_rng(seed)
    tree = tree.refine(rng.random(len(tree)) < 0.25)
    tree = balance(tree, "corner").tree
    return extract_mesh(tree, domain)


def viscosity(mesh, contrast):
    if contrast == 1.0:
        return np.ones(mesh.n_elements)
    rng = np.random.default_rng(7)
    return np.exp(rng.uniform(0.0, np.log(contrast), mesh.n_elements))


def saddle_pair(mesh, bc, eta):
    st_m = StokesSystem(mesh, eta, bc=bc, variant="matrix")
    st_t = StokesSystem(mesh, eta, bc=bc, variant="tensor")
    return st_m, st_t


@pytest.mark.parametrize("bc", ["free_slip", "no_slip"])
@pytest.mark.parametrize("contrast", [1.0, 1e6])
def test_saddle_apply_parity(bc, contrast):
    mesh = make_mesh(level=2)
    eta = viscosity(mesh, contrast)
    st_m, st_t = saddle_pair(mesh, bc, eta)
    x = np.random.default_rng(1).standard_normal(st_m.n_dof)
    ref = st_m.matvec(x)
    got = st_t.matvec(x)
    assert np.max(np.abs(got - ref)) <= 1e-12 * np.max(np.abs(ref))


def test_saddle_parity_anisotropic_domain():
    mesh = make_mesh(level=3, seed=3, domain=(1.0, 1.3, 0.7))
    eta = viscosity(mesh, 1e4)
    st_m, st_t = saddle_pair(mesh, "free_slip", eta)
    x = np.random.default_rng(2).standard_normal(st_m.n_dof)
    ref = st_m.matvec(x)
    assert np.max(np.abs(st_t.matvec(x) - ref)) <= 1e-12 * np.max(np.abs(ref))


def test_divergence_and_schur_parity():
    mesh = make_mesh(level=2, seed=1)
    eta = viscosity(mesh, 1e6)
    st_m, st_t = saddle_pair(mesh, "free_slip", eta)
    x = np.random.default_rng(3).standard_normal(st_m.n_dof)
    assert np.isclose(
        st_t.velocity_divergence_norm(x), st_m.velocity_divergence_norm(x),
        rtol=1e-12,
    )
    d_m = st_m.schur_diagonal()
    d_t = st_t.schur_diagonal()
    np.testing.assert_allclose(d_t, d_m, rtol=1e-12)


def test_tensor_mode_skips_saddle_assembly():
    mesh = make_mesh(level=2)
    st = StokesSystem(mesh, viscosity(mesh, 1.0), variant="tensor")
    assert st.matfree is not None
    assert st._A is None and st._C is None and st._B is None
    x = np.random.default_rng(0).standard_normal(st.n_dof)
    st.matvec(x)
    assert st._A is None  # matvec must not trigger assembly
    # lazy blocks still available for AMG / legacy consumers
    assert st.A.shape == (st.n_u, st.n_u)
    assert st.C.shape == (st.n_p, st.n_p)


def test_dirichlet_rows_are_identity():
    mesh = make_mesh(level=2)
    st = StokesSystem(mesh, viscosity(mesh, 100.0), bc="no_slip", variant="tensor")
    x = np.random.default_rng(4).standard_normal(st.n_dof)
    out = st.matvec(x)
    np.testing.assert_allclose(out[st.bc.dofs], x[st.bc.dofs], rtol=0, atol=0)


def test_rhs_dirichlet_zeroed_matches_matrix_path():
    mesh = make_mesh(level=2)
    rng = np.random.default_rng(5)
    bf = rng.standard_normal((mesh.n_nodes, 3))
    eta = viscosity(mesh, 10.0)
    st_m = StokesSystem(mesh, eta, bf, bc="free_slip", variant="matrix")
    st_t = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
    np.testing.assert_allclose(st_t.rhs(), st_m.rhs(), rtol=0, atol=1e-14)


def test_supg_rate_parity():
    mesh = make_mesh(level=2, seed=2)
    rng = np.random.default_rng(6)
    vel = rng.standard_normal((mesh.n_elements, 3))
    eq_m = AdvectionDiffusion(mesh, 1e-3, vel, source=0.7,
                              dirichlet=[(2, 0, 1.0), (2, 1, 0.0)],
                              variant="matrix")
    eq_t = AdvectionDiffusion(mesh, 1e-3, vel, source=0.7,
                              dirichlet=[(2, 0, 1.0), (2, 1, 0.0)],
                              variant="tensor")
    T = rng.standard_normal(mesh.n_independent)
    ref = eq_m.rate(T)
    got = eq_t.rate(T)
    assert np.max(np.abs(got - ref)) <= 1e-12 * max(np.max(np.abs(ref)), 1e-30)
    # one full Heun step through the tensor path
    np.testing.assert_allclose(
        eq_t.step(T, 1e-4), eq_m.step(T, 1e-4), rtol=0, atol=1e-12
    )


def test_scalar_mass_parity_plain_and_supg():
    mesh = make_mesh(level=2, seed=4)
    sizes = mesh.element_sizes()
    rng = np.random.default_rng(8)
    coeff = np.exp(rng.standard_normal(mesh.n_elements))
    x = rng.standard_normal(mesh.n_independent)
    M = assemble_scalar(mesh, _OPS.mass(sizes, coeff))
    np.testing.assert_allclose(
        apply_scalar_mass(mesh, x, coeff), M @ x, rtol=0,
        atol=1e-13 * np.max(np.abs(M @ x)),
    )
    vel = rng.standard_normal((mesh.n_elements, 3))
    tau = np.abs(rng.standard_normal(mesh.n_elements))
    # supg_mass is linear in the velocity, so tau*coeff folds into it
    supg_e = _OPS.supg_mass(sizes, vel * (tau * coeff)[:, None])
    Ms = assemble_scalar(mesh, _OPS.mass(sizes, coeff) + supg_e)
    got = apply_scalar_mass(mesh, x, coeff, supg_vel=vel, supg_tau=tau)
    assert np.max(np.abs(got - Ms @ x)) <= 1e-12 * np.max(np.abs(Ms @ x))
    np.testing.assert_allclose(
        lumped_scalar_mass(mesh, coeff), lumped_mass(mesh, _OPS.mass(sizes, coeff)),
        rtol=1e-12,
    )


def test_operator_objects_are_rebindable():
    mesh = make_mesh(level=2)
    eta = viscosity(mesh, 1.0)
    st_m = StokesSystem(mesh, eta, bc="free_slip", variant="matrix")
    mf = MatFreeStokesOperator(mesh, eta, "free_slip", st_m.bc.dofs)
    eta2 = viscosity(mesh, 1e3)
    mf.update_viscosity(eta2)
    st_m2 = StokesSystem(mesh, eta2, bc="free_slip", variant="matrix")
    x = np.random.default_rng(9).standard_normal(st_m.n_dof)
    ref = st_m2.matvec(x)
    assert np.max(np.abs(mf.apply(x) - ref)) <= 1e-12 * np.max(np.abs(ref))


def test_flop_accounting_sane():
    ne = 1000
    assert saddle_apply_flops(ne) == saddle_apply_flops(1) * ne
    assert advection_apply_flops(ne) == advection_apply_flops(1) * ne
    assert csr_apply_flops(12345) == 2 * 12345
    # at the default discretization the assembled saddle has ~190 nnz per
    # element row-block; the tensor kernel trades those sparse flops for
    # ~2.7k dense flops per element
    assert 2000 <= saddle_apply_flops(1) <= 4000
    assert saddle_apply_bytes(ne, gather_nnz=40 * ne) > 0


def test_variant_validation():
    mesh = make_mesh(level=2)
    with pytest.raises(ValueError, match="variant"):
        StokesSystem(mesh, viscosity(mesh, 1.0), variant="banana")
    with pytest.raises(ValueError, match="variant"):
        AdvectionDiffusion(mesh, 1.0, np.zeros((mesh.n_elements, 3)),
                           variant="banana")


def test_advection_operator_direct_apply_matches_assembled():
    mesh = make_mesh(level=3, seed=5)
    rng = np.random.default_rng(10)
    vel = rng.standard_normal((mesh.n_elements, 3))
    eq_m = AdvectionDiffusion(mesh, 0.02, vel, variant="matrix")
    op = MatFreeAdvectionOperator(mesh, 0.02, vel, eq_m.tau)
    T = rng.standard_normal(mesh.n_independent)
    ref = eq_m.A @ T
    assert np.max(np.abs(op.apply(T) - ref)) <= 1e-12 * np.max(np.abs(ref))


# -- Section VII kernel-count model -------------------------------------------


def test_kernel_flop_counts_match_paper():
    # Section VII: matrix-based gradient costs 6(p+1)^6 flops/element,
    # sum-factorized costs 6(p+1)^4; the ratio is (p+1)^2.
    for p in (1, 2, 4, 6, 8):
        n1 = p + 1
        assert matrix_flops(p) == 6 * n1**6
        assert tensor_flops(p) == 6 * n1**4
        assert matrix_flops(p) == tensor_flops(p) * n1**2


def test_kernel_bytes_model():
    # both kernels stream one field read and one gradient write per axis;
    # the dense operator / 1-D factors are cache-resident and not charged
    for p in (1, 2, 4):
        assert matrix_bytes(p) == tensor_bytes(p) == 8 * 6 * (p + 1) ** 3


def test_machine_model_crossover_in_paper_band():
    # With Ranger's observed sustained rates (~4.4 Gflop/s dense vs an
    # order of magnitude less for short tensor contractions), the modeled
    # crossover must land between p = 2 and p = 4 as reported on Ranger.
    ne = 1024
    t2_m = RANGER.t_element_kernel(2, "matrix", ne)
    t2_t = RANGER.t_element_kernel(2, "tensor", ne)
    t4_m = RANGER.t_element_kernel(4, "matrix", ne)
    t4_t = RANGER.t_element_kernel(4, "tensor", ne)
    assert t2_m <= t2_t  # matrix kernel wins at low order
    assert t4_t <= t4_m  # tensor kernel wins at high order


def test_machine_model_uses_selected_variant_counts():
    # in the compute-bound regime the modeled time must equal the selected
    # variant's flop count divided by that variant's sustained rate
    ne = 1
    p = 6
    t_m = RANGER.t_element_kernel(p, "matrix", ne)
    t_t = RANGER.t_element_kernel(p, "tensor", ne)
    assert t_m >= matrix_flops(p) * ne / RANGER.flop_rate_dense * (1 - 1e-12)
    assert t_t >= tensor_flops(p) * ne / RANGER.flop_rate_tensor * (1 - 1e-12)
    # and never below the streaming bound
    assert t_m >= RANGER.t_stream(matrix_bytes(p) * ne)
    assert t_t >= RANGER.t_stream(tensor_bytes(p) * ne)
    with pytest.raises(ValueError, match="variant"):
        RANGER.t_element_kernel(2, "banana", 1)
