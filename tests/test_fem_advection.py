"""Tests for SUPG advection-diffusion and its explicit stepping."""

import numpy as np
import pytest

from repro.fem import AdvectionDiffusion, element_velocity_from_nodal, supg_tau
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance


def make_mesh(level=2, adapt=False, seed=0, domain=(1.0, 1.0, 1.0)):
    tree = LinearOctree.uniform(level)
    if adapt:
        rng = np.random.default_rng(seed)
        tree = tree.refine(rng.random(len(tree)) < 0.3)
        tree = balance(tree, "corner").tree
    return extract_mesh(tree, domain)


class TestSupgTau:
    def test_advection_limit(self):
        """High speed: tau -> h / (2 |a|)."""
        sizes = np.array([[0.1, 0.1, 0.1]])
        vel = np.array([[100.0, 0.0, 0.0]])
        tau = supg_tau(sizes, vel, kappa=1e-8)
        np.testing.assert_allclose(tau, 0.1 / 200.0, rtol=1e-3)

    def test_diffusion_limit(self):
        sizes = np.array([[0.1, 0.1, 0.1]])
        tau = supg_tau(sizes, np.zeros((1, 3)), kappa=1.0)
        np.testing.assert_allclose(tau, 0.01 / 12.0, rtol=1e-6)

    def test_dt_term_reduces_tau(self):
        sizes = np.array([[0.1, 0.1, 0.1]])
        vel = np.array([[1.0, 0.0, 0.0]])
        t1 = supg_tau(sizes, vel, kappa=1e-3)
        t2 = supg_tau(sizes, vel, kappa=1e-3, dt=1e-4)
        assert t2 < t1


class TestElementVelocity:
    def test_constant_field(self):
        mesh = make_mesh(1)
        u = np.tile(np.array([1.0, 2.0, 3.0]), (mesh.n_nodes, 1))
        ev = element_velocity_from_nodal(mesh, u)
        np.testing.assert_allclose(ev, np.tile([1.0, 2.0, 3.0], (mesh.n_elements, 1)))

    def test_linear_field_gives_centers(self):
        mesh = make_mesh(2)
        coords = mesh.node_coords()
        u = np.stack([coords[:, 0], coords[:, 1], coords[:, 2]], axis=1)
        ev = element_velocity_from_nodal(mesh, u)
        np.testing.assert_allclose(ev, mesh.element_centers(), atol=1e-12)


class TestAdvectionDiffusion:
    def test_steady_state_preserved(self):
        """Pure diffusion with a linear-in-z profile and matching Dirichlet
        values is a steady state: stepping must not change it."""
        mesh = make_mesh(2, adapt=True, seed=1)
        vel = np.zeros((mesh.n_elements, 3))
        eq = AdvectionDiffusion(mesh, kappa=1.0, vel=vel,
                                dirichlet=[(2, 0, 1.0), (2, 1, 0.0)])
        coords = mesh.node_coords()
        T = (1.0 - coords[:, 2])[mesh.indep_nodes]
        dt = eq.cfl_dt(0.4)
        T2 = eq.advance(T, dt, 5)
        np.testing.assert_allclose(T2, T, atol=1e-10)

    def test_constant_state_preserved_under_advection(self):
        mesh = make_mesh(2)
        vel = np.tile([1.0, 0.5, 0.0], (mesh.n_elements, 1))
        eq = AdvectionDiffusion(mesh, kappa=0.0, vel=vel)
        T = np.ones(mesh.n_independent)
        T2 = eq.advance(T, eq.cfl_dt(0.3), 10)
        np.testing.assert_allclose(T2, 1.0, atol=1e-12)

    def test_maximum_principle_approximately(self):
        """SUPG keeps over/undershoots of a transported front small."""
        mesh = make_mesh(3)
        vel = np.tile([1.0, 0.0, 0.0], (mesh.n_elements, 1))
        eq = AdvectionDiffusion(mesh, kappa=1e-6, vel=vel)
        coords = mesh.node_coords()[mesh.indep_nodes]
        T = 0.5 * (1.0 - np.tanh((coords[:, 0] - 0.3) / 0.1))
        dt = eq.cfl_dt(0.25)
        T2 = eq.advance(T, dt, 20)
        assert T2.max() < 1.25
        assert T2.min() > -0.25

    def test_front_moves_downstream(self):
        mesh = make_mesh(3)
        vel = np.tile([1.0, 0.0, 0.0], (mesh.n_elements, 1))
        eq = AdvectionDiffusion(mesh, kappa=1e-6, vel=vel)
        coords = mesh.node_coords()[mesh.indep_nodes]
        T = np.exp(-(((coords[:, 0] - 0.3) / 0.15) ** 2))
        dt = eq.cfl_dt(0.25)
        n = int(0.2 / dt)
        T2 = eq.advance(T, dt, n)
        x_peak_before = coords[np.argmax(T), 0]
        x_peak_after = coords[np.argmax(T2), 0]
        assert x_peak_after > x_peak_before + 0.05

    def test_diffusion_decays_energy(self):
        mesh = make_mesh(2)
        eq = AdvectionDiffusion(mesh, kappa=1.0, vel=np.zeros((mesh.n_elements, 3)),
                                dirichlet=[(2, 0, 0.0), (2, 1, 0.0)])
        coords = mesh.node_coords()[mesh.indep_nodes]
        T = np.sin(np.pi * coords[:, 2])
        dt = eq.cfl_dt(0.4)
        T2 = eq.advance(T, dt, 10)
        assert np.abs(T2).max() < np.abs(T).max()

    def test_source_heats_interior(self):
        mesh = make_mesh(2)
        eq = AdvectionDiffusion(
            mesh, kappa=1.0, vel=np.zeros((mesh.n_elements, 3)),
            source=10.0, dirichlet=[(2, 0, 0.0), (2, 1, 0.0)]
        )
        T = np.zeros(mesh.n_independent)
        T2 = eq.advance(T, eq.cfl_dt(0.4), 10)
        assert T2.max() > 0.0

    def test_cfl_dt_scales_with_h(self):
        dts = []
        for level in (2, 3):
            mesh = make_mesh(level)
            vel = np.tile([1.0, 0.0, 0.0], (mesh.n_elements, 1))
            eq = AdvectionDiffusion(mesh, kappa=0.0, vel=vel)
            dts.append(eq.cfl_dt())
        assert dts[1] == pytest.approx(dts[0] / 2)

    def test_vel_shape_checked(self):
        mesh = make_mesh(1)
        with pytest.raises(ValueError):
            AdvectionDiffusion(mesh, 1.0, np.zeros((3, 3)))

    def test_no_cfl_without_physics(self):
        mesh = make_mesh(1)
        eq = AdvectionDiffusion(mesh, kappa=0.0, vel=np.zeros((mesh.n_elements, 3)))
        with pytest.raises(ValueError):
            eq.cfl_dt()
