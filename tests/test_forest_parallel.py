"""Tests for the distributed forest (ParForest) — P-invariance against
the serial Forest for balance, partition, and adaptation."""

import numpy as np
import pytest

from repro.forest import (
    FOREST_MAX_LEVEL,
    Forest,
    ParForest,
    brick_connectivity,
    cubed_sphere_connectivity,
    forest_key,
    unit_cube,
)
from repro.octree import ROOT_LEN
from repro.parallel import run_spmd

PS = [1, 2, 4]


def forests_equal(a: Forest, b: Forest) -> bool:
    if a.n_trees != b.n_trees:
        return False
    return all(x.leaves.equals(y.leaves) for x, y in zip(a.trees, b.trees))


class TestConstruction:
    @pytest.mark.parametrize("p", PS)
    def test_uniform_gather_matches_serial(self, p):
        conn = brick_connectivity(2, 1, 1)

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 1)
            return pf.gather()

        ref = Forest.uniform(conn, 1)
        for g in run_spmd(p, kernel):
            assert forests_equal(g, ref)

    def test_load_balance(self):
        conn = cubed_sphere_connectivity()

        def kernel(comm):
            return len(ParForest.uniform(comm, conn, 1))

        counts = run_spmd(5, kernel)
        assert sum(counts) == 24 * 8
        assert max(counts) - min(counts) <= 1

    def test_level_cap_enforced(self):
        conn = unit_cube()

        def kernel(comm):
            from repro.octree import OctantArray

            ParForest(comm, conn, np.zeros(1, dtype=np.int64),
                      OctantArray([0], [0], [0], [FOREST_MAX_LEVEL + 1]))

        with pytest.raises(ValueError):
            run_spmd(1, kernel)


class TestForestKey:
    def test_order_matches_tree_then_morton(self):
        t = np.array([0, 0, 1, 1])
        k = np.array([0, 100 * 64, 0, 64], dtype=np.uint64)
        fk = forest_key(t, k)
        assert np.all(np.diff(fk.astype(object)) > 0)

    def test_exact_for_level_19(self):
        """Anchors at level <= 19 are multiples of 64: no precision loss."""
        from repro.octree import OctantArray

        o = OctantArray.uniform(2)
        fk = forest_key(np.zeros(len(o)), o.keys())
        back = (fk << np.uint64(6)) & ((np.uint64(1) << np.uint64(63)) - np.uint64(1))
        np.testing.assert_array_equal(back, o.keys())


class TestAdaptation:
    @pytest.mark.parametrize("p", PS)
    def test_refine_matches_serial(self, p):
        conn = brick_connectivity(2, 1, 1)
        gmask = np.arange(16) % 3 == 0

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 1)
            lo, _ = comm.global_offsets(len(pf))
            pf = pf.refine(gmask[lo : lo + len(pf)])
            return pf.gather()

        ref = Forest.uniform(conn, 1).refine(gmask)
        for g in run_spmd(p, kernel):
            assert forests_equal(g, ref)

    def test_coarsen_local_families(self):
        conn = brick_connectivity(2, 1, 1)

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 1)
            pf, nfam = pf.coarsen(np.ones(len(pf), dtype=bool))
            return comm.allreduce(nfam), pf.gather()

        nfam, g = run_spmd(1, kernel)[0]
        assert nfam == 2
        assert len(g) == 2


class TestBalance:
    @staticmethod
    def _refine_at_tree_face(comm, conn, depth=3):
        """Refine tree 0's leaf nearest its +x face repeatedly."""
        pf = ParForest.uniform(comm, conn, 1)
        target = forest_key(
            np.array([0]),
            np.array(
                [
                    int(
                        __import__("repro.octree", fromlist=["morton_encode"]).morton_encode(
                            np.array([ROOT_LEN - 1]),
                            np.array([ROOT_LEN // 2]),
                            np.array([ROOT_LEN // 2]),
                        )[0]
                    )
                ],
                dtype=np.uint64,
            ),
        )[0]
        for _ in range(depth):
            fkeys = pf.fkeys()
            mask = np.zeros(len(pf), dtype=bool)
            idx = np.searchsorted(fkeys, target, side="right") - 1
            markers = pf.markers()
            if pf.owners(markers, np.array([target]))[0] == comm.rank and len(pf):
                mask[idx] = True
            pf = pf.refine(mask)
        return pf

    @pytest.mark.parametrize("p", PS)
    def test_cross_tree_balance_matches_serial(self, p):
        conn = brick_connectivity(2, 1, 1)

        def kernel(comm):
            pf = self._refine_at_tree_face(comm, conn)
            pf, added = pf.balance()
            return pf.gather(), added

        # serial reference: same refinement on a serial forest
        ref = Forest.uniform(conn, 1)
        for _ in range(3):
            t0 = ref.trees[0]
            idx = t0.find_containing(
                np.array([ROOT_LEN - 1]), np.array([ROOT_LEN // 2]), np.array([ROOT_LEN // 2])
            )[0]
            mask = np.zeros(len(ref), dtype=bool)
            mask[idx] = True
            ref = ref.refine(mask)
        ref_b, ref_added = ref.balance()
        for g, added in run_spmd(p, kernel):
            assert forests_equal(g, ref_b)
            assert added == ref_added
            assert g.is_balanced()

    @pytest.mark.parametrize("p", [1, 3])
    def test_sphere_balance(self, p):
        conn = cubed_sphere_connectivity()
        rng_mask = np.random.default_rng(7).random(24 * 8) < 0.3

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 1)
            lo, _ = comm.global_offsets(len(pf))
            pf = pf.refine(rng_mask[lo : lo + len(pf)])
            pf, _ = pf.balance()
            return pf.gather()

        ref, _ = Forest.uniform(conn, 1).refine(rng_mask).balance()
        for g in run_spmd(p, kernel):
            assert forests_equal(g, ref)
            assert g.is_balanced()


class TestPartition:
    def test_equalizes_counts_and_preserves_order(self):
        conn = brick_connectivity(2, 2, 1)

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 1)
            mask = np.zeros(len(pf), dtype=bool)
            if comm.rank == 0:
                mask[:] = True
            pf = pf.refine(mask)
            before = pf.gather()
            pf = pf.partition()
            after = pf.gather()
            counts = comm.allgather(len(pf))
            return before, after, counts

        for before, after, counts in run_spmd(4, kernel):
            assert forests_equal(before, after)
            assert max(counts) - min(counts) <= 1

    def test_weighted_partition(self):
        conn = unit_cube()

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 2)
            lo, total = comm.global_offsets(len(pf))
            g = lo + np.arange(len(pf))
            w = np.where(g < total // 2, 10.0, 1.0)
            pf = pf.partition(weights=w)
            return comm.allgather(len(pf))

        counts = run_spmd(4, kernel)[0]
        assert counts[0] < counts[-1]

    def test_histogram(self):
        conn = cubed_sphere_connectivity()

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 1)
            return pf.level_histogram()

        for h in run_spmd(3, kernel):
            assert h == {1: 192}
