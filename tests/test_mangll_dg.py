"""Tests for the nodal DG advection solver on forests."""

import numpy as np
import pytest

from repro.forest import Forest, brick_connectivity, cubed_sphere_connectivity, unit_cube
from repro.mangll import DGAdvection, solid_body_rotation


def const_wind(a):
    a = np.asarray(a, dtype=np.float64)
    return lambda x: np.broadcast_to(a, x.shape).copy()


def cube_forest(level=1, refine_first=False):
    f = Forest.uniform(unit_cube(), level)
    if refine_first:
        mask = np.zeros(len(f), dtype=bool)
        mask[0] = True
        f, _ = f.refine(mask).balance()
    return f


class TestSetup:
    def test_node_count_and_mass(self):
        f = cube_forest(1)
        dg = DGAdvection(f, p=2, velocity=const_wind([1, 0, 0]))
        assert dg.n_dof == 8 * 27
        # total volume = sum of mass diag = 1 for the unit cube
        np.testing.assert_allclose(dg.Mdiag.sum(), 1.0, rtol=1e-12)

    def test_nodes_inside_domain(self):
        f = cube_forest(1, refine_first=True)
        dg = DGAdvection(f, p=3, velocity=const_wind([1, 0, 0]))
        x = dg.nodes()
        assert x.min() >= -1e-12 and x.max() <= 1 + 1e-12

    def test_sphere_volume_curved(self):
        """With the radial-projection geometry the LGL quadrature of the
        curved Jacobian reproduces the exact shell volume closely."""
        conn = cubed_sphere_connectivity(r_inner=0.5, r_outer=1.0)
        f = Forest.uniform(conn, 0)
        dg = DGAdvection(f, p=4, velocity=solid_body_rotation())
        vol_exact = 4.0 / 3.0 * np.pi * (1.0 - 0.125)
        assert abs(dg.Mdiag.sum() - vol_exact) / vol_exact < 0.02

    def test_sphere_volume_straight_sided_underestimates(self):
        conn = cubed_sphere_connectivity(r_inner=0.5, r_outer=1.0, curved=False)
        f = Forest.uniform(conn, 0)
        dg = DGAdvection(f, p=4, velocity=solid_body_rotation())
        vol_exact = 4.0 / 3.0 * np.pi * (1.0 - 0.125)
        assert dg.Mdiag.sum() < vol_exact  # chordal hexes lose volume


class TestRate:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_constant_preserved_conforming(self, p):
        f = cube_forest(1)
        dg = DGAdvection(
            f, p=p, velocity=const_wind([1, 0.5, -0.25]),
            inflow=lambda x: np.ones(len(x)),
        )
        r = dg.rate(np.ones(dg.n_dof))
        np.testing.assert_allclose(r, 0.0, atol=1e-10)

    def test_constant_preserved_nonconforming(self):
        """The mortar face integration must not break constants."""
        f = cube_forest(1, refine_first=True)
        dg = DGAdvection(
            f, p=2, velocity=const_wind([1, 0, 0]),
            inflow=lambda x: np.ones(len(x)),
        )
        r = dg.rate(np.ones(dg.n_dof))
        np.testing.assert_allclose(r, 0.0, atol=1e-10)

    def test_linear_field_exact_volume_term(self):
        """u = x with matching inflow: du/dt = -a_x exactly."""
        f = cube_forest(1)
        dg = DGAdvection(
            f, p=2, velocity=const_wind([2, 0, 0]),
            inflow=lambda x: x[:, 0],
        )
        u = dg.nodes()[:, 0]
        r = dg.rate(u)
        np.testing.assert_allclose(r, -2.0, atol=1e-9)

    def test_kernel_variants_same_rate(self):
        f = cube_forest(1, refine_first=True)
        wind = const_wind([1, -0.5, 0.25])
        dg_t = DGAdvection(f, p=3, velocity=wind, variant="tensor")
        dg_m = DGAdvection(f, p=3, velocity=wind, variant="matrix")
        rng = np.random.default_rng(0)
        u = rng.standard_normal(dg_t.n_dof)
        np.testing.assert_allclose(dg_t.rate(u), dg_m.rate(u), atol=1e-9)


class TestAdvectionAccuracy:
    def _advect_error(self, p, level, t_final=0.2):
        """Advect a Gaussian through the cube; compare with the exact
        translate."""
        f = cube_forest(level)
        a = np.array([1.0, 0.0, 0.0])
        dg = DGAdvection(f, p=p, velocity=const_wind(a))

        def exact(x, t):
            c = np.array([0.35 + t, 0.5, 0.5])
            return np.exp(-np.sum((x - c) ** 2, axis=1) / 0.01)

        u = exact(dg.nodes(), 0.0)
        dt = dg.cfl_dt(0.25)
        n = max(int(t_final / dt), 1)
        u2 = dg.advance(u, t_final / n, n)
        err = np.sqrt(((u2 - exact(dg.nodes(), t_final)) ** 2 * dg.Mdiag.ravel()).sum())
        return err

    def test_p_convergence(self):
        """Error drops rapidly with order (spectral accuracy)."""
        e2 = self._advect_error(2, level=1)
        e4 = self._advect_error(4, level=1)
        e6 = self._advect_error(6, level=1)
        assert e4 < e2
        assert e6 < 0.5 * e4

    def test_h_convergence(self):
        e_coarse = self._advect_error(2, level=1)
        e_fine = self._advect_error(2, level=2)
        assert e_fine < 0.5 * e_coarse

    def test_stability_long_run(self):
        f = cube_forest(1, refine_first=True)
        dg = DGAdvection(f, p=3, velocity=const_wind([1, 0.3, 0.2]))
        c = dg.nodes()
        u = np.exp(-np.sum((c - 0.4) ** 2, axis=1) / 0.02)
        dt = dg.cfl_dt(0.3)
        u2 = dg.advance(u, dt, 100)
        assert np.all(np.isfinite(u2))
        assert np.abs(u2).max() < 2.0


class TestNonconformingCoupling:
    def test_adapted_matches_uniform(self):
        """A front advected on a locally refined mesh stays close to the
        uniform-mesh solution."""
        wind = const_wind([1.0, 0.0, 0.0])

        def ic(x):
            return np.tanh((0.4 - x[:, 0]) / 0.15)

        dg_u = DGAdvection(cube_forest(1), p=3, velocity=wind,
                           inflow=lambda x: np.ones(len(x)))
        dg_a = DGAdvection(cube_forest(1, refine_first=True), p=3, velocity=wind,
                           inflow=lambda x: np.ones(len(x)))
        t_final = 0.1
        sols = []
        for dg in (dg_u, dg_a):
            u = ic(dg.nodes())
            dt = dg.cfl_dt(0.25)
            n = max(int(t_final / dt), 1)
            u2 = dg.advance(u, t_final / n, n)
            # sample both on a common probe line
            probe = np.stack(
                [np.linspace(0.05, 0.95, 13), np.full(13, 0.52), np.full(13, 0.52)],
                axis=1,
            )
            from scipy.interpolate import griddata

            sols.append(griddata(dg.nodes(), u2, probe, method="nearest"))
        # nearest-node sampling near the moving front introduces O(h *
        # front slope) probe error on top of the discretization difference
        assert np.abs(sols[0] - sols[1]).max() < 0.35


class TestSphereAdvection:
    def test_solid_rotation_conserves_mass_and_bounds(self):
        conn = cubed_sphere_connectivity(r_inner=0.6, r_outer=1.0)
        forest = Forest.uniform(conn, 0)
        dg = DGAdvection(forest, p=3, velocity=solid_body_rotation([0, 0, 1]))
        x = dg.nodes()
        u = np.exp(-(((x[:, 0] - 0.9) ** 2 + x[:, 1] ** 2 + x[:, 2] ** 2) / 0.05))
        m0 = dg.total_mass(u)
        dt = dg.cfl_dt(0.3)
        u2 = dg.advance(u, dt, 30)
        m1 = dg.total_mass(u2)
        # no flux through the shell boundaries (a . n = 0): mass drifts
        # only through the interpolation mortars
        assert abs(m1 - m0) < 0.05 * abs(m0) + 1e-12
        assert np.abs(u2).max() < 1.5

    def test_blob_moves_with_rotation(self):
        conn = cubed_sphere_connectivity(r_inner=0.6, r_outer=1.0)
        forest = Forest.uniform(conn, 0)
        dg = DGAdvection(forest, p=3, velocity=solid_body_rotation([0, 0, 1]))
        x = dg.nodes()
        u = np.exp(-(((x[:, 0] - 0.9) ** 2 + x[:, 1] ** 2 + x[:, 2] ** 2) / 0.05))
        dt = dg.cfl_dt(0.3)
        t_final = 0.3  # rotate by 0.3 rad
        n = max(int(t_final / dt), 1)
        u2 = dg.advance(u, t_final / n, n)
        # center of mass should rotate toward +y
        com_y0 = (dg.Mdiag.ravel() * u * x[:, 1]).sum() / dg.total_mass(u)
        com_y1 = (dg.Mdiag.ravel() * u2 * x[:, 1]).sum() / dg.total_mass(u2)
        assert com_y1 > com_y0 + 0.05


class TestBatchedFaceConstruction:
    """Satellite: the batched face classifier must be a drop-in for the
    per-face loop — bitwise-identical rate(u) for every order P."""

    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_p_invariance_adapted_cube(self, p):
        f = cube_forest(1, refine_first=True)
        wind = const_wind([0.7, -0.4, 0.2])
        dg_loop = DGAdvection(f, p=p, velocity=wind, batch_faces=False)
        dg_bat = DGAdvection(f, p=p, velocity=wind, batch_faces=True)
        x = dg_bat.nodes()
        u = np.sin(3 * x[:, 0]) * np.cos(2 * x[:, 1]) + x[:, 2] ** 2
        assert np.array_equal(dg_loop.rate(u), dg_bat.rate(u))

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_p_invariance_cubed_sphere(self, p):
        """Cross-tree faces take the per-face fallback; same-tree faces
        batch.  The mix must still reproduce the loop bitwise."""
        conn = cubed_sphere_connectivity(r_inner=0.55, r_outer=1.0)
        forest = Forest.uniform(conn, 1)
        wind = solid_body_rotation()
        dg_loop = DGAdvection(forest, p=p, velocity=wind, batch_faces=False)
        dg_bat = DGAdvection(forest, p=p, velocity=wind, batch_faces=True)
        x = dg_bat.nodes()
        u = np.exp(-8.0 * ((x[:, 0] - 0.7) ** 2 + x[:, 1] ** 2 + x[:, 2] ** 2))
        assert np.array_equal(dg_loop.rate(u), dg_bat.rate(u))

    def test_p_invariance_nonconforming_brick(self, p=2):
        f = Forest.uniform(brick_connectivity(2, 1, 1), 1)
        mask = np.zeros(len(f), dtype=bool)
        mask[:4] = True
        f, _ = f.refine(mask).balance()
        wind = const_wind([1.0, 0.3, -0.2])
        dg_loop = DGAdvection(f, p=p, velocity=wind, batch_faces=False)
        dg_bat = DGAdvection(f, p=p, velocity=wind, batch_faces=True)
        u = dg_bat.project(lambda x: x[:, 0] ** 2 - x[:, 1] * x[:, 2])
        assert np.array_equal(dg_loop.rate(u), dg_bat.rate(u))
