"""Process-backend equivalence suite: the multiprocess SPMD backend
(`repro.parallel.procomm`) must be bitwise-equivalent to the threaded
oracle on the real workloads — forest construction/ghost/balance, the
checkpointed AMR pipeline with fault injection, and the fleet preempt /
resume cycle — with the sanitizers (CheckedComm, delivery fuzzer,
conformance monitor) running unchanged on top.

Correctness does not depend on core count, so nothing here skips on a
small host; only a host whose POSIX shared memory is unusable skips.
"""

import os

import numpy as np
import pytest

from repro.amr import ParAmrPipeline
from repro.analysis import sanitize
from repro.analysis.conformance import (
    ScheduleMismatch,
    install_schedule,
    uninstall_schedule,
)
from repro.checkpoint import Checkpointer, list_checkpoints
from repro.forest import ParForest, brick_connectivity, cubed_sphere_connectivity
from repro.parallel import (
    InjectedFault,
    arm_fault,
    disarm_fault,
    run_spmd,
    run_spmd_with_comms,
)
from repro.parallel import procomm

pytestmark = pytest.mark.skipif(
    not procomm.available(),
    reason="POSIX shared memory unavailable on this host",
)

PS = [2, 4]


def both_backends(p, kernel, *args, **kwargs):
    """Run a kernel on both backends and return (threaded, process)."""
    rt = run_spmd(p, kernel, *args, backend="thread", **kwargs)
    rp = run_spmd(p, kernel, *args, backend="process", **kwargs)
    return rt, rp


def assert_bitwise(a, b, path="result"):
    """Deep bitwise equality over the nested structures kernels return."""
    assert type(a) is type(b) or (
        isinstance(a, (list, tuple)) and isinstance(b, (list, tuple))
    ), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, f"{path}: dtype {a.dtype} vs {b.dtype}"
        assert a.shape == b.shape, f"{path}: shape {a.shape} vs {b.shape}"
        assert np.array_equal(a, b, equal_nan=True), f"{path}: values differ"
    elif isinstance(a, dict):
        assert set(a) == set(b), f"{path}: keys {set(a)} vs {set(b)}"
        for k in a:
            assert_bitwise(a[k], b[k], f"{path}[{k!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: len {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_bitwise(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} vs {b!r}"


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


# --------------------------------------------------------------------------
# transport primitives


class TestTransportEquivalence:
    @pytest.mark.parametrize("p", PS)
    def test_collectives_bitwise_equal(self, p, sanitized):
        def kernel(comm):
            rank = comm.rank
            a = np.arange(32, dtype=np.float64) * (rank + 1)
            return {
                "allreduce": comm.allreduce(float(a.sum()), op="sum"),
                "max": comm.allreduce(float(rank), op="max"),
                "allgather": comm.allgather(a),
                "bcast": comm.bcast(a * 3 if rank == 0 else None, root=0),
                "exscan": comm.exscan(rank + 1, op="sum"),
                "gather": comm.gather(rank * 2, root=0),
                "a2a": comm.alltoallv_arrays(
                    [np.full(r + 1, rank * 100 + r, dtype=np.int64)
                     for r in range(comm.size)]
                ),
                "concat": comm.allgather_concat(
                    np.full(rank + 1, float(rank))
                ),
                "offsets": comm.global_offsets(rank + 3),
            }

        rt, rp = both_backends(p, kernel)
        assert_bitwise(rt, rp)

    @pytest.mark.parametrize("p", PS)
    def test_p2p_bitwise_equal(self, p, sanitized):
        def kernel(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            out = []
            for tag in range(3):
                got = comm.sendrecv(
                    {"r": comm.rank, "x": np.full(5, comm.rank + tag * 0.5)},
                    dest=right, source=left, tag=tag,
                )
                out.append(got)
            comm.barrier()
            return out

        rt, rp = both_backends(p, kernel)
        assert_bitwise(rt, rp)

    def test_large_payloads_spill_paths(self, sanitized):
        # exceeds the ring parity region (2 MiB default) -> spill segments
        def kernel(comm):
            big = np.arange(1 << 19, dtype=np.float64) * (comm.rank + 1)
            gat = comm.allgather(big)
            got = comm.sendrecv(
                big * 2.0,
                dest=(comm.rank + 1) % comm.size,
                source=(comm.rank - 1) % comm.size,
                tag=0,
            )
            return {
                "sums": [float(g.sum()) for g in gat],
                "edge": got[[0, -1]].copy(),
            }

        rt, rp = both_backends(2, kernel)
        assert_bitwise(rt, rp)

    def test_received_arrays_are_defensive_copies(self):
        # mutating a received array must not corrupt later exchanges
        def kernel(comm):
            a = np.full(4096, float(comm.rank))
            g1 = comm.allgather(a)
            for g in g1:
                g += 1000.0  # scribble over the received buffers
            g2 = comm.allgather(a)
            return [float(g.sum()) for g in g2]

        rt, rp = both_backends(2, kernel)
        assert_bitwise(rt, rp)

    def test_env_override_selects_process_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_BACKEND", "process")

        def kernel(comm):
            return os.getpid()

        pids = run_spmd(2, kernel)
        assert len(set(pids)) == 2  # real processes, distinct pids
        assert os.getpid() not in pids

    def test_thread_backend_shares_parent_pid(self):
        def kernel(comm):
            return os.getpid()

        assert run_spmd(2, kernel, backend="thread") == [os.getpid()] * 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_spmd(2, lambda comm: None, backend="mpi")


# --------------------------------------------------------------------------
# kernel shipping (closures, cells, defaults)


class TestKernelCodec:
    def test_closure_cells_ship_by_value(self):
        offset = 17.5
        table = {"scale": 3.0}

        def kernel(comm, bump=2.0):
            return comm.rank * table["scale"] + offset + bump

        rt, rp = both_backends(2, kernel)
        assert_bitwise(rt, rp)

    def test_nested_closures_and_recursion(self):
        def kernel(comm):
            def fib(n):
                return n if n < 2 else fib(n - 1) + fib(n - 2)

            return fib(10 + comm.rank)

        rt, rp = both_backends(2, kernel)
        assert_bitwise(rt, rp)

    def test_kwargs_and_array_args_roundtrip(self):
        def kernel(comm, arr, *, label):
            return {"label": label, "dot": float(arr @ arr) * comm.rank}

        arr = np.linspace(0.0, 1.0, 257)
        rt = run_spmd(2, kernel, arr, label="x", backend="thread")
        rp = run_spmd(2, kernel, arr, label="x", backend="process")
        assert_bitwise(rt, rp)


# --------------------------------------------------------------------------
# real workloads, sanitized


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("p", PS)
    def test_forest_ghost_and_balance(self, p, sanitized):
        conn = brick_connectivity(2, 1, 1)

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 2)
            rng = np.random.default_rng(7)
            flags = rng.random(len(pf)) < 0.3
            pf.refine(flags)
            pf.balance()
            g = pf.gather()
            return {
                "keys": [t.leaves.keys().copy() for t in g.trees],
                "levels": [t.leaves.level.copy() for t in g.trees],
            }

        rt, rp = both_backends(p, kernel)
        assert_bitwise(rt, rp)

    @pytest.mark.parametrize("p", PS)
    def test_sphere_balance(self, p, sanitized):
        conn = cubed_sphere_connectivity()

        def kernel(comm):
            pf = ParForest.uniform(comm, conn, 1)
            pf.refine(np.arange(len(pf)) % 3 == 0)
            pf.balance()
            return len(pf)

        rt, rp = both_backends(p, kernel)
        assert sum(rt) == sum(rp)
        assert_bitwise(rt, rp)

    @pytest.mark.parametrize("p", PS)
    def test_amr_pipeline_cycle(self, p, sanitized):
        def kernel(comm):
            pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
            pipe.run_cycles(2, steps_per_cycle=2, target=300)
            from repro.octree import gather_tree

            g = gather_tree(pipe.pt)
            return {
                "keys": g.keys.copy(),
                "levels": g.levels.copy(),
                "T": pipe.T.copy(),
                "steps": pipe.steps_taken,
            }

        rt, rp = both_backends(p, kernel)
        assert_bitwise(rt, rp)

    def test_checkpoint_crash_restart(self, tmp_path, sanitized):
        """Fault-injected crash inside worker processes, then restore —
        the restored trajectory must be bitwise-identical to threads."""
        def crash_kernel(comm, root):
            pipe = ParAmrPipeline(comm, coarse_level=2, max_level=4)
            pipe.run_cycles(3, 2, 300, checkpoint=Checkpointer(root, every=1))
            return None

        def resume_kernel(comm, root):
            pipe = ParAmrPipeline.resume_from(comm, root)
            pipe.run_cycles(3 - pipe.cycles_done, 2, 300)
            return {"T": pipe.T.copy(), "steps": pipe.steps_taken}

        outs = {}
        for backend in ("thread", "process"):
            root = str(tmp_path / backend)
            arm_fault(rank=1, step=4)
            try:
                with pytest.raises(InjectedFault):
                    run_spmd(2, crash_kernel, root, backend=backend)
            finally:
                disarm_fault()
            assert list_checkpoints(root), "no snapshot survived the crash"
            outs[backend] = run_spmd(2, resume_kernel, root, backend=backend)
        assert_bitwise(outs["thread"], outs["process"])

    def test_fleet_preempt_resume_from_workers(self, tmp_path, sanitized):
        """Fleet quantum preemption exercised from inside worker
        processes: each rank runs its own fleet shard, preempts after one
        quantum, and a second process run resumes it to completion."""
        from repro.fleet import FleetService
        from repro.fleet.spec import ScenarioSpec

        def specs(rank):
            return [
                ScenarioSpec(job_id=f"j{rank}", tenant=f"t{rank}", cycles=2),
                ScenarioSpec(
                    job_id=f"k{rank}", tenant=f"t{rank}", cycles=2, Ra=3e4
                ),
            ]

        def start_kernel(comm, base):
            svc = FleetService(root=os.path.join(base, f"shard{comm.rank}"))
            for s in specs(comm.rank):
                svc.admit(s)
            svc.arm_budget(1)
            svc.run()
            comm.barrier()
            return sorted(svc.statuses().values())

        def finish_kernel(comm, base):
            svc = FleetService.resume(os.path.join(base, f"shard{comm.rank}"))
            svc.run()
            comm.barrier()
            return {
                "status": sorted(svc.statuses().values()),
                "vrms": {
                    jid: [h.vrms for h in job.sim.history]
                    for jid, job in sorted(svc.jobs.items())
                },
            }

        def reference(rank):
            svc = FleetService()
            for s in specs(rank):
                svc.admit(s)
            svc.run()
            return {
                jid: [h.vrms for h in job.sim.history]
                for jid, job in sorted(svc.jobs.items())
            }

        base = str(tmp_path / "fleet")
        statuses = run_spmd(2, start_kernel, base, backend="process")
        assert all(set(s) == {"preempted"} for s in statuses)
        outs = run_spmd(2, finish_kernel, base, backend="process")
        for rank, out in enumerate(outs):
            assert set(out["status"]) == {"done"}
            assert_bitwise(out["vrms"], reference(rank))


# --------------------------------------------------------------------------
# sanitizers over the real transport


class TestSanitizersOnProcessBackend:
    def test_checked_comm_catches_divergence(self):
        def kernel(comm):
            if comm.rank == 0:
                comm.allreduce(1.0, op="sum")
            else:
                comm.allgather(comm.rank)

        sanitize.install(timeout=8.0)
        try:
            with pytest.raises(sanitize.CollectiveMismatch) as exc:
                run_spmd(2, kernel, backend="process")
        finally:
            sanitize.uninstall()
        # the structured report survives the process boundary
        assert set(exc.value.report) == {0, 1}

    def test_delivery_fuzzer_equivalent(self):
        def kernel(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            parts = []
            for tag in range(4):
                got = comm.sendrecv(
                    np.full(8, comm.rank * 10.0 + tag),
                    dest=right, source=left, tag=tag,
                )
                parts.append(got.copy())
            comm.barrier()
            return np.concatenate(parts)

        for backend in ("thread", "process"):
            sanitize.install(fuzz_seed=99)
            try:
                out = run_spmd(3, kernel, backend=backend)
            finally:
                sanitize.uninstall()
            if backend == "thread":
                ref = out
        assert_bitwise(ref, out)

    def test_conformance_monitor_runs_in_workers(self, sanitized):
        from repro.analysis.conformance import schedule_phase

        doc = {
            "version": 1,
            "entries": {
                "phase_x": {
                    "qname": "t.q",
                    "tree": {
                        "seq": [
                            {"op": "allreduce", "site": None},
                            {"op": "barrier", "site": None},
                        ]
                    },
                }
            },
        }

        def good_kernel(comm):
            with schedule_phase("phase_x"):
                comm.allreduce(1.0, op="sum")
                comm.barrier()
            return comm.rank

        def bad_kernel(comm):
            with schedule_phase("phase_x"):
                comm.allreduce(1.0, op="sum")
                comm.allgather(comm.rank)  # schedule says barrier
            return comm.rank

        install_schedule(doc)
        try:
            assert run_spmd(2, good_kernel, backend="process") == [0, 1]
            with pytest.raises(ScheduleMismatch) as exc:
                run_spmd(2, bad_kernel, backend="process")
        finally:
            uninstall_schedule()
        assert exc.value.diff["phase"] == "phase_x"  # diff survives pickling

    def test_injected_fault_fires_in_worker_and_fires_once(self):
        from repro.parallel.simcomm import check_fault

        def kernel(comm, steps):
            for step in range(steps):
                check_fault(comm, step)
                comm.barrier()
            return comm.rank

        arm_fault(rank=1, step=2)
        try:
            with pytest.raises(InjectedFault) as exc:
                run_spmd(2, kernel, 4, backend="process")
            assert (exc.value.rank, exc.value.step) == (1, 2)
            # fire-once semantics hold across the process boundary
            assert run_spmd(2, kernel, 4, backend="process") == [0, 1]
        finally:
            disarm_fault()


# --------------------------------------------------------------------------
# stats + obs gathering


class TestGatherBack:
    def test_stats_counters_identical_across_backends(self, sanitized):
        def kernel(comm):
            comm.allreduce(float(comm.rank))
            comm.allgather(np.zeros(16))
            comm.sendrecv(
                b"x" * 100,
                dest=(comm.rank + 1) % comm.size,
                source=(comm.rank - 1) % comm.size,
            )
            comm.barrier()
            return None

        per_backend = {}
        for backend in ("thread", "process"):
            _res, comms = run_spmd_with_comms(2, kernel, backend=backend)
            per_backend[backend] = [
                (
                    c.stats.p2p_messages,
                    c.stats.p2p_bytes,
                    dict(c.stats.collective_calls),
                    dict(c.stats.collective_bytes),
                )
                for c in comms
            ]
        assert per_backend["thread"] == per_backend["process"]

    def test_obs_report_structure_identical(self, sanitized):
        from repro import obs
        from repro.obs import generate_report

        def kernel(comm):
            t = obs.enable(comm)
            with obs.phase("cycle"):
                with obs.phase("solve"):
                    comm.allreduce(float(comm.rank))
                with obs.phase("exchange"):
                    comm.alltoallv_arrays(
                        [np.full(2, float(comm.rank)) for _ in range(comm.size)]
                    )
            obs.disable()
            return t.results()

        reports = {}
        for backend in ("thread", "process"):
            per_rank = run_spmd(2, kernel, backend=backend)
            reports[backend] = generate_report(per_rank)
        rt, rp = reports["thread"], reports["process"]
        assert set(rt["phases"]) == set(rp["phases"])
        for ph in rt["phases"]:
            a, b = rt["phases"][ph], rp["phases"][ph]
            assert a["collective_calls"] == b["collective_calls"]
            assert a["collective_bytes"] == b["collective_bytes"]
            assert a["p2p_messages"] == b["p2p_messages"]
            assert a["count"] == b["count"]

    def test_dangling_timer_gathered_to_proxy(self):
        from repro import obs

        def kernel(comm):
            obs.enable(comm)
            with obs.phase("only"):
                comm.barrier()
            return comm.rank  # forgets obs.disable()

        _res, comms = run_spmd_with_comms(2, kernel, backend="process")
        for c in comms:
            assert c.timer_results is not None
            assert "only" in c.timer_results
