"""Unit + property tests for 2:1 balance (repro.octree.balance)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import LinearOctree, balance, balance_violations, is_balanced


def center_refined_tree(depth: int) -> LinearOctree:
    """Repeatedly refine the leaf anchored at the domain center.

    The center is a corner shared by all eight level-1 leaves, so the deep
    leaf's face neighbors across the center stay at level 1 — a genuine
    2:1 violation whose closure must ripple outward.  (Refining at a
    *domain* corner never unbalances: each refinement leaves behind
    intermediate-level siblings that grade the tree automatically.)
    """
    from repro.octree import ROOT_LEN

    mid = ROOT_LEN // 2
    tree = LinearOctree.uniform(1)
    for _ in range(depth):
        mask = np.zeros(len(tree), dtype=bool)
        idx = tree.find_containing(np.array([mid]), np.array([mid]), np.array([mid]))[0]
        mask[idx] = True
        tree = tree.refine(mask)
    return tree


class TestBalanceBasics:
    def test_uniform_is_balanced(self):
        assert is_balanced(LinearOctree.uniform(2))

    def test_single_refine_is_balanced(self):
        t = LinearOctree.uniform(1)
        mask = np.zeros(8, dtype=bool)
        mask[0] = True
        assert is_balanced(t.refine(mask))

    def test_two_level_jump_detected(self):
        t = center_refined_tree(2)  # origin leaf at level 3, neighbor at 1
        assert not is_balanced(t)
        assert balance_violations(t) > 0

    def test_balance_fixes_violations(self):
        t = center_refined_tree(3)
        res = balance(t)
        assert is_balanced(res.tree)
        assert res.tree.is_complete()
        assert res.leaves_added > 0
        assert res.rounds >= 1

    def test_balance_idempotent(self):
        t = center_refined_tree(3)
        res = balance(t)
        res2 = balance(res.tree)
        assert res2.leaves_added == 0
        assert res2.tree.leaves.equals(res.tree.leaves)

    def test_balance_keeps_original_leaves_or_descendants(self):
        """Balance only refines: every original leaf is either present or
        fully covered by descendants."""
        t = center_refined_tree(3)
        res = balance(t)
        orig_start, orig_end = t.leaves.key_ranges()
        new_start = res.tree.keys
        # each original leaf's interval start must appear as a leaf anchor
        assert np.all(np.isin(orig_start, new_start))

    def test_ripple_depth(self):
        """Deep corner refinement requires multiple ripple rounds."""
        t = center_refined_tree(5)
        res = balance(t)
        assert res.rounds >= 2
        assert is_balanced(res.tree)

    def test_nonconvergence_guard(self):
        t = center_refined_tree(4)
        with pytest.raises(RuntimeError):
            balance(t, max_rounds=1)


class TestConnectivityVariants:
    def test_face_weaker_than_edge_weaker_than_corner(self):
        t = center_refined_tree(4)
        n_face = len(balance(t, "face").tree)
        n_edge = len(balance(t, "edge").tree)
        n_corner = len(balance(t, "corner").tree)
        assert n_face <= n_edge <= n_corner

    def test_corner_balance_implies_edge_balance(self):
        t = center_refined_tree(4)
        bt = balance(t, "corner").tree
        assert is_balanced(bt, "edge")
        assert is_balanced(bt, "face")


class TestBalanceProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_trees_balance(self, seed):
        rng = np.random.default_rng(seed)
        tree = LinearOctree.uniform(1)
        for _ in range(3):
            mask = rng.random(len(tree)) < 0.25
            tree = tree.refine(mask)
        res = balance(tree)
        assert res.tree.is_complete()
        assert is_balanced(res.tree)
        # balance never removes resolution
        assert res.tree.levels.max() == tree.levels.max()
        assert len(res.tree) >= len(tree)
