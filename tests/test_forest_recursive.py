"""Equivalence suite for the recursive forest algorithms (PR: search-free
ghost, low-collective balance, recursive face iteration).

Every recursive variant must be *bitwise identical* to its search oracle:
ghost layers (octants + owners), balanced trees/forests, extracted
parallel meshes, and DG advection rates.  The suite runs the randomized
comparisons across rank counts including non-powers-of-two.
"""

import numpy as np
import pytest

from repro.forest import (
    Forest,
    ParForest,
    brick_connectivity,
    cubed_sphere_connectivity,
    unit_cube,
)
from repro.mangll import DGAdvection
from repro.mesh import extract_mesh
from repro.mesh.parmesh import UnbalancedTreeError, collect_ghosts, extract_parmesh
from repro.octree import (
    LinearOctree,
    balance,
    balance_tree,
    gather_tree,
    merge_lookup,
    new_tree,
    refine_tree,
    row_lookup,
)
from repro.octree.partree import partition_tree
from repro.parallel import run_spmd

PS = [1, 2, 3, 4, 7]


def build_ptree(comm, level=2, refine_seed=None, frac=0.3):
    """Random adaptive, corner-balanced, partitioned distributed tree."""
    pt = new_tree(comm, level)
    if refine_seed is not None:
        offset = pt.global_offset()
        total = comm.allreduce(len(pt))
        rng = np.random.default_rng(refine_seed)
        gmask = rng.random(total) < frac
        pt = refine_tree(pt, gmask[offset : offset + len(pt)])
    pt, _, _ = balance_tree(pt, "corner")
    pt, _ = partition_tree(pt)
    return pt


def build_pforest(comm, conn, level=1, refine_seed=None, frac=0.3):
    pf = ParForest.uniform(comm, conn, level)
    if refine_seed is not None:
        counts = comm.allgather(len(pf))
        offset = sum(counts[: comm.rank])
        rng = np.random.default_rng(refine_seed)
        gmask = rng.random(sum(counts)) < frac
        pf = pf.refine(gmask[offset : offset + len(pf)])
    return pf


class TestLookupKernels:
    """merge_lookup / row_lookup against brute-force references."""

    def test_merge_lookup_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        keys = np.unique(rng.integers(0, 500, 80).astype(np.uint64))
        sorter = np.argsort(keys, kind="stable")
        cand = rng.integers(0, 500, 200).astype(np.uint64)
        got = merge_lookup(keys[sorter], sorter, cand)
        want = np.array(
            [
                int(np.flatnonzero(keys == c)[0]) if np.any(keys == c) else -1
                for c in cand
            ],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(got, want)

    def test_merge_lookup_empty(self):
        e = np.empty(0, dtype=np.uint64)
        np.testing.assert_array_equal(
            merge_lookup(e, np.empty(0, dtype=np.int64), e), np.empty(0)
        )
        got = merge_lookup(e, np.empty(0, dtype=np.int64), np.array([3], dtype=np.uint64))
        np.testing.assert_array_equal(got, [-1])

    def test_row_lookup_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        # B rows deliberately unsorted, with duplicates in single columns
        b = [rng.integers(0, 6, 60), rng.integers(0, 6, 60)]
        a = [rng.integers(0, 6, 120), rng.integers(0, 6, 120)]
        got = row_lookup(a, b)
        for i in range(120):
            js = np.flatnonzero((b[0] == a[0][i]) & (b[1] == a[1][i]))
            if len(js) == 0:
                assert got[i] == -1
            else:
                assert got[i] in js

    def test_row_lookup_unique_rows_exact(self):
        b = [np.array([5, 1, 3]), np.array([0, 2, 1])]
        a = [np.array([3, 5, 4, 1]), np.array([1, 0, 4, 2])]
        np.testing.assert_array_equal(row_lookup(a, b), [2, 0, -1, 1])


class TestRecursiveGhost:
    @pytest.mark.parametrize("p", PS)
    def test_bitwise_matches_search(self, p):
        def kernel(comm):
            for seed in (3, 7, 11):
                pt = build_ptree(comm, 2, refine_seed=seed)
                gs, os_ = collect_ghosts(pt, algorithm="search")
                gr, or_ = collect_ghosts(pt, algorithm="recursive")
                np.testing.assert_array_equal(gs.keys(), gr.keys())
                np.testing.assert_array_equal(gs.level, gr.level)
                np.testing.assert_array_equal(os_, or_)
            return True

        assert all(run_spmd(p, kernel))

    def test_recursive_ghosts_complete_for_26_adjacency(self):
        """Brute-force reference: every global leaf touching (face, edge,
        or corner) a local leaf must be local or a recursive ghost."""

        def kernel(comm):
            pt = build_ptree(comm, 2, refine_seed=5)
            ghosts, _ = collect_ghosts(pt, algorithm="recursive")
            g = gather_tree(pt)
            union_keys = set(pt.keys.tolist()) | set(ghosts.keys().tolist())
            lv = g.leaves
            h = lv.lengths()
            lo = np.stack([lv.x, lv.y, lv.z], axis=1)
            hi = lo + h[:, None]
            is_local = np.isin(g.keys, pt.keys)
            missing = 0
            for i in np.flatnonzero(is_local):
                touch = np.all((lo <= hi[i]) & (hi >= lo[i]), axis=1)
                for j in np.flatnonzero(touch):
                    if int(g.keys[j]) not in union_keys:
                        missing += 1
            return missing

        assert all(m == 0 for m in run_spmd(3, kernel))

    def test_sanitize_rejects_unbalanced_tree(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")

        def kernel(comm):
            # refine toward the domain center (level 3 beside level 1),
            # never balance: a genuine corner 2:1 violation
            pt = new_tree(comm, 1)
            for idx in (0, 7):
                mask = np.zeros(len(pt), dtype=bool)
                if comm.rank == 0:
                    mask[idx] = True
                pt = refine_tree(pt, mask)
            collect_ghosts(pt)

        with pytest.raises(UnbalancedTreeError) as exc:
            run_spmd(2, kernel)
        assert exc.value.violations > 0


class TestRecursiveBalance:
    @pytest.mark.parametrize("p", PS)
    def test_octree_bitwise_matches_ripple(self, p):
        def kernel(comm):
            for seed in (2, 9):
                pt = new_tree(comm, 2)
                offset = pt.global_offset()
                total = comm.allreduce(len(pt))
                rng = np.random.default_rng(seed)
                gmask = rng.random(total) < 0.3
                pt = refine_tree(pt, gmask[offset : offset + len(pt)])
                ps, _, _ = balance_tree(pt, "corner", algorithm="search")
                pr, _, exchanges = balance_tree(pt, "corner", algorithm="recursive")
                gs, gr = gather_tree(ps), gather_tree(pr)
                np.testing.assert_array_equal(gs.keys, gr.keys)
                np.testing.assert_array_equal(gs.levels, gr.levels)
                assert exchanges <= 3
            return True

        assert all(run_spmd(p, kernel))

    @pytest.mark.parametrize(
        "conn_factory",
        [cubed_sphere_connectivity, lambda: brick_connectivity(2, 1, 1)],
        ids=["cubed_sphere", "brick"],
    )
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_forest_bitwise_matches_ripple(self, p, conn_factory):
        conn = conn_factory()

        def kernel(comm):
            pf = build_pforest(comm, conn, 1, refine_seed=4)
            fs, added_s = pf.balance("edge", algorithm="search")
            fr, added_r = pf.balance("edge", algorithm="recursive")
            assert added_s == added_r
            return fs.gather(), fr.gather()

        for gs, gr in run_spmd(p, kernel):
            assert gs.n_trees == gr.n_trees
            for ts, tr in zip(gs.trees, gr.trees):
                assert ts.leaves.equals(tr.leaves)


class TestExtractEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_parmesh_identical_across_algorithms(self, p):
        def kernel(comm):
            pt = build_ptree(comm, 2, refine_seed=3)
            ref = extract_parmesh(pt, ghost_algorithm="search", face_algorithm="search")
            for ga in ("search", "recursive"):
                for fa in ("search", "recursive"):
                    pm = extract_parmesh(pt, ghost_algorithm=ga, face_algorithm=fa)
                    np.testing.assert_array_equal(
                        pm.mesh.node_coords_int, ref.mesh.node_coords_int
                    )
                    np.testing.assert_array_equal(
                        pm.mesh.element_nodes, ref.mesh.element_nodes
                    )
                    np.testing.assert_array_equal(
                        pm.mesh.indep_nodes, ref.mesh.indep_nodes
                    )
                    np.testing.assert_array_equal(pm.mesh.Z.indptr, ref.mesh.Z.indptr)
                    np.testing.assert_array_equal(pm.mesh.Z.indices, ref.mesh.Z.indices)
                    np.testing.assert_array_equal(pm.mesh.Z.data, ref.mesh.Z.data)
                    np.testing.assert_array_equal(pm.global_dof, ref.global_dof)
                    assert pm.n_global == ref.n_global
            return True

        assert all(run_spmd(p, kernel))

    def test_serial_extract_mesh_identical(self):
        rng = np.random.default_rng(6)
        tree = LinearOctree.uniform(2)
        tree = balance(tree.refine(rng.random(len(tree)) < 0.4), "corner").tree
        ms = extract_mesh(tree, face_algorithm="search")
        mr = extract_mesh(tree, face_algorithm="recursive")
        np.testing.assert_array_equal(ms.node_coords_int, mr.node_coords_int)
        np.testing.assert_array_equal(ms.Z.indptr, mr.Z.indptr)
        np.testing.assert_array_equal(ms.Z.indices, mr.Z.indices)
        np.testing.assert_array_equal(ms.Z.data, mr.Z.data)


class TestDGFaceIteration:
    def _rates_equal(self, forest, p, velocity):
        dg_s = DGAdvection(forest, p=p, velocity=velocity, face_algorithm="search")
        dg_r = DGAdvection(forest, p=p, velocity=velocity, face_algorithm="recursive")
        rng = np.random.default_rng(0)
        u = rng.standard_normal(dg_s.n_dof)
        assert np.array_equal(dg_s.rate(u), dg_r.rate(u))

    def test_adapted_cube_bitwise(self):
        f = Forest.uniform(unit_cube(), 1)
        mask = np.zeros(len(f), dtype=bool)
        mask[0] = True
        f, _ = f.refine(mask).balance()

        def wind(x):
            return np.broadcast_to([1.0, 0.3, 0.2], x.shape).copy()

        self._rates_equal(f, 3, wind)

    def test_cubed_sphere_bitwise(self):
        from repro.mangll import solid_body_rotation

        conn = cubed_sphere_connectivity(r_inner=0.55, r_outer=1.0)
        f = Forest.uniform(conn, 1)
        self._rates_equal(f, 2, solid_body_rotation())


class TestMarkQuantization:
    def test_marks_invariant_under_exchange_noise(self):
        """The quantized thresholds must absorb the ~1e-11 relative
        rank-count-dependent FP noise of distributed indicators."""
        from repro.amr import mark_elements

        rng = np.random.default_rng(8)
        eta = rng.random(600)
        levels = np.full(600, 3)
        ref = mark_elements(eta, levels, target=1400)
        for seed in range(5):
            noise = 1 + 1e-11 * np.random.default_rng(seed).standard_normal(600)
            res = mark_elements(eta * noise, levels, target=1400)
            np.testing.assert_array_equal(res.refine, ref.refine)
            np.testing.assert_array_equal(res.coarsen, ref.coarsen)
