"""Trace export and report generation: Chrome-trace structure (one
track per rank, nested slices), root-phase detection, fractions,
modeled comm shares, and the markdown rendering."""

import json

import pytest

from repro import obs
from repro.obs.report import classify_phase, model_phase_comm
from repro.obs.timer import PhaseTimer
from repro.parallel import run_spmd
from repro.parallel.machine import RANGER


@pytest.fixture(autouse=True)
def _unbound():
    obs.disable()
    yield
    obs.disable()


def _spmd_traces_and_results(p=4):
    def kernel(comm):
        timer = obs.enable(comm)
        with obs.phase("amr"):
            with obs.phase("balance"):
                comm.allreduce(1)
        with obs.phase("stokes"):
            pass
        obs.disable()
        return {"trace": timer.trace_data(), "results": timer.results()}

    return run_spmd(p, kernel)


# -- chrome trace ------------------------------------------------------------


def test_trace_one_track_per_rank_with_metadata():
    out = _spmd_traces_and_results(4)
    doc = obs.chrome_trace([r["trace"] for r in out])
    events = doc["traceEvents"]
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names == {r: f"rank {r}" for r in range(4)}
    x_tids = {e["tid"] for e in events if e["ph"] == "X"}
    assert x_tids == {0, 1, 2, 3}
    assert all(e["pid"] == 0 for e in events)


def test_trace_nested_slices_contained_in_parent():
    out = _spmd_traces_and_results(2)
    events = obs.chrome_trace([r["trace"] for r in out])["traceEvents"]
    for rank in (0, 1):  # lint: allow-loop (per-rank assertions)
        slices = {
            e["name"]: (e["ts"], e["ts"] + e["dur"])
            for e in events
            if e["ph"] == "X" and e["tid"] == rank
        }
        child, parent = slices["amr/balance"], slices["amr"]
        assert parent[0] <= child[0] and child[1] <= parent[1] + 1e-6


def test_trace_written_file_is_valid_json(tmp_path):
    timer = obs.enable()
    with obs.phase("p"):
        pass
    obs.disable()
    path = tmp_path / "trace.json"
    obs.chrome_trace([timer], str(path))
    doc = json.loads(path.read_text())
    assert any(e["ph"] == "X" and e["name"] == "p" for e in doc["traceEvents"])


def test_trace_accepts_timers_and_dicts_and_empty():
    timer = obs.enable()
    with obs.phase("p"):
        pass
    obs.disable()
    a = obs.trace_events([timer])
    b = obs.trace_events([timer.trace_data()])
    assert a == b
    assert obs.trace_events([]) == []


# -- report ------------------------------------------------------------------


def test_classify_phase_groups():
    assert classify_phase("amr/balance") == "amr"
    assert classify_phase("stokes/minres") == "stokes"
    assert classify_phase("checkpoint/save") == "checkpoint"
    assert classify_phase("io") == "other"


def test_report_roots_exclude_nested_phases():
    out = _spmd_traces_and_results(2)
    rep = obs.generate_report([r["results"] for r in out], executed_ranks=2)
    assert rep["phases"]["amr"]["root"] is True
    assert rep["phases"]["amr/balance"]["root"] is False
    # wall total counts only roots: amr + stokes, not amr/balance again
    expected = rep["phases"]["amr"]["wall_s"]["max"] + rep["phases"]["stokes"]["wall_s"]["max"]
    assert rep["total_wall_s"] == pytest.approx(expected)


def test_report_fractions_sum_to_one():
    out = _spmd_traces_and_results(4)
    rep = obs.generate_report([r["results"] for r in out], executed_ranks=4)
    assert sum(rep["fractions"].values()) == pytest.approx(1.0)
    assert 0.0 < rep["amr_fraction"] < 1.0
    assert rep["executed_ranks"] == 4
    assert rep["machine"] == RANGER.name


def test_report_comm_share_grows_with_core_count():
    out = _spmd_traces_and_results(2)
    rep = obs.generate_report(
        [r["results"] for r in out], core_counts=(1, 1024, 62464)
    )
    amr = rep["groups"]["amr"]
    assert amr["comm_model_s"]["1"] == 0.0
    assert amr["comm_model_s"]["62464"] >= amr["comm_model_s"]["1024"] > 0.0
    assert 0.0 <= amr["comm_fraction"]["62464"] <= 1.0


def test_report_surfaces_timer_level_counters():
    timer = obs.enable()
    with obs.phase("amr"):
        pass
    obs.counter("late", 2)  # recorded after the phase closed
    obs.disable()
    rep = obs.generate_report([timer.results()], executed_ranks=1)
    assert rep["counters"] == {"late": 2}
    assert "" not in rep["phases"]


def test_model_phase_comm_single_core_is_free():
    entry = {
        "p2p_messages": {"median": 5},
        "p2p_bytes": {"median": 1000},
        "collective_calls": {"median": 3},
        "collective_bytes": {"median": 64},
    }
    assert model_phase_comm(entry, 1) == 0.0
    assert model_phase_comm(entry, 1024) > 0.0


# -- markdown ----------------------------------------------------------------


def test_markdown_report_reproduces_table_iv_structure():
    out = _spmd_traces_and_results(2)
    rep = obs.generate_report([r["results"] for r in out], executed_ranks=2)
    md = obs.markdown_report(rep)
    assert "| Phase |" in md
    assert "AMR (all tree/mesh functions)" in md
    assert "Stokes solve" in md
    assert "Component summary" in md
    # nested phases render indented under their roots
    assert "&nbsp;&nbsp;amr/balance" in md


def test_markdown_report_empty_run():
    timer = PhaseTimer()
    rep = obs.generate_report([timer.results()])
    assert rep["total_wall_s"] == 0.0
    md = obs.markdown_report(rep)
    assert "| Phase |" in md
