"""Additional machine-model tests (sparse alltoall, rate knobs)."""

import pytest

from repro.parallel import MachineModel, RANGER


class TestSparseAlltoall:
    def test_latency_saturates_at_fanout(self):
        """Beyond the SFC-neighborhood fan-out, alltoall latency stops
        growing with P (sparse neighbor exchange, not dense)."""
        t_small = RANGER.t_collective("alltoall", 0, 8)
        t_big = RANGER.t_collective("alltoall", 0, 65536)
        assert t_big == RANGER.alltoall_fanout * RANGER.alpha
        assert t_small < t_big

    def test_volume_term_independent_of_p(self):
        t1 = RANGER.t_collective("alltoall", 1 << 20, 64)
        t2 = RANGER.t_collective("alltoall", 1 << 20, 4096)
        assert t2 - t1 == pytest.approx(0.0, abs=RANGER.alpha * 64)

    def test_custom_fanout(self):
        m = MachineModel(alltoall_fanout=6)
        assert m.t_collective("alltoall", 0, 1024) == 6 * m.alpha


class TestRates:
    def test_flops_and_stream(self):
        m = MachineModel(flop_rate=2e9, mem_rate=4e9)
        assert m.t_flops(2e9) == pytest.approx(1.0)
        assert m.t_stream(4e9) == pytest.approx(1.0)

    def test_log_collectives_grow_slowly(self):
        t1 = RANGER.t_collective("allreduce", 8, 1024)
        t2 = RANGER.t_collective("allreduce", 8, 1 << 20)
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)  # 20/10 rounds
