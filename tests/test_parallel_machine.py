"""Additional machine-model tests (sparse alltoall, rate knobs)."""

import pytest

from repro.parallel import MachineModel, RANGER


class TestSparseAlltoall:
    def test_latency_saturates_at_fanout(self):
        """Beyond the SFC-neighborhood fan-out, alltoall latency stops
        growing with P (sparse neighbor exchange, not dense)."""
        t_small = RANGER.t_collective("alltoall", 0, 8)
        t_big = RANGER.t_collective("alltoall", 0, 65536)
        assert t_big == RANGER.alltoall_fanout * RANGER.alpha
        assert t_small < t_big

    def test_volume_term_independent_of_p(self):
        t1 = RANGER.t_collective("alltoall", 1 << 20, 64)
        t2 = RANGER.t_collective("alltoall", 1 << 20, 4096)
        assert t2 - t1 == pytest.approx(0.0, abs=RANGER.alpha * 64)

    def test_custom_fanout(self):
        m = MachineModel(alltoall_fanout=6)
        assert m.t_collective("alltoall", 0, 1024) == 6 * m.alpha


class TestRates:
    def test_flops_and_stream(self):
        m = MachineModel(flop_rate=2e9, mem_rate=4e9)
        assert m.t_flops(2e9) == pytest.approx(1.0)
        assert m.t_stream(4e9) == pytest.approx(1.0)

    def test_log_collectives_grow_slowly(self):
        t1 = RANGER.t_collective("allreduce", 8, 1024)
        t2 = RANGER.t_collective("allreduce", 8, 1 << 20)
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)  # 20/10 rounds


class TestAnchoredTo:
    def _tally(self):
        from repro.parallel import CommStats

        s = CommStats()
        s.add_flops(1e7)
        for _ in range(5):
            s.record_collective("allreduce", 64)
        s.record_p2p(1 << 16)
        return s

    def test_reproduces_measurement_exactly(self):
        s = self._tally()
        m = RANGER.anchored_to(s, 8, measured_seconds=0.25)
        assert m.t_total(s, 8) == pytest.approx(0.25, rel=1e-12)
        assert m.name == "ranger@P8"

    def test_shape_preserved(self):
        # anchoring rescales speed but not the relative cost structure:
        # ratios between modeled times at different core counts survive
        s = self._tally()
        m = RANGER.anchored_to(s, 8, measured_seconds=1.7)
        for p in (64, 4096):
            ratio_ref = RANGER.t_comm(s, p) / RANGER.t_comm(s, 8)
            ratio_anch = m.t_comm(s, p) / m.t_comm(s, 8)
            assert ratio_anch == pytest.approx(ratio_ref, rel=1e-12)

    def test_original_model_unchanged(self):
        s = self._tally()
        before = (RANGER.alpha, RANGER.beta, RANGER.flop_rate)
        RANGER.anchored_to(s, 4, measured_seconds=0.1)
        assert (RANGER.alpha, RANGER.beta, RANGER.flop_rate) == before

    def test_rejects_bad_measurement(self):
        s = self._tally()
        with pytest.raises(ValueError):
            RANGER.anchored_to(s, 8, measured_seconds=0.0)
        from repro.parallel import CommStats

        with pytest.raises(ValueError):
            RANGER.anchored_to(CommStats(), 8, measured_seconds=1.0)
