"""Tests for distributed mesh extraction (parallel EXTRACTMESH).

The key invariant is P-invariance: global dof counts, assembled values,
and interpolation results must be identical for any rank count.
"""

import numpy as np
import pytest

from repro.mesh import extract_mesh
from repro.mesh.parmesh import collect_ghosts, extract_parmesh, par_interpolate_at
from repro.octree import (
    LinearOctree,
    balance,
    balance_tree,
    gather_tree,
    new_tree,
    partition_markers,
    refine_tree,
)
from repro.octree.partree import partition_tree
from repro.parallel import run_spmd

PS = [1, 2, 3, 5]


def build_ptree(comm, level=2, refine_seed=None):
    """Balanced, partitioned distributed test tree."""
    pt = new_tree(comm, level)
    if refine_seed is not None:
        offset = pt.global_offset()
        total = comm.allreduce(len(pt))
        rng = np.random.default_rng(refine_seed)
        gmask = rng.random(total) < 0.3
        pt = refine_tree(pt, gmask[offset : offset + len(pt)])
    pt, _, _ = balance_tree(pt, "corner")
    pt, _ = partition_tree(pt)
    return pt


def serial_reference(level=2, refine_seed=None):
    tree = LinearOctree.uniform(level)
    if refine_seed is not None:
        rng = np.random.default_rng(refine_seed)
        tree = tree.refine(rng.random(len(tree)) < 0.3)
    return balance(tree, "corner").tree


class TestCollectGhosts:
    def test_single_rank_no_ghosts(self):
        def kernel(comm):
            pt = build_ptree(comm, 2)
            ghosts, owners = collect_ghosts(pt)
            return len(ghosts)

        assert run_spmd(1, kernel) == [0]

    @pytest.mark.parametrize("p", [2, 4])
    def test_ghosts_are_adjacent_remote_leaves(self, p):
        def kernel(comm):
            pt = build_ptree(comm, 2)
            ghosts, owners = collect_ghosts(pt)
            # every ghost is remote
            markers = partition_markers(comm, pt.local)
            from repro.octree import owners_of_keys

            gowner = owners_of_keys(markers, ghosts.keys())
            assert np.all(gowner != comm.rank)
            np.testing.assert_array_equal(gowner, owners)
            # ghosts are valid octants of the global tree
            g = gather_tree(pt)
            pos = np.searchsorted(g.keys, ghosts.keys())
            assert np.array_equal(g.keys[pos], ghosts.keys())
            return True

        assert all(run_spmd(p, kernel))

    def test_ghost_completeness_for_adjacency(self):
        """Every global leaf that touches (26-adjacency) a local leaf is
        either local or a ghost."""

        def kernel(comm):
            pt = build_ptree(comm, 2, refine_seed=7)
            ghosts, _ = collect_ghosts(pt)
            g = gather_tree(pt)
            # brute force adjacency on the gathered tree
            local_keys = set(pt.keys.tolist())
            union_keys = local_keys | set(ghosts.keys().tolist())
            lv = g.leaves
            h = lv.lengths()
            lo = np.stack([lv.x, lv.y, lv.z], axis=1)
            hi = lo + h[:, None]
            is_local = np.isin(g.keys, pt.keys)
            missing = 0
            for i in np.flatnonzero(is_local):
                touch = np.all((lo <= hi[i]) & (hi >= lo[i]), axis=1)
                for j in np.flatnonzero(touch):
                    if int(g.keys[j]) not in union_keys:
                        missing += 1
            return missing

        out = run_spmd(3, kernel)
        assert all(m == 0 for m in out)


class TestExtractParmesh:
    @pytest.mark.parametrize("p", PS)
    def test_global_dof_count_matches_serial(self, p):
        def kernel(comm):
            pt = build_ptree(comm, 2, refine_seed=3)
            pm = extract_parmesh(pt)
            return pm.n_global

        ref = extract_mesh(serial_reference(2, refine_seed=3))
        for n in run_spmd(p, kernel):
            assert n == ref.n_independent

    @pytest.mark.parametrize("p", [2, 4])
    def test_owned_elements_partition_globally(self, p):
        def kernel(comm):
            pt = build_ptree(comm, 2, refine_seed=1)
            pm = extract_parmesh(pt)
            return pm.global_element_count(), comm.allreduce(len(pt))

        for n_owned, n_tree in run_spmd(p, kernel):
            assert n_owned == n_tree

    @pytest.mark.parametrize("p", [3])
    def test_global_ids_consistent_across_ranks(self, p):
        """The same physical node must get the same global id everywhere."""

        def kernel(comm):
            pt = build_ptree(comm, 2, refine_seed=5)
            pm = extract_parmesh(pt)
            from repro.mesh import node_keys

            nk = node_keys(pm.mesh.node_coords_int[pm.mesh.indep_nodes])
            sel = pm.global_dof >= 0
            return comm.allgather(
                np.stack([nk[sel].astype(np.float64), pm.global_dof[sel]], axis=1)
            )

        out = run_spmd(p, kernel)
        table = {}
        for part in out[0]:
            for key, gid in part:
                if key in table:
                    assert table[key] == gid
                else:
                    table[key] = gid

    def test_exchange_sum_assembles_counts(self):
        """Summing 1-per-owned-element-touch over ranks equals the serial
        node valence."""

        def kernel(comm):
            pt = build_ptree(comm, 2, refine_seed=2)
            pm = extract_parmesh(pt)
            mesh = pm.mesh
            counts = np.zeros(mesh.n_independent)
            en = mesh.element_nodes[pm.owned_elements]
            dofs = mesh.dof_of_node[en.ravel()]
            np.add.at(counts, dofs[dofs >= 0], 1.0)
            total = pm.exchange_sum(counts)
            return pm.gather_global(total)

        ref = extract_mesh(serial_reference(2, refine_seed=2))
        ref_counts = np.zeros(ref.n_independent)
        dofs = ref.dof_of_node[ref.element_nodes.ravel()]
        np.add.at(ref_counts, dofs[dofs >= 0], 1.0)

        for p in [1, 2, 4]:
            out = run_spmd(p, kernel)
            # compare as multisets via sorted values (global id orderings
            # differ from serial dof numbering)
            for g in out:
                np.testing.assert_allclose(np.sort(g), np.sort(ref_counts))

    def test_consistent_overwrites_with_owner_value(self):
        def kernel(comm):
            pt = build_ptree(comm, 1)
            pm = extract_parmesh(pt)
            vals = np.full(pm.mesh.n_independent, float(comm.rank))
            out = pm.consistent(vals)
            # every active dof now carries its owner's rank id
            dof_owner = pm.node_owner[pm.mesh.indep_nodes]
            sel = pm.active
            return bool(np.all(out[sel] == dof_owner[sel]))

        assert all(run_spmd(3, kernel))


class TestParInterpolate:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_linear_field_interpolation(self, p):
        def kernel(comm):
            pt = build_ptree(comm, 2, refine_seed=4)
            pm = extract_parmesh(pt)
            mesh = pm.mesh
            coords = mesh.node_coords()
            u_full = coords @ np.array([1.0, -2.0, 0.5]) + 3.0
            markers = partition_markers(comm, pt.local)
            rng = np.random.default_rng(100 + comm.rank)
            pts = rng.random((20, 3))
            vals = par_interpolate_at(pm, markers, u_full, pts)
            expect = pts @ np.array([1.0, -2.0, 0.5]) + 3.0
            np.testing.assert_allclose(vals, expect, atol=1e-9)
            return True

        assert all(run_spmd(p, kernel))
