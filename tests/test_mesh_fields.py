"""Tests for INTERPOLATEFIELDS (serial field transfer between meshes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import extract_mesh, interpolate_fields, interpolate_many
from repro.octree import LinearOctree, balance


def mesh_pair(seed=0):
    """An adapted mesh and a further-refined version of it."""
    rng = np.random.default_rng(seed)
    t1 = balance(LinearOctree.uniform(2).refine(
        rng.random(64) < 0.3), "corner").tree
    m1 = extract_mesh(t1)
    t2 = balance(t1.refine(rng.random(len(t1)) < 0.3), "corner").tree
    m2 = extract_mesh(t2)
    return m1, m2


class TestInterpolateFields:
    def test_refinement_is_exact_embedding(self):
        """Refined meshes nest, so any FE field transfers exactly."""
        m1, m2 = mesh_pair(seed=1)
        rng = np.random.default_rng(0)
        u1 = m1.expand(rng.standard_normal(m1.n_independent))
        u2 = interpolate_fields(m1, u1, m2)
        # evaluate both fields at random points: identical
        pts = rng.random((100, 3))
        np.testing.assert_allclose(
            m1.interpolate_at(u1, pts), m2.interpolate_at(u2, pts), atol=1e-10
        )

    def test_coarsening_is_injection(self):
        """Coarse mesh nodes sample the fine field values exactly."""
        m1, m2 = mesh_pair(seed=2)  # m2 finer
        rng = np.random.default_rng(1)
        u2 = m2.expand(rng.standard_normal(m2.n_independent))
        u1 = interpolate_fields(m2, u2, m1)
        # coarse independent node values equal the fine field there
        pts = m1.node_coords()[m1.indep_nodes]
        np.testing.assert_allclose(
            u1[m1.indep_nodes], m2.interpolate_at(u2, pts), atol=1e-10
        )

    def test_result_is_hanging_consistent(self):
        m1, m2 = mesh_pair(seed=3)
        u1 = m1.expand(np.linspace(0, 1, m1.n_independent))
        u2 = interpolate_fields(m1, u1, m2)
        np.testing.assert_allclose(u2, m2.expand(u2[m2.indep_nodes]), atol=1e-12)

    def test_domain_mismatch_rejected(self):
        m1, _ = mesh_pair()
        m3 = extract_mesh(LinearOctree.uniform(1), domain=(2.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            interpolate_fields(m1, np.zeros(m1.n_nodes), m3)

    def test_interpolate_many(self):
        m1, m2 = mesh_pair(seed=4)
        c = m1.node_coords()
        fields = {"a": c[:, 0], "b": 2 * c[:, 1]}
        out = interpolate_many(m1, fields, m2)
        c2 = m2.node_coords()
        np.testing.assert_allclose(out["a"], c2[:, 0], atol=1e-10)
        np.testing.assert_allclose(out["b"], 2 * c2[:, 1], atol=1e-10)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_constants_always_preserved(self, seed):
        m1, m2 = mesh_pair(seed=seed)
        u2 = interpolate_fields(m1, np.full(m1.n_nodes, 3.7), m2)
        np.testing.assert_allclose(u2, 3.7, atol=1e-12)
