"""Tests for the MINRES implementation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import minres


def random_symmetric(n, seed=0, indefinite=True):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    w = rng.uniform(0.5, 5.0, n)
    if indefinite:
        w[: n // 3] *= -1
    return Q @ np.diag(w) @ Q.T


class TestMinres:
    def test_spd_system(self):
        A = random_symmetric(30, seed=1, indefinite=False)
        b = np.arange(30, dtype=float)
        res = minres(A, b, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, np.linalg.solve(A, b), atol=1e-7)

    def test_indefinite_system(self):
        """MINRES's raison d'etre: symmetric indefinite saddle systems."""
        A = random_symmetric(40, seed=2, indefinite=True)
        b = np.ones(40)
        res = minres(A, b, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, np.linalg.solve(A, b), atol=1e-6)

    def test_preconditioned_converges_faster(self):
        A = random_symmetric(60, seed=3, indefinite=True)
        b = np.ones(60)
        plain = minres(A, b, tol=1e-8, maxiter=200)
        # exact |A|^{-1}-ish SPD preconditioner: (A^2)^{-1/2} via eigen
        w, V = np.linalg.eigh(A)
        Minv = V @ np.diag(1.0 / np.abs(w)) @ V.T
        prec = minres(A, b, M=lambda r: Minv @ r, tol=1e-8, maxiter=200)
        assert prec.converged
        assert prec.iterations < plain.iterations

    def test_zero_rhs(self):
        A = random_symmetric(10, seed=4)
        res = minres(A, np.zeros(10))
        assert res.converged
        assert res.iterations == 0
        np.testing.assert_array_equal(res.x, 0.0)

    def test_initial_guess(self):
        A = random_symmetric(20, seed=5, indefinite=False)
        xtrue = np.linspace(0, 1, 20)
        b = A @ xtrue
        res = minres(A, b, x0=xtrue.copy(), tol=1e-12)
        assert res.iterations == 0
        np.testing.assert_allclose(res.x, xtrue)

    def test_residual_history_monotone(self):
        A = random_symmetric(50, seed=6)
        res = minres(A, np.ones(50), tol=1e-10)
        r = np.array(res.residuals)
        assert np.all(np.diff(r) <= 1e-12)  # MINRES residuals never increase

    def test_sparse_and_callable_operator(self):
        A = sp.csr_matrix(random_symmetric(25, seed=7))
        b = np.ones(25)
        r1 = minres(A, b, tol=1e-10)
        r2 = minres(lambda x: A @ x, b, tol=1e-10)
        np.testing.assert_allclose(r1.x, r2.x, atol=1e-10)

    def test_maxiter_respected(self):
        A = random_symmetric(80, seed=8)
        res = minres(A, np.ones(80), tol=1e-14, maxiter=5)
        assert not res.converged
        assert res.iterations == 5

    def test_indefinite_preconditioner_rejected(self):
        A = random_symmetric(10, seed=9, indefinite=False)
        with pytest.raises(ValueError):
            minres(A, np.ones(10), M=lambda r: -r)

    def test_callback_called(self):
        A = random_symmetric(15, seed=10)
        calls = []
        minres(A, np.ones(15), tol=1e-10, callback=lambda x: calls.append(1))
        assert len(calls) > 0
