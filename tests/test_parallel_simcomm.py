"""Unit tests for the simulated-MPI substrate (repro.parallel)."""

import numpy as np
import pytest

from repro.parallel import (
    RANGER,
    CommStats,
    MachineModel,
    merge_stats,
    payload_nbytes,
    run_spmd,
    run_spmd_with_comms,
)


class TestRunSpmd:
    def test_single_rank_inline(self):
        out = run_spmd(1, lambda comm: comm.rank * 10 + comm.size)
        assert out == [1]

    def test_rank_and_size(self):
        out = run_spmd(5, lambda comm: (comm.rank, comm.size))
        assert out == [(r, 5) for r in range(5)]

    def test_exception_propagates(self):
        def kernel(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()  # would deadlock without abort handling
            comm.barrier()

        with pytest.raises(ValueError, match="boom"):
            run_spmd(4, kernel)

    def test_invalid_nranks(self):
        from repro.parallel import SimWorld

        with pytest.raises(ValueError):
            SimWorld(0)


class TestCollectives:
    def test_allgather_order(self):
        out = run_spmd(4, lambda comm: comm.allgather(comm.rank * 2))
        for res in out:
            assert res == [0, 2, 4, 6]

    def test_allreduce_sum_scalar(self):
        out = run_spmd(6, lambda comm: comm.allreduce(comm.rank + 1))
        assert all(r == 21 for r in out)

    def test_allreduce_min_max(self):
        out = run_spmd(
            4, lambda comm: (comm.allreduce(comm.rank, "min"), comm.allreduce(comm.rank, "max"))
        )
        assert all(r == (0, 3) for r in out)

    def test_allreduce_lor_land(self):
        out = run_spmd(
            3,
            lambda comm: (
                comm.allreduce(comm.rank == 1, "lor"),
                comm.allreduce(comm.rank < 5, "land"),
            ),
        )
        assert all(r == (True, True) for r in out)

    def test_allreduce_array(self):
        def kernel(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=np.int64))

        out = run_spmd(4, kernel)
        for res in out:
            np.testing.assert_array_equal(res, [6, 6, 6])

    def test_allreduce_does_not_mutate_input(self):
        def kernel(comm):
            v = np.full(3, comm.rank, dtype=np.int64)
            comm.allreduce(v)
            return v

        out = run_spmd(3, kernel)
        for r, res in enumerate(out):
            np.testing.assert_array_equal(res, np.full(3, r))

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(1, lambda comm: comm.allreduce(1, op="xor"))

    def test_exscan(self):
        out = run_spmd(5, lambda comm: comm.exscan(comm.rank + 1))
        assert out == [0, 1, 3, 6, 10]

    def test_bcast(self):
        out = run_spmd(4, lambda comm: comm.bcast("hello" if comm.rank == 1 else None, root=1))
        assert out == ["hello"] * 4

    def test_gather_only_root(self):
        out = run_spmd(3, lambda comm: comm.gather(comm.rank, root=2))
        assert out == [None, None, [0, 1, 2]]

    def test_alltoall_transpose(self):
        def kernel(comm):
            send = [f"{comm.rank}->{j}" for j in range(comm.size)]
            return comm.alltoall(send)

        out = run_spmd(3, kernel)
        for j, res in enumerate(out):
            assert res == [f"{i}->{j}" for i in range(3)]

    def test_alltoall_length_check(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda comm: comm.alltoall([1]))

    def test_back_to_back_collectives_no_slot_corruption(self):
        def kernel(comm):
            a = comm.allgather(comm.rank)
            b = comm.allgather(comm.rank * 100)
            c = comm.allreduce(1)
            return a, b, c

        out = run_spmd(4, kernel)
        for a, b, c in out:
            assert a == [0, 1, 2, 3]
            assert b == [0, 100, 200, 300]
            assert c == 4

    def test_global_offsets(self):
        def kernel(comm):
            return comm.global_offsets(comm.rank + 1)

        out = run_spmd(4, kernel)
        assert out == [(0, 10), (1, 10), (3, 10), (6, 10)]

    def test_allgather_concat(self):
        def kernel(comm):
            return comm.allgather_concat(np.arange(comm.rank))

        out = run_spmd(3, kernel)
        np.testing.assert_array_equal(out[0], [0, 0, 1])


class TestPointToPoint:
    def test_ring_exchange(self):
        def kernel(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([comm.rank]), right)
            got = comm.recv(left)
            return int(got[0])

        out = run_spmd(4, kernel)
        assert out == [3, 0, 1, 2]

    def test_tags_separate_messages(self):
        def kernel(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=7)
                comm.send("b", 1, tag=9)
                return None
            b = comm.recv(0, tag=9)
            a = comm.recv(0, tag=7)
            return a + b

        out = run_spmd(2, kernel)
        assert out[1] == "ab"

    def test_invalid_dest(self):
        with pytest.raises(ValueError):
            run_spmd(1, lambda comm: comm.send(1, 5))


class TestStats:
    def test_payload_nbytes(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
        assert payload_nbytes(None) == 0
        assert payload_nbytes(7) == 8
        assert payload_nbytes({"a": np.zeros(1)}) > 8

    def test_stats_recorded(self):
        def kernel(comm):
            comm.allgather(np.zeros(4))
            comm.allreduce(1.0)
            if comm.size > 1:
                comm.send(np.zeros(8), (comm.rank + 1) % comm.size)
                comm.recv((comm.rank - 1) % comm.size)
            return None

        _, comms = run_spmd_with_comms(2, kernel)
        s = comms[0].stats
        assert s.collective_calls["allgather"] == 1
        assert s.collective_bytes["allgather"] == 32
        assert s.p2p_messages == 1
        assert s.p2p_bytes == 64

    def test_snapshot_and_since(self):
        s = CommStats()
        s.record_collective("allreduce", 8)
        snap = s.snapshot()
        s.record_collective("allreduce", 8)
        s.record_p2p(100)
        d = s.since(snap)
        assert d.collective_calls["allreduce"] == 1
        assert d.p2p_bytes == 100

    def test_merge(self):
        a, b = CommStats(), CommStats()
        a.record_p2p(10)
        b.record_p2p(20)
        b.record_collective("barrier", 0)
        m = merge_stats([a, b])
        assert m.p2p_bytes == 30
        assert m.collective_calls["barrier"] == 1

    def test_flops(self):
        s = CommStats()
        s.add_flops(1e6)
        assert s.flops == 1e6


class TestMachineModel:
    def test_collective_costs_scale_with_p(self):
        m = RANGER
        t64 = m.t_collective("allreduce", 8, 64)
        t4096 = m.t_collective("allreduce", 8, 4096)
        assert t4096 > t64 > 0

    def test_p1_is_free(self):
        assert RANGER.t_collective("allgather", 1000, 1) == 0.0

    def test_unknown_collective(self):
        with pytest.raises(ValueError):
            RANGER.t_collective("nope", 1, 2)

    def test_t_total_combines(self):
        s = CommStats()
        s.add_flops(1e9)
        s.record_collective("allreduce", 8)
        m = MachineModel(flop_rate=1e9)
        t = m.t_total(s, 1024)
        assert t > 1.0  # 1 GF at 1 GF/s plus comm

    def test_comm_pricing_uses_per_call_bytes(self):
        s = CommStats()
        for _ in range(10):
            s.record_collective("allgather", 8)
        single = RANGER.t_collective("allgather", 8, 256)
        assert RANGER.t_comm(s, 256) == pytest.approx(10 * single)


class TestMixedReductions:
    """Regression: _REDUCTIONS min/max used to dispatch on vals[0] alone,
    so a scalar contribution from rank 0 sent mixed scalar/ndarray
    reductions down the python min()/max() branch, which raises (or
    silently compares garbage) on ndarrays from other ranks.

    Mixed payload signatures are illegal in real MPI (matching buffers
    required) and CheckedComm rightly rejects them, so the mixed tests
    pin REPRO_SANITIZE off to exercise the plain SimComm reduction.
    """

    @staticmethod
    def _mixed_min(comm):
        val = 5.0 if comm.rank == 0 else np.array([1.0, 7.0, 3.0]) + comm.rank
        return comm.allreduce(val, "min")

    @staticmethod
    def _mixed_max(comm):
        val = 2.0 if comm.rank == 0 else np.array([1.0, 7.0, 3.0]) + comm.rank
        return comm.allreduce(val, "max")

    def test_scalar_on_rank0_ndarray_elsewhere_min(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        for out in run_spmd(3, self._mixed_min):
            assert isinstance(out, np.ndarray)
            np.testing.assert_array_equal(out, [2.0, 5.0, 4.0])

    def test_scalar_on_rank0_ndarray_elsewhere_max(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        for out in run_spmd(3, self._mixed_max):
            assert isinstance(out, np.ndarray)
            np.testing.assert_array_equal(out, [3.0, 9.0, 5.0])

    def test_all_scalar_min_max_unchanged(self):
        assert run_spmd(4, lambda c: c.allreduce(c.rank, "min")) == [0] * 4
        assert run_spmd(4, lambda c: c.allreduce(c.rank, "max")) == [3] * 4

    def test_extremum_result_does_not_alias_contribution(self):
        def kernel(comm):
            mine = np.full(3, float(comm.rank))
            out = comm.allreduce(mine, "max")
            out[:] = -99.0  # writing the result must not corrupt inputs
            return mine[0]

        assert run_spmd(2, kernel) == [0.0, 1.0]

    def test_prod_single_rank_does_not_alias(self):
        def kernel(comm):
            mine = np.array([2.0, 3.0])
            out = comm.allreduce(mine, "prod")
            out *= 10.0
            return mine.copy()

        (res,) = run_spmd(1, kernel)
        np.testing.assert_array_equal(res, [2.0, 3.0])


class TestDefensiveCopies:
    """Real MPI lands every message in a receiver-owned buffer; the
    threaded transport must copy numpy payloads so simulated ranks never
    alias (and corrupt through) one shared object."""

    def test_recv_returns_private_buffer(self):
        def kernel(comm):
            if comm.rank == 0:
                out = np.arange(4, dtype=np.float64)
                comm.send(out, 1)
            else:
                out = comm.recv(0)
                out += 100.0  # receiver-side write must stay private
            comm.barrier()
            return out.copy()

        r0, r1 = run_spmd(2, kernel)
        np.testing.assert_array_equal(r0, [0.0, 1.0, 2.0, 3.0])
        np.testing.assert_array_equal(r1, [100.0, 101.0, 102.0, 103.0])

    def test_sender_mutation_after_send_not_observed(self):
        def kernel(comm):
            if comm.rank == 0:
                comm.send(np.ones(3), 1)
                got = None
            else:
                got = comm.recv(0)
            comm.barrier()  # receiver has picked the message up
            return got

        # the copy happens at recv time, so a sender that mutates only
        # after the receive completes can never be observed
        _, got = run_spmd(2, kernel)
        np.testing.assert_array_equal(got, [1.0, 1.0, 1.0])

    def test_allgather_results_are_private_per_rank(self):
        def kernel(comm):
            parts = comm.allgather(np.full(2, float(comm.rank)))
            parts[0][:] = -1.0  # scribbling on my copy of rank 0's part
            comm.barrier()
            return parts[1][0]

        assert run_spmd(2, kernel) == [1.0, 1.0]

    def test_bcast_result_is_private(self):
        def kernel(comm):
            root_arr = np.arange(3, dtype=np.float64)
            got = comm.bcast(root_arr if comm.rank == 0 else None)
            got[comm.rank] = 42.0
            comm.barrier()
            return root_arr[0] if comm.rank == 0 else None

        r0, _ = run_spmd(2, kernel)
        assert r0 == 0.0  # root's source buffer untouched by rank 1

    def test_alltoall_entries_are_private(self):
        def kernel(comm):
            send = [np.full(2, float(comm.rank * 10 + j)) for j in range(comm.size)]
            got = comm.alltoall(send)
            for g in got:
                g += 500.0
            comm.barrier()
            return send[comm.rank][0]

        assert run_spmd(2, kernel) == [0.0, 11.0]

    def test_nested_container_payloads_copied(self):
        def kernel(comm):
            if comm.rank == 0:
                msg = {"a": [np.zeros(2)], "b": (np.ones(1),)}
                comm.send(msg, 1)
                out = msg["a"][0][0]
            else:
                got = comm.recv(0)
                got["a"][0][0] = 7.0
                got["b"][0][0] = 8.0
                out = None
            comm.barrier()
            return out

        r0, _ = run_spmd(2, kernel)
        assert r0 == 0.0


class TestFaultInjection:
    def test_disarmed_is_noop(self):
        from repro.parallel import check_fault, disarm_fault

        disarm_fault()
        check_fault(None, 10**9)  # nothing armed -> no raise

    def test_arm_disarm(self):
        from repro.parallel import (
            InjectedFault,
            arm_fault,
            check_fault,
            disarm_fault,
        )

        arm_fault(rank=0, step=5)
        try:
            check_fault(None, 4)  # before the armed step
            with pytest.raises(InjectedFault) as exc:
                check_fault(None, 5)
            assert exc.value.rank == 0 and exc.value.step == 5
            # fires exactly once
            check_fault(None, 6)
        finally:
            disarm_fault()

    def test_serial_driver_counts_as_rank_zero(self):
        from repro.parallel import InjectedFault, fault_injection, check_fault

        with fault_injection(rank=1, step=0):
            check_fault(None, 3)  # comm=None is rank 0, fault targets rank 1
        with fault_injection(rank=0, step=0):
            with pytest.raises(InjectedFault):
                check_fault(None, 3)

    def test_context_manager_disarms_on_exit(self):
        from repro.parallel import check_fault, fault_injection

        with fault_injection(rank=0, step=0):
            pass
        check_fault(None, 10)  # disarmed again

    def test_only_armed_rank_dies_and_world_aborts(self):
        from repro.parallel import InjectedFault, check_fault, fault_injection

        observed = {}

        def kernel(comm):
            check_fault(comm, step=2)
            observed[comm.rank] = True
            comm.barrier()  # survivors must be released by the abort

        with fault_injection(rank=1, step=2):
            with pytest.raises(InjectedFault) as exc:
                run_spmd(3, kernel)
        assert exc.value.rank == 1
        assert "rank 1" in str(exc.value) and "step 2" in str(exc.value)
        # ranks 0 and 2 got past their own check_fault
        assert observed.keys() == {0, 2}
