"""Unit tests for the simulated-MPI substrate (repro.parallel)."""

import numpy as np
import pytest

from repro.parallel import (
    RANGER,
    CommStats,
    MachineModel,
    merge_stats,
    payload_nbytes,
    run_spmd,
    run_spmd_with_comms,
)


class TestRunSpmd:
    def test_single_rank_inline(self):
        out = run_spmd(1, lambda comm: comm.rank * 10 + comm.size)
        assert out == [1]

    def test_rank_and_size(self):
        out = run_spmd(5, lambda comm: (comm.rank, comm.size))
        assert out == [(r, 5) for r in range(5)]

    def test_exception_propagates(self):
        def kernel(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()  # would deadlock without abort handling
            comm.barrier()

        with pytest.raises(ValueError, match="boom"):
            run_spmd(4, kernel)

    def test_invalid_nranks(self):
        from repro.parallel import SimWorld

        with pytest.raises(ValueError):
            SimWorld(0)


class TestCollectives:
    def test_allgather_order(self):
        out = run_spmd(4, lambda comm: comm.allgather(comm.rank * 2))
        for res in out:
            assert res == [0, 2, 4, 6]

    def test_allreduce_sum_scalar(self):
        out = run_spmd(6, lambda comm: comm.allreduce(comm.rank + 1))
        assert all(r == 21 for r in out)

    def test_allreduce_min_max(self):
        out = run_spmd(
            4, lambda comm: (comm.allreduce(comm.rank, "min"), comm.allreduce(comm.rank, "max"))
        )
        assert all(r == (0, 3) for r in out)

    def test_allreduce_lor_land(self):
        out = run_spmd(
            3,
            lambda comm: (
                comm.allreduce(comm.rank == 1, "lor"),
                comm.allreduce(comm.rank < 5, "land"),
            ),
        )
        assert all(r == (True, True) for r in out)

    def test_allreduce_array(self):
        def kernel(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=np.int64))

        out = run_spmd(4, kernel)
        for res in out:
            np.testing.assert_array_equal(res, [6, 6, 6])

    def test_allreduce_does_not_mutate_input(self):
        def kernel(comm):
            v = np.full(3, comm.rank, dtype=np.int64)
            comm.allreduce(v)
            return v

        out = run_spmd(3, kernel)
        for r, res in enumerate(out):
            np.testing.assert_array_equal(res, np.full(3, r))

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(1, lambda comm: comm.allreduce(1, op="xor"))

    def test_exscan(self):
        out = run_spmd(5, lambda comm: comm.exscan(comm.rank + 1))
        assert out == [0, 1, 3, 6, 10]

    def test_bcast(self):
        out = run_spmd(4, lambda comm: comm.bcast("hello" if comm.rank == 1 else None, root=1))
        assert out == ["hello"] * 4

    def test_gather_only_root(self):
        out = run_spmd(3, lambda comm: comm.gather(comm.rank, root=2))
        assert out == [None, None, [0, 1, 2]]

    def test_alltoall_transpose(self):
        def kernel(comm):
            send = [f"{comm.rank}->{j}" for j in range(comm.size)]
            return comm.alltoall(send)

        out = run_spmd(3, kernel)
        for j, res in enumerate(out):
            assert res == [f"{i}->{j}" for i in range(3)]

    def test_alltoall_length_check(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda comm: comm.alltoall([1]))

    def test_back_to_back_collectives_no_slot_corruption(self):
        def kernel(comm):
            a = comm.allgather(comm.rank)
            b = comm.allgather(comm.rank * 100)
            c = comm.allreduce(1)
            return a, b, c

        out = run_spmd(4, kernel)
        for a, b, c in out:
            assert a == [0, 1, 2, 3]
            assert b == [0, 100, 200, 300]
            assert c == 4

    def test_global_offsets(self):
        def kernel(comm):
            return comm.global_offsets(comm.rank + 1)

        out = run_spmd(4, kernel)
        assert out == [(0, 10), (1, 10), (3, 10), (6, 10)]

    def test_allgather_concat(self):
        def kernel(comm):
            return comm.allgather_concat(np.arange(comm.rank))

        out = run_spmd(3, kernel)
        np.testing.assert_array_equal(out[0], [0, 0, 1])


class TestPointToPoint:
    def test_ring_exchange(self):
        def kernel(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([comm.rank]), right)
            got = comm.recv(left)
            return int(got[0])

        out = run_spmd(4, kernel)
        assert out == [3, 0, 1, 2]

    def test_tags_separate_messages(self):
        def kernel(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=7)
                comm.send("b", 1, tag=9)
                return None
            b = comm.recv(0, tag=9)
            a = comm.recv(0, tag=7)
            return a + b

        out = run_spmd(2, kernel)
        assert out[1] == "ab"

    def test_invalid_dest(self):
        with pytest.raises(ValueError):
            run_spmd(1, lambda comm: comm.send(1, 5))


class TestStats:
    def test_payload_nbytes(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
        assert payload_nbytes(None) == 0
        assert payload_nbytes(7) == 8
        assert payload_nbytes({"a": np.zeros(1)}) > 8

    def test_stats_recorded(self):
        def kernel(comm):
            comm.allgather(np.zeros(4))
            comm.allreduce(1.0)
            if comm.size > 1:
                comm.send(np.zeros(8), (comm.rank + 1) % comm.size)
                comm.recv((comm.rank - 1) % comm.size)
            return None

        _, comms = run_spmd_with_comms(2, kernel)
        s = comms[0].stats
        assert s.collective_calls["allgather"] == 1
        assert s.collective_bytes["allgather"] == 32
        assert s.p2p_messages == 1
        assert s.p2p_bytes == 64

    def test_snapshot_and_since(self):
        s = CommStats()
        s.record_collective("allreduce", 8)
        snap = s.snapshot()
        s.record_collective("allreduce", 8)
        s.record_p2p(100)
        d = s.since(snap)
        assert d.collective_calls["allreduce"] == 1
        assert d.p2p_bytes == 100

    def test_merge(self):
        a, b = CommStats(), CommStats()
        a.record_p2p(10)
        b.record_p2p(20)
        b.record_collective("barrier", 0)
        m = merge_stats([a, b])
        assert m.p2p_bytes == 30
        assert m.collective_calls["barrier"] == 1

    def test_flops(self):
        s = CommStats()
        s.add_flops(1e6)
        assert s.flops == 1e6


class TestMachineModel:
    def test_collective_costs_scale_with_p(self):
        m = RANGER
        t64 = m.t_collective("allreduce", 8, 64)
        t4096 = m.t_collective("allreduce", 8, 4096)
        assert t4096 > t64 > 0

    def test_p1_is_free(self):
        assert RANGER.t_collective("allgather", 1000, 1) == 0.0

    def test_unknown_collective(self):
        with pytest.raises(ValueError):
            RANGER.t_collective("nope", 1, 2)

    def test_t_total_combines(self):
        s = CommStats()
        s.add_flops(1e9)
        s.record_collective("allreduce", 8)
        m = MachineModel(flop_rate=1e9)
        t = m.t_total(s, 1024)
        assert t > 1.0  # 1 GF at 1 GF/s plus comm

    def test_comm_pricing_uses_per_call_bytes(self):
        s = CommStats()
        for _ in range(10):
            s.record_collective("allgather", 8)
        single = RANGER.t_collective("allgather", 8, 256)
        assert RANGER.t_comm(s, 256) == pytest.approx(10 * single)
