"""Tests for the fleet service: interning, scheduling, preemption."""

import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.checkpoint.format import CheckpointError
from repro.fleet import (
    FleetJob,
    FleetScheduler,
    FleetService,
    MeshRegistry,
    ScenarioSpec,
    SpecError,
)
from repro.mesh.opcache import operator_cache
from repro.rhea import RheaConfig
from repro.rhea.convection import MantleConvection


def spec(job_id, tenant="t0", level=2, cycles=2, **kw):
    kw.setdefault("Ra", 1e4)
    kw.setdefault("activation_energy", 3.0)
    return ScenarioSpec(job_id=job_id, tenant=tenant, initial_level=level,
                        max_level=level + 1, cycles=cycles, **kw)


class TestMeshRegistry:
    def test_uniform_interns_same_structure(self):
        reg = MeshRegistry()
        m1 = reg.uniform(RheaConfig(initial_level=2))
        m2 = reg.uniform(RheaConfig(initial_level=2, Ra=9e9))  # physics differs
        assert m2 is m1
        assert (reg.built, reg.shared) == (1, 1)

    def test_different_structures_stay_distinct(self):
        reg = MeshRegistry()
        m1 = reg.uniform(RheaConfig(initial_level=2))
        m2 = reg.uniform(RheaConfig(initial_level=3))
        assert m2 is not m1
        assert (reg.built, reg.shared) == (2, 0)

    def test_intern_maps_equal_structure_to_canonical(self):
        reg = MeshRegistry()
        m1 = reg.uniform(RheaConfig(initial_level=2))
        # an independently extracted, structurally identical mesh
        other = MeshRegistry().uniform(RheaConfig(initial_level=2))
        assert other is not m1
        assert reg.structure_key(other) == reg.structure_key(m1)
        assert reg.intern(other) is m1
        assert reg.shared == 1


class TestAdmission:
    def test_invalid_spec_rejected_before_state(self):
        svc = FleetService()
        with pytest.raises(SpecError):
            svc.admit(ScenarioSpec(job_id="bad", Ra=-1.0))
        assert svc.jobs == {}

    def test_duplicate_job_id_rejected(self):
        svc = FleetService()
        svc.admit(spec("a"))
        with pytest.raises(SpecError, match="already admitted"):
            svc.admit(spec("a", tenant="t9"))

    def test_same_structure_tenants_share_mesh_and_cache(self):
        """Satellite 3: one interned mesh means one operator cache."""
        svc = FleetService()
        ja = svc.admit(spec("a", tenant="t0"))
        jb = svc.admit(spec("b", tenant="t1"))
        assert ja.sim.mesh is jb.sim.mesh
        assert operator_cache(ja.sim.mesh) is operator_cache(jb.sim.mesh)
        assert (svc.registry.built, svc.registry.shared) == (1, 1)


def run_and_count_misses(specs):
    """Run a fleet to completion; return total opcache misses over the
    distinct meshes the jobs ended on."""
    svc = FleetService()
    jobs = [svc.admit(s) for s in specs]
    svc.run()
    caches = {id(j.sim.mesh): operator_cache(j.sim.mesh) for j in jobs}
    return sum(c.misses for c in caches.values()), svc


class TestCacheSharing:
    def test_pinned_hit_miss_counters(self):
        """Satellite 3: a same-structure pair builds each operator once
        (misses match a single-job run); a different-structure pair pays
        both structures' builds."""
        m_single2, _ = run_and_count_misses([spec("s", level=2, cycles=1)])
        m_single3, _ = run_and_count_misses([spec("s", level=3, cycles=1)])
        m_same, svc_same = run_and_count_misses(
            [spec("a", "t0", level=2, cycles=1),
             spec("b", "t1", level=2, cycles=1)]
        )
        m_diff, svc_diff = run_and_count_misses(
            [spec("a", "t0", level=2, cycles=1),
             spec("b", "t1", level=3, cycles=1)]
        )
        assert m_same == m_single2
        assert m_diff == m_single2 + m_single3
        assert (svc_same.registry.built, svc_same.registry.shared) == (1, 1)
        assert (svc_diff.registry.built, svc_diff.registry.shared) == (2, 0)

    def test_adaptation_invalidates_only_the_adapting_tenant(self):
        """Satellite 3: after one job adapts, it leaves the batch group;
        the other tenant keeps its mesh object and cache untouched."""
        svc = FleetService()
        ja = svc.admit(spec("adaptive", "t0", cycles=2, adapt_cycles=1,
                            Ra=1e5))
        jb = svc.admit(spec("steady", "t1", cycles=2))
        shared = jb.sim.mesh
        assert ja.sim.mesh is shared
        cache_b = operator_cache(shared)
        svc.run()
        assert set(svc.statuses().values()) == {"done"}
        # the adapting tenant moved to a refined structure...
        assert ja.sim.mesh is not shared
        assert ja.sim.mesh.n_elements > shared.n_elements
        assert svc.registry.built >= 2
        # ...while the steady tenant's mesh and cache were isolated
        assert jb.sim.mesh is shared
        assert operator_cache(shared) is cache_b


def fake_job(job_id, mesh, seq, tenant="t0", priority=0, deadline=None,
             cycles=2):
    sp = ScenarioSpec(job_id=job_id, tenant=tenant, priority=priority,
                      deadline=deadline, cycles=cycles)
    return FleetJob(spec=sp, sim=SimpleNamespace(mesh=mesh), seq=seq,
                    status="queued")


class TestScheduler:
    mesh_a = object()
    mesh_b = object()

    def test_empty_when_nothing_runnable(self):
        sched = FleetScheduler()
        assert sched.select([]) == []
        done = fake_job("a", self.mesh_a, 0)
        done.status = "done"
        unmat = fake_job("b", self.mesh_a, 1)
        unmat.sim = None
        assert sched.select([done, unmat]) == []

    def test_priority_picks_lead_and_its_mesh_group(self):
        sched = FleetScheduler()
        jobs = [
            fake_job("a0", self.mesh_a, 0),
            fake_job("b0", self.mesh_b, 1, priority=1),
            fake_job("a1", self.mesh_a, 2),
            fake_job("b1", self.mesh_b, 3, priority=0),
        ]
        # the priority-1 job leads; only its mesh's runnable jobs join,
        # in admission order
        group = sched.select(jobs)
        assert [j.job_id for j in group] == ["b0", "b1"]

    def test_fair_share_prefers_starved_tenant(self):
        sched = FleetScheduler()
        jobs = [
            fake_job("hog", self.mesh_a, 0, tenant="big"),
            fake_job("small", self.mesh_b, 1, tenant="small"),
        ]
        assert sched.select(jobs)[0].job_id == "hog"  # seq tiebreak
        sched.charge([jobs[0]] * 3)
        assert sched.tenant_quanta == {"big": 3}
        assert sched.select(jobs)[0].job_id == "small"

    def test_deadline_breaks_priority_and_share_ties(self):
        sched = FleetScheduler()
        jobs = [
            fake_job("late", self.mesh_a, 0, deadline=100.0),
            fake_job("soon", self.mesh_b, 1, deadline=5.0),
            fake_job("never", self.mesh_b, 2),  # None = never urgent
        ]
        group = sched.select(jobs)
        assert group[0].job_id == "soon"

    def test_charge_bills_job_and_tenant(self):
        sched = FleetScheduler()
        j = fake_job("a", self.mesh_a, 0, tenant="geo")
        sched.charge([j, j])
        assert j.quanta == 2
        assert sched.tenant_quanta == {"geo": 2}


class TestPreemptResume:
    def fleet_specs(self, cycles=3):
        return [
            spec("a", "t0", cycles=cycles),
            spec("b", "t1", cycles=cycles, Ra=3e4),
            spec("c", "t1", cycles=cycles, viscosity_law="yielding",
                 yield_stress=4.0),
        ]

    def test_resume_reproduces_uninterrupted_diagnostics(self, tmp_path):
        """The deterministic per-cycle solver schedule makes the resumed
        fleet's per-job diagnostics exactly reproduce an uninterrupted
        run -- not just to tolerance."""
        ref = FleetService()
        for s in self.fleet_specs():
            ref.admit(s)
        ref.run()

        root = str(tmp_path / "fleet")
        svc = FleetService(root=root)
        for s in self.fleet_specs():
            svc.admit(s)
        svc.arm_budget(1)
        svc.run()
        assert set(svc.statuses().values()) == {"preempted"}
        assert os.path.exists(os.path.join(root, "fleet.json"))

        svc = FleetService.resume(root)
        svc.run()
        assert set(svc.statuses().values()) == {"done"}
        for jid, job in svc.jobs.items():
            ref_hist = ref.jobs[jid].sim.history
            hist = job.sim.history
            assert len(hist) == len(ref_hist)
            for got, want in zip(hist, ref_hist):
                assert got.vrms == want.vrms
                assert got.nusselt == want.nusselt
                assert got.mean_T == want.mean_T
                assert got.minres_iterations == want.minres_iterations

    def test_resumed_tenants_batch_together_again(self, tmp_path):
        root = str(tmp_path / "fleet")
        svc = FleetService(root=root)
        for s in self.fleet_specs():
            svc.admit(s)
        svc.arm_budget(1)
        svc.run()
        svc = FleetService.resume(root)
        meshes = {id(j.sim.mesh) for j in svc.jobs.values()}
        assert len(meshes) == 1  # re-interned to one shared structure

    def test_cross_job_restore_refused(self, tmp_path):
        root = str(tmp_path / "fleet")
        svc = FleetService(root=root)
        for s in self.fleet_specs(cycles=2):
            svc.admit(s)
        svc.arm_budget(1)
        svc.run()
        # swap two jobs' checkpoint namespaces behind the manifest's back
        os.rename(os.path.join(root, "a"), os.path.join(root, "swap"))
        os.rename(os.path.join(root, "b"), os.path.join(root, "a"))
        os.rename(os.path.join(root, "swap"), os.path.join(root, "b"))
        with pytest.raises(CheckpointError, match="stamped for job"):
            FleetService.resume(root)

    def test_preempt_requires_root(self):
        svc = FleetService()
        svc.admit(spec("a"))
        with pytest.raises(ValueError, match="root directory"):
            svc.preempt_all()


class TestAccounting:
    def test_ledgers_meter_work_and_survive_resume(self, tmp_path):
        root = str(tmp_path / "fleet")
        svc = FleetService(root=root)
        svc.admit(spec("a", "geo", cycles=2))
        svc.admit(spec("b", "plates", cycles=2, Ra=3e4))
        svc.arm_budget(1)
        svc.run()
        svc = FleetService.resume(root)
        svc.run()
        report = svc.report()
        for jid in ("a", "b"):
            led = report["jobs"][jid]
            # full lifetime, not just post-resume: both cycles and the
            # preemption are on the ledger
            assert led["cycles"] == 2
            assert led["preemptions"] == 1
            assert led["minres_iterations"] > 0
            assert led["flops"] > 0
            assert led["wall_s"] > 0
        tenants = report["tenants"]
        assert tenants["geo"]["jobs"] == 1
        assert tenants["plates"]["cycles"] == 2

    def test_job_tagged_obs_phases_fold_into_exclusive_wall(self, tmp_path):
        timer = obs.enable()
        try:
            svc = FleetService(root=str(tmp_path / "fleet"))
            svc.admit(spec("a", cycles=1))
            svc.run()
            svc.preempt_all()  # opens fleet/job:a/checkpoint
            report = svc.report()
        finally:
            obs.disable()
        assert "fleet/job:a/checkpoint" in timer.results()
        assert report["jobs"]["a"]["exclusive_wall_s"] > 0

    def test_markdown_report_lists_tenants_and_jobs(self):
        svc = FleetService()
        svc.admit(spec("a", "geo", cycles=1))
        svc.run()
        md = svc.accountant.markdown_report(title="T")
        assert "## T" in md
        assert "| geo |" in md
        assert "| a | geo |" in md


class TestServiceDrive:
    def test_ticks_generator_interleaves(self):
        svc = FleetService()
        svc.admit(spec("a", cycles=2))
        served = list(svc.ticks())
        assert served == [1, 2]
        assert svc.statuses() == {"a": "done"}

    def test_run_max_quanta(self):
        svc = FleetService()
        svc.admit(spec("a", cycles=3))
        assert svc.run(max_quanta=2) == 2
        assert svc.jobs["a"].status == "running"
        assert svc.run() == 1

    def test_serial_reference_matches_service_single_job(self):
        """A one-job fleet is just the serial stepper in batch clothing."""
        s = spec("solo", cycles=2)
        svc = FleetService()
        svc.admit(s)
        svc.run()
        serial = MantleConvection(s.to_config(), s.t_init())
        serial.run(2, adapt=False)
        got = svc.jobs["solo"].sim.history[-1]
        want = serial.history[-1]
        assert abs(got.vrms - want.vrms) / want.vrms < 1e-4
        assert np.isfinite(got.nusselt)
