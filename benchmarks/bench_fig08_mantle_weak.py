"""Figure 8: weak scalability of the full mantle convection code.

Paper: per-time-step runtime breaks into AMG setup (grows), AMG V-cycles
(grow), MINRES matvecs (flat), explicit time integration (flat), and AMR
functions (negligible); the Stokes solve consumes > 95% of the runtime.

Executed: serial RHEA runs at increasing mesh resolution, with the same
per-component timing split (AMG setup / V-cycle apply / MINRES / explicit
transport / AMR).  Modeled: Ranger pricing at the paper's core schedule,
reusing the measured V-cycle/iteration structure."""

import time

import numpy as np

from repro.fem import StokesSystem
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.perf import STOKES_FLOPS_PER_ELEMENT_ITER, format_table
from repro.rhea import MantleConvection, RheaConfig
from repro.solvers import StokesBlockPreconditioner, minres


def timed_case(level):
    cfg = RheaConfig(Ra=1e5, initial_level=level, max_level=level + 2,
                     adapt_every=4, picard_iterations=1, stokes_tol=1e-6)
    sim = MantleConvection(cfg)
    t = {}
    # AMR step
    t0 = time.perf_counter()
    sim.adapt(target=int(8**level * 1.2))
    t["AMR"] = time.perf_counter() - t0
    # Stokes with split AMG setup vs apply timing
    from repro.rhea.viscosity import element_temperature, strain_rate_invariant

    mesh = sim.mesh
    T_e = element_temperature(mesh, sim.T)
    z_e = mesh.element_centers()[:, 2]
    eta = cfg.viscosity(T_e, z_e, None)
    st = StokesSystem(mesh, eta, np.stack(
        [np.zeros(mesh.n_nodes), np.zeros(mesh.n_nodes), cfg.Ra * sim.T], axis=1))
    t0 = time.perf_counter()
    prec = StokesBlockPreconditioner(st)
    t["AMGSetup"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    res = minres(st.matvec, st.rhs(), M=prec.apply, tol=1e-6, maxiter=400)
    t["MINRES+AMGSolve"] = time.perf_counter() - t0
    sim.u = np.zeros((mesh.n_nodes, 3))
    n = mesh.n_independent
    x = st.project_pressure_mean(res.x)
    for a in range(3):
        sim.u[:, a] = mesh.expand(x[a * n : (a + 1) * n])
    t0 = time.perf_counter()
    sim.advance_temperature(4)
    t["TimeIntegration"] = time.perf_counter() - t0
    return mesh.n_elements, res.iterations, prec.n_vcycles, t


def test_fig08_mantle_weak_scaling(record_table, benchmark):
    rows = []
    stokes_frac = []
    for i, level in enumerate([2, 3]):
        ne, its, vcycles, t = (
            benchmark.pedantic(timed_case, args=(level,), rounds=1, iterations=1)
            if level == 3
            else timed_case(level)
        )
        total = sum(t.values())
        stokes = t["AMGSetup"] + t["MINRES+AMGSolve"]
        stokes_frac.append(stokes / total)
        rows.append(
            [
                ne, its, vcycles,
                round(t["AMR"], 3), round(t["AMGSetup"], 3),
                round(t["MINRES+AMGSolve"], 3), round(t["TimeIntegration"], 3),
                round(100 * stokes / total, 1),
            ]
        )
    table = format_table(
        ["#elem", "MINRES its", "V-cycles", "AMR s", "AMGSetup s", "Stokes s", "TimeInt s", "Stokes %"],
        rows,
        title="Fig. 8 — executed per-component breakdown of one full mantle convection cycle",
    )

    # modeled per-time-step seconds at the paper's core schedule
    from repro.parallel import RANGER, CommStats

    comm = CommStats()
    for _ in range(120):  # ~ MINRES inner products + exchanges per step
        comm.record_collective("allreduce", 16)
    model_rows = []
    for p in [1, 8, 64, 512, 4096, 16384]:
        elems = 50000  # paper granularity: ~50K elements/core
        t_minres = RANGER.t_flops(STOKES_FLOPS_PER_ELEMENT_ITER * elems * 60)
        t_comm = RANGER.t_comm(comm, p)
        # AMG V-cycle comm grows with levels ~ log(global size)
        amg_penalty = 1.0 + 0.08 * np.log2(max(p, 1))
        model_rows.append(
            [p, round(t_minres * amg_penalty + t_comm, 2), round(t_comm, 4),
             round(amg_penalty, 2)]
        )
    table += "\n\n" + format_table(
        ["cores", "modeled s/step", "comm s", "AMG growth"],
        model_rows,
        title="modeled per-step time at 50K elem/core (AMG setup/V-cycle growth factored)",
    )

    # shape assertions: the Stokes solve dominates (paper: > 95%; we
    # require dominance), and AMR is a small fraction
    assert all(f > 0.5 for f in stokes_frac)
    for r in rows:
        assert r[3] < 0.5 * (r[4] + r[5])  # AMR well below Stokes cost
    record_table("fig08_mantle_weak", table)
