"""Figure 12 / Section VII: DG advection with forest-of-octrees AMR on the
spherical shell.

Paper: the shell is split into 6 caps x 4 = 24 adaptive octrees; a sharp
temperature concentration is advected, the mesh adapts to follow it, and
the partition "changes drastically from one time step to the next".

Executed: the 24-tree cubed-sphere forest, nodal DG advection of a sharp
blob under solid-body rotation, AMR every cycle (refine at the blob,
coarsen behind it, forest-wide 2:1 balance), and the SFC partition
recomputed each cycle; we report the adapted element counts, level spread,
and the fraction of elements whose owning rank changed between cycles."""

import numpy as np

from repro.forest import Forest, cubed_sphere_connectivity
from repro.mangll import DGAdvection, solid_body_rotation
from repro.perf import format_table

P_ORDER = 3
N_RANKS = 1024  # partition granularity to mirror the paper's figure


def blob(x, center=(0.9, 0.0, 0.3)):
    c = np.asarray(center) / np.linalg.norm(center)
    c = c * 0.8  # mid-shell
    return np.exp(-np.sum((x - c) ** 2, axis=1) / 0.02)


def indicator(dg, u):
    """Max |u| variation per element: refine where the blob sits."""
    ue = u.reshape(dg.ne, dg.n3)
    return ue.max(axis=1) - ue.min(axis=1)


def run_sphere_dg(n_cycles=3):
    conn = cubed_sphere_connectivity(r_inner=0.6, r_outer=1.0)
    forest = Forest.uniform(conn, 1)
    wind = solid_body_rotation([0.0, 0.0, 1.0])
    dg = DGAdvection(forest, P_ORDER, wind)
    u = blob(dg.nodes())
    history = []
    prev_ranks = None
    for cycle in range(n_cycles):
        # coarsen the quiet elements (complete sibling families only)
        ind = indicator(dg, u)
        coarsen = (ind < 0.02 * ind.max()) & (forest.flat_levels() > 1)
        forest_c, _ = forest.coarsen(coarsen)
        forest_c, _ = forest_c.balance()  # DG requires 2:1 faces
        if len(forest_c) != len(forest):
            dg_c = DGAdvection(forest_c, P_ORDER, wind)
            u = _transfer(dg, u, dg_c)
            forest, dg = forest_c, dg_c
        # refine where the blob sits, then restore 2:1 balance forest-wide
        ind = indicator(dg, u)
        refine = (ind > 0.25 * ind.max()) & (forest.flat_levels() < 3)
        forest2 = forest.refine(refine)
        forest2, _ = forest2.balance()
        dg2 = DGAdvection(forest2, P_ORDER, wind)
        u = _transfer(dg, u, dg2)
        forest, dg = forest2, dg2
        # advect
        dt = dg.cfl_dt(0.3)
        n = max(int(0.25 / dt), 1)
        u = dg.advance(u, 0.25 / n, n)
        # partition churn
        ranks = forest.partition_assignments(N_RANKS)
        churn = np.nan
        if prev_ranks is not None and len(prev_ranks) == len(ranks):
            churn = float((prev_ranks != ranks).mean())
        elif prev_ranks is not None:
            churn = 1.0  # size changed: partition fully recut
        prev_ranks = ranks
        history.append(
            {
                "cycle": cycle + 1,
                "elements": len(forest),
                "levels": forest.level_histogram(),
                "churn": churn,
                "mass": dg.total_mass(u),
                "umax": float(np.abs(u).max()),
            }
        )
    return history


def _transfer(dg_old, u_old, dg_new):
    """Exact polynomial transfer between the nested forests."""
    from repro.mangll import dg_transfer

    return dg_transfer(dg_old, u_old, dg_new)


def test_fig12_spherical_dg_amr(record_table, benchmark):
    history = benchmark.pedantic(run_sphere_dg, rounds=1, iterations=1)
    rows = []
    for h in history:
        lv = ",".join(f"{k}:{v}" for k, v in sorted(h["levels"].items()))
        rows.append(
            [h["cycle"], h["elements"], lv,
             "-" if np.isnan(h["churn"]) else f"{100 * h['churn']:.0f}%",
             round(h["mass"], 4), round(h["umax"], 3)]
        )
    table = format_table(
        ["cycle", "#elem", "levels", "partition churn", "mass", "max|u|"],
        rows,
        title=(
            "Fig. 12 — cubed-sphere (24-tree) DG advection with forest AMR;"
            f" partition over {N_RANKS} ranks recut every cycle"
        ),
    )

    # shape assertions: AMR follows the blob, partition changes a lot,
    # the solution stays bounded and mass drift is small
    assert history[-1]["elements"] > 24 * 8  # refinement happened
    assert len(history[-1]["levels"]) >= 2
    churns = [h["churn"] for h in history if not np.isnan(h["churn"])]
    assert churns and max(churns) > 0.2  # "changes drastically"
    assert history[-1]["umax"] < 2.0
    record_table("fig12_sphere_dg", table)
