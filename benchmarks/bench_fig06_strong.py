"""Figure 6: fixed-size (strong) scalability.

Paper: near-ideal speedups over a wide core range for four problem sizes
(1.99M / 32.7M / 531M / 2.24B elements), e.g. 366x on 512 cores for the
small problem and ~101x from 256 -> 32,768 cores for the large one,
with saturation once per-core work gets small.

Executed part: the real SPMD pipeline at P in {1, 2, 4, 8} on a fixed
global problem (wall-clock speedup of the distributed algorithms).
Modeled part: the Ranger machine model evaluated at the paper's core
schedule for the paper's four problem sizes, seeded with the measured
per-rank communication tally."""

import numpy as np

from repro.perf import (
    format_table,
    measured_pipeline_run,
    model_strong_scaling,
)


def test_fig06_strong_scaling(record_table, benchmark):
    # executed: fixed global problem, increasing simulated ranks
    executed = []
    base_time = None
    for p in [1, 2, 4, 8]:
        out = benchmark.pedantic(
            measured_pipeline_run,
            args=(p,),
            kwargs=dict(coarse_level=3, max_level=5, target=1500, cycles=1, steps_per_cycle=4),
            rounds=1,
            iterations=1,
        ) if p == 8 else measured_pipeline_run(
            p, coarse_level=3, max_level=5, target=1500, cycles=1, steps_per_cycle=4
        )
        if base_time is None:
            base_time = out["total_time"]
        executed.append(
            [p, out["n_elements"], round(out["total_time"], 3),
             round(base_time / out["total_time"], 2), "executed"]
        )
        comm = out["comm_per_rank"]

    table = format_table(
        ["ranks", "#elem", "wall s", "speedup", "kind"],
        executed,
        title="Fig. 6 — strong scaling, executed SPMD runs (fixed global problem)",
    )
    table += (
        "\nNOTE: executed ranks are GIL-sharing threads on one host — their"
        "\nwall-clock measures algorithm overhead, not distributed speedup;"
        "\nspeedup shape at scale comes from the machine model below.\n"
    )

    # modeled: the paper's four problem sizes over its core schedule
    paper_sizes = {
        "1.99M": (1.99e6, [1, 4, 16, 64, 256, 512, 2048]),
        "32.7M": (32.7e6, [16, 64, 256, 1024, 4096]),
        "531M": (531e6, [256, 1024, 4096, 16384, 32768]),
        "2.24B": (2.24e9, [4096, 16384, 61440]),
    }
    for name, (n, cores) in paper_sizes.items():
        rows = model_strong_scaling(cores, n, 32, comm)
        table += "\n\n" + format_table(
            ["cores", "modeled s", "speedup", "ideal", "efficiency"],
            [
                [r["cores"], r["t_total"], round(r["speedup"], 1), r["ideal"],
                 round(r["efficiency"], 3)]
                for r in rows
            ],
            title=f"modeled (Ranger machine model): {name} elements",
        )
        # shape: efficiency stays high while per-core work is large,
        # decays at the tail (the paper's saturation)
        assert rows[0]["efficiency"] == 1.0
        assert rows[-1]["efficiency"] < 1.0
        if n >= 531e6:
            assert rows[-1]["efficiency"] > 0.4  # big problems keep scaling

    record_table("fig06_strong", table)
