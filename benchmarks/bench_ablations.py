"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. **Balance connectivity** (face / edge / corner): the paper balances
   faces+edges; the mesh pipeline here uses full corner balance.  How many
   extra elements does each stronger condition cost?
2. **Weighted vs unweighted SFC partition**: PARTITIONTREE cuts the curve
   by element count; with heterogeneous per-element cost (e.g. elements in
   yielding zones doing Picard work), weighting the cut restores load
   balance.
3. **Preconditioner ablation**: MINRES on the Stokes system with the full
   block preconditioner vs a diagonal-only preconditioner — the paper's
   claim that the AMG + viscosity-weighted-mass structure is what keeps
   iterations flat.
"""

import numpy as np

from repro.fem import StokesSystem
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.parallel import run_spmd
from repro.perf import format_table
from repro.solvers import StokesBlockPreconditioner, minres


def adapted_tree(seed=0, rounds=3, frac=0.25):
    rng = np.random.default_rng(seed)
    tree = LinearOctree.uniform(2)
    for _ in range(rounds):
        tree = tree.refine(rng.random(len(tree)) < frac)
    return tree


def test_ablation_balance_connectivity(record_table, benchmark):
    tree = benchmark.pedantic(adapted_tree, rounds=1, iterations=1)
    rows = []
    n_face = None
    for conn in ("face", "edge", "corner"):
        res = balance(tree, conn)
        if conn == "face":
            n_face = len(res.tree)
        rows.append(
            [conn, len(tree), len(res.tree), res.rounds,
             f"{100 * (len(res.tree) / n_face - 1):.1f}%"]
        )
    table = format_table(
        ["connectivity", "before", "after", "ripple rounds", "vs face"],
        rows,
        title="Ablation — 2:1 balance connectivity cost (paper uses face+edge; mesh pipeline uses corner)",
    )
    # stronger balance costs a bounded premium (tens of percent on this
    # adversarial random tree; far less on smooth solution-driven meshes)
    n_corner = rows[-1][2]
    assert n_corner <= 2.0 * n_face
    record_table("ablation_balance", table)


def test_ablation_weighted_partition(record_table, benchmark):
    """Unweighted cuts equalize counts but not cost; weighted cuts fix it."""

    def kernel(comm):
        from repro.octree import new_tree, partition_tree, refine_tree

        pt = new_tree(comm, 2)
        mask = np.zeros(len(pt), dtype=bool)
        if comm.rank == 0:
            mask[:] = True
        pt = refine_tree(pt, mask)
        # cost model: global first half of the curve is 10x as expensive
        def costs(pt):
            offset = pt.global_offset()
            total = pt.global_count()
            g = offset + np.arange(len(pt))
            return np.where(g < total // 2, 10.0, 1.0)

        pt_u, _ = partition_tree(pt)
        cost_u = comm.allgather(float(costs(pt_u).sum()))
        pt_w, _ = partition_tree(pt, weights=costs(pt))
        cost_w = comm.allgather(float(costs(pt_w).sum()))
        return cost_u, cost_w

    cost_u, cost_w = benchmark.pedantic(
        lambda: run_spmd(4, kernel)[0], rounds=1, iterations=1
    )
    imb_u = max(cost_u) / (sum(cost_u) / len(cost_u))
    imb_w = max(cost_w) / (sum(cost_w) / len(cost_w))
    table = format_table(
        ["strategy", "per-rank cost", "imbalance (max/avg)"],
        [
            ["count-weighted", " ".join(f"{c:.0f}" for c in cost_u), round(imb_u, 2)],
            ["cost-weighted", " ".join(f"{c:.0f}" for c in cost_w), round(imb_w, 2)],
        ],
        title="Ablation — PARTITIONTREE with and without per-element weights",
    )
    assert imb_w < imb_u
    assert imb_w < 1.3
    record_table("ablation_partition", table)


def test_ablation_stokes_preconditioner(record_table, benchmark):
    """Full block preconditioner vs naive diagonal scaling."""
    tree = balance(adapted_tree(seed=5, rounds=2), "corner").tree
    mesh = extract_mesh(tree)
    z = mesh.element_centers()[:, 2]
    eta = np.exp(np.log(1e4) * z)
    c = mesh.node_coords()
    f = np.zeros((mesh.n_nodes, 3))
    f[:, 2] = np.sin(np.pi * c[:, 0]) * np.cos(np.pi * c[:, 2])
    st = StokesSystem(mesh, eta, f)
    b = st.rhs()

    prec = StokesBlockPreconditioner(st)
    full = benchmark.pedantic(
        lambda: minres(st.matvec, b, M=prec.apply, tol=1e-6, maxiter=1500),
        rounds=1, iterations=1,
    )

    diag = np.concatenate([st.A.diagonal(), st.schur_diagonal()])
    diag = np.where(np.abs(diag) > 1e-14, np.abs(diag), 1.0)
    jacobi = minres(st.matvec, b, M=lambda r: r / diag, tol=1e-6, maxiter=1500)

    table = format_table(
        ["preconditioner", "iterations", "converged"],
        [
            ["block (AMG + 1/eta mass)", full.iterations, full.converged],
            ["Jacobi (diagonal)", jacobi.iterations, jacobi.converged],
        ],
        title="Ablation — Stokes preconditioner structure (10^4 viscosity contrast)",
    )
    assert full.converged
    assert full.iterations < jacobi.iterations or not jacobi.converged
    record_table("ablation_preconditioner", table)
