"""Figures 1 & 11 / Section VI: mantle convection with plastic yielding.

Paper: 8 x 4 x 1 Cartesian domain, three-layer temperature-dependent
viscosity with lithospheric yielding (4 orders of magnitude variation);
AMR spans 14 octree levels, resolves yielding zones at ~1.5 km, and uses
19.2M elements where a uniform level-13 mesh would need 34B — a more than
1,000-fold reduction.

Executed: the same physics at shrunk resolution (max level scaled down),
measuring (a) the viscosity range, (b) that yielding zones exist and are
refined to the finest level, and (c) the element-reduction factor vs the
uniform mesh at the same finest resolution."""

import numpy as np

from repro.perf import format_table
from repro.rhea import MantleConvection, RheaConfig, YieldingViscosity
from repro.rhea.viscosity import element_temperature, strain_rate_invariant

DOMAIN = (8.0, 4.0, 1.0)
MAX_LEVEL = 6  # paper: 14; shrunk for pure-Python runtime
DOMAIN_KM = 2900.0  # mantle depth the unit z maps to


def slab_initial(coords):
    """Cold downwelling slab + hot base: drives localized yielding."""
    x, y, z = coords[:, 0] / 8.0, coords[:, 1] / 4.0, coords[:, 2]
    base = 1.0 - z
    slab = -0.45 * np.exp(-(((x - 0.5) / 0.06) ** 2)) * (z > 0.55)
    blob = 0.35 * np.exp(-(((x - 0.25) / 0.1) ** 2 + ((z - 0.15) / 0.15) ** 2))
    return np.clip(base + slab + blob, 0.0, 1.0)


def run_yielding(n_cycles=3):
    cfg = RheaConfig(
        Ra=1e5,
        domain=DOMAIN,
        viscosity=YieldingViscosity(sigma_y=500.0),
        initial_level=3,
        min_level=2,
        max_level=MAX_LEVEL,
        adapt_every=4,
        picard_iterations=2,
        stokes_tol=1e-5,
        stokes_maxiter=600,
        target_elements=1400,
        viscosity_weight=0.8,
        yield_weight=1.5,
    )
    sim = MantleConvection(cfg, T_init=slab_initial)
    sim.adapt_initial(rounds=2, target=1400)
    sim.run(n_cycles)
    return sim


def test_fig11_yielding_simulation(record_table, benchmark):
    sim = benchmark.pedantic(run_yielding, rounds=1, iterations=1)
    mesh = sim.mesh
    law = sim.config.viscosity

    T_e = element_temperature(mesh, sim.T)
    z_e = mesh.element_centers()[:, 2]
    edot = strain_rate_invariant(mesh, sim.u)
    eta = law(T_e, z_e, edot)
    yielded = law.yielded_mask(T_e, z_e, edot)
    levels = mesh.leaves.level.astype(int)

    finest = levels.max()
    n_uniform = 8.0**finest
    reduction = n_uniform / mesh.n_elements
    # fronts/weak zones are surfaces: adaptive count scales like 4^L while
    # uniform scales like 8^L, so the reduction doubles per extra level.
    # Extrapolate the measured constant to the paper's 14 levels.
    c_surface = mesh.n_elements / 4.0**finest
    reduction_14 = 8.0**14 / (c_surface * 4.0**14)
    finest_km = DOMAIN_KM / (2.0**finest)
    paper_scale_km = DOMAIN_KM / 2.0**14

    rows = [
        ["elements (adaptive)", mesh.n_elements],
        ["octree levels spanned", f"{levels.min()}..{finest}"],
        ["uniform-equivalent elements", f"{n_uniform:.3g}"],
        ["element reduction factor", f"{reduction:.1f}x"],
        ["extrapolated reduction at 14 levels", f"{reduction_14:.3g}x (paper: >1000x)"],
        ["finest resolution (km-equivalent)", f"{finest_km:.1f}"],
        ["paper finest at level 14 (km)", f"{paper_scale_km * 8:.1f} (x-dir ~1.4)"],
        ["viscosity range (orders of magnitude)", f"{np.log10(eta.max() / eta.min()):.1f}"],
        ["yielded elements", int(yielded.sum())],
        ["mean level (yielded)", f"{levels[yielded].mean():.2f}" if yielded.any() else "n/a"],
        ["mean level (elsewhere)", f"{levels[~yielded].mean():.2f}"],
        ["vrms", f"{sim.vrms():.3g}"],
    ]
    table = format_table(["quantity", "value"], rows,
                         title="Fig. 11 / Sec. VI — mantle convection with yielding (shrunk levels)")

    # shape assertions vs the paper (the full 4 orders of magnitude need
    # the paper's 14-level resolution; the shrunk run still spans ~3)
    assert np.log10(eta.max() / eta.min()) >= 2.5
    assert yielded.any()                            # yielding zones exist
    assert reduction > 15                           # large reduction vs uniform
    assert reduction_14 > 1000                      # paper-scale reduction
    if yielded.any():
        # yielding zones are refined beyond the base lithosphere level and
        # sit near the overall refinement level despite being thin
        assert levels[yielded].max() > 3
        assert levels[yielded].mean() >= levels.mean() - 0.5
    record_table("fig11_yielding", table)
