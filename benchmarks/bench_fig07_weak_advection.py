"""Figure 7: weak scalability of AMR advection-diffusion, 1 -> 62,464 cores.

Paper: at ~131K elements/core, the per-function breakdown shows the PDE
time integration dominating everywhere; EXTRACTMESH is the costliest AMR
function (up to ~6%), all AMR together stays <= 11%, and parallel
efficiency stays above 50% out to 62,464 cores.

Executed: SPMD pipeline at P in {1, 2, 4, 8} with fixed per-rank element
target — real per-function timings and the AMR fraction.  Modeled: the
machine model prices the measured per-rank communication at the paper's
core schedule to produce the efficiency curve."""

import numpy as np

from repro.perf import (
    format_table,
    measured_pipeline_run,
    model_weak_scaling,
)

AMR_FUNCS = [
    "NewTree", "CoarsenTree", "RefineTree", "BalanceTree", "PartitionTree",
    "ExtractMesh", "InterpolateFields", "TransferFields", "MarkElements",
]


def test_fig07_weak_scaling_breakdown(record_table, benchmark):
    per_rank_target = 220
    executed_rows = []
    comm = None
    for p in [1, 2, 4, 8]:
        run = lambda: measured_pipeline_run(
            p,
            coarse_level=2,
            max_level=6,
            target=per_rank_target * p,
            cycles=2,
            steps_per_cycle=16,
        )
        out = benchmark.pedantic(run, rounds=1, iterations=1) if p == 8 else run()
        t = out["timings"]
        total = sum(t.values())
        amr = sum(t.get(k, 0.0) for k in AMR_FUNCS)
        executed_rows.append(
            [
                p,
                out["n_elements"],
                round(total, 3),
                round(100 * amr / total, 1),
                round(100 * t.get("ExtractMesh", 0) / total, 1),
                round(100 * t.get("BalanceTree", 0) / total, 1),
                round(100 * t.get("PartitionTree", 0) / total, 1),
                round(100 * t.get("TimeIntegration", 0) / total, 1),
            ]
        )
        comm = out["comm_per_rank"]

    table = format_table(
        ["ranks", "#elem", "wall s", "AMR %", "Extract %", "Balance %", "Partition %", "TimeInt %"],
        executed_rows,
        title="Fig. 7 (top) — executed per-function breakdown, isogranular SPMD runs",
    )
    table += (
        "\nNOTE: in this pure-Python build the tree/mesh functions carry"
        "\ninterpreter overhead that the numerical kernels (NumPy) do not,"
        "\nso the executed AMR share is inflated relative to compiled ALPS;"
        "\nthe modeled rows below price work and communication consistently.\n"
    )

    cores = [1, 16, 256, 1024, 4096, 16384, 32768, 62464]
    rows = model_weak_scaling(cores, 131000, 32, comm)
    table += "\n\n" + format_table(
        ["cores", "#elem", "compute s", "comm s", "total s", "efficiency"],
        [
            [r["cores"], f'{r["elements"]:.3g}', round(r["t_compute"], 2),
             round(r["t_comm"], 4), round(r["t_total"], 2), round(r["efficiency"], 3)]
            for r in rows
        ],
        title="Fig. 7 (bottom) — modeled parallel efficiency at 131K elem/core (Ranger model)",
    )

    # modeled AMR share at paper scale: per-element AMR work is tiny
    # compared to 32 explicit steps of PDE work
    from repro.parallel import RANGER

    amr_flops = 200.0 * 131000  # tree/mesh touches per element per adapt
    pde = RANGER.t_flops(600.0 * 131000 * 32)
    amr = RANGER.t_flops(amr_flops) + RANGER.t_comm(comm, 62464)
    table += f"\nmodeled AMR share at 62,464 cores: {100 * amr / (amr + pde):.1f}% (paper: <= 11%)\n"

    # shape assertions: time integration is a major component in every
    # executed run, the modeled AMR share is small, and modeled parallel
    # efficiency stays above the paper's 50% at 62,464 cores
    for row in executed_rows:
        assert row[7] > 5.0
    assert amr / (amr + pde) <= 0.15
    assert rows[-1]["efficiency"] > 0.5
    record_table("fig07_weak_advection", table)
