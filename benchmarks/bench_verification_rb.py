"""Verification against CitcomCU-style Rayleigh-Benard behavior.

The paper states: "We have verified RHEA with the widely used, validated,
static mesh mantle convection code CitcomCU."  Without that code we verify
against the community-benchmark *behavior* of isoviscous Rayleigh-Benard
convection (Blankenbach et al. 1989 family):

- below the critical Rayleigh number (~779 for free-slip) perturbations
  decay: no convection, Nusselt number ~ 1;
- above it, convection sets in; both the Nusselt number and the rms
  velocity increase monotonically with Ra (classical scalings
  Nu ~ Ra^(1/3), vrms ~ Ra^(2/3));
- published steady values for comparison: Ra = 1e4 -> Nu = 4.88,
  vrms = 42.86; Ra = 1e5 -> Nu = 10.53, vrms = 193.2 (unit cube,
  isoviscous, free-slip; our short coarse-mesh runs approach these from
  below rather than matching them).
"""

import numpy as np

from repro.perf import format_table
from repro.rhea import ArrheniusViscosity, MantleConvection, RheaConfig


def run_rb(Ra, n_cycles=5, level=3):
    cfg = RheaConfig(
        Ra=Ra,
        viscosity=ArrheniusViscosity(eta0=1.0, E=0.0),  # isoviscous
        initial_level=level,
        min_level=2,
        max_level=level + 1,
        adapt_every=8,
        picard_iterations=1,
        stokes_tol=1e-6,
        stokes_maxiter=400,
        target_elements=8**level,
    )
    sim = MantleConvection(cfg)
    sim.run(n_cycles, adapt=False)  # static mesh, like CitcomCU
    d = sim.history[-1]
    return d.nusselt, d.vrms, d.minres_iterations


def test_verification_rayleigh_benard(record_table, benchmark):
    rows = []
    results = {}
    cases = [300.0, 1e4, 1e5]
    for Ra in cases:
        if Ra == cases[-1]:
            nu, vrms, its = benchmark.pedantic(
                run_rb, args=(Ra,), rounds=1, iterations=1
            )
        else:
            nu, vrms, its = run_rb(Ra)
        results[Ra] = (nu, vrms)
        rows.append([f"{Ra:.0e}", round(nu, 2), round(vrms, 2), its])
    table = format_table(
        ["Ra", "Nu", "vrms", "MINRES its"],
        rows,
        title="Verification — isoviscous Rayleigh-Benard (short coarse runs)",
    )
    table += (
        "\npublished steady-state references (Blankenbach et al. 1989):"
        "\n  Ra=1e4: Nu=4.88, vrms=42.86;  Ra=1e5: Nu=10.53, vrms=193.2"
        "\nsub-critical Ra=300: no convection (vrms ~ perturbation decay)\n"
    )

    # sub-critical: essentially no flow compared to the convecting cases
    assert results[300.0][1] < 0.05 * results[1e4][1]
    # convecting: vigor increases with Ra
    assert results[1e5][1] > results[1e4][1] > 1.0
    # heat transport enhanced over conduction and ordered by Ra
    assert results[1e5][0] > results[1e4][0] > 0.8
    record_table("verification_rb", table)
