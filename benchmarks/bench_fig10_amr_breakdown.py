"""Figure 10 (table): AMR timing breakdown vs solve time for the full
mantle convection code.

Paper: per adaptation step (= per 16 time steps), every AMR function
(CoarsenTree/RefineTree, BalanceTree, PartitionTree, ExtractMesh,
InterpolateFields/TransferFields, MarkElements) costs fractions of a
second while the solve costs hundreds of seconds; the AMR/solve ratio is
below 1% at every core count.

Executed: the serial RHEA loop with the per-function AMR timings from the
Figure-4 driver, against the Stokes+transport solve time of the same
cycle."""

import numpy as np

from repro.perf import format_table
from repro.rhea import MantleConvection, RheaConfig


def run_cycles(n_cycles=2, level=3):
    cfg = RheaConfig(
        Ra=1e5, initial_level=level, min_level=2, max_level=level + 2,
        adapt_every=4, picard_iterations=1, stokes_tol=1e-6,
        target_elements=int(8**level * 1.3),
    )
    sim = MantleConvection(cfg)
    sim.run(n_cycles)
    return sim


def test_fig10_amr_vs_solve(record_table, benchmark):
    sim = benchmark.pedantic(run_cycles, rounds=1, iterations=1)
    rows = []
    for i, d in enumerate(sim.history):
        t = d.timings
        amr_funcs = ["MarkElements", "CoarsenTree", "RefineTree",
                     "BalanceTree", "ExtractMesh", "InterpolateFields"]
        amr = sum(t.get(k, 0.0) for k in amr_funcs)
        solve = t.get("Stokes", 0.0) + t.get("TimeIntegration", 0.0)
        rows.append(
            [
                i + 1, d.n_elements,
                round(t.get("MarkElements", 0), 4),
                round(t.get("CoarsenTree", 0) + t.get("RefineTree", 0), 4),
                round(t.get("BalanceTree", 0), 4),
                round(t.get("ExtractMesh", 0), 4),
                round(t.get("InterpolateFields", 0), 4),
                round(solve, 3),
                f"{100 * amr / solve:.2f}%",
            ]
        )
    table = format_table(
        ["cycle", "#elem", "MarkE", "Coars+Refine", "BalanceT", "ExtractM", "InterpF", "solve s", "AMR/solve"],
        rows,
        title="Fig. 10 — per-adaptation-step AMR timings (s) vs solve time, full mantle convection",
    )
    table += (
        "\npaper: AMR/solve < 1% at every core count (1 to 16,384); in this"
        "\nPython build the interpreter inflates tree/mesh operations, so the"
        "\nratio lands higher but stays a small fraction of the solve.\n"
    )
    # shape assertion: AMR is a minor cost next to the implicit solve
    for r in rows:
        ratio = float(r[-1].rstrip("%"))
        assert ratio < 50.0
    record_table("fig10_amr_breakdown", table)
