"""Figure 2 (table): weak scalability of the variable-viscosity Stokes
solver — MINRES iteration counts vs problem size.

Paper: iterations stay in a narrow band (47-68) while the problem grows
from 271K dof on 1 core to 2.17B dof on 8192 cores, despite severe
viscosity heterogeneity.  We execute shrunk problems (the largest sizes
are modeled, not run — this is a pure-Python reproduction) and verify the
*shape*: iteration counts essentially flat under mesh refinement with a
4-orders-of-magnitude viscosity contrast; simulated core counts are the
paper's weak-scaling schedule (~65K elements/core)."""

import numpy as np

from repro.fem import StokesSystem
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.perf import format_table
from repro.solvers import StokesBlockPreconditioner, minres


def layered_viscosity(mesh, contrast=1e4):
    """Smooth vertical viscosity variation over `contrast` orders."""
    z = mesh.element_centers()[:, 2]
    return np.exp(np.log(contrast) * z) / np.sqrt(contrast)


def buoyancy(mesh):
    c = mesh.node_coords()
    f = np.zeros((mesh.n_nodes, 3))
    f[:, 2] = np.sin(np.pi * c[:, 0]) * np.sin(np.pi * c[:, 1]) * np.cos(
        np.pi * c[:, 2]
    )
    return f


def solve_case(level, seed):
    rng = np.random.default_rng(seed)
    tree = LinearOctree.uniform(level)
    tree = tree.refine(rng.random(len(tree)) < 0.15)
    tree = balance(tree, "corner").tree
    mesh = extract_mesh(tree)
    st = StokesSystem(mesh, layered_viscosity(mesh), buoyancy(mesh))
    prec = StokesBlockPreconditioner(st)
    res = minres(st.matvec, st.rhs(), M=prec.apply, tol=1e-6, maxiter=500)
    assert res.converged
    return mesh.n_elements, 4 * mesh.n_independent, res.iterations


def test_fig02_stokes_weak_scaling(record_table, benchmark):
    rows = []
    # executed sizes (levels 1..3); paper's schedule kept per-core size
    # at ~65K elements — we report the equivalent core count for shape
    levels = [1, 2, 3]
    iterations = []
    for i, lvl in enumerate(levels):
        ne, dof, its = benchmark.pedantic(
            solve_case, args=(lvl, i), rounds=1, iterations=1
        ) if i == len(levels) - 1 else solve_case(lvl, i)
        rows.append([f"2^{3 * lvl}", ne, dof, its, "executed"])
        iterations.append(its)
    # paper reference band for comparison
    paper = [
        (1, "67.2K", "271K", 57),
        (8, "514K", "2.06M", 47),
        (64, "4.20M", "16.8M", 51),
        (512, "33.2M", "133M", 60),
        (4096, "267M", "1.07B", 67),
        (8192, "539M", "2.17B", 68),
    ]
    table = format_table(
        ["size", "#elem", "#dof", "MINRES its", "kind"],
        rows,
        title="Fig. 2 — variable-viscosity Stokes weak scaling (executed, shrunk sizes)",
    )
    table += "\n\npaper-reported band (Ranger):\n"
    table += format_table(
        ["#cores", "#elem", "#dof", "MINRES its"], [list(r) for r in paper]
    )
    # shape assertion: iteration growth bounded like the paper's band
    # (paper: max 68 / min 47 = 1.45x over 8192x size growth)
    assert max(iterations) <= 2.0 * min(iterations)
    record_table("fig02_stokes_weak", table)
