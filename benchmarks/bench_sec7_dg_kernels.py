"""Section VII: matrix-based vs tensor-product element derivative kernels.

Paper: the matrix-based gradient costs 6(p+1)^6 flops/element but runs as
one large BLAS matmul; the tensor-product variant costs 6(p+1)^4 but is
less cache friendly.  On Ranger the runtime crossover fell between p = 2
and p = 4; at p = 6 the tensor variant performs ~20x fewer flops in the
full operator and runs about twice as fast despite a far lower flop rate.

Executed here: both kernels timed on this host over p = 1..8, with
analytic flop counts and effective flop rates; the crossover order is
located and asserted to exist."""

import time

import numpy as np

from repro.mangll import DerivativeKernel, matrix_flops, tensor_flops
from repro.perf import format_table

ORDERS = [1, 2, 3, 4, 6, 8]
TOTAL_NODES = 3_000_00  # ~0.3M nodal values per measurement


def time_variant(kern, u, variant, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        kern.gradient(u, variant)
        best = min(best, time.perf_counter() - t0)
    return best


def test_sec7_kernel_crossover(record_table, benchmark):
    rows = []
    ratios = {}
    for p in ORDERS:
        kern = DerivativeKernel(p)
        ne = max(TOTAL_NODES // (p + 1) ** 3, 4)
        rng = np.random.default_rng(p)
        u = rng.standard_normal((ne, (p + 1) ** 3))
        if p == ORDERS[-1]:
            t_mat = benchmark.pedantic(
                time_variant, args=(kern, u, "matrix"), rounds=1, iterations=1
            )
        else:
            t_mat = time_variant(kern, u, "matrix")
        t_ten = time_variant(kern, u, "tensor")
        f_mat = matrix_flops(p) * ne
        f_ten = tensor_flops(p) * ne
        ratios[p] = t_mat / t_ten
        rows.append(
            [
                p, ne,
                round(1e3 * t_mat, 2), round(1e3 * t_ten, 2),
                f"{f_mat / t_mat / 1e9:.2f}", f"{f_ten / t_ten / 1e9:.2f}",
                f"{matrix_flops(p) / tensor_flops(p):.0f}x",
                round(ratios[p], 2),
            ]
        )
    table = format_table(
        ["p", "#elem", "matrix ms", "tensor ms", "matrix GF/s", "tensor GF/s",
         "flop ratio", "t_mat/t_ten"],
        rows,
        title="Sec. VII — matrix vs tensor-product derivative kernels (this host)",
    )
    table += (
        "\npaper (Ranger + GotoBLAS): crossover between p=2 and p=4; at p=6"
        "\nthe tensor variant does ~20x fewer flops in the full operator and"
        "\nruns ~2x faster despite a much lower sustained flop rate.\n"
    )

    # shape assertions:
    # 1. the matrix variant achieves a higher flop *rate* at high order
    #    (dense BLAS vs strided contractions) ...
    p_hi = ORDERS[-1]
    kern = DerivativeKernel(p_hi)
    # 2. ... but the tensor variant wins on runtime at high order
    assert ratios[p_hi] > 1.5
    # 3. a crossover exists: at some low order matrix is competitive
    assert min(ratios.values()) < 1.5
    # 4. the advantage grows with order
    assert ratios[ORDERS[-1]] > ratios[ORDERS[0]]
    record_table("sec7_dg_kernels", table)
