"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and both
prints it and writes it to ``benchmarks/results/<name>.txt`` so the
numbers survive the pytest capture.  EXPERIMENTS.md records the
paper-reported values next to these outputs.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _record
