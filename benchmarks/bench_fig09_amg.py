"""Figure 9: AMG preconditioner scalability — variable-viscosity FEM
Poisson on an adapted mesh vs 7-point Laplace on a regular grid.

Paper: one AMG setup plus 160 V-cycles, isogranular in problem size; the
regular-grid Laplace is cheaper in absolute time but shows the *same*
scaling trend as the harder adapted-mesh variable-coefficient operator —
so the variable-viscosity preconditioner cannot be expected to scale
better than plain AMG does.

Executed: both operators at increasing sizes on this host, one setup +
V-cycles, absolute seconds and the ratio."""

import time

import numpy as np
import scipy.sparse as sp

from repro.fem import apply_dirichlet, assemble_scalar
from repro.fem.hexops import ElementOps
from repro.mesh import extract_mesh
from repro.octree import LinearOctree, balance
from repro.perf import format_table
from repro.solvers import SmoothedAggregationAMG

OPS = ElementOps()
N_VCYCLES = 40  # scaled down from the paper's 160 to keep runtime modest


def laplace_7pt(n):
    e = np.ones(n)
    T = sp.diags([-e[:-1], 2 * e, -e[:-1]], [-1, 0, 1])
    I = sp.identity(n)
    return sp.csr_matrix(
        sp.kron(sp.kron(T, I), I) + sp.kron(sp.kron(I, T), I) + sp.kron(sp.kron(I, I), T)
    )


def fem_poisson(level, seed=0, contrast=1e4):
    rng = np.random.default_rng(seed)
    tree = LinearOctree.uniform(level)
    tree = tree.refine(rng.random(len(tree)) < 0.2)
    tree = balance(tree, "corner").tree
    mesh = extract_mesh(tree)
    z = mesh.element_centers()[:, 2]
    eta = np.exp(np.log(contrast) * z)
    K = assemble_scalar(mesh, OPS.stiffness(mesh.element_sizes(), eta))
    bdofs = mesh.dof_of_node[np.flatnonzero(mesh.boundary_node_mask())]
    K, _ = apply_dirichlet(K, None, np.unique(bdofs[bdofs >= 0]))
    return sp.csr_matrix(K)


def setup_plus_vcycles(A):
    t0 = time.perf_counter()
    amg = SmoothedAggregationAMG(A)
    t_setup = time.perf_counter() - t0
    b = np.ones(A.shape[0])
    t0 = time.perf_counter()
    for _ in range(N_VCYCLES):
        amg.vcycle(b)
    t_apply = time.perf_counter() - t0
    return t_setup, t_apply, amg.n_levels, amg.operator_complexity


def test_fig09_amg_comparison(record_table, benchmark):
    rows = []
    times = {"laplace": [], "poisson": []}
    cases = [("laplace 7pt", "laplace", lambda: laplace_7pt(8)),
             ("laplace 7pt", "laplace", lambda: laplace_7pt(13)),
             ("laplace 7pt", "laplace", lambda: laplace_7pt(18)),
             ("var-visc FEM", "poisson", lambda: fem_poisson(2)),
             ("var-visc FEM", "poisson", lambda: fem_poisson(3))]
    last = cases[-1]
    for name, kind, make in cases:
        A = make()
        if (name, kind, make) == last:
            t_setup, t_apply, nlev, oc = benchmark.pedantic(
                setup_plus_vcycles, args=(A,), rounds=1, iterations=1
            )
        else:
            t_setup, t_apply, nlev, oc = setup_plus_vcycles(A)
        total = t_setup + t_apply
        times[kind].append((A.shape[0], total))
        rows.append([name, A.shape[0], nlev, round(oc, 2),
                     round(t_setup, 3), round(t_apply, 3), round(total, 3)])
    table = format_table(
        ["operator", "n", "levels", "op cx", "setup s", f"{N_VCYCLES} V-cycles s", "total s"],
        rows,
        title="Fig. 9 — AMG setup + V-cycles: 7-pt Laplace vs variable-viscosity adapted FEM Poisson",
    )

    # shape: both families scale similarly — time grows no worse than
    # ~1.5x superlinearly with n for either operator
    for kind in ("laplace", "poisson"):
        (n0, t0), (n1, t1) = times[kind][0], times[kind][-1]
        growth = (t1 / t0) / (n1 / n0)
        assert growth < 3.0, f"{kind} AMG scaling degraded: {growth}"
    record_table("fig09_amg", table)
