"""Figure 5: extent of mesh adaptation per step.

Paper (left panel): under advection-dominated transport, typically half
the elements are coarsened or refined at every adaptation step, balance
additions are barely visible, and MARKELEMENTS keeps the total element
count roughly constant.  (Right panel): elements spread over many octree
levels as the run progresses.

We execute the same workload (thin rotating front) through the SPMD
pipeline and print both panels' data."""

import numpy as np

from repro.amr import ParAmrPipeline
from repro.parallel import run_spmd
from repro.perf import format_table


def run_adaptation_series(n_cycles=6, p=4, target=500):
    from repro.amr import RotatingFrontWorkload, rotating_velocity

    # fast rotation so the front sweeps several cells between adaptations
    workload = RotatingFrontWorkload(velocity=rotating_velocity(scale=4.0))

    def kernel(comm):
        pipe = ParAmrPipeline(comm, workload=workload, coarse_level=2, max_level=6)
        for _ in range(n_cycles):
            pipe.adapt(target)
            # sweep the front several fine cells between adaptations
            pipe.advance_time(0.15, cfl=0.5)
        return pipe.adapt_history

    return run_spmd(p, kernel)[0]


def test_fig05_adaptation_extent(record_table, benchmark):
    history = benchmark.pedantic(run_adaptation_series, rounds=1, iterations=1)
    rows = []
    for i, h in enumerate(history):
        rows.append(
            [
                i + 1,
                h.n_before,
                h.n_refined,
                h.n_coarsened,
                h.n_balance_added,
                h.n_unchanged,
                h.n_after,
                f"{h.n_refined + h.n_coarsened:d}",
            ]
        )
    table = format_table(
        ["step", "before", "refined", "coarsened", "balance+", "unchanged", "after", "changed"],
        rows,
        title="Fig. 5 (left) — elements refined/coarsened/balance-added/unchanged per adaptation step",
    )
    # right panel: level histograms at selected steps
    hist_rows = []
    levels = sorted({l for h in history for l in h.level_histogram})
    for i, h in enumerate(history):
        hist_rows.append([i + 1] + [h.level_histogram.get(l, 0) for l in levels])
    table += "\n\n" + format_table(
        ["step"] + [f"lvl{l}" for l in levels],
        hist_rows,
        title="Fig. 5 (right) — elements per octree level",
    )

    # shape assertions vs the paper:
    later = history[2:]
    # 1. substantial adaptation every step once the front moves
    changed = [(h.n_refined + h.n_coarsened) / h.n_before for h in later]
    assert max(changed) > 0.1
    # 2. total element count held ~constant by MarkElements
    totals = [h.n_after for h in history]
    assert max(totals) < 2.5 * min(totals)
    # 3. balance additions never dominate the marked changes (at paper
    # scale they are barely visible; at ~500 elements the 2:1 closure of
    # a moving front is proportionally larger but still a correction)
    for h in later:
        assert h.n_balance_added <= max(h.n_refined + h.n_coarsened, 1)
    # 4. multiple levels populated
    assert len(history[-1].level_histogram) >= 3
    record_table("fig05_adaptation", table)
