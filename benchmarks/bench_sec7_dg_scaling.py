"""Section VII: parallel efficiency of high-order DG AMR on the sphere.

Paper: "for order p = 4, we observe 90% parallel efficiency on 16,384
cores relative to 64 cores, and for order p = 6 we found 83% parallel
efficiency on 32,768 cores compared to 32 cores", adapting every 32 steps.

High order helps weak scaling for two reasons the model captures: most
dofs are interior to elements (communication is only the element-surface
trace), and per-element work grows like (p+1)^4 while the face payload
grows like (p+1)^2.

Executed: DG advection on the cubed-sphere at p in {2, 4, 6}, measuring
per-element work and per-face payloads; modeled: efficiency at the paper's
core counts."""

import time

import numpy as np

from repro.forest import Forest, cubed_sphere_connectivity
from repro.mangll import DGAdvection, solid_body_rotation, tensor_flops
from repro.parallel import RANGER, CommStats
from repro.perf import format_table


def measure_dg(p_order):
    conn = cubed_sphere_connectivity(r_inner=0.6, r_outer=1.0)
    forest = Forest.uniform(conn, 1)
    dg = DGAdvection(forest, p_order, solid_body_rotation())
    u = np.exp(-np.sum((dg.nodes() - 0.5) ** 2, axis=1) / 0.05)
    dt = dg.cfl_dt(0.3)
    t0 = time.perf_counter()
    dg.advance(u, dt, 3)
    wall = time.perf_counter() - t0
    return dg, wall


def model_efficiency(p_order, cores, elements_per_core=64, steps=32):
    """Weak-scaling efficiency of one adaptation cycle: 32 RK steps of DG
    plus the AMR exchange, with face traces as the communication unit."""
    n = p_order + 1
    stages = 5
    flops = tensor_flops(p_order) * elements_per_core * steps * stages
    face_bytes = 8.0 * n * n * 6 * elements_per_core ** (2.0 / 3.0)  # surface traces
    comm = CommStats()
    for _ in range(steps * stages):
        comm.record_collective("alltoall", face_bytes)
    for _ in range(4):  # adaptation collectives per cycle
        comm.record_collective("allreduce", 8)
        comm.record_collective("allgather", 8)
    rate = 2.0e9  # sustained high-order kernel rate (paper: up to 4.4 GF/s)
    t1 = flops / rate
    out = []
    for p in cores:
        t_comm = RANGER.t_comm(comm, p)
        out.append({"cores": p, "t": t1 + t_comm, "eff": t1 / (t1 + t_comm)})
    base = out[0]["eff"]
    for row in out:
        row["eff_rel"] = row["eff"] / base
    return out


def test_sec7_dg_weak_scaling(record_table, benchmark):
    rows = []
    for p_order in [2, 4, 6]:
        dg, wall = (
            benchmark.pedantic(measure_dg, args=(p_order,), rounds=1, iterations=1)
            if p_order == 6
            else measure_dg(p_order)
        )
        rows.append([p_order, dg.ne, dg.n_dof, round(wall, 3), "executed"])
    table = format_table(
        ["p", "#elem", "#dof", "3 RK steps s", "kind"],
        rows,
        title="Sec. VII — executed DG advection on the 24-tree cubed sphere",
    )

    effs = {}
    for p_order, cores in [(4, [64, 1024, 16384]), (6, [32, 1024, 32768])]:
        mrows = model_efficiency(p_order, cores)
        effs[p_order] = mrows[-1]["eff_rel"]
        table += "\n\n" + format_table(
            ["cores", "modeled s", "efficiency vs first"],
            [[r["cores"], round(r["t"], 3), round(r["eff_rel"], 3)] for r in mrows],
            title=f"modeled weak scaling, p = {p_order} (paper: "
            f"{'90% at 16,384' if p_order == 4 else '83% at 32,768'})",
        )

    # shape assertions: high efficiency at the paper's endpoints
    assert effs[4] > 0.8
    assert effs[6] > 0.7
    record_table("sec7_dg_scaling", table)
