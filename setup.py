"""Setup shim: enables legacy editable installs on environments without
the ``wheel`` package (offline clusters), via
``pip install -e . --no-build-isolation --no-use-pep517``.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
