"""Rank-sharded checkpoint/restart for the ALPS/RHEA time loops.

The petascale runs of the paper (Sec. V: up to 62,976 Ranger cores)
presume a checkpoint/restart discipline; this package supplies the
repro's version of it.  State is saved as one binary shard per rank plus
a JSON manifest with blake2b integrity digests (:mod:`.format`), written
atomically and pruned to the newest K.  Because ranks own contiguous
Morton segments, restore (:mod:`.restore`) concatenates shards in rank
order and re-runs the SFC partition — so a run saved on N ranks resumes
on M ranks with a bitwise-identical octree and fields.  :mod:`.driver`
wires periodic snapshots into ``ParAmrPipeline.run_cycles`` and
``MantleConvection.run``; the fault-injection hook in
:mod:`repro.parallel.simcomm` lets tests kill a chosen rank at a chosen
step to exercise the crash path end to end.
"""

from .driver import CheckpointConfig, Checkpointer
from .format import (
    FORMAT_VERSION,
    CheckpointError,
    Manifest,
    ManifestError,
    ShardIntegrityError,
    latest_checkpoint,
    list_checkpoints,
)
from .restore import (
    load_checkpoint,
    resolve_checkpoint,
    restore_convection,
    restore_pipeline,
    sfc_segment,
)
from .snapshot import save_convection, save_pipeline

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "ManifestError",
    "ShardIntegrityError",
    "Manifest",
    "Checkpointer",
    "CheckpointConfig",
    "save_pipeline",
    "save_convection",
    "restore_pipeline",
    "restore_convection",
    "load_checkpoint",
    "resolve_checkpoint",
    "sfc_segment",
    "list_checkpoints",
    "latest_checkpoint",
]
