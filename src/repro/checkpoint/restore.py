"""Restore: checkpoint directories -> reconstructed driver objects.

Reading is rank-count agnostic.  Shards are concatenated in rank order,
which — because every writing rank owned a contiguous Morton segment —
yields the *global* Morton-ordered octant and field arrays.  Restoring
onto ``M`` ranks then just re-runs the equal-count SFC split (the same
``divmod`` arithmetic as ``PARTITIONTREE``) over the concatenated
arrays, rebuilds each rank's mesh with the parallel EXTRACTMESH, and
scatters the element-corner field values back onto mesh nodes.  Corner
values are bitwise replicas across sharing elements, so the rebuilt node
vector is exactly the saved one regardless of N vs. M.

Every shard's blake2b digest is verified on read, unconditionally; a
mismatch raises :class:`~repro.checkpoint.format.ShardIntegrityError`
naming the shard.  Under ``REPRO_SANITIZE=1`` the decoded arrays are
additionally re-fingerprinted against the ``frozen`` token the writer
stored in the manifest.
"""

from __future__ import annotations

import os

import numpy as np

from .. import obs
from ..analysis.sanitize import freeze, sanitize_enabled
from .format import (
    CheckpointError,
    Manifest,
    ShardIntegrityError,
    latest_checkpoint,
    read_manifest,
    read_shard,
)

__all__ = [
    "resolve_checkpoint",
    "load_checkpoint",
    "sfc_segment",
    "restore_pipeline",
    "restore_convection",
]


def resolve_checkpoint(path: str) -> str:
    """Accept either a checkpoint directory or a root of ``step_*`` dirs
    (then the newest complete checkpoint wins)."""
    if os.path.isfile(os.path.join(path, "manifest.json")):
        return path
    latest = latest_checkpoint(path)
    if latest is None:
        raise CheckpointError(f"no checkpoint found under {path!r}")
    return latest


def load_checkpoint(path: str) -> tuple[Manifest, dict]:
    """Read a checkpoint into global Morton-ordered arrays.

    Returns ``(manifest, arrays)`` with each named array concatenated
    over shards in rank order.  Digests are always verified; sanitize
    mode re-validates the decoded arrays against the writer's freeze
    token as well.
    """
    path = resolve_checkpoint(path)
    manifest = read_manifest(path)
    parts: dict[str, list] = {}
    for info in manifest.shards:
        arrays = read_shard(path, info)
        if sanitize_enabled() and info.frozen is not None:
            token = freeze([arrays[k] for k in sorted(arrays)])
            if token != info.frozen:
                raise ShardIntegrityError(
                    info.file, os.path.join(path, info.file), info.frozen, token
                )
        for name in sorted(arrays):
            parts.setdefault(name, []).append(arrays[name])
    out = {
        name: (chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0))
        for name, chunks in sorted(parts.items())
    }
    return manifest, out


def sfc_segment(total: int, size: int, rank: int) -> tuple[int, int]:
    """Equal-count contiguous split of the Morton curve — the same
    arithmetic ``PARTITIONTREE`` uses, so a restored partition matches
    what :func:`repro.octree.partree.partition_tree` would produce."""
    base, rem = divmod(total, size)
    lo = rank * base + min(rank, rem)
    hi = lo + base + (1 if rank < rem else 0)
    return lo, hi


def restore_pipeline(comm, path: str, workload=None):
    """Rebuild a :class:`~repro.amr.pardriver.ParAmrPipeline` on the
    calling SPMD world (any rank count) from a ``par_amr`` checkpoint.

    Collective: every rank reads all shards (the in-process analogue of
    a parallel filesystem) and keeps its SFC segment.  Recorded under
    the ``checkpoint/restore`` phase when a :mod:`repro.obs` timer is
    bound.
    """
    with obs.phase("checkpoint/restore"):
        return _restore_pipeline_impl(comm, path, workload)


def _restore_pipeline_impl(comm, path: str, workload):
    from ..amr.pardriver import ParAmrPipeline
    from ..octree import OctantArray, morton_encode

    path = resolve_checkpoint(path)
    manifest, g = load_checkpoint(path)
    meta = manifest.meta
    if meta.get("kind") != "par_amr":
        raise CheckpointError(
            f"checkpoint at {path!r} holds {meta.get('kind')!r} state, "
            "not a ParAmrPipeline snapshot"
        )
    x, y, z = g["octants/x"], g["octants/y"], g["octants/z"]
    lv = g["octants/level"]
    lo, hi = sfc_segment(len(lv), comm.size, comm.rank)
    local = OctantArray(x[lo:hi], y[lo:hi], z[lo:hi], lv[lo:hi])
    pipe = ParAmrPipeline(
        comm,
        workload=workload,
        min_level=meta["min_level"],
        max_level=meta["max_level"],
        connectivity=meta["connectivity"],
        tree=local,
    )

    # scatter element-corner temperature back onto this rank's union mesh
    mesh = pipe.pm.mesh
    gkeys = morton_encode(x, y, z)
    idx = np.searchsorted(gkeys, mesh.leaves.keys())
    if not np.array_equal(gkeys[idx], mesh.leaves.keys()):
        raise CheckpointError(
            "restored mesh elements not found in checkpoint octants — "
            "shards are inconsistent with the manifest"
        )
    u_full = np.zeros(mesh.n_nodes)
    u_full[mesh.element_nodes.ravel()] = g["field/T"][idx].ravel()
    pipe.T = u_full[mesh.indep_nodes]

    pipe.steps_taken = int(meta["steps_taken"])
    pipe.cycles_done = int(meta.get("cycles_done", 0))
    pipe.sim_time = float(manifest.time)
    return pipe


def restore_convection(path: str, config=None, include_solver_state: bool = True):
    """Rebuild a :class:`~repro.rhea.convection.MantleConvection` from a
    ``convection`` checkpoint.

    ``config`` must match the run that wrote the checkpoint (it is not
    serialized — viscosity laws are code, not data); fields, counters,
    diagnostics history, and — when present and requested — the
    warm-start solver state are restored.  The lagged-preconditioner
    hierarchy is rebuilt from its saved reference viscosity, which is
    bitwise-equivalent to the hierarchy the uninterrupted run carried.
    Recorded under the ``checkpoint/restore`` phase when a
    :mod:`repro.obs` timer is bound.
    """
    with obs.phase("checkpoint/restore"):
        return _restore_convection_impl(path, config, include_solver_state)


def _restore_convection_impl(path: str, config, include_solver_state: bool):
    from ..rhea.convection import MantleConvection, StepDiagnostics
    from ..octree import LinearOctree, OctantArray

    path = resolve_checkpoint(path)
    manifest, g = load_checkpoint(path)
    meta = manifest.meta
    if meta.get("kind") != "convection":
        raise CheckpointError(
            f"checkpoint at {path!r} holds {meta.get('kind')!r} state, "
            "not a MantleConvection snapshot"
        )
    leaves = OctantArray(
        g["octants/x"], g["octants/y"], g["octants/z"], g["octants/level"]
    )
    tree = LinearOctree(leaves, presorted=True)
    sim = MantleConvection(config=config, tree=tree)
    sim.T = g["field/T"].copy()
    sim.u = g["field/u"].copy()
    sim.eta_elem = g["state/eta_elem"].copy()
    sim.edot_elem = g["state/edot_elem"].copy()
    sim.sim_time = float(manifest.time)
    sim.step_count = int(manifest.step)
    sim.history = [StepDiagnostics(**d) for d in meta.get("history", [])]

    if include_solver_state:
        if "solver/p_prev" in g:
            sim._p_prev = g["solver/p_prev"].copy()
            sim._p_prev_mesh = sim.mesh
        if "solver/prec_eta_ref" in g and sim._prec_lag is not None:
            from ..fem import StokesSystem

            eta_ref = g["solver/prec_eta_ref"].copy()
            st = StokesSystem(
                sim.mesh,
                eta_ref,
                np.zeros((sim.mesh.n_nodes, 3)),
                bc=sim.config.velocity_bc,
            )
            sim._prec_lag.get(st)
    return sim
