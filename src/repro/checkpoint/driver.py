"""Periodic-checkpoint policy wired into the time loops.

A :class:`Checkpointer` bundles the where (directory), the when (every N
cycles), and the how much (retention); ``run_cycles``/``run`` accept one
via their ``checkpoint=`` argument — or, for convenience, a plain path
string or a :class:`CheckpointConfig`, both coerced here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .snapshot import save_convection, save_pipeline

__all__ = ["CheckpointConfig", "Checkpointer"]


@dataclass
class CheckpointConfig:
    """Declarative checkpoint policy."""

    directory: str
    #: snapshot every N completed cycles (0 disables periodic saves)
    every: int = 1
    #: retain the newest K checkpoints (None keeps everything)
    keep: int | None = 2
    #: serialize warm-start solver state (convection path)
    include_solver_state: bool = True


class Checkpointer:
    """Stateful policy object: decides when a cycle ends in a snapshot.

    ``last_path`` holds the most recent checkpoint directory written.
    """

    def __init__(
        self,
        directory: str,
        every: int = 1,
        keep: int | None = 2,
        include_solver_state: bool = True,
    ):
        self.directory = directory
        self.every = int(every)
        self.keep = keep
        self.include_solver_state = include_solver_state
        self.last_path: str | None = None
        self.n_saved = 0

    @classmethod
    def coerce(cls, spec) -> "Checkpointer | None":
        """None | path str | CheckpointConfig | Checkpointer -> policy."""
        if spec is None or isinstance(spec, cls):
            return spec
        if isinstance(spec, CheckpointConfig):
            return cls(
                spec.directory,
                every=spec.every,
                keep=spec.keep,
                include_solver_state=spec.include_solver_state,
            )
        if isinstance(spec, (str, bytes)) or hasattr(spec, "__fspath__"):
            return cls(str(spec))
        raise TypeError(
            f"checkpoint= expects a path, CheckpointConfig, or Checkpointer; "
            f"got {type(spec).__name__}"
        )

    def due(self, cycles_done: int) -> bool:
        """True when ``cycles_done`` completed cycles call for a
        snapshot (every ``self.every``-th cycle; never at cycle 0).

        Example::

            Checkpointer("ckpt", every=3).due(6)   # True
        """
        return self.every > 0 and cycles_done > 0 and cycles_done % self.every == 0

    def save_pipeline(self, pipe) -> str:
        """Snapshot a :class:`~repro.amr.ParAmrPipeline` (collective —
        every rank must call it) and return the step directory path."""
        self.last_path = save_pipeline(pipe, self.directory, keep=self.keep)
        self.n_saved += 1
        return self.last_path

    def save_convection(self, sim) -> str:
        """Snapshot a serial :class:`~repro.rhea.MantleConvection`
        (optionally with solver warm-start state) and return the step
        directory path."""
        self.last_path = save_convection(
            sim,
            self.directory,
            keep=self.keep,
            include_solver_state=self.include_solver_state,
        )
        self.n_saved += 1
        return self.last_path
