"""The versioned, rank-sharded binary snapshot format.

A checkpoint is a directory ``<root>/step_<NNNNNNNN>/`` holding one
binary *shard* per writing rank plus a JSON *manifest*:

``shard_<RRRR>.bin``
    The rank's named arrays, concatenated little-endian and contiguous.
    Because every rank owns a contiguous segment of the global Morton
    curve (Figure 3 of the paper), concatenating shards in rank order
    reproduces the global Morton-ordered state — which is what makes
    topology-preserving N-rank to M-rank restart a pure re-slice.

``manifest.json``
    Format name/version, world size, step/time counters, driver
    metadata, and — per shard — the array table (name, little-endian
    dtype, shape, byte offset) and a blake2b digest of the shard bytes.
    Restore re-hashes every shard and rejects corruption with a
    structured :class:`ShardIntegrityError` naming the shard.

Writes are atomic: everything lands in ``<dir>.tmp`` first and the
directory is renamed into place only after the manifest is written, so
a crash mid-snapshot can never leave a checkpoint that looks complete.
Retention keeps the newest ``keep`` checkpoints and deletes the rest.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "CheckpointError",
    "ManifestError",
    "ShardIntegrityError",
    "ArrayEntry",
    "ShardInfo",
    "Manifest",
    "shard_name",
    "step_dirname",
    "pack_arrays",
    "unpack_arrays",
    "write_shard",
    "read_shard",
    "write_manifest",
    "read_manifest",
    "list_checkpoints",
    "latest_checkpoint",
    "apply_retention",
]

FORMAT_NAME = "repro-checkpoint"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

_STEP_DIR_RE = re.compile(r"^step_(\d{8})$")


class CheckpointError(RuntimeError):
    """Base class for checkpoint read/write failures."""


class ManifestError(CheckpointError):
    """The manifest is missing, unreadable, or from an unknown format."""


class ShardIntegrityError(CheckpointError):
    """A shard's bytes do not match the digest recorded in the manifest.

    Attributes
    ----------
    shard:
        File name of the offending shard (``shard_0003.bin``).
    path:
        Full path that was read.
    expected, actual:
        Hex digests (manifest vs. recomputed).
    """

    def __init__(self, shard: str, path: str, expected: str, actual: str):
        super().__init__(
            f"checkpoint shard {shard!r} failed integrity check: manifest "
            f"digest {expected} but file hashes to {actual} ({path}); the "
            "shard is corrupt or was tampered with — restore refused"
        )
        self.shard = shard
        self.path = path
        self.expected = expected
        self.actual = actual


def shard_name(rank: int) -> str:
    """Shard filename of one rank: ``shard_0007.bin`` for rank 7."""
    return f"shard_{rank:04d}.bin"


def step_dirname(step: int) -> str:
    """Checkpoint directory name of one step: ``step_00000042``.

    Zero-padded so lexicographic order equals step order."""
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    return f"step_{step:08d}"


def _digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _le_dtype(dt: np.dtype) -> np.dtype:
    """The little-endian (or endian-free, for 1-byte items) variant."""
    dt = np.dtype(dt)
    if dt.byteorder == ">" or (dt.byteorder == "=" and not _NATIVE_LE):
        return dt.newbyteorder("<")
    return dt


_NATIVE_LE = np.dtype(np.int64).str[0] == "<"


@dataclass(frozen=True)
class ArrayEntry:
    """Location of one named array inside a shard."""

    name: str
    dtype: str   # numpy dtype string, little-endian ('<f8', '|i1', ...)
    shape: tuple
    offset: int  # byte offset into the shard

    @property
    def nbytes(self) -> int:
        """Byte length of the array payload inside the shard."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def to_json(self) -> dict:
        """JSON-serializable dict for the manifest."""
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
        }

    @classmethod
    def from_json(cls, d: dict) -> "ArrayEntry":
        """Inverse of :meth:`to_json`."""
        return cls(
            name=d["name"],
            dtype=d["dtype"],
            shape=tuple(d["shape"]),
            offset=int(d["offset"]),
        )


@dataclass
class ShardInfo:
    """Manifest record of one shard file."""

    file: str
    nbytes: int
    digest: str
    arrays: list  # of ArrayEntry
    #: optional :func:`repro.analysis.sanitize.freeze` token of the
    #: in-memory arrays at snapshot time (REPRO_SANITIZE=1 runs only);
    #: restore re-verifies the parsed arrays against it
    frozen: str | None = None

    def to_json(self) -> dict:
        """JSON-serializable dict for the manifest."""
        out = {
            "file": self.file,
            "nbytes": self.nbytes,
            "blake2b": self.digest,
            "arrays": [a.to_json() for a in self.arrays],
        }
        if self.frozen is not None:
            out["frozen"] = self.frozen
        return out

    @classmethod
    def from_json(cls, d: dict) -> "ShardInfo":
        """Inverse of :meth:`to_json`."""
        return cls(
            file=d["file"],
            nbytes=int(d["nbytes"]),
            digest=d["blake2b"],
            arrays=[ArrayEntry.from_json(a) for a in d["arrays"]],
            frozen=d.get("frozen"),
        )


@dataclass
class Manifest:
    """The checkpoint's self-describing metadata."""

    nranks: int
    step: int
    time: float
    meta: dict = field(default_factory=dict)
    shards: list = field(default_factory=list)  # of ShardInfo, rank order
    version: int = FORMAT_VERSION

    def to_json(self) -> dict:
        """JSON-serializable dict, including format name and version."""
        return {
            "format": FORMAT_NAME,
            "version": self.version,
            "nranks": self.nranks,
            "step": self.step,
            "time": self.time,
            "meta": self.meta,
            "shards": [s.to_json() for s in self.shards],
        }

    @classmethod
    def from_json(cls, d: dict) -> "Manifest":
        """Parse and validate a manifest dict (format name must match,
        version must not be newer than this reader supports)."""
        if d.get("format") != FORMAT_NAME:
            raise ManifestError(
                f"not a {FORMAT_NAME} manifest (format={d.get('format')!r})"
            )
        if int(d.get("version", -1)) > FORMAT_VERSION:
            raise ManifestError(
                f"manifest version {d['version']} is newer than supported "
                f"version {FORMAT_VERSION}"
            )
        return cls(
            nranks=int(d["nranks"]),
            step=int(d["step"]),
            time=float(d["time"]),
            meta=d.get("meta", {}),
            shards=[ShardInfo.from_json(s) for s in d.get("shards", [])],
            version=int(d["version"]),
        )


# -- shard packing -----------------------------------------------------------


def pack_arrays(arrays: dict) -> tuple[bytes, list]:
    """Serialize named arrays to one little-endian buffer.

    Arrays are laid out in sorted-name order (the manifest records the
    offsets, but a deterministic layout keeps digests reproducible for
    identical state regardless of insertion order).  Returns
    ``(payload, entries)``.
    """
    chunks: list[bytes] = []
    entries: list[ArrayEntry] = []
    offset = 0
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        le = _le_dtype(arr.dtype)
        if le != arr.dtype:
            arr = arr.astype(le)
        data = arr.tobytes()
        entries.append(
            ArrayEntry(name=name, dtype=le.str, shape=arr.shape, offset=offset)
        )
        chunks.append(data)
        offset += len(data)
    return b"".join(chunks), entries


def unpack_arrays(payload: bytes, entries: list) -> dict:
    """Rebuild the named arrays of :func:`pack_arrays` from shard bytes."""
    out = {}
    for e in entries:
        raw = payload[e.offset : e.offset + e.nbytes]
        if len(raw) != e.nbytes:
            raise CheckpointError(
                f"array {e.name!r} extends past the end of its shard "
                f"({e.offset}+{e.nbytes} > {len(payload)} bytes)"
            )
        out[e.name] = np.frombuffer(raw, dtype=np.dtype(e.dtype)).reshape(e.shape).copy()
    return out


def write_shard(path: str, arrays: dict, frozen: str | None = None) -> ShardInfo:
    """Write one shard file; returns its manifest record."""
    payload, entries = pack_arrays(arrays)
    with open(path, "wb") as fh:
        fh.write(payload)
    return ShardInfo(
        file=os.path.basename(path),
        nbytes=len(payload),
        digest=_digest(payload),
        arrays=entries,
        frozen=frozen,
    )


def read_shard(directory: str, info: ShardInfo, verify: bool = True) -> dict:
    """Read and (by default) integrity-check one shard.

    Raises :class:`ShardIntegrityError` naming the shard when the bytes
    do not hash to the manifest digest.
    """
    path = os.path.join(directory, info.file)
    with open(path, "rb") as fh:
        payload = fh.read()
    if verify:
        actual = _digest(payload)
        if actual != info.digest:
            raise ShardIntegrityError(info.file, path, info.digest, actual)
    return unpack_arrays(payload, info.arrays)


# -- manifest / directory management ----------------------------------------


def write_manifest(directory: str, manifest: Manifest) -> str:
    """Atomically write ``manifest.json`` into ``directory`` (tmp file +
    ``os.replace``) and return its path."""
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_json(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def read_manifest(directory: str) -> Manifest:
    """Load and validate ``manifest.json`` from ``directory``.

    Raises :class:`ManifestError` if missing, unparsable, or of an
    unsupported version.

    Example::

        m = read_manifest("ckpt/step_00000004")
        [a.name for a in m.shards[0].arrays]
    """
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise ManifestError(f"no {MANIFEST_NAME} in {directory!r}")
    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"unreadable manifest {path!r}: {exc}") from exc
    return Manifest.from_json(data)


def list_checkpoints(root: str) -> list[tuple[int, str]]:
    """Complete checkpoints under ``root`` as sorted ``(step, path)``.

    Only directories matching ``step_NNNNNNNN`` *with a manifest* count —
    in-flight ``.tmp`` staging directories and torn writes are invisible.
    """
    if not os.path.isdir(root):
        return []
    out = []
    for name in sorted(os.listdir(root)):
        m = _STEP_DIR_RE.match(name)
        if not m:
            continue
        path = os.path.join(root, name)
        if os.path.isfile(os.path.join(path, MANIFEST_NAME)):
            out.append((int(m.group(1)), path))
    return out


def latest_checkpoint(root: str) -> str | None:
    """Path of the newest complete checkpoint under ``root`` (or None)."""
    ckpts = list_checkpoints(root)
    return ckpts[-1][1] if ckpts else None


def apply_retention(root: str, keep: int | None) -> list[str]:
    """Delete all but the newest ``keep`` checkpoints; returns removals."""
    if keep is None or keep < 1:
        return []
    removed = []
    for _, path in list_checkpoints(root)[:-keep]:
        shutil.rmtree(path)
        removed.append(path)
    return removed
