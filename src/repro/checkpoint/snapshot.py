"""State capture: driver objects -> rank-sharded checkpoint directories.

Two snapshot flavors, one per time loop:

- :func:`save_pipeline` — collective over the SPMD world of a
  :class:`~repro.amr.pardriver.ParAmrPipeline`.  Each rank shards its
  owned Morton segment of the octree plus the temperature field stored
  as *element-corner values* ``(n_owned, 8)``: node values replicate
  bitwise across the elements sharing them, so scattering corners back
  after an N-rank to M-rank reshard reproduces the node vector exactly.
- :func:`save_convection` — serial :class:`MantleConvection` state in a
  single shard: octree, temperature/velocity/viscosity fields, step and
  time counters, per-cycle diagnostics, and (optionally) the PR-1
  warm-start solver state (previous pressure + the lagged
  preconditioner's reference viscosity, from which the AMG hierarchy is
  rebuilt bitwise on restore).

Both write atomically (stage into ``<dir>.tmp``, rename once the
manifest is down) and prune old checkpoints to the newest ``keep``.
Under ``REPRO_SANITIZE=1`` each shard's in-memory arrays are fingerprinted
with :func:`repro.analysis.sanitize.freeze` and the token is stored in the
manifest for restore-time re-validation.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import asdict

import numpy as np

from .. import obs
from ..analysis.sanitize import maybe_freeze
from .format import (
    Manifest,
    ShardInfo,
    apply_retention,
    shard_name,
    step_dirname,
    write_manifest,
    write_shard,
)

__all__ = ["save_pipeline", "save_convection", "pipeline_shard_arrays", "convection_arrays"]


def _frozen_token(arrays: dict) -> str | None:
    """Sanitize fingerprint over the shard's arrays in layout order."""
    return maybe_freeze([arrays[k] for k in sorted(arrays)])


def pipeline_shard_arrays(pipe) -> dict:
    """This rank's shard: owned octants + element-corner field values."""
    mesh = pipe.pm.mesh
    owned = pipe.pm.owned_elements
    local = pipe.pt.local
    u_full = mesh.expand(pipe.T)
    return {
        "octants/x": local.x,
        "octants/y": local.y,
        "octants/z": local.z,
        "octants/level": local.level,
        "field/T": u_full[mesh.element_nodes[owned]],
    }


def save_pipeline(pipe, root: str, keep: int | None = 2) -> str:
    """Collective snapshot of a ParAmrPipeline; returns the final path.

    Every rank must call this (it gathers shard metadata and barriers);
    rank 0 alone touches the manifest, the atomic rename, and retention.
    Recorded under the ``checkpoint/save`` phase when a
    :mod:`repro.obs` timer is bound.

    Example::

        path = save_pipeline(pipe, "ckpts")   # -> "ckpts/step_000016"
    """
    with obs.phase("checkpoint/save"):
        return _save_pipeline_impl(pipe, root, keep)


def _save_pipeline_impl(pipe, root: str, keep: int | None) -> str:
    comm = pipe.comm
    step = pipe.steps_taken
    final_dir = os.path.join(root, step_dirname(step))
    tmp_dir = final_dir + ".tmp"
    n_global = pipe.pt.global_count()
    if comm.rank == 0:
        os.makedirs(root, exist_ok=True)
        if os.path.isdir(tmp_dir):
            shutil.rmtree(tmp_dir)
        os.makedirs(tmp_dir)
    comm.barrier()

    arrays = pipeline_shard_arrays(pipe)
    info = write_shard(
        os.path.join(tmp_dir, shard_name(comm.rank)),
        arrays,
        frozen=_frozen_token(arrays),
    )
    infos = comm.gather(info.to_json(), root=0)

    if comm.rank == 0:
        manifest = Manifest(
            nranks=comm.size,
            step=step,
            time=pipe.sim_time,
            meta={
                "kind": "par_amr",
                "n_global": n_global,
                "steps_taken": pipe.steps_taken,
                "cycles_done": pipe.cycles_done,
                "min_level": pipe.min_level,
                "max_level": pipe.max_level,
                "connectivity": pipe.connectivity,
                "fields": ["T"],
            },
            shards=[ShardInfo.from_json(d) for d in infos],
        )
        write_manifest(tmp_dir, manifest)
        if os.path.isdir(final_dir):
            shutil.rmtree(final_dir)
        os.replace(tmp_dir, final_dir)
        apply_retention(root, keep)
    comm.barrier()
    return final_dir


def convection_arrays(sim, include_solver_state: bool = True) -> dict:
    """The single-shard array set of a MantleConvection instance."""
    mesh = sim.mesh
    leaves = mesh.leaves
    arrays = {
        "octants/x": leaves.x,
        "octants/y": leaves.y,
        "octants/z": leaves.z,
        "octants/level": leaves.level,
        "field/T": sim.T,
        "field/u": sim.u,
        "state/eta_elem": sim.eta_elem,
        "state/edot_elem": sim.edot_elem,
    }
    if include_solver_state:
        if sim._p_prev is not None and sim._p_prev_mesh is mesh:
            arrays["solver/p_prev"] = sim._p_prev
        if sim._prec_lag is not None and sim._prec_lag._eta_ref is not None:
            arrays["solver/prec_eta_ref"] = sim._prec_lag._eta_ref
    return arrays


def save_convection(
    sim, root: str, keep: int | None = 2, include_solver_state: bool = True,
    extra_meta: dict | None = None,
) -> str:
    """Serial snapshot of a MantleConvection run; returns the final path.

    ``extra_meta`` (JSON-serializable) is stored verbatim under
    ``meta["extra"]`` in the manifest — the fleet service stamps each
    per-job snapshot namespace with its job id / tenant there, and
    verifies the stamp on resume to guard against cross-job restores.
    Recorded under the ``checkpoint/save`` phase when a
    :mod:`repro.obs` timer is bound.

    Example::

        path = save_convection(sim, "ckpts", include_solver_state=True)
    """
    with obs.phase("checkpoint/save"):
        return _save_convection_impl(
            sim, root, keep, include_solver_state, extra_meta
        )


def _save_convection_impl(
    sim, root: str, keep: int | None, include_solver_state: bool,
    extra_meta: dict | None = None,
) -> str:
    cfg = sim.config
    step = sim.step_count
    final_dir = os.path.join(root, step_dirname(step))
    tmp_dir = final_dir + ".tmp"
    os.makedirs(root, exist_ok=True)
    if os.path.isdir(tmp_dir):
        shutil.rmtree(tmp_dir)
    os.makedirs(tmp_dir)

    arrays = convection_arrays(sim, include_solver_state)
    info = write_shard(
        os.path.join(tmp_dir, shard_name(0)),
        arrays,
        frozen=_frozen_token(arrays),
    )
    manifest = Manifest(
        nranks=1,
        step=step,
        time=sim.sim_time,
        meta={
            "kind": "convection",
            "n_elements": sim.mesh.n_elements,
            "history": [asdict(d) for d in sim.history],
            "config": {
                "Ra": cfg.Ra,
                "domain": list(np.asarray(cfg.domain, dtype=np.float64)),
                "adapt_every": cfg.adapt_every,
                "velocity_bc": cfg.velocity_bc,
            },
            "fields": ["T", "u"],
            **({"extra": extra_meta} if extra_meta is not None else {}),
        },
        shards=[info],
    )
    write_manifest(tmp_dir, manifest)
    if os.path.isdir(final_dir):
        shutil.rmtree(final_dir)
    os.replace(tmp_dir, final_dir)
    apply_retention(root, keep)
    return final_dir
