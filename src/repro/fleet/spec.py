"""Scenario specifications and admission-time validation.

A :class:`ScenarioSpec` is the serializable unit of work the fleet
service accepts: the physical parameters the SC'08 parameter studies
vary (Rayleigh number, viscosity law, yield stress), the mesh levels,
the run length, and the scheduling metadata (tenant, priority,
deadline).  Validation is *eager* — :meth:`ScenarioSpec.validate`
collects every violated constraint into a :class:`SpecError` at
admission, and :meth:`ScenarioSpec.to_config` additionally runs the
spec through :class:`repro.rhea.RheaConfig`'s own ``__post_init__``
checks — so a bad spec is rejected before it ever touches a mesh.

Specs round-trip through JSON (:meth:`to_json` / :meth:`from_json`):
the viscosity *law* is named, not pickled, so a fleet manifest written
at preemption can be re-admitted by a later process on any rank count.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Callable

import numpy as np

from ..rhea import ArrheniusViscosity, RheaConfig, YieldingViscosity
from ..rhea.convection import conductive_profile

__all__ = ["ScenarioSpec", "SpecError", "VISCOSITY_LAWS"]

#: admissible viscosity-law names -> constructor from a spec
VISCOSITY_LAWS = ("arrhenius", "yielding")


class SpecError(ValueError):
    """Structured admission failure: ``errors`` lists every
    ``(field, message)`` pair violated by the spec."""

    def __init__(self, job_id, errors: list):
        self.job_id = job_id
        self.errors = list(errors)
        detail = "; ".join(f"{f}: {m}" for f, m in self.errors)
        super().__init__(f"invalid ScenarioSpec {job_id!r}: {detail}")


def _is_finite(v) -> bool:
    try:
        return bool(np.isfinite(float(v)))
    except (TypeError, ValueError):
        return False


@dataclass(frozen=True)
class ScenarioSpec:
    """One tenant scenario: physics, mesh, run length, scheduling.

    ``seed`` deterministically perturbs the initial temperature so a
    parameter study's members decorrelate; ``priority`` (higher first),
    ``deadline`` (earliest-deadline-first tiebreak, abstract units) and
    ``tenant`` (fair-share accounting key) drive the scheduler.
    ``adapt_cycles > 0`` lets the job adapt its mesh every that many
    cycles, after which it leaves its batch group (structure changed)
    and is regrouped.
    """

    job_id: str
    tenant: str = "default"
    Ra: float = 1e5
    viscosity_law: str = "arrhenius"
    eta0: float = 1.0
    activation_energy: float = 0.0
    yield_stress: float | None = None
    initial_level: int = 2
    max_level: int = 4
    cycles: int = 2
    adapt_cycles: int = 0
    seed: int = 0
    priority: int = 0
    deadline: float | None = None
    domain: tuple = (1.0, 1.0, 1.0)
    kappa: float = 1.0
    cfl: float = 0.4
    adapt_every: int = 4
    picard_iterations: int = 2
    picard_tol: float = 1e-2
    stokes_tol: float = 1e-6
    stokes_maxiter: int = 500

    # -- validation -----------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Collect every constraint violation; raise :class:`SpecError`
        if any, else return ``self`` (chainable at admission)."""
        errors: list[tuple[str, str]] = []
        if not isinstance(self.job_id, str) or not self.job_id:
            errors.append(("job_id", f"must be a non-empty string, got {self.job_id!r}"))
        elif "/" in self.job_id or self.job_id != self.job_id.strip():
            errors.append((
                "job_id",
                f"must not contain '/' or surrounding whitespace, got {self.job_id!r}",
            ))
        if not isinstance(self.tenant, str) or not self.tenant:
            errors.append(("tenant", f"must be a non-empty string, got {self.tenant!r}"))
        if self.viscosity_law not in VISCOSITY_LAWS:
            opts = " or ".join(repr(v) for v in VISCOSITY_LAWS)
            errors.append(("viscosity_law", f"must be {opts}, got {self.viscosity_law!r}"))
        if not _is_finite(self.Ra) or float(self.Ra) < 0:
            errors.append(("Ra", f"must be a finite number >= 0, got {self.Ra!r}"))
        if not _is_finite(self.eta0) or float(self.eta0) <= 0:
            errors.append(("eta0", f"must be > 0, got {self.eta0!r}"))
        if self.viscosity_law == "yielding":
            if self.yield_stress is not None and (
                not _is_finite(self.yield_stress) or float(self.yield_stress) <= 0
            ):
                errors.append(("yield_stress", f"must be > 0, got {self.yield_stress!r}"))
        elif self.yield_stress is not None:
            errors.append((
                "yield_stress",
                "only meaningful for viscosity_law='yielding'",
            ))
        if not isinstance(self.cycles, (int, np.integer)) or self.cycles < 1:
            errors.append(("cycles", f"must be an integer >= 1, got {self.cycles!r}"))
        if not isinstance(self.adapt_cycles, (int, np.integer)) or self.adapt_cycles < 0:
            errors.append(("adapt_cycles", f"must be an integer >= 0, got {self.adapt_cycles!r}"))
        if not isinstance(self.priority, (int, np.integer)):
            errors.append(("priority", f"must be an integer, got {self.priority!r}"))
        if self.deadline is not None and (
            not _is_finite(self.deadline) or float(self.deadline) <= 0
        ):
            errors.append(("deadline", f"must be > 0 (or None), got {self.deadline!r}"))
        if errors:
            raise SpecError(self.job_id, errors)
        return self

    # -- materialization ------------------------------------------------

    def viscosity(self):
        """Instantiate the named viscosity law."""
        if self.viscosity_law == "yielding":
            kw = {} if self.yield_stress is None else {"sigma_y": float(self.yield_stress)}
            return YieldingViscosity(E=float(self.activation_energy) or 6.9, **kw)
        return ArrheniusViscosity(eta0=float(self.eta0), E=float(self.activation_energy))

    def to_config(self) -> RheaConfig:
        """Materialize the :class:`RheaConfig` (running its eager
        validation too — :class:`repro.rhea.ConfigError` propagates)."""
        self.validate()
        return RheaConfig(
            Ra=float(self.Ra),
            domain=tuple(self.domain),
            kappa=float(self.kappa),
            viscosity=self.viscosity(),
            initial_level=int(self.initial_level),
            min_level=min(1, int(self.initial_level)),
            max_level=int(self.max_level),
            adapt_every=int(self.adapt_every),
            cfl=float(self.cfl),
            picard_iterations=int(self.picard_iterations),
            picard_tol=float(self.picard_tol),
            stokes_tol=float(self.stokes_tol),
            stokes_maxiter=int(self.stokes_maxiter),
        )

    def t_init(self) -> Callable[[np.ndarray], np.ndarray]:
        """Seed-perturbed initial temperature: the conductive profile
        with a deterministic seed-dependent perturbation amplitude, so
        study members decorrelate reproducibly."""
        frac = (int(self.seed) * 2654435761 % 1000) / 1000.0
        amp = 0.03 + 0.04 * frac
        domain = tuple(self.domain)
        return lambda c: conductive_profile(c, perturbation=amp, domain=domain)

    # -- serialization --------------------------------------------------

    def to_json(self) -> dict:
        """Plain-dict form (JSON-serializable; laws are named)."""
        d = asdict(self)
        d["domain"] = list(self.domain)
        return d

    @classmethod
    def from_json(cls, d: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - names)
        if unknown:
            raise SpecError(d.get("job_id"), [(k, "unknown field") for k in unknown])
        kw = dict(d)
        if "domain" in kw:
            kw["domain"] = tuple(kw["domain"])
        return cls(**kw)


# keep `field` imported for dataclass consumers extending specs
_ = field
