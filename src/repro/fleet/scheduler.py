"""Cooperative fleet scheduling: jobs, queues, and group selection.

The fleet runs many tenants' scenarios through one process without
threads: the :class:`~repro.fleet.service.FleetService` is generator /
step-driven, and this module supplies the *policy* — which jobs form the
next lockstep batch group, and how consumed quanta are charged back.

Selection is three-keyed, applied in order:

1. **priority** (higher first) — a tenant's own urgency knob;
2. **fair share** — among equal priorities, the tenant with the least
   consumed scheduling quanta goes first, so a tenant submitting 100
   scenarios cannot starve one submitting 2;
3. **deadline** (earliest first, ``None`` = never urgent), then
   admission order as the final deterministic tiebreak.

The top-ranked runnable job *leads* the quantum; every other runnable
job sharing its interned mesh object joins the batch group (lockstep
batching is only sound across identical structures), so the group is as
wide as the registry allows without violating the ranking of the lead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .spec import ScenarioSpec

__all__ = ["FleetJob", "FleetScheduler", "RUNNABLE_STATES"]

#: states from which a job can be picked into a batch group
RUNNABLE_STATES = ("queued", "running", "preempted")


@dataclass
class FleetJob:
    """One admitted scenario's runtime record: spec, live sim, status.

    ``status`` walks ``queued -> running -> done`` (with ``preempted``
    between ``running`` states across a budget exhaustion, and
    ``failed`` terminal on admission-time materialization errors).
    ``quanta`` counts consumed scheduler quanta — the fair-share
    currency.
    """

    spec: ScenarioSpec
    sim: object | None = None  # MantleConvection, attached at first run
    status: str = "queued"
    cycles_done: int = 0
    seq: int = 0
    quanta: int = 0
    error: str | None = None
    checkpoint_dir: str | None = None
    extras: dict = field(default_factory=dict)

    @property
    def job_id(self) -> str:
        """The spec's job id (the checkpoint-namespace key)."""
        return self.spec.job_id

    @property
    def tenant(self) -> str:
        """The spec's tenant (the fair-share accounting key)."""
        return self.spec.tenant

    @property
    def remaining(self) -> int:
        """Cycles still owed to this job."""
        return max(int(self.spec.cycles) - self.cycles_done, 0)

    @property
    def runnable(self) -> bool:
        """True when the job can join a batch group this quantum."""
        return self.status in RUNNABLE_STATES and self.remaining > 0


class FleetScheduler:
    """Pure scheduling policy over a set of :class:`FleetJob` records.

    Holds only the fair-share ledger (per-tenant consumed quanta); the
    job list itself lives in the service.  Deterministic: identical
    admission sequences and charges produce identical group choices.

    Example::

        sched = FleetScheduler()
        group = sched.select(jobs)     # lockstep group for the quantum
        sched.charge(group)            # bill one quantum to each member
    """

    def __init__(self):
        self.tenant_quanta: dict[str, int] = {}

    def rank_key(self, job: FleetJob):
        """Sort key implementing priority > fair share > EDF > seq."""
        deadline = (
            float(job.spec.deadline)
            if job.spec.deadline is not None
            else math.inf
        )
        return (
            -int(job.spec.priority),
            self.tenant_quanta.get(job.tenant, 0),
            deadline,
            job.seq,
        )

    def select(self, jobs: list[FleetJob]) -> list[FleetJob]:
        """The next quantum's batch group (empty when nothing is runnable).

        The best-ranked runnable job leads; every runnable job whose sim
        shares the lead's mesh *object* joins (identity, not structural
        equality — the registry interns structures, so identity is the
        sound lockstep criterion).  Group order is admission order, so
        batch column layout is stable across quanta.
        """
        runnable = [j for j in jobs if j.runnable and j.sim is not None]
        if not runnable:
            return []
        lead = min(runnable, key=self.rank_key)
        mesh = lead.sim.mesh
        return sorted(
            (j for j in runnable if j.sim.mesh is mesh),
            key=lambda j: j.seq,
        )

    def charge(self, group: list[FleetJob]) -> None:
        """Bill one scheduling quantum to each group member's tenant."""
        for job in group:
            job.quanta += 1
            self.tenant_quanta[job.tenant] = (
                self.tenant_quanta.get(job.tenant, 0) + 1
            )
