"""The fleet service: admission, mesh interning, quanta, preemption.

:class:`FleetService` is the front door of the multi-tenant runner: it
admits :class:`~repro.fleet.spec.ScenarioSpec` jobs (eager validation —
a bad spec never touches a mesh), interns their meshes through a
:class:`MeshRegistry` so same-structure tenants share one
:class:`~repro.mesh.Mesh` object (and therefore one operator cache and
one batch group), and serves cooperative scheduling quanta: each
:meth:`~FleetService.step` runs one lockstep
:meth:`~repro.fleet.batch.BatchGroup.cycle` for the group the
:class:`~repro.fleet.scheduler.FleetScheduler` picks.  No threads — the
:meth:`~FleetService.ticks` generator yields between quanta, in the
style of the repo's simulated-SPMD drivers.

Preemption is checkpoint-based, mirroring the ``arm_fault`` discipline
of :mod:`repro.parallel.simcomm`: :meth:`~FleetService.arm_budget` arms
a quantum budget; when it exhausts, every started job is snapshotted
into its own namespace ``<root>/<job_id>/`` (stamped with job id and
tenant via ``extra_meta``) and the fleet manifest ``<root>/fleet.json``
records specs and statuses.  :meth:`FleetService.resume` rebuilds the
whole fleet from that manifest — restored meshes re-intern, so resumed
tenants batch together again — and the deterministic per-cycle solver
schedule makes the resumed diagnostics reproduce the uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import numpy as np

from .. import obs
from ..checkpoint import resolve_checkpoint, restore_convection, save_convection
from ..checkpoint.format import CheckpointError, read_manifest
from ..mesh import extract_mesh
from ..mesh.opcache import operator_cache
from ..octree import LinearOctree
from ..rhea.convection import MantleConvection
from .accounting import FleetAccountant, JobLedger
from .batch import BatchGroup
from .scheduler import FleetJob, FleetScheduler
from .spec import ScenarioSpec, SpecError

__all__ = ["MeshRegistry", "FleetService"]

FLEET_MANIFEST = "fleet.json"


class MeshRegistry:
    """Interns meshes by octree structure so tenants share objects.

    Mesh extraction is deterministic, so two meshes with identical leaf
    octants and domain have identical node numbering — interning them to
    one object is value-transparent and is what makes cross-tenant
    operator-cache sharing and lockstep batching sound (both key on mesh
    *identity*).  ``shared``/``built`` count interning hits and distinct
    structures built, the cache-efficiency counters the fleet tests pin.

    Example::

        reg = MeshRegistry()
        m1 = reg.uniform(cfg_a)     # built
        m2 = reg.uniform(cfg_b)     # same level/domain -> m2 is m1
    """

    def __init__(self):
        self._by_key: dict[str, object] = {}
        self._uniform: dict[tuple, object] = {}
        self.shared = 0
        self.built = 0

    @staticmethod
    def structure_key(mesh) -> str:
        """Digest of the leaf octants + domain (the batching identity)."""
        h = hashlib.blake2b(digest_size=16)
        lv = mesh.leaves
        for arr in (lv.x, lv.y, lv.z, lv.level):
            h.update(np.ascontiguousarray(arr).tobytes())
        h.update(np.asarray(mesh.domain, dtype=np.float64).tobytes())
        return h.hexdigest()

    def uniform(self, cfg):
        """The interned uniform mesh for a config's initial level/domain."""
        key = (
            int(cfg.initial_level),
            tuple(float(d) for d in cfg.domain),
            cfg.face_algorithm,
        )
        if key in self._uniform:
            self.shared += 1
            return self._uniform[key]
        tree = LinearOctree.uniform(cfg.initial_level)
        mesh = extract_mesh(tree, cfg.domain, face_algorithm=cfg.face_algorithm)
        self._uniform[key] = mesh
        self._by_key[self.structure_key(mesh)] = mesh
        self.built += 1
        return mesh

    def intern(self, mesh):
        """The canonical mesh of this structure (registering if new).

        Used after adaptation or restore: if another tenant already holds
        a structurally identical mesh, the caller should swap to the
        returned canonical object so the two batch together again.
        """
        key = self.structure_key(mesh)
        found = self._by_key.get(key)
        if found is not None:
            if found is not mesh:
                self.shared += 1
            return found
        self._by_key[key] = mesh
        self.built += 1
        return mesh


class FleetService:
    """Multi-tenant scenario runner over shared batched kernels.

    Example::

        svc = FleetService(root="fleet_state")
        for spec in specs:
            svc.admit(spec)
        svc.arm_budget(3)          # preempt-to-checkpoint after 3 quanta
        svc.run()                  # serve until preempted or drained
        svc = FleetService.resume("fleet_state")
        svc.run()                  # finish; diagnostics match uninterrupted
    """

    def __init__(self, root: str | None = None, keep_checkpoints: int | None = 2):
        self.root = root
        self.keep_checkpoints = keep_checkpoints
        self.registry = MeshRegistry()
        self.scheduler = FleetScheduler()
        self.accountant = FleetAccountant()
        self.jobs: dict[str, FleetJob] = {}
        self._seq = 0
        self._budget: int | None = None
        self.quanta_served = 0

    # -- admission ------------------------------------------------------

    def admit(self, spec: ScenarioSpec) -> FleetJob:
        """Validate and materialize a scenario; raises
        :class:`~repro.fleet.spec.SpecError` /
        :class:`~repro.rhea.ConfigError` with *every* violated field
        before any state is created."""
        spec.validate()
        if spec.job_id in self.jobs:
            raise SpecError(spec.job_id, [("job_id", "already admitted")])
        cfg = spec.to_config()
        job = FleetJob(spec=spec, seq=self._seq)
        self._seq += 1
        job.sim = MantleConvection(cfg, spec.t_init(), mesh=self.registry.uniform(cfg))
        self.jobs[spec.job_id] = job
        return job

    # -- quanta ---------------------------------------------------------

    def arm_budget(self, quanta: int) -> None:
        """Preempt the whole fleet to checkpoints after ``quanta`` more
        served quanta (the scheduling analogue of ``arm_fault``)."""
        if quanta < 1:
            raise ValueError("budget must be >= 1 quantum")
        self._budget = int(quanta)

    def step(self) -> bool:
        """Serve one quantum: pick a group, run one lockstep cycle, bill
        it.  Returns False when nothing is runnable (drained or fully
        preempted)."""
        group = self.scheduler.select(list(self.jobs.values()))
        if not group:
            return False
        sims = [j.sim for j in group]
        cache = operator_cache(sims[0].mesh)
        h0, m0 = cache.hits, cache.misses
        t0 = time.perf_counter()
        bg = BatchGroup(sims)
        diags = bg.cycle()
        wall = time.perf_counter() - t0
        self.scheduler.charge(group)
        self.accountant.charge_cycle(
            group, diags, bg.mesh.n_elements, wall,
            cache.hits - h0, cache.misses - m0,
        )
        for job in group:
            job.cycles_done += 1
            job.status = "done" if job.remaining == 0 else "running"
            if (
                job.status == "running"
                and job.spec.adapt_cycles
                and job.cycles_done % job.spec.adapt_cycles == 0
            ):
                self._adapt(job)
        self.quanta_served += 1
        if self._budget is not None:
            self._budget -= 1
            if self._budget <= 0:
                self.preempt_all()
        return True

    def ticks(self):
        """Cooperative driver: yields ``quanta_served`` after each
        quantum; iterate to interleave fleet progress with other work."""
        while self.step():
            yield self.quanta_served

    def run(self, max_quanta: int | None = None) -> int:
        """Serve quanta until drained/preempted (or ``max_quanta``);
        returns the number served by this call."""
        n = 0
        while (max_quanta is None or n < max_quanta) and self.step():
            n += 1
        return n

    def _adapt(self, job: FleetJob) -> None:
        """Per-job mesh adaptation (tagged to the job in the obs stream),
        then re-intern: the job leaves its old batch group and joins — or
        founds — the group of its new structure.  Other tenants on the
        old mesh are untouched (structural invalidation is per-job)."""
        with obs.phase(f"fleet/job:{job.job_id}/amr"):
            job.sim.adapt()
        canonical = self.registry.intern(job.sim.mesh)
        if canonical is not job.sim.mesh:
            # deterministic extraction: identical structure implies
            # identical numbering, so fields transfer verbatim
            job.sim.mesh = canonical

    # -- preemption / resume --------------------------------------------

    def preempt_all(self) -> None:
        """Snapshot every started job into ``<root>/<job_id>/`` and mark
        runnable ones preempted; writes the fleet manifest."""
        if self.root is None:
            raise ValueError("preemption requires a service root directory")
        self._budget = None
        for job in self.jobs.values():
            if job.sim is None or job.cycles_done == 0:
                continue  # unstarted: the spec alone reconstructs it
            with obs.phase(f"fleet/job:{job.job_id}/checkpoint"):
                job.checkpoint_dir = save_convection(
                    job.sim,
                    os.path.join(self.root, job.job_id),
                    keep=self.keep_checkpoints,
                    extra_meta={
                        "job_id": job.job_id,
                        "tenant": job.tenant,
                        "cycles_done": job.cycles_done,
                    },
                )
            if job.status != "done":
                job.status = "preempted"
                self.accountant.charge_preemption(job)
            job.sim = None  # state now lives in the snapshot
        self.save_manifest()

    def save_manifest(self) -> None:
        """Atomically persist specs + statuses to ``<root>/fleet.json``."""
        if self.root is None:
            raise ValueError("fleet manifest requires a service root directory")
        os.makedirs(self.root, exist_ok=True)
        ordered = sorted(self.jobs.values(), key=lambda j: j.seq)
        state = {
            "specs": [j.spec.to_json() for j in ordered],
            "status": {
                j.job_id: {
                    "status": j.status,
                    "cycles_done": j.cycles_done,
                    "quanta": j.quanta,
                }
                for j in ordered
            },
            "tenant_quanta": dict(self.scheduler.tenant_quanta),
            "quanta_served": self.quanta_served,
            # ledgers ride along so a resumed fleet's usage reports cover
            # the whole job lifetime, not just the post-resume cycles
            "accounting": self.accountant.json_report()["jobs"],
        }
        path = os.path.join(self.root, FLEET_MANIFEST)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(state, f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)

    @classmethod
    def resume(cls, root: str) -> "FleetService":
        """Rebuild a preempted fleet from ``<root>/fleet.json``.

        Preempted/done jobs restore from their per-job checkpoint
        namespaces (verifying the ``extra_meta`` job-id/tenant stamp —
        a cross-job restore is a hard error); unstarted jobs re-admit
        from their specs.  Restored meshes re-intern so same-structure
        tenants batch together again.
        """
        svc = cls(root=root)
        with open(os.path.join(root, FLEET_MANIFEST)) as f:
            state = json.load(f)
        svc.scheduler.tenant_quanta = {
            k: int(v) for k, v in state.get("tenant_quanta", {}).items()
        }
        svc.quanta_served = int(state.get("quanta_served", 0))
        for jid, led in state.get("accounting", {}).items():
            svc.accountant.ledgers[jid] = JobLedger(**led)
        for d in state["specs"]:
            spec = ScenarioSpec.from_json(d).validate()
            st = state["status"][spec.job_id]
            ckpt_root = os.path.join(root, spec.job_id)
            if st["cycles_done"] > 0 and os.path.isdir(ckpt_root):
                job = FleetJob(spec=spec, seq=svc._seq)
                svc._seq += 1
                job.status = st["status"]
                job.cycles_done = int(st["cycles_done"])
                job.quanta = int(st.get("quanta", 0))
                job.sim = svc._restore_job_sim(spec, ckpt_root)
                svc.jobs[spec.job_id] = job
            else:
                job = svc.admit(spec)
                job.status = st["status"]
                job.quanta = int(st.get("quanta", 0))
        return svc

    def _restore_job_sim(self, spec: ScenarioSpec, ckpt_root: str):
        """Restore one job's sim, verify its namespace stamp, intern."""
        extra = (read_manifest(resolve_checkpoint(ckpt_root)).meta or {}).get(
            "extra"
        ) or {}
        if extra.get("job_id", spec.job_id) != spec.job_id:
            raise CheckpointError(
                f"checkpoint under {ckpt_root!r} is stamped for job "
                f"{extra.get('job_id')!r}, not {spec.job_id!r} — refusing "
                "a cross-job restore"
            )
        if extra.get("tenant", spec.tenant) != spec.tenant:
            raise CheckpointError(
                f"checkpoint under {ckpt_root!r} is stamped for tenant "
                f"{extra.get('tenant')!r}, not {spec.tenant!r}"
            )
        with obs.phase(f"fleet/job:{spec.job_id}/restore"):
            sim = restore_convection(ckpt_root, config=spec.to_config())
        canonical = self.registry.intern(sim.mesh)
        if canonical is not sim.mesh:
            if sim._p_prev_mesh is sim.mesh:
                sim._p_prev_mesh = canonical
            sim.mesh = canonical
        return sim

    # -- introspection --------------------------------------------------

    def statuses(self) -> dict[str, str]:
        """``{job_id: status}`` snapshot."""
        return {j.job_id: j.status for j in self.jobs.values()}

    def report(self, md_path: str | None = None, json_path: str | None = None):
        """Finalize accounting (folding job-tagged obs phases from the
        bound timer, if any) and return / optionally write the reports."""
        timer = obs.active()
        if timer is not None:
            self.accountant.merge_obs(timer.results())
        if md_path is not None and json_path is not None:
            self.accountant.write_reports(md_path, json_path)
        return self.accountant.json_report()
