"""repro.fleet — multi-tenant batched scenario service (DESIGN.md 4g).

The paper's Sec. VI production campaigns sweep parameters (Rayleigh
number, yield stress, activation energy) across many scenario runs; this
package turns the serial one-scenario loop into a multi-tenant *fleet*
that advances same-mesh-structure scenarios in lockstep through the
batched matrix-free kernels:

- :mod:`repro.fleet.spec` — :class:`ScenarioSpec`: the serializable,
  eagerly validated admission unit (physics + levels + scheduling).
- :mod:`repro.fleet.batch` — :func:`batched_minres` and
  :class:`BatchGroup`: the batch-axis engine (one wide GEMM advances
  ``B`` tenants; per-job convergence masks; shared AMG with per-column
  viscosity-scale correction).
- :mod:`repro.fleet.scheduler` — priority + fair-share + deadline group
  selection over :class:`FleetJob` records.
- :mod:`repro.fleet.service` — :class:`FleetService` (admission, quanta,
  checkpoint-based preempt/resume) and :class:`MeshRegistry` (structure
  interning for cross-tenant operator-cache sharing).
- :mod:`repro.fleet.accounting` — per-tenant metering and reports.

Quick use::

    from repro import fleet

    svc = fleet.FleetService(root="fleet_state")
    for i in range(16):
        svc.admit(fleet.ScenarioSpec(job_id=f"j{i}", Ra=1e4 * (i + 1)))
    svc.run()
    print(svc.accountant.markdown_report())
"""

from .accounting import FleetAccountant, JobLedger
from .batch import BatchedMinresResult, BatchGroup, batched_minres
from .scheduler import FleetJob, FleetScheduler
from .service import FleetService, MeshRegistry
from .spec import ScenarioSpec, SpecError

__all__ = [
    "ScenarioSpec",
    "SpecError",
    "BatchGroup",
    "BatchedMinresResult",
    "batched_minres",
    "FleetJob",
    "FleetScheduler",
    "FleetAccountant",
    "JobLedger",
    "FleetService",
    "MeshRegistry",
]
