"""Per-tenant metering: job ledgers and usage reports.

Every fleet quantum advances a *group* of tenants through shared
kernels, so attribution needs a policy.  The accountant uses the work
counters the solvers already report per job — MINRES iterations, Picard
passes, advection steps — and prices them with the analytic per-apply
flop counts of the matrix-free kernels
(:func:`repro.fem.matfree.saddle_apply_flops` /
:func:`~repro.fem.matfree.advection_apply_flops`), so a tenant whose
stiff rheology needs 3x the iterations is billed 3x the flops even
though the wall clock ran once for the whole group.  Batch wall time and
operator-cache hits are split evenly across the group (they are true
shared costs); communication bytes are zero in this serial offline
reproduction and the field is kept so paper-scale SPMD runs can fill it
from :class:`~repro.parallel.stats.CommStats`.

Job-id-tagged observability phases (``fleet/job:<id>/...``, grouped by
:func:`repro.obs.job_phases`) carry the per-job *exclusive* operations —
checkpoint saves, restores — and are merged into the ledger walls.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..fem.matfree import advection_apply_flops, saddle_apply_flops
from ..obs import job_phases

__all__ = ["JobLedger", "FleetAccountant"]


@dataclass
class JobLedger:
    """Accumulated usage of one job across its whole fleet lifetime."""

    job_id: str
    tenant: str
    cycles: int = 0
    minres_iterations: int = 0
    picard_iterations: int = 0
    advection_steps: int = 0
    wall_s: float = 0.0  # evenly-split share of group wall time
    exclusive_wall_s: float = 0.0  # job-tagged phases (checkpoint etc.)
    flops: float = 0.0  # attributed by per-job iteration counts
    comm_bytes: float = 0.0  # serial offline: 0 (kept for SPMD runs)
    cache_hits: float = 0.0  # evenly-split share of shared-cache hits
    cache_misses: float = 0.0
    preemptions: int = 0


class FleetAccountant:
    """Meters jobs as the service advances them and renders reports.

    Example::

        acct = FleetAccountant()
        acct.charge_cycle(group, diags, mesh.n_elements, wall, hits, misses)
        print(acct.markdown_report())
    """

    def __init__(self):
        self.ledgers: dict[str, JobLedger] = {}

    def ledger(self, job_id: str, tenant: str) -> JobLedger:
        """The (created-on-first-use) ledger of a job."""
        if job_id not in self.ledgers:
            self.ledgers[job_id] = JobLedger(job_id=job_id, tenant=tenant)
        return self.ledgers[job_id]

    # -- charging -------------------------------------------------------

    def charge_cycle(
        self,
        group: list,
        diags: list,
        n_elements: int,
        wall_s: float,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        """Bill one lockstep cycle: per-job work counters price the
        flops; shared wall time and cache traffic split evenly."""
        nb = max(len(group), 1)
        for job, d in zip(group, diags):
            led = self.ledger(job.job_id, job.tenant)
            led.cycles += 1
            led.minres_iterations += d.minres_iterations
            led.picard_iterations += d.picard_iterations
            steps = int(job.spec.adapt_every)
            led.advection_steps += steps
            led.wall_s += wall_s / nb
            # one saddle apply per MINRES iteration; Heun takes two
            # advection applies per step
            led.flops += saddle_apply_flops(n_elements) * d.minres_iterations
            led.flops += 2 * advection_apply_flops(n_elements) * steps
            led.cache_hits += cache_hits / nb
            led.cache_misses += cache_misses / nb

    def charge_preemption(self, job) -> None:
        """Record a budget-exhaustion snapshot of a job."""
        self.ledger(job.job_id, job.tenant).preemptions += 1

    def merge_obs(self, results: dict) -> None:
        """Fold job-id-tagged phase walls (``fleet/job:<id>/...``) from a
        :meth:`~repro.obs.timer.PhaseTimer.results` dict into the
        ledgers' exclusive wall time."""
        for job_id, phases in job_phases(results).items():
            if job_id not in self.ledgers:
                continue
            led = self.ledgers[job_id]
            roots = [p for p in phases if "/" not in p and p]
            led.exclusive_wall_s += sum(
                phases[p].get("wall_s", 0.0) for p in (roots or phases)
            )

    # -- reporting ------------------------------------------------------

    def tenant_totals(self) -> dict[str, dict]:
        """Per-tenant sums over that tenant's job ledgers."""
        out: dict[str, dict] = {}
        for led in self.ledgers.values():
            t = out.setdefault(
                led.tenant,
                {
                    "jobs": 0,
                    "cycles": 0,
                    "minres_iterations": 0,
                    "advection_steps": 0,
                    "wall_s": 0.0,
                    "exclusive_wall_s": 0.0,
                    "flops": 0.0,
                    "comm_bytes": 0.0,
                    "cache_hits": 0.0,
                    "preemptions": 0,
                },
            )
            t["jobs"] += 1
            t["cycles"] += led.cycles
            t["minres_iterations"] += led.minres_iterations
            t["advection_steps"] += led.advection_steps
            t["wall_s"] += led.wall_s
            t["exclusive_wall_s"] += led.exclusive_wall_s
            t["flops"] += led.flops
            t["comm_bytes"] += led.comm_bytes
            t["cache_hits"] += led.cache_hits
            t["preemptions"] += led.preemptions
        return out

    def json_report(self) -> dict:
        """Machine-readable report: per-job ledgers + per-tenant totals."""
        return {
            "jobs": {jid: asdict(led) for jid, led in sorted(self.ledgers.items())},
            "tenants": self.tenant_totals(),
        }

    def markdown_report(self, title: str = "Fleet usage") -> str:
        """Per-tenant and per-job usage tables (the billing view)."""
        lines = [
            f"## {title}",
            "",
            "| Tenant | jobs | cycles | minres iters | wall s | GF | "
            "cache hits | preemptions |",
            "|---|---:|---:|---:|---:|---:|---:|---:|",
        ]
        for tenant, t in sorted(self.tenant_totals().items()):
            lines.append(
                f"| {tenant} | {t['jobs']} | {t['cycles']} "
                f"| {t['minres_iterations']} "
                f"| {t['wall_s'] + t['exclusive_wall_s']:.3f} "
                f"| {t['flops'] / 1e9:.3f} | {t['cache_hits']:.1f} "
                f"| {t['preemptions']} |"
            )
        lines += [
            "",
            "| Job | tenant | cycles | minres | picard | adv steps "
            "| wall s | GF |",
            "|---|---|---:|---:|---:|---:|---:|---:|",
        ]
        for jid, led in sorted(self.ledgers.items()):
            lines.append(
                f"| {jid} | {led.tenant} | {led.cycles} "
                f"| {led.minres_iterations} | {led.picard_iterations} "
                f"| {led.advection_steps} "
                f"| {led.wall_s + led.exclusive_wall_s:.3f} "
                f"| {led.flops / 1e9:.3f} |"
            )
        lines += [
            "",
            "Wall time is the even group split plus job-tagged exclusive "
            "phases; flops are attributed by per-job solver iteration "
            "counts; comm bytes are zero in the serial offline runner.",
        ]
        return "\n".join(lines)

    def write_reports(self, md_path: str, json_path: str) -> None:
        """Write both report flavors to disk."""
        with open(md_path, "w") as f:
            f.write(self.markdown_report() + "\n")
        with open(json_path, "w") as f:
            json.dump(self.json_report(), f, indent=2, sort_keys=True)
            f.write("\n")


# dataclass `field` retained for ledger extensions
_ = field
