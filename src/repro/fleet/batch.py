"""Lockstep batched execution of same-mesh scenarios.

The fleet's throughput lever: ``B`` scenarios that share one interned
mesh structure advance *together*, stacking their fields along the batch
axis of the element-minor matrix-free kernels
(:class:`repro.fem.matfree.MatFreeStokesOperator` and friends grow an
``nb`` channel in PR 8).  Every GEMM in the apply then amortizes its
gather/geometry traffic over all tenants — the per-scenario work
collapses from ``B`` skinny matvecs into one wide one.

Per-scenario physics stays exact: viscosity and Rayleigh number enter as
batched channel scalings, and :func:`batched_minres` carries the full
Paige-Saunders recurrence per column with an *active mask*, so a tenant
that converges (or whose Picard budget is spent) drops out by having its
rhs and iterate columns zeroed — MINRES sees a converged zero system and
leaves the column bitwise untouched while the rest keep iterating.
Under ``REPRO_SANITIZE=1`` that freeze is fingerprint-verified at
unpack.

The shared block preconditioner generalizes ``K(c eta) = c K(eta)``:
each job's Poisson block is approximated by the Jacobi congruence
``K_j ~= T_j K_ref T_j`` with ``T_j = diag(sqrt(diag K_j / diag K_ref))``
around one AMG hierarchy built on the element-wise geometric-mean
viscosity, so the per-column correction ``S_j = 1/T_j`` (applied on both
sides — a congruence, hence SPD and MINRES-valid) absorbs each tenant's
*local* viscosity deviations, not just its overall scale.  The diagonals
never need assembly: corner diagonals of a trilinear hex stiffness are
equal, so ``diag K(eta) ~ Z^T scatter(eta_e g_e)`` up to a constant that
cancels in the ratio.  The hierarchy is rebuilt at the first Picard pass
of each cycle — a deterministic schedule, so a preempt/resume at a cycle
boundary reproduces the uninterrupted run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..analysis.sanitize import maybe_freeze, maybe_verify
from ..fem.advection import element_velocity_from_nodal, supg_tau
from ..fem.assembly import assemble_scalar, lumped_mass
from ..fem.hexops import ElementOps
from ..fem.matfree import (
    MatFreeAdvectionOperator,
    MatFreeStokesOperator,
    batched_lumped_scalar_mass,
)
from ..fem.stokes import StokesSystem
from ..mesh.opcache import operator_cache
from ..rhea.convection import StepDiagnostics
from ..rhea.viscosity import element_temperature, strain_rate_invariant
from ..solvers.amg import SmoothedAggregationAMG

__all__ = ["BatchedMinresResult", "batched_minres", "BatchGroup"]

_OPS = ElementOps()


@dataclass
class BatchedMinresResult:
    """Per-column solutions and convergence of a batched MINRES run."""

    X: np.ndarray  # (n, nb) solution columns
    iterations: np.ndarray  # (nb,) iteration at which each column converged
    converged: np.ndarray  # (nb,) bool
    residuals: list = field(default_factory=list)  # (nb,) preconditioned norms


def batched_minres(
    A,
    B: np.ndarray,
    M=None,
    X0: np.ndarray | None = None,
    tol=1e-8,
    maxiter: int | None = None,
    factory=None,
) -> BatchedMinresResult:
    """Solve ``A X = B`` column-wise with one shared Krylov recurrence.

    The operator and preconditioner act on ``(n, nb)`` matrices whose
    columns are independent systems (the batched matfree apply); every
    Paige-Saunders scalar becomes a ``(nb,)`` array.  ``tol`` may be a
    scalar or a per-column array.  Columns converge independently: once
    ``|phibar_j| <= tol_j * ref_j`` the column's solution update is
    masked to zero, freezing it bitwise while the others iterate, and
    ``iterations[j]`` records the stopping iteration.  A zero column
    (zero rhs, zero guess) therefore converges at iteration 0 untouched
    — the masked-tenant mechanism of :class:`BatchGroup`.

    ``factory(cols) -> (apply_A, apply_M)``, when given, enables *column
    compaction*: once at least half the working columns have converged,
    the converged ones are dropped from the recurrence and the operators
    are rebuilt for the surviving global column indices ``cols``, so the
    width-proportional work (wide applies, preconditioner sweeps) tracks
    the shrinking active set.  All recurrence operations are columnwise,
    so compaction leaves the per-column arithmetic — iteration counts
    included — unchanged; the half-width hysteresis keeps rebuilds to
    ``O(log nb)`` per solve.

    As in :func:`repro.solvers.minres.minres`, warm-started columns
    measure convergence against ``||b||_M`` rather than the initial
    residual; cold columns use the initial residual (the two coincide).

    Example::

        res = batched_minres(op.apply, F, M=prec, tol=np.full(nb, 1e-6))
        res.X[:, res.converged]
    """
    apply_A = A if callable(A) else (lambda X: A @ X)
    apply_M = M if M is not None else (lambda R: R)
    B = np.asarray(B, dtype=np.float64)
    n, nb = B.shape
    tol = np.broadcast_to(np.asarray(tol, dtype=np.float64), (nb,))
    X = np.zeros((n, nb)) if X0 is None else np.array(X0, dtype=np.float64)
    maxiter = maxiter if maxiter is not None else 5 * n
    tiny = np.finfo(np.float64).tiny

    warm = np.any(X != 0.0, axis=0)
    # cold columns of X are zero, and the operator acts column-wise, so
    # their residual columns equal B exactly
    R1 = (B - apply_A(X)) if warm.any() else B.copy()
    Y = apply_M(R1)
    beta1 = np.einsum("ij,ij->j", R1, Y)
    if np.any(beta1 < 0):
        raise ValueError("preconditioner is not positive definite")
    beta1 = np.sqrt(beta1)
    residuals = [beta1.copy()]
    if warm.any():
        YB = apply_M(B)
        refw = np.einsum("ij,ij->j", B, YB)
        if np.any(refw < 0):
            raise ValueError("preconditioner is not positive definite")
        ref = np.where(warm, np.sqrt(refw), beta1)
    else:
        ref = beta1.copy()
    iterations = np.zeros(nb, dtype=np.int64)
    converged = beta1 <= tol * ref
    active = ~converged
    if not active.any():
        return BatchedMinresResult(
            X=X, iterations=iterations, converged=converged, residuals=residuals
        )

    oldb = np.zeros(nb)
    beta = beta1.copy()
    dbar = np.zeros(nb)
    epsln = np.zeros(nb)
    phibar = beta1.copy()
    cs = np.full(nb, -1.0)
    sn = np.zeros(nb)
    W = np.zeros((n, nb))
    W2 = np.zeros((n, nb))
    R2 = R1

    # compaction bookkeeping: `idx` maps working columns to global ones,
    # `X_out` is the full-width result (identical object to X until the
    # first compaction event), `res_full` freezes retired columns' final
    # preconditioned residuals in the history
    idx = np.arange(nb)
    X_out = X
    tol_w, ref_w = tol, ref
    res_full = beta1.copy()

    itn = 0
    for itn in range(1, maxiter + 1):  # lint: allow-loop (solver iteration)
        # inactive columns keep recurring on garbage (their beta may hit
        # zero); every division is clamped so they stay finite, and their
        # X columns are frozen by the `step` mask below
        s = 1.0 / np.maximum(beta, tiny)
        V = s[None, :] * Y
        Y = apply_A(V)
        if itn >= 2:
            Y = Y - (beta / np.maximum(oldb, tiny))[None, :] * R1
        alfa = np.einsum("ij,ij->j", V, Y)
        Y = Y - (alfa / np.maximum(beta, tiny))[None, :] * R2
        R1 = R2
        R2 = Y
        Y = apply_M(R2)
        oldb = beta
        beta2 = np.einsum("ij,ij->j", R2, Y)
        if np.any(beta2[active] < 0):
            raise ValueError("preconditioner is not positive definite")
        beta = np.sqrt(np.clip(beta2, 0.0, None))

        # apply previous and compute next Givens rotation, per column
        oldeps = epsln
        delta = cs * dbar + sn * alfa
        gbar = sn * dbar - cs * alfa
        epsln = sn * beta
        dbar = -cs * beta
        gamma = np.sqrt(gbar * gbar + beta * beta)
        gamma = np.maximum(gamma, np.finfo(np.float64).eps)
        cs = gbar / gamma
        sn = beta / gamma
        phi = cs * phibar
        phibar = sn * phibar

        W1 = W2
        W2 = W
        W = (V - oldeps[None, :] * W1 - delta[None, :] * W2) / gamma[None, :]
        step = np.where(active, phi, 0.0)
        X = X + step[None, :] * W

        res_full[idx] = np.abs(phibar)
        residuals.append(res_full.copy())
        newly = active & (np.abs(phibar) <= tol_w * ref_w)
        iterations[idx[newly]] = itn
        converged[idx[newly]] = True
        active &= ~newly
        if not active.any():
            break

        if factory is not None and 2 * int(active.sum()) <= idx.size:
            # retire converged columns: flush the working block into the
            # full-width result, slice every recurrence array down to the
            # survivors, and rebuild the operators on their global
            # indices.  Columnwise arithmetic is untouched, so iteration
            # counts match the uncompacted recurrence exactly.
            keep = active
            X_out[:, idx] = X
            idx = idx[keep]
            X = X[:, keep]
            R1, R2, Y = R1[:, keep], R2[:, keep], Y[:, keep]
            W, W2 = W[:, keep], W2[:, keep]
            oldb, beta, dbar = oldb[keep], beta[keep], dbar[keep]
            epsln, phibar = epsln[keep], phibar[keep]
            cs, sn = cs[keep], sn[keep]
            tol_w, ref_w = tol_w[keep], ref_w[keep]
            active = np.ones(idx.size, dtype=bool)
            apply_A, apply_M = factory(idx)

    iterations[idx[active]] = itn
    if X_out is not X:
        X_out[:, idx] = X
    return BatchedMinresResult(
        X=X_out, iterations=iterations, converged=converged.copy(),
        residuals=residuals,
    )


def _poisson_diag(mesh, eta_b: np.ndarray, g: np.ndarray) -> np.ndarray:
    """Assembly-free Jacobi surrogate of each job's Poisson block.

    The corner diagonals of a trilinear hex stiffness are all equal and
    scale with the element, so ``diag K(eta)`` is proportional to the
    node-wise scatter of ``eta_e g_e`` (``g`` any fixed per-element
    geometry weight), restricted through the hanging-node operator.  The
    proportionality constant cancels in the ``D_ref / D_j`` congruence
    ratio, which is all the preconditioner needs.  Returns ``(n, nb)``.
    """
    w = (eta_b * g[None, :]).T  # (ne, nb)
    acc = np.zeros((mesh.n_nodes, w.shape[1]))
    for c in range(8):  # lint: allow-loop (8 hex corners)
        np.add.at(acc, mesh.element_nodes[:, c], w)
    return mesh.Z.T @ acc


class BatchGroup:
    """``B`` convection scenarios advancing in lockstep on one shared mesh.

    Every sim must hold the *same* :class:`~repro.mesh.Mesh` object (the
    fleet's :class:`~repro.fleet.service.MeshRegistry` interns structures
    to guarantee this), the same velocity BC and domain, the tensor FEM
    variant, and zero internal heating — everything else (Rayleigh
    number, viscosity law, tolerances, Picard budget, step counts) may
    differ per tenant.

    :meth:`cycle` mirrors one serial
    :meth:`~repro.rhea.convection.MantleConvection.run` cycle without
    adaptation — a batched Stokes solve followed by batched explicit
    advection — and appends a
    :class:`~repro.rhea.convection.StepDiagnostics` to each sim's
    history, so serial and batched runs are diagnostics-comparable.

    Example::

        group = BatchGroup([sim_a, sim_b, sim_c])
        diags = group.cycle()          # one lockstep cycle, 3 tenants
    """

    def __init__(self, sims: list, amg_theta: float = 0.08):
        if not sims:
            raise ValueError("empty batch group")
        mesh = sims[0].mesh
        cfg0 = sims[0].config
        for s in sims:  # lint: allow-loop (per-job admission checks, O(B))
            if s.mesh is not mesh:
                raise ValueError(
                    "batched scenarios must share one interned Mesh object"
                )
            c = s.config
            if c.velocity_bc != cfg0.velocity_bc:
                raise ValueError("velocity_bc must be uniform across a batch group")
            if tuple(c.domain) != tuple(cfg0.domain):
                raise ValueError("domain must be uniform across a batch group")
            if c.fem_variant != "tensor":
                raise ValueError("batched execution requires fem_variant='tensor'")
            if c.gamma != 0.0:
                raise ValueError("batched advection supports gamma = 0 only")
        self.sims = list(sims)
        self.mesh = mesh
        self.nb = len(sims)
        self.amg_theta = amg_theta

    # -- Stokes ---------------------------------------------------------

    def solve_stokes(self) -> list[dict]:
        """Batched Picard iteration: one wide MINRES per pass.

        Mirrors the serial ``_solve_stokes_impl`` per column — viscosity
        re-evaluation, warm start, pressure-mean projection, relative
        velocity-increment convergence test — with per-job ``picard_tol``
        / ``picard_iterations`` budgets enforced through the active mask.
        Returns one serial-shaped stats dict per job.
        """
        mesh, sims = self.mesh, self.sims
        nb, n = self.nb, mesh.n_independent
        cache = operator_cache(mesh)
        sizes = mesh.element_sizes()
        cfg0 = sims[0].config
        bc_kind = cfg0.velocity_bc
        z_e = mesh.element_centers()[:, 2] / cfg0.domain[2]
        T_e = [element_temperature(mesh, s.T) for s in sims]
        picard_budget = np.array(
            [max(s.config.picard_iterations, 1) for s in sims]
        )
        picard_tol = np.array([s.config.picard_tol for s in sims])
        stokes_tol = np.array([s.config.stokes_tol for s in sims])
        maxiter = max(s.config.stokes_maxiter for s in sims)
        M_node = cache.get(
            "node_mass",
            lambda: assemble_scalar(mesh, _OPS.mass(sizes), constrain=False),
        )

        total_minres = np.zeros(nb, dtype=np.int64)
        n_picard = np.zeros(nb, dtype=np.int64)
        last_converged = np.ones(nb, dtype=bool)
        active = np.ones(nb, dtype=bool)
        eta_b = np.ones((nb, mesh.n_elements))
        op = amg = bc = F = None
        zero_token = maybe_freeze(np.zeros(4 * n))
        for k in range(int(picard_budget.max())):  # lint: allow-loop (Picard)
            for j, s in enumerate(sims):  # lint: allow-loop (per-job viscosity, O(B))
                if not active[j]:
                    continue
                edot = strain_rate_invariant(mesh, s.u)
                eta = s.config.viscosity(T_e[j], z_e, edot)
                s.eta_elem = eta
                s.edot_elem = edot
                eta_b[j] = eta
            n_picard[active] = k + 1
            if k == 0:
                # AMG rebuilt at each cycle's first pass only: a fixed,
                # state-independent schedule, so resume-after-preempt
                # reproduces the uninterrupted preconditioner sequence.
                # The hierarchy lives on the geometric-mean viscosity of
                # the group; per-job deviations are absorbed by the
                # Jacobi congruence correction below.
                eta_ref = np.exp(np.mean(np.log(eta_b), axis=0))
                st_ref = StokesSystem(
                    mesh, eta_ref, None, bc=bc_kind, variant="tensor"
                )
                bc = st_ref.bc
                with obs.phase("prec_setup"):
                    amg = [
                        SmoothedAggregationAMG(K, theta=self.amg_theta)
                        for K in st_ref.poisson_blocks()
                    ]
                g_elem = np.prod(sizes, axis=1) ** (1.0 / 3.0)
                D_ref = _poisson_diag(mesh, eta_ref[None, :], g_elem)[:, 0]
                F = np.zeros((4 * n, nb))
                for j, s in enumerate(sims):  # lint: allow-loop (per-job rhs pack, O(B))
                    F[2 * n : 3 * n, j] = mesh.Z.T @ (
                        M_node @ (s.config.Ra * s.T)
                    )
                F[bc.dofs] = 0.0
                op = MatFreeStokesOperator(mesh, eta_b, bc_kind, bc.dofs)
            else:
                op.update_viscosity(eta_b)
            # per-column congruence K_j ~= T_j K_ref T_j around the shared
            # hierarchy: S = 1/T = sqrt(D_ref / D_j) applied on both sides
            # of the vcycle keeps the prec SPD while tracking each job's
            # local viscosity field, not just its overall scale
            S = np.sqrt(D_ref[:, None] / _poisson_diag(mesh, eta_b, g_elem))
            schur = batched_lumped_scalar_mass(mesh, 1.0 / eta_b)

            def make_prec(Ssub, schur_sub, amg=amg):
                def apply_M(R):
                    Z = np.empty_like(R)
                    for a in range(3):  # lint: allow-loop (3 velocity components)
                        Z[a * n : (a + 1) * n] = (
                            amg[a].vcycle(R[a * n : (a + 1) * n] * Ssub) * Ssub
                        )
                    Z[3 * n :] = R[3 * n :] / schur_sub
                    return Z

                return apply_M

            apply_M = make_prec(S, schur)

            def factory(cols, eta_b=eta_b, S=S, schur=schur):
                # compaction: rebuild the wide operator and the congruence
                # scalings on the surviving scenario columns only
                sub = MatFreeStokesOperator(
                    mesh, eta_b[cols], bc_kind, bc.dofs
                )
                return sub.apply, make_prec(
                    np.ascontiguousarray(S[:, cols]),
                    np.ascontiguousarray(schur[:, cols]),
                )

            Fk = F.copy()
            Fk[:, ~active] = 0.0
            X0 = np.zeros((4 * n, nb))
            for j, s in enumerate(sims):  # lint: allow-loop (per-job warm-start pack, O(B))
                if not active[j]:
                    continue  # column stays zero -> converges untouched at 0
                if s.config.warm_start and np.any(s.u):
                    for a in range(3):  # lint: allow-loop (3 velocity components)
                        X0[a * n : (a + 1) * n, j] = s.u[mesh.indep_nodes, a]
                    X0[bc.dofs, j] = 0.0
                    if s._p_prev is not None and s._p_prev_mesh is mesh:
                        X0[3 * n :, j] = s._p_prev

            with obs.phase("minres"):
                res = batched_minres(
                    op.apply, Fk, M=apply_M, X0=X0, tol=stokes_tol,
                    maxiter=maxiter, factory=factory,
                )
            obs.counter("minres_calls")
            if zero_token is not None:
                for j in np.flatnonzero(~active):  # lint: allow-loop (sanitize verify, O(B))
                    maybe_verify(
                        res.X[:, j], zero_token,
                        context=f"fleet masked tenant column {j}",
                    )

            total_minres += np.where(active, res.iterations, 0)
            for j, s in enumerate(sims):  # lint: allow-loop (per-job unpack, O(B))
                if not active[j]:
                    continue
                x = res.X[:, j]
                p = x[3 * n :].copy()
                p -= p.mean()
                s._p_prev = p
                s._p_prev_mesh = mesh
                u_new = np.empty((mesh.n_nodes, 3))
                for a in range(3):  # lint: allow-loop (3 velocity components)
                    u_new[:, a] = mesh.expand(x[a * n : (a + 1) * n])
                du = np.linalg.norm(u_new - s.u) / max(
                    np.linalg.norm(u_new), 1e-30
                )
                s.u = u_new
                last_converged[j] = bool(res.converged[j])
                if du < picard_tol[j] or k + 1 >= picard_budget[j]:
                    active[j] = False
            if not active.any():
                break

        obs.counter("minres_iterations", int(total_minres.sum()))
        obs.counter("picard_iterations", int(n_picard.sum()))
        stats = []
        for j, s in enumerate(sims):  # lint: allow-loop (per-job stats, O(B))
            s._last_minres = int(total_minres[j])
            s._last_picard = int(n_picard[j])
            stats.append(
                {
                    "minres_iterations": int(total_minres[j]),
                    "picard_iterations": int(n_picard[j]),
                    "eta_min": float(s.eta_elem.min()),
                    "eta_max": float(s.eta_elem.max()),
                    "converged": bool(last_converged[j]),
                }
            )
        return stats

    # -- temperature ----------------------------------------------------

    def advance_temperature(self) -> np.ndarray:
        """Batched explicit Heun advection with per-job time steps.

        Each job takes its own ``adapt_every`` steps at its own CFL
        ``dt``; jobs whose step count is exhausted are frozen bitwise by
        a per-micro-step mask (and fingerprint-verified at unpack under
        ``REPRO_SANITIZE=1``).  Returns the per-job ``dt`` array.
        """
        mesh, sims = self.mesh, self.sims
        nb, n = self.nb, mesh.n_independent
        cache = operator_cache(mesh)
        sizes = mesh.element_sizes()
        vel_b = np.stack(
            [element_velocity_from_nodal(mesh, s.u) for s in sims]
        )  # (nb, ne, 3)
        kappa_b = np.array([s.config.kappa for s in sims])
        tau_b = np.stack(
            [supg_tau(sizes, vel_b[j], kappa_b[j]) for j in range(nb)]
        )
        op = MatFreeAdvectionOperator(mesh, kappa_b, vel_b, tau_b)
        mass_e = cache.get("elem_mass", lambda: _OPS.mass(sizes))
        ML = cache.get("lumped_mass", lambda: lumped_mass(mesh, mass_e))

        bc_mask = np.zeros(n, dtype=bool)
        bc_values = np.zeros(n)
        for axis, side, value in ((2, 0, 1.0), (2, 1, 0.0)):  # hot bottom, cold top

            def build(axis=axis, side=side):
                nodes = mesh.boundary_node_mask(axis=axis, side=side)
                dofs = mesh.dof_of_node[np.flatnonzero(nodes)]
                return dofs[dofs >= 0]

            dofs = cache.get(("bdofs", axis, side), build)
            bc_mask[dofs] = True
            bc_values[dofs] = value

        # per-job CFL bound (same advective/diffusive limits as serial)
        h = sizes.min(axis=1)
        speed = np.linalg.norm(vel_b, axis=2)  # (nb, ne)
        adv = np.where(speed > 0, h[None, :] / np.maximum(speed, 1e-300), np.inf)
        diff = np.where(
            kappa_b[:, None] > 0,
            h[None, :] ** 2 / np.maximum(6.0 * kappa_b[:, None], 1e-300),
            np.inf,
        )
        cfl_b = np.array([s.config.cfl for s in sims])
        dt_b = cfl_b * np.minimum(adv, diff).min(axis=1)
        if not np.all(np.isfinite(dt_b)):
            raise ValueError("no finite CFL bound (zero velocity and diffusivity)")
        n_steps = np.array([s.config.adapt_every for s in sims])

        Tm = np.stack([s.T[mesh.indep_nodes] for s in sims], axis=1)  # (n, nb)
        dtrow = dt_b[None, :]
        frozen: list = [None] * nb

        def rate(T):
            R = -op.apply(T) / ML[:, None]
            R[bc_mask] = 0.0
            return R

        def apply_bcs(T):
            out = T.copy()
            out[bc_mask] = bc_values[bc_mask][:, None]
            return out

        for t in range(int(n_steps.max())):  # lint: allow-loop (time stepping)
            stepmask = t < n_steps
            T0 = apply_bcs(Tm)
            k1 = rate(T0)
            Tstar = apply_bcs(T0 + dtrow * k1)
            k2 = rate(Tstar)
            T1 = apply_bcs(T0 + 0.5 * dtrow * (k1 + k2))
            Tm = np.where(stepmask[None, :], T1, Tm)
            for j in np.flatnonzero(t + 1 == n_steps):  # lint: allow-loop (sanitize freeze, O(B))
                frozen[j] = maybe_freeze(Tm[:, j].copy())
        for j, tok in enumerate(frozen):  # lint: allow-loop (sanitize verify, O(B))
            if tok is not None and n_steps[j] < n_steps.max():
                maybe_verify(
                    Tm[:, j], tok,
                    context=f"fleet finished tenant temperature column {j}",
                )

        for j, s in enumerate(sims):  # lint: allow-loop (per-job unpack, O(B))
            s.T = mesh.expand(Tm[:, j])
            s.sim_time += int(n_steps[j]) * float(dt_b[j])
            s.step_count += int(n_steps[j])
        return dt_b

    # -- one lockstep cycle ---------------------------------------------

    def cycle(self) -> list[StepDiagnostics]:
        """Batched (Stokes solve -> advect) for every tenant; appends and
        returns one per-job :class:`StepDiagnostics` (batch wall time is
        split evenly across tenants in the ``timings`` dict — the
        accountant refines attribution by per-job work counters)."""
        cstats = operator_cache(self.mesh)
        t0 = time.perf_counter()
        with obs.phase("fleet/stokes"):
            h0, m0 = cstats.hits, cstats.misses
            stats = self.solve_stokes()
            obs.counter("cache_hits", cstats.hits - h0)
            obs.counter("cache_misses", cstats.misses - m0)
        t_stokes = time.perf_counter() - t0
        t0 = time.perf_counter()
        with obs.phase("fleet/advection"):
            self.advance_temperature()
            obs.counter(
                "advection_steps",
                int(sum(s.config.adapt_every for s in self.sims)),
            )
        t_adv = time.perf_counter() - t0

        out = []
        for s, st in zip(self.sims, stats):  # lint: allow-loop (per-job diagnostics, O(B))
            d = StepDiagnostics(
                step=s.step_count,
                time=s.sim_time,
                n_elements=self.mesh.n_elements,
                vrms=s.vrms(),
                nusselt=s.nusselt(),
                mean_T=s.mean_temperature(),
                minres_iterations=st["minres_iterations"],
                picard_iterations=st["picard_iterations"],
                eta_min=st["eta_min"],
                eta_max=st["eta_max"],
                timings={
                    "Stokes": t_stokes / self.nb,
                    "TimeIntegration": t_adv / self.nb,
                },
            )
            s.history.append(d)
            out.append(d)
        return out
