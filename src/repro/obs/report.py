"""Paper-style scalability reports from measured phase records.

Combines per-rank :class:`~repro.obs.timer.PhaseTimer` results with the
:class:`~repro.parallel.machine.MachineModel` to emit the structure of
the paper's Tables IV-VI: a per-phase breakdown (seconds, percent of
wall-clock, load imbalance, communication volume) plus the AMR / Stokes
/ advection component split with a modeled comm-vs-compute share at
paper-scale core counts.

Measured-vs-modeled policy (DESIGN.md section 5): the simulated-rank
transport is shared memory, so the *measured* wall time is taken as the
compute time; the machine model prices each phase's recorded
communication tally at the requested core counts and the comm share at
``P`` is ``t_comm(P) / (wall + t_comm(P))`` — the same additive
composition the scaling harness uses.

Example::

    per_rank = run_spmd(4, kernel)             # kernel returns timer.results()
    rep = obs.generate_report(per_rank, executed_ranks=4)
    print(obs.markdown_report(rep))
    rep["fractions"]["amr"]                    # the Figure-7 headline number
"""

from __future__ import annotations

import math

from ..parallel.machine import RANGER, MachineModel
from .timer import imbalance

__all__ = [
    "PHASE_GROUPS",
    "classify_phase",
    "model_phase_comm",
    "generate_report",
    "markdown_report",
    "job_phases",
]

#: top-level phase name -> report component (everything else is "other")
PHASE_GROUPS = {
    "amr": "amr",
    "stokes": "stokes",
    "advection": "advection",
    "checkpoint": "checkpoint",
}

#: default modeled core counts: executed scale up to the paper's largest
#: Ranger run (Table VI, 62,464 cores)
DEFAULT_CORE_COUNTS = (1, 8, 1024, 62464)


def classify_phase(path: str) -> str:
    """Report component of a phase path, from its first segment.

    Example::

        classify_phase("amr/balance")   # -> "amr"
        classify_phase("stokes/minres") # -> "stokes"
        classify_phase("io")            # -> "other"
    """
    return PHASE_GROUPS.get(path.split("/", 1)[0], "other")


def job_phases(results: dict) -> dict:
    """Group job-id-tagged phase records by job.

    The fleet service tags per-job work by opening phases whose path
    contains a ``job:<id>`` segment (``fleet/job:j3/checkpoint``, ...).
    Given one rank's :meth:`~repro.obs.timer.PhaseTimer.results`, this
    returns ``{job_id: {subpath: record}}`` where ``subpath`` is the
    path below the job segment (``""`` for the segment itself) — the
    per-tenant metering view the fleet accountant renders.

    Example::

        with obs.phase("fleet/job:j3/checkpoint"):
            ...
        job_phases(timer.results())  # -> {"j3": {"checkpoint": {...}}}
    """
    out: dict[str, dict] = {}
    for path, rec in results.items():
        parts = path.split("/")
        for i, seg in enumerate(parts):
            if seg.startswith("job:") and len(seg) > 4:
                job_id = seg[4:]
                sub = "/".join(parts[i + 1 :])
                out.setdefault(job_id, {})[sub] = rec
                break
    return out


def _roots(paths) -> list[str]:
    """Paths with no recorded proper ancestor (their walls don't overlap)."""
    all_paths = set(paths)
    out = []
    for p in paths:
        parts = p.split("/")
        if any("/".join(parts[:i]) in all_paths for i in range(1, len(parts))):
            continue
        out.append(p)
    return sorted(out)


def model_phase_comm(entry: dict, p: int, machine: MachineModel = RANGER) -> float:
    """Modeled communication seconds of one phase's median-rank tally at
    ``p`` cores.

    The timer records per-phase totals (messages, bytes, collective
    calls, contributed collective bytes), not per-collective-name
    detail, so collectives are priced with the log-tree formula of the
    allreduce family: ``calls * ceil(log2 p) * alpha + bytes *
    ceil(log2 p) * beta``.  Point-to-point traffic is priced directly.

    Example::

        t = model_phase_comm(report["phases"]["amr/balance"], 62464)
    """
    if p <= 1:
        return 0.0
    lg = math.ceil(math.log2(p))
    msgs = entry["p2p_messages"]["median"]
    nbytes = entry["p2p_bytes"]["median"]
    calls = entry["collective_calls"]["median"]
    cbytes = entry["collective_bytes"]["median"]
    return (
        machine.t_p2p(nbytes, msgs)
        + calls * lg * machine.alpha
        + cbytes * lg * machine.beta
    )


def generate_report(
    per_rank: list[dict],
    machine: MachineModel = RANGER,
    core_counts=DEFAULT_CORE_COUNTS,
    executed_ranks: int | None = None,
) -> dict:
    """Build the Table IV-VI-style report from per-rank phase results.

    Parameters
    ----------
    per_rank:
        One :meth:`~repro.obs.timer.PhaseTimer.results` dict per rank.
    machine:
        Machine model pricing the communication tallies.
    core_counts:
        Core counts at which the comm-vs-compute split is modeled.
    executed_ranks:
        Rank count of the measured run (defaults to ``len(per_rank)``).

    Returns a dict with ``phases`` (every recorded path: wall min /
    median / max seconds, percent of wall, imbalance, comm volume,
    modeled comm seconds per core count, summed counters), ``groups``
    (AMR / Stokes / advection / checkpoint / other components with
    wall fractions and modeled comm shares), ``counters`` (summed
    timer-level counters recorded outside any phase), ``fractions``
    (the headline component split), and ``total_wall_s``.

    Example::

        rep = generate_report([timer.results()], core_counts=(1, 1024))
        assert abs(sum(rep["fractions"].values()) - 1.0) < 1e-12
    """
    p_exec = executed_ranks if executed_ranks is not None else max(len(per_rank), 1)
    imb = imbalance(per_rank)
    # timer-level counters (recorded outside any phase) are surfaced
    # separately; the "" record carries no wall time
    top = imb.pop("", None)
    roots = _roots(imb.keys())
    total_wall = sum(imb[p]["wall_s"]["max"] for p in roots)
    total_sum = sum(imb[p]["wall_s"]["sum"] for p in roots)

    phases: dict[str, dict] = {}
    for path, e in imb.items():
        is_root = path in roots
        phases[path] = {
            "group": classify_phase(path),
            "root": is_root,
            "count": e["count"],
            "wall_s": e["wall_s"],
            "self_s": e["self_s"],
            "pct_of_wall": (
                100.0 * e["wall_s"]["max"] / total_wall if total_wall > 0 else 0.0
            ),
            "imbalance": e["imbalance"],
            "p2p_messages": e["p2p_messages"],
            "p2p_bytes": e["p2p_bytes"],
            "collective_calls": e["collective_calls"],
            "collective_bytes": e["collective_bytes"],
            "flops": e["flops"],
            "counters": e["counters"],
            "comm_model_s": {
                str(p): model_phase_comm(e, p, machine) for p in core_counts
            },
        }

    groups: dict[str, dict] = {}
    for g in ("amr", "stokes", "advection", "checkpoint", "other"):
        g_roots = [p for p in roots if classify_phase(p) == g]
        wall = sum(imb[p]["wall_s"]["max"] for p in g_roots)
        wall_sum = sum(imb[p]["wall_s"]["sum"] for p in g_roots)
        comm_model = {
            str(pc): sum(model_phase_comm(imb[p], pc, machine) for p in g_roots)
            for pc in core_counts
        }
        counters: dict = {}
        for p in g_roots:
            for k, v in imb[p]["counters"].items():
                counters[k] = counters.get(k, 0) + v
        groups[g] = {
            "phases": g_roots,
            "wall_s": wall,
            "fraction": wall_sum / total_sum if total_sum > 0 else 0.0,
            "comm_model_s": comm_model,
            "comm_fraction": {
                pc: t / (wall + t) if (wall + t) > 0 else 0.0
                for pc, t in comm_model.items()
            },
            "counters": counters,
        }

    return {
        "executed_ranks": p_exec,
        "machine": machine.name,
        "core_counts": list(core_counts),
        "total_wall_s": total_wall,
        "phases": phases,
        "groups": groups,
        "counters": dict(top["counters"]) if top is not None else {},
        "fractions": {g: groups[g]["fraction"] for g in groups},
        "amr_fraction": groups["amr"]["fraction"],
    }


def _fmt_s(v: float) -> str:
    return f"{v:.4f}" if v >= 1e-4 or v == 0 else f"{v:.2e}"


def markdown_report(report: dict, title: str = "Per-phase breakdown") -> str:
    """Render a :func:`generate_report` result as markdown tables in the
    structure of the paper's Table IV: one row per phase with seconds,
    percent of wall-clock and communication volume, followed by the
    component summary (AMR / Stokes / advection) with the modeled comm
    share per core count.

    Example::

        md = markdown_report(rep)
        assert "| Phase |" in md and "AMR" in md
    """
    p_exec = report["executed_ranks"]
    cores = report["core_counts"]
    p_big = str(cores[-1])
    lines = [
        f"## {title}",
        "",
        f"Executed on {p_exec} simulated rank(s); machine model "
        f"`{report['machine']}`; total wall {_fmt_s(report['total_wall_s'])} s.",
        "",
        "| Phase | max s | median s | % of wall | imbalance | p2p msgs "
        f"| MB | coll. calls | modeled comm @{p_big} (s) |",
        "|---|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    order = sorted(
        report["phases"].items(), key=lambda kv: -kv[1]["wall_s"]["max"]
    )
    for path, e in order:
        mb = (e["p2p_bytes"]["median"] + e["collective_bytes"]["median"]) / 1e6
        name = path if e["root"] else "&nbsp;&nbsp;" + path
        lines.append(
            f"| {name} | {_fmt_s(e['wall_s']['max'])} "
            f"| {_fmt_s(e['wall_s']['median'])} "
            f"| {e['pct_of_wall']:.1f} | {e['imbalance']:.2f} "
            f"| {int(e['p2p_messages']['median'])} | {mb:.3f} "
            f"| {int(e['collective_calls']['median'])} "
            f"| {_fmt_s(e['comm_model_s'][p_big])} |"
        )
    lines += [
        "",
        "## Component summary (AMR / Stokes / advection split)",
        "",
        "| Component | seconds | fraction of wall | "
        + " | ".join(f"comm share @{p}" for p in cores)
        + " |",
        "|---|---:|---:|" + "---:|" * len(cores),
    ]
    label = {
        "amr": "AMR (all tree/mesh functions)",
        "stokes": "Stokes solve",
        "advection": "Advection (energy transport)",
        "checkpoint": "Checkpoint I/O",
        "other": "Other",
    }
    for g, e in report["groups"].items():
        if e["wall_s"] == 0 and not e["phases"]:
            continue
        shares = " | ".join(
            f"{100 * e['comm_fraction'][str(p)]:.1f}%" for p in cores
        )
        lines.append(
            f"| {label[g]} | {_fmt_s(e['wall_s'])} "
            f"| {100 * e['fraction']:.1f}% | {shares} |"
        )
    lines.append("")
    lines.append(
        "Measured wall times are taken as compute (shared-memory "
        "transport); the comm share at P cores adds the machine-modeled "
        "communication time of the recorded per-phase tallies."
    )
    return "\n".join(lines)
