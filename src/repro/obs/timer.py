"""Hierarchical per-rank phase timer with communication attribution.

The paper's evidence is per-phase accounting: Tables IV-VI break
end-to-end runs into the AMR functions (NewTree, Coarsen/Refine,
Balance, Partition, ExtractMesh, Transfer), the Stokes solve, and the
advection update, and show AMR staying under ~10% of wall-clock at
scale.  This module provides the measurement substrate: a
:class:`PhaseTimer` records nested ``phase("amr/balance")`` sections
with wall-clock, :class:`~repro.parallel.stats.CommStats` deltas
(messages, bytes, collective calls, flops) and structured counters
(MINRES iterations, refined-element counts, cache hits).

Timers are bound per *thread* — exactly one simulated SPMD rank — so
library code calls the module-level :func:`phase` / :func:`counter`
helpers without threading a timer object through every signature.
When no timer is bound, :func:`phase` returns a shared no-op context
manager: the disabled hot path is one thread-local attribute read and
allocates nothing.

Example (serial)::

    from repro import obs

    timer = obs.enable()
    with obs.phase("stokes"):
        with obs.phase("assemble"):
            ...                    # recorded under "stokes/assemble"
        obs.counter("minres_iterations", 42)
    print(timer.results()["stokes"]["wall_s"])
    obs.disable()

Example (SPMD) — each rank binds its own timer against its
communicator, so every phase also captures the rank's communication
delta::

    def kernel(comm):
        timer = obs.enable(comm)
        with obs.phase("amr/balance"):
            comm.allreduce(1)
        return timer.results()

    per_rank = run_spmd(4, kernel)
    stats = obs.imbalance(per_rank)   # min/median/max across ranks
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "PhaseTimer",
    "NULL_PHASE",
    "phase",
    "counter",
    "enable",
    "disable",
    "active",
    "attached",
    "imbalance",
]

#: per-rank result fields that :func:`imbalance` reduces across ranks
_REDUCED_FIELDS = (
    "wall_s",
    "self_s",
    "p2p_messages",
    "p2p_bytes",
    "collective_calls",
    "collective_bytes",
    "flops",
)


class _NullPhase:
    """Shared no-op context manager returned while timing is disabled.

    A single module-level instance (:data:`NULL_PHASE`) is handed out
    for every :func:`phase` call with no bound timer, so the disabled
    hot path performs no allocation::

        assert obs.phase("a") is obs.phase("b")   # timing disabled
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


#: the singleton no-op phase (see :class:`_NullPhase`)
NULL_PHASE = _NullPhase()

_TLS = threading.local()


class _Frame:
    """One open phase on a timer's stack (internal)."""

    __slots__ = (
        "path",
        "t0",
        "child_s",
        "s_msgs",
        "s_bytes",
        "s_calls",
        "s_cbytes",
        "s_flops",
    )

    def __init__(self, path, t0, snap):
        self.path = path
        self.t0 = t0
        self.child_s = 0.0
        (self.s_msgs, self.s_bytes, self.s_calls, self.s_cbytes, self.s_flops) = snap


class _PhaseCtx:
    """Context manager that opens/closes one phase on its timer."""

    __slots__ = ("_timer", "_name")

    def __init__(self, timer, name):
        self._timer = timer
        self._name = name

    def __enter__(self):
        self._timer._push(self._name)
        return self

    def __exit__(self, *exc):
        self._timer._pop()
        return False


def _blank_record() -> dict:
    return {
        "count": 0,
        "wall_s": 0.0,
        "self_s": 0.0,
        "p2p_messages": 0,
        "p2p_bytes": 0,
        "collective_calls": 0,
        "collective_bytes": 0,
        "flops": 0.0,
        "counters": {},
    }


class PhaseTimer:
    """Per-rank hierarchical phase timer.

    Parameters
    ----------
    comm:
        Optional communicator-like object exposing ``.rank`` and
        ``.stats`` (a :class:`~repro.parallel.stats.CommStats`).  When
        given, every phase records the delta of the rank's
        communication tally between entry and exit, so phases that
        interleave collectives attribute messages/bytes to the
        innermost open phase chain.  ``None`` records wall time and
        counters only (serial drivers).
    record_events:
        Keep the begin/duration event list needed by the Chrome-trace
        exporter (:func:`repro.obs.chrome_trace`).  Events are capped at
        ``max_events``; further entries still accumulate into the
        per-phase records but drop off the timeline (``events_dropped``
        counts them).

    Example::

        timer = PhaseTimer()
        with timer.phase("amr"):
            with timer.phase("balance"):
                pass
        assert set(timer.results()) == {"amr", "amr/balance"}
    """

    def __init__(self, comm=None, record_events: bool = True, max_events: int = 200_000):
        self.comm = comm
        self.rank = getattr(comm, "rank", 0)
        self.record_events = record_events
        self.max_events = max_events
        self.epoch = time.perf_counter()
        self.records: dict[str, dict] = {}
        #: (path, start_seconds, duration_seconds) relative to ``epoch``
        self.events: list[tuple[str, float, float]] = []
        self.events_dropped = 0
        self._stack: list[_Frame] = []

    # -- recording ---------------------------------------------------------

    def phase(self, name: str) -> _PhaseCtx:
        """Context manager timing one (possibly nested) phase.

        The recorded path composes with the enclosing phases:
        ``phase("minres")`` inside ``phase("stokes")`` records under
        ``"stokes/minres"``.  Re-entering the same path accumulates
        into one record (``count`` tracks entries).
        """
        return _PhaseCtx(self, name)

    def counter(self, name: str, value=1) -> None:
        """Add ``value`` to a structured counter on the innermost open
        phase (or the timer-level ``""`` record outside any phase).

        Example::

            with timer.phase("stokes"):
                timer.counter("minres_iterations", res.iterations)
        """
        path = self._stack[-1].path if self._stack else ""
        rec = self.records.get(path)
        if rec is None:
            rec = self.records[path] = _blank_record()
        c = rec["counters"]
        c[name] = c.get(name, 0) + value

    def _snap(self):
        s = getattr(self.comm, "stats", None)
        if s is None:
            return (0, 0, 0, 0, 0.0)
        return (
            s.p2p_messages,
            s.p2p_bytes,
            sum(s.collective_calls.values()),
            sum(s.collective_bytes.values()),
            s.flops,
        )

    def _push(self, name: str) -> None:
        path = self._stack[-1].path + "/" + name if self._stack else name
        self._stack.append(_Frame(path, time.perf_counter(), self._snap()))

    def _pop(self) -> None:
        f = self._stack.pop()
        t1 = time.perf_counter()
        wall = t1 - f.t0
        msgs, nbytes, calls, cbytes, flops = self._snap()
        rec = self.records.get(f.path)
        if rec is None:
            rec = self.records[f.path] = _blank_record()
        rec["count"] += 1
        rec["wall_s"] += wall
        rec["self_s"] += wall - f.child_s
        rec["p2p_messages"] += msgs - f.s_msgs
        rec["p2p_bytes"] += nbytes - f.s_bytes
        rec["collective_calls"] += calls - f.s_calls
        rec["collective_bytes"] += cbytes - f.s_cbytes
        rec["flops"] += flops - f.s_flops
        if self._stack:
            self._stack[-1].child_s += wall
        if self.record_events:
            if len(self.events) < self.max_events:
                self.events.append((f.path, f.t0 - self.epoch, wall))
            else:
                self.events_dropped += 1

    # -- results -----------------------------------------------------------

    def results(self) -> dict:
        """Per-phase records as plain nested dicts, keyed by path.

        Each record holds ``count``, inclusive ``wall_s``, exclusive
        ``self_s`` (inclusive minus children), the CommStats deltas
        (``p2p_messages``, ``p2p_bytes``, ``collective_calls``,
        ``collective_bytes``, ``flops``) and the ``counters`` dict.
        Open phases are not included until they exit.
        """
        return {
            path: {**rec, "counters": dict(rec["counters"])}
            for path, rec in self.records.items()
        }

    def trace_data(self) -> dict:
        """This rank's timeline in the form :func:`repro.obs.chrome_trace`
        consumes: ``{"rank", "epoch", "events", "events_dropped"}``.
        """
        return {
            "rank": self.rank,
            "epoch": self.epoch,
            "events": list(self.events),
            "events_dropped": self.events_dropped,
        }

    def reduce(self) -> dict | None:
        """Allgather every rank's :meth:`results` over ``self.comm`` and
        return the :func:`imbalance` reduction (identical on all ranks).

        Must be called collectively (every rank, same program point) —
        it issues one ``allgather``.  Returns ``None`` without
        communicating when the timer has no communicator.
        """
        if self.comm is None or not hasattr(self.comm, "allgather"):
            return None
        return imbalance(self.comm.allgather(self.results()))


# -- thread-local binding ----------------------------------------------------


def active() -> PhaseTimer | None:
    """The timer bound to the calling thread, or ``None`` when timing
    is disabled (the default)."""
    return getattr(_TLS, "timer", None)


def enable(comm=None, record_events: bool = True) -> PhaseTimer:
    """Create a :class:`PhaseTimer` and bind it to the calling thread.

    Inside an SPMD kernel each rank-thread gets its own binding::

        def kernel(comm):
            timer = obs.enable(comm)
            ...
            return timer.results()
    """
    timer = PhaseTimer(comm, record_events=record_events)
    _TLS.timer = timer
    return timer


def disable() -> PhaseTimer | None:
    """Unbind (and return) the calling thread's timer; subsequent
    :func:`phase` calls are no-ops again."""
    timer = getattr(_TLS, "timer", None)
    _TLS.timer = None
    return timer


@contextmanager
def attached(timer: PhaseTimer):
    """Bind an existing timer for the duration of a ``with`` block,
    restoring the previous binding on exit.

    Example::

        timer = PhaseTimer()
        with obs.attached(timer), obs.phase("setup"):
            ...
    """
    prev = getattr(_TLS, "timer", None)
    _TLS.timer = timer
    try:
        yield timer
    finally:
        _TLS.timer = prev


def phase(name: str):
    """Module-level phase hook used by instrumented library code.

    Returns the bound timer's phase context manager, or the shared
    no-op singleton when timing is disabled — the disabled path is one
    thread-local read and performs no allocation.

    Example::

        with obs.phase("amr/balance"):
            pt, added, _ = balance_tree(pt, connectivity)
    """
    timer = getattr(_TLS, "timer", None)
    if timer is None:
        return NULL_PHASE
    return timer.phase(name)


def counter(name: str, value=1) -> None:
    """Module-level counter hook: no-op when timing is disabled,
    otherwise adds to the bound timer's innermost open phase.

    Example::

        obs.counter("minres_iterations", result.iterations)
    """
    timer = getattr(_TLS, "timer", None)
    if timer is not None:
        timer.counter(name, value)


# -- cross-rank reduction ----------------------------------------------------


def _median(vals: list) -> float:
    s = sorted(vals)
    n = len(s)
    mid = n // 2
    return float(s[mid]) if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def imbalance(per_rank: list[dict]) -> dict:
    """Reduce per-rank :meth:`PhaseTimer.results` into min/median/max
    load-imbalance statistics per phase.

    For every phase path seen on any rank, each reduced field carries
    ``{"min", "median", "max", "sum"}`` over ranks (ranks missing the
    phase contribute zero), plus ``imbalance = max / median`` of wall
    time — the quantity the paper's scalability argument tracks.
    Counters are summed across ranks.

    Example::

        stats = obs.imbalance([timer.results() for timer in timers])
        stats["amr/balance"]["wall_s"]["max"]
        stats["amr/balance"]["imbalance"]
    """
    paths: set[str] = set()
    for r in per_rank:
        paths.update(r.keys())
    out: dict[str, dict] = {}
    blank = _blank_record()
    for path in sorted(paths):
        recs = [r.get(path, blank) for r in per_rank]
        entry: dict = {"ranks_present": sum(1 for r in per_rank if path in r)}
        for f in _REDUCED_FIELDS:
            vals = [rec[f] for rec in recs]
            entry[f] = {
                "min": min(vals),
                "median": _median(vals),
                "max": max(vals),
                "sum": sum(vals),
            }
        entry["count"] = sum(rec["count"] for rec in recs)
        med = entry["wall_s"]["median"]
        entry["imbalance"] = entry["wall_s"]["max"] / med if med > 0 else 1.0
        counters: dict = {}
        for rec in recs:
            for k, v in rec["counters"].items():
                counters[k] = counters.get(k, 0) + v
        entry["counters"] = counters
        out[path] = entry
    return out
