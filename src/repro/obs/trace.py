"""Chrome-trace (``chrome://tracing`` / Perfetto) export of phase timelines.

Converts per-rank :meth:`~repro.obs.timer.PhaseTimer.trace_data` into
the Trace Event JSON format: one track (``tid``) per rank under a
single ``repro`` process, each phase entry a complete (``"ph": "X"``)
slice.  Nested phases nest visually because their time ranges are
contained in their parents' — exactly how the viewers render stacks.

Open the written file at https://ui.perfetto.dev or in Chrome's
``chrome://tracing``.

Example::

    def kernel(comm):
        timer = obs.enable(comm)
        ...
        return timer.trace_data()

    traces = run_spmd(4, kernel)
    obs.chrome_trace(traces, "pipeline_trace.json")
"""

from __future__ import annotations

import json

__all__ = ["chrome_trace", "trace_events"]


def _normalize(traces) -> list[dict]:
    out = []
    for t in traces:
        if hasattr(t, "trace_data"):
            t = t.trace_data()
        out.append(t)
    return out


def trace_events(traces: list) -> list[dict]:
    """Build the ``traceEvents`` list from per-rank trace data.

    ``traces`` is a list of :class:`~repro.obs.timer.PhaseTimer` objects
    or their :meth:`~repro.obs.timer.PhaseTimer.trace_data` dicts, one
    per rank.  Timestamps are aligned to the earliest rank epoch, so
    concurrently executing ranks line up on the common timeline
    (simulated ranks are threads sharing one monotonic clock).

    Example::

        events = trace_events([timer])
        assert events[0]["ph"] == "M"      # process_name metadata
    """
    traces = _normalize(traces)
    if not traces:
        return []
    base = min(t["epoch"] for t in traces)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for t in traces:
        rank = t["rank"]
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"sort_index": rank},
            }
        )
        offset = t["epoch"] - base
        for path, t0, dur in t["events"]:
            events.append(
                {
                    "name": path,
                    "cat": "phase",
                    "ph": "X",
                    "ts": (offset + t0) * 1e6,
                    "dur": dur * 1e6,
                    "pid": 0,
                    "tid": rank,
                }
            )
    return events


def chrome_trace(traces: list, path: str | None = None) -> dict:
    """Build (and optionally write) a Chrome-trace JSON document.

    Parameters
    ----------
    traces:
        Per-rank :class:`~repro.obs.timer.PhaseTimer` objects or
        ``trace_data()`` dicts.
    path:
        When given, the document is written there as JSON.

    Returns the document (``{"traceEvents": [...], ...}``) either way.

    Example::

        doc = obs.chrome_trace([timer], "trace.json")
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
    """
    doc = {
        "traceEvents": trace_events(traces),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs"},
    }
    if path is not None:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
    return doc
