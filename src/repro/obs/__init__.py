"""repro.obs — observability: phase timers, trace export, paper reports.

The measurement layer behind the paper's Tables IV-VI.  Three pieces:

- :mod:`repro.obs.timer` — hierarchical per-rank phase timers
  (``obs.phase("amr/balance")`` context managers, nestable, ~zero
  overhead when disabled) that snapshot
  :class:`~repro.parallel.stats.CommStats` deltas per phase and carry
  structured counters; :func:`imbalance` reduces per-rank results into
  min/median/max statistics.
- :mod:`repro.obs.trace` — Chrome-trace (``chrome://tracing`` /
  Perfetto) JSON export: one track per rank, nested phase slices.
- :mod:`repro.obs.report` — combines measured phase fractions with the
  :class:`~repro.parallel.machine.MachineModel` into the paper's
  Table IV-style AMR / Stokes / advection breakdown (markdown + JSON).

Quick use::

    from repro import obs

    timer = obs.enable()              # bind to this thread / rank
    with obs.phase("stokes"):
        obs.counter("minres_iterations", 42)
    obs.chrome_trace([timer], "trace.json")
    rep = obs.generate_report([timer.results()])
    print(obs.markdown_report(rep))

See OBSERVABILITY.md for the full guide.
"""

from .report import (
    PHASE_GROUPS,
    classify_phase,
    generate_report,
    job_phases,
    markdown_report,
    model_phase_comm,
)
from .timer import (
    NULL_PHASE,
    PhaseTimer,
    active,
    attached,
    counter,
    disable,
    enable,
    imbalance,
    phase,
)
from .trace import chrome_trace, trace_events

__all__ = [
    "PhaseTimer",
    "NULL_PHASE",
    "phase",
    "counter",
    "enable",
    "disable",
    "active",
    "attached",
    "imbalance",
    "chrome_trace",
    "trace_events",
    "PHASE_GROUPS",
    "classify_phase",
    "model_phase_comm",
    "generate_report",
    "markdown_report",
    "job_phases",
]
