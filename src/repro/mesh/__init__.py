"""Mesh layer: EXTRACTMESH, INTERPOLATEFIELDS, TRANSFERFIELDS, MARKELEMENTS.

Builds hexahedral finite element meshes (with hanging-node constraints and
ghost layers) from octrees, and implements the field-transfer operations of
the Figure-4 adaptation pipeline.
"""

from .extract import Mesh, extract_mesh, extract_submesh, node_keys
from .fields import interpolate_fields, interpolate_many
from .opcache import (
    CachedScatter,
    MeshOperatorCache,
    cache_disabled,
    cache_stats,
    operator_cache,
    reset_cache_stats,
    set_cache_enabled,
)
from .vtk import VtkSeries, write_vtk

__all__ = [
    "Mesh",
    "extract_mesh",
    "extract_submesh",
    "node_keys",
    "interpolate_fields",
    "interpolate_many",
    "MeshOperatorCache",
    "CachedScatter",
    "operator_cache",
    "cache_disabled",
    "cache_stats",
    "reset_cache_stats",
    "set_cache_enabled",
    "write_vtk",
    "VtkSeries",
]
