"""Distributed mesh extraction (parallel EXTRACTMESH) and field exchange.

Implements the parallel half of Section IV-B's EXTRACTMESH: each rank
extracts a mesh from its own leaves plus one *ghost layer* (every remote
leaf adjacent to a local leaf through a face, edge, or corner), computes a
consistent global numbering of independent dofs, and sets up the
communication pattern that the PDE solver uses:

- **node ownership**: a node belongs to the rank owning the first element
  (in global Morton order) that touches it — computable locally thanks to
  the ghost layer;
- **sum-exchange** (``exchange_sum``): add per-rank assembly contributions
  at shared nodes and redistribute the totals (the FEM ghost update);
- **parallel INTERPOLATEFIELDS** (:func:`par_interpolate_at`): point
  evaluations routed to owners along the space-filling curve.

Everything is bulk-synchronous over :class:`~repro.parallel.SimComm`
alltoalls, exactly the communication structure the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..octree import OctantArray, ROOT_LEN, morton_encode
from ..octree.partree import ParTree, owners_of_keys, partition_markers
from ..parallel import SimComm
from .extract import Mesh, extract_submesh, node_keys

__all__ = [
    "ParMesh",
    "extract_parmesh",
    "collect_ghosts",
    "par_interpolate_at",
    "UnbalancedTreeError",
]


class UnbalancedTreeError(RuntimeError):
    """Raised under ``REPRO_SANITIZE=1`` when ghost collection is
    attempted on a tree that violates corner 2:1 balance — the sampled
    ghost layer would silently be incomplete."""

    def __init__(self, violations: int):
        self.violations = violations
        super().__init__(
            "collect_ghosts requires a corner-balanced tree: "
            f"{violations} 2:1 balance violation(s) in the gathered tree"
        )


def _check_corner_balanced(pt: ParTree) -> None:
    """Sanitizer: verify the global tree is corner-balanced before ghost
    collection.  Collective (allgather) and symmetric — every rank sees
    the same violation count and raises together."""
    from ..analysis.sanitize import sanitize_enabled

    if not sanitize_enabled():
        return
    from ..octree.balance import balance_violations
    from ..octree.partree import gather_tree

    violations = balance_violations(gather_tree(pt), "corner")
    if violations:
        raise UnbalancedTreeError(violations)


def _adjacency_filter(
    local: OctantArray, ghosts: OctantArray, own: np.ndarray
) -> tuple[OctantArray, np.ndarray]:
    """Trim ghost candidates to the exact 26-adjacency layer: keep a
    ghost iff its closed box shares at least a point with some local
    leaf's closed box.  The child-center sampling can pick up near-miss
    leaves (far-half children of a neighbor region that only *contains* a
    sample, without touching the sampler); filtering makes the search
    path emit the same canonical layer as the recursive path."""
    if not len(ghosts) or not len(local):
        return ghosts, own
    llo = np.stack([local.x, local.y, local.z], axis=1)
    lhi = llo + local.lengths()[:, None]
    glo = np.stack([ghosts.x, ghosts.y, ghosts.z], axis=1)
    ghi = glo + ghosts.lengths()[:, None]
    keep = np.zeros(len(ghosts), dtype=bool)
    step = max(1, 2_000_000 // max(len(local), 1))
    for s in range(0, len(ghosts), step):
        e = s + step
        touch = (glo[s:e, None, :] <= lhi[None, :, :]) & (
            ghi[s:e, None, :] >= llo[None, :, :]
        )
        keep[s:e] = touch.all(axis=2).any(axis=1)
    return ghosts[keep], own[keep]


def collect_ghosts(
    pt: ParTree, algorithm: str = "search"
) -> tuple[OctantArray, np.ndarray]:
    """Gather the ghost layer: all remote leaves adjacent (26-connectivity)
    to local leaves.

    Requires a fully (corner-)balanced tree (checked under
    ``REPRO_SANITIZE=1``): the mesh layer needs one-deep ghost layers,
    and the search path's child-center sampling finds every adjacent leaf
    only on balanced trees.  ``algorithm="search"`` samples 26 directions
    x 8 child centers and pays a query/reply alltoall pair;
    ``"recursive"`` computes exact per-rank adjacency by marker recursion
    (:func:`repro.forest.recursive.ghost_recursive`) and ships boundary
    leaves in a single alltoall.  Both return the identical (bitwise)
    exact adjacency layer ``(ghosts, ghost_owner_ranks)``, sorted by key.
    """
    _check_corner_balanced(pt)
    if algorithm == "recursive":
        from ..forest.recursive import ghost_recursive

        return ghost_recursive(pt)
    if algorithm != "search":
        raise ValueError(f"unknown ghost algorithm {algorithm!r}")
    comm = pt.comm
    local = pt.local
    markers = partition_markers(comm, local)
    samples = []
    if len(local):
        h = local.lengths()
        q = h // 4  # child-center offsets within the neighbor region
        from ..octree.octants import DIRECTIONS

        for d in DIRECTIONS:
            nx, ny, nz, ok = local.neighbor_anchors(d)
            if not ok.any():
                continue
            bx, by, bz = nx[ok], ny[ok], nz[ok]
            hh = h[ok]
            qq = q[ok]
            for cx in (1, 3):
                for cy in (1, 3):
                    for cz in (1, 3):
                        samples.append(
                            morton_encode(
                                bx + cx * qq, by + cy * qq, bz + cz * qq
                            )
                        )
    pkeys = np.unique(np.concatenate(samples)) if samples else np.zeros(0, dtype=np.uint64)
    owners = owners_of_keys(markers, pkeys)
    remote = owners != comm.rank
    sendbufs = [pkeys[remote & (owners == r)] for r in range(comm.size)]
    recv = comm.alltoall(sendbufs)
    # answer queries: containing local leaf of each key
    replies = []
    for buf in recv:
        if len(buf) == 0:
            replies.append(np.zeros((0, 4), dtype=np.int64))
            continue
        idx = np.unique(np.searchsorted(local.keys(), buf, side="right") - 1)
        out = np.empty((len(idx), 4), dtype=np.int64)
        out[:, 0] = local.x[idx]
        out[:, 1] = local.y[idx]
        out[:, 2] = local.z[idx]
        out[:, 3] = local.level[idx]
        replies.append(out)
    got = comm.alltoall(replies)
    parts = []
    owners_out = []
    for r, buf in enumerate(got):
        if len(buf):
            parts.append(buf)
            owners_out.append(np.full(len(buf), r, dtype=np.int64))
    if not parts:
        return OctantArray.empty(), np.zeros(0, dtype=np.int64)
    blk = np.concatenate(parts, axis=0)
    own = np.concatenate(owners_out)
    ghosts = OctantArray(blk[:, 0], blk[:, 1], blk[:, 2], blk[:, 3])
    # dedup (an octant may answer queries from several directions)
    order = np.lexsort((ghosts.level, ghosts.keys()))
    ghosts = ghosts[order]
    own = own[order]
    keep = np.ones(len(ghosts), dtype=bool)
    keep[1:] = ghosts.keys()[1:] != ghosts.keys()[:-1]
    return _adjacency_filter(local, ghosts[keep], own[keep])


@dataclass
class ParMesh:
    """One rank's view of the distributed mesh.

    The mesh spans the union of owned and ghost elements; arrays indexed
    by "node" refer to this union mesh's nodes.
    """

    comm: SimComm
    mesh: Mesh                 # union (local + ghost) submesh
    owned_elements: np.ndarray  # mask over union elements
    node_owner: np.ndarray      # owning rank per union-mesh node
    active: np.ndarray          # independent dofs touched by owned elements
    global_dof: np.ndarray      # global id per independent dof (-1 inactive)
    n_global: int               # global number of independent dofs
    # exchange plan
    send_plan: list = field(default_factory=list)   # per rank: my dof idx to send
    serve_plan: list = field(default_factory=list)  # per rank: my dof idx they reference

    @property
    def n_owned_elements(self) -> int:
        return int(self.owned_elements.sum())

    def global_element_count(self) -> int:
        return self.comm.allreduce(self.n_owned_elements)

    # -- communication -----------------------------------------------------------

    def exchange_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum per-rank contributions at shared independent dofs.

        ``values`` is over independent dofs of the union mesh (entries at
        inactive dofs are ignored).  Returns the globally assembled values
        at all active dofs (inactive entries zeroed).
        """
        comm = self.comm
        # 1. send my contributions at dofs owned by others to their owner
        out = [values[idx] for idx in self.send_plan]
        got = comm.alltoall(out)
        acc = values.copy()
        acc[~self.active] = 0.0
        for r, buf in enumerate(got):
            if len(buf):
                np.add.at(acc, self.serve_plan[r], buf)
        # 2. owners return the assembled totals
        back = comm.alltoall([acc[self.serve_plan[r]] for r in range(comm.size)])
        for r, buf in enumerate(back):
            if len(buf):
                acc[self.send_plan[r]] = buf
        return acc

    def consistent(self, values: np.ndarray) -> np.ndarray:
        """Overwrite non-owned active dofs with the owner's value."""
        comm = self.comm
        back = comm.alltoall([values[self.serve_plan[r]] for r in range(comm.size)])
        out = values.copy()
        for r, buf in enumerate(back):
            if len(buf):
                out[self.send_plan[r]] = buf
        return out

    def gather_global(self, values: np.ndarray) -> np.ndarray:
        """Assemble the full global dof vector on every rank (testing)."""
        mine = self.node_owner[self.mesh.indep_nodes] == self.comm.rank
        gids = self.global_dof[mine]
        vals = values[mine]
        parts = self.comm.allgather(np.stack([gids.astype(np.float64), vals], axis=1))
        out = np.zeros(self.n_global)
        for p in parts:
            if len(p):
                out[p[:, 0].astype(np.int64)] = p[:, 1]
        return out


def extract_parmesh(
    pt: ParTree,
    domain=(1.0, 1.0, 1.0),
    *,
    ghost_algorithm: str = "search",
    face_algorithm: str = "search",
) -> ParMesh:
    """Parallel EXTRACTMESH: ghost layer, union submesh, node ownership,
    global numbering, and the shared-dof exchange plan.

    ``ghost_algorithm`` selects :func:`collect_ghosts`' strategy and
    ``face_algorithm`` the hanging-constraint matcher of
    :func:`~repro.mesh.extract.extract_submesh`; both pairs produce
    bitwise-identical meshes."""
    comm = pt.comm
    ghosts, ghost_owner = collect_ghosts(pt, ghost_algorithm)
    # union, sorted by Morton key; track ownership
    union = OctantArray.concat([pt.local, ghosts])
    owner_elem = np.concatenate(
        [np.full(len(pt.local), comm.rank, dtype=np.int64), ghost_owner]
    )
    order = np.lexsort((union.level, union.keys()))
    union = union[order]
    owner_elem = owner_elem[order]
    owned_mask = owner_elem == comm.rank

    mesh = extract_submesh(union, domain, face_algorithm=face_algorithm)

    # node ownership: the rank whose leaf-key interval contains the node's
    # (clamped) position — i.e. the owner of the leaf the node sits on the
    # corner of, in the Morton sense.  Deterministic, globally consistent,
    # and computable locally; the owning leaf touches the node, so the
    # owner always has the node in its own (active) mesh.
    markers = partition_markers(comm, pt.local)
    clamped = np.minimum(mesh.node_coords_int, ROOT_LEN - 1)
    node_owner = owners_of_keys(
        markers, morton_encode(clamped[:, 0], clamped[:, 1], clamped[:, 2])
    )

    # active independent dofs: touched by at least one owned element
    indep = mesh.indep_nodes
    touched = np.zeros(mesh.n_nodes, dtype=bool)
    touched[mesh.element_nodes[owned_mask].ravel()] = True
    # hanging nodes activate their parents
    hang_touched = np.flatnonzero(touched & mesh.hanging)
    if len(hang_touched):
        rows = mesh.Z[hang_touched]
        touched[indep[rows.indices]] = True
    active = touched[indep]

    # global numbering of owned active dofs
    dof_owner = node_owner[indep]
    owned_dofs = active & (dof_owner == comm.rank)
    n_owned = int(owned_dofs.sum())
    offset = comm.exscan(n_owned)
    n_global = comm.allreduce(n_owned)
    global_dof = np.full(len(indep), -1, dtype=np.int64)
    global_dof[owned_dofs] = offset + np.arange(n_owned)

    # handshake: request ids of active dofs owned elsewhere, keyed by the
    # node coordinate key (globally unique)
    nkeys = node_keys(mesh.node_coords_int[indep])
    reqs = []
    req_idx = []
    for r in range(comm.size):
        sel = np.flatnonzero(active & (dof_owner == r) & (r != comm.rank))
        reqs.append(nkeys[sel])
        req_idx.append(sel)
    got = comm.alltoall(reqs)
    # serve: map requested keys to my dof indices
    sorter = np.argsort(nkeys)
    serve_plan = []
    for r, buf in enumerate(got):
        if len(buf) == 0:
            serve_plan.append(np.zeros(0, dtype=np.int64))
            continue
        pos = np.searchsorted(nkeys[sorter], buf)
        idx = sorter[pos]
        if not np.array_equal(nkeys[idx], buf):
            raise AssertionError("requested shared dof not found on owner")
        serve_plan.append(idx)
    replies = comm.alltoall([global_dof[serve_plan[r]] for r in range(comm.size)])
    for r, buf in enumerate(replies):
        if len(buf):
            if np.any(buf < 0):
                raise AssertionError("owner returned unnumbered dof")
            global_dof[req_idx[r]] = buf

    return ParMesh(
        comm=comm,
        mesh=mesh,
        owned_elements=owned_mask,
        node_owner=node_owner,
        active=active,
        global_dof=global_dof,
        n_global=n_global,
        send_plan=req_idx,
        serve_plan=serve_plan,
    )


def par_interpolate_at(
    pm: ParMesh, markers: np.ndarray, u_full: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Parallel INTERPOLATEFIELDS: evaluate this rank's FE field queries at
    arbitrary physical points, routing each query to the rank whose leaf
    range contains it (``markers`` from the *source* tree's partition).

    ``u_full`` is the full node vector of ``pm.mesh``.  Returns one value
    per query point.
    """
    comm = pm.comm
    pts = np.asarray(points, dtype=np.float64)
    unit = np.clip(pts / pm.mesh.domain, 0.0, 1.0 - 1e-15)
    pint = (unit * ROOT_LEN).astype(np.int64)
    pkeys = morton_encode(pint[:, 0], pint[:, 1], pint[:, 2])
    owners = owners_of_keys(markers, pkeys)
    vals = np.empty(len(pts))
    send = []
    send_idx = []
    for r in range(comm.size):
        sel = np.flatnonzero(owners == r)
        send.append(pts[sel])
        send_idx.append(sel)
    got = comm.alltoall(send)
    replies = []
    for buf in got:
        if len(buf) == 0:
            replies.append(np.zeros(0))
            continue
        replies.append(pm.mesh.interpolate_at(u_full, buf))
    back = comm.alltoall(replies)
    for r, buf in enumerate(back):
        if len(buf):
            vals[send_idx[r]] = buf
    return vals
