"""Per-mesh operator cache: setup amortization across solves.

The Figure-8 breakdown makes the mantle-convection step >95% Stokes
solve, and the Stokes solve in turn spends most of its setup rebuilding
objects that depend only on the *mesh* — scatter index maps, the
block-diagonal constraint operator ``Z3``, element geometry factors,
boundary dof sets — on every Picard pass and every time step.  Between
mesh adaptations (every ``adapt_every`` ~ 16 steps) none of these change.

The cache attaches lazily to a :class:`~repro.mesh.extract.Mesh`
instance, so invalidation is structural: ``adapt()`` produces a *new*
mesh object, and with it a fresh, empty cache — no generation counters
to keep in sync, nothing stale to drop.  Global hit/miss counters are
kept for the perf-regression harness.

Memoization never changes arithmetic: cached values are exactly the
arrays the builder would produce, so solver results with the cache on
and off are bitwise identical (a property the regression tests pin).
The :func:`cache_disabled` context manager turns reuse off for such
comparisons without touching any call sites.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = [
    "MeshOperatorCache",
    "CachedScatter",
    "operator_cache",
    "cache_enabled",
    "set_cache_enabled",
    "cache_disabled",
    "cache_stats",
    "reset_cache_stats",
]

_ENABLED = True


def _sanitizing() -> bool:
    """Mutation guards active?  (env check inlined so the common path
    pays no import; the guard module loads lazily on first use)"""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def _guard():
    from ..analysis import sanitize

    return sanitize


@dataclass
class _GlobalStats:
    hits: int = 0
    misses: int = 0
    bypasses: int = 0  # lookups made while the cache was disabled

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "bypasses": self.bypasses}


_STATS = _GlobalStats()


def cache_enabled() -> bool:
    return _ENABLED


def set_cache_enabled(flag: bool) -> None:
    """Globally enable/disable memoization (builders still run either way)."""
    global _ENABLED
    _ENABLED = bool(flag)


@contextmanager
def cache_disabled():
    """Temporarily disable operator-cache reuse (for on/off comparisons)."""
    prev = _ENABLED
    set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(prev)


def cache_stats() -> dict:
    """Global hit/miss counters (aggregated over all meshes)."""
    return _STATS.as_dict()


def reset_cache_stats() -> None:
    _STATS.hits = 0
    _STATS.misses = 0
    _STATS.bypasses = 0


@dataclass
class MeshOperatorCache:
    """Keyed store of mesh-derived operators with hit/miss accounting."""

    store: dict = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    #: blake2b fingerprints taken at store time under REPRO_SANITIZE=1;
    #: verified on every hit to detect in-place mutation of cached state
    tokens: dict = field(default_factory=dict)

    def get(self, key, builder):
        """Return the cached value for ``key``, building it on a miss.

        When caching is globally disabled the builder runs every time and
        nothing is stored, so repeated calls exercise identical code.
        Under ``REPRO_SANITIZE=1`` every hit re-verifies the value's
        content fingerprint and raises
        :class:`repro.analysis.sanitize.CacheMutationError` if the
        memoized value was written in place since it was stored.
        """
        if not _ENABLED:
            _STATS.bypasses += 1
            return builder()
        try:
            value = self.store[key]
        except KeyError:
            self.misses += 1
            _STATS.misses += 1
            value = builder()
            self.store[key] = value
            if _sanitizing():
                self.tokens[key] = _guard().freeze(value)
            return value
        self.hits += 1
        _STATS.hits += 1
        if _sanitizing():
            token = self.tokens.get(key)
            if token is None:
                # cached before sanitizing was switched on: adopt now
                self.tokens[key] = _guard().freeze(value)
            else:
                _guard().verify_frozen(value, token, context=f"opcache[{key!r}]")
        return value

    def clear(self) -> None:
        self.store.clear()
        self.tokens.clear()


def operator_cache(mesh) -> MeshOperatorCache:
    """The operator cache of a mesh, created on first access.

    Lives on the mesh instance, so a new mesh (after adaptation) starts
    with an empty cache and the old one is garbage-collected with the old
    mesh — structural invalidation.
    """
    cache = getattr(mesh, "_opcache", None)
    if cache is None:
        cache = MeshOperatorCache()
        mesh._opcache = cache
    return cache


class CachedScatter:
    """Precomputed COO -> CSR reduction for a fixed sparsity pattern.

    Element-matrix assembly scatters the same (rows, cols) pattern on
    every call; only the data changes with the material coefficients.
    Sorting and duplicate-merging the pattern once and replaying it with
    ``np.add.reduceat`` removes the dominant per-assembly cost.
    """

    def __init__(self, rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int]):
        rows = np.asarray(rows).ravel()
        cols = np.asarray(cols).ravel()
        order = np.lexsort((cols, rows))
        r = rows[order]
        c = cols[order]
        first = np.r_[True, (r[1:] != r[:-1]) | (c[1:] != c[:-1])]
        self.order = order
        self.starts = np.flatnonzero(first)
        counts = np.bincount(r[self.starts], minlength=shape[0])
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.indices = c[self.starts].astype(np.int64)
        self.shape = shape
        self._token = (
            _guard().freeze(self._pattern_arrays()) if _sanitizing() else None
        )

    def _pattern_arrays(self) -> list[np.ndarray]:
        return [self.order, self.starts, self.indptr, self.indices]

    def assemble(self, data: np.ndarray) -> sp.csr_matrix:
        """CSR matrix with the cached structure and summed ``data``."""
        if _sanitizing():
            if self._token is None:
                self._token = _guard().freeze(self._pattern_arrays())
            else:
                _guard().verify_frozen(
                    self._pattern_arrays(), self._token, context="CachedScatter pattern"
                )
        d = np.add.reduceat(np.asarray(data).ravel()[self.order], self.starts)
        A = sp.csr_matrix(
            (d, self.indices, self.indptr), shape=self.shape, copy=False
        )
        # the pattern is sorted and duplicate-free by construction; telling
        # scipy prevents it from ever rewriting the shared index arrays
        A.has_sorted_indices = True
        A.has_canonical_format = True
        return A
