"""INTERPOLATEFIELDS: move finite element fields between meshes.

After the octree is adapted (coarsen + refine + balance) a new mesh is
extracted and the solution fields must follow.  The paper interpolates
between two trilinear meshes that differ by at most one level per leaf;
with trilinear elements this is equivalent to evaluating the old FE field
at the new node locations, which is what we do:

- for refined regions the new nodes lie inside old elements and the
  evaluation is the exact trilinear embedding (no accuracy loss);
- for coarsened regions the evaluation is nodal injection (sampling the
  old field at the surviving coarse nodes), the standard choice.

The serial entry point is :func:`interpolate_fields`; the distributed
variant lives with the distributed mesh in :mod:`repro.mesh.parmesh`.
"""

from __future__ import annotations

import numpy as np

from .extract import Mesh

__all__ = ["interpolate_fields", "interpolate_many"]


def interpolate_fields(old_mesh: Mesh, u_full_old: np.ndarray, new_mesh: Mesh) -> np.ndarray:
    """Transfer a nodal field to a new mesh extracted from an adapted tree.

    Parameters
    ----------
    old_mesh, new_mesh:
        Meshes over the same physical domain.
    u_full_old:
        Full node vector on ``old_mesh`` (hanging nodes already consistent,
        i.e. ``u_full = Z @ u_indep``).

    Returns
    -------
    Full node vector on ``new_mesh``.  The returned field is made
    hanging-consistent by re-expanding its independent values, so it can
    be used directly by assembly.
    """
    if not np.allclose(old_mesh.domain, new_mesh.domain):
        raise ValueError("meshes must share the physical domain")
    pts = new_mesh.node_coords()
    vals = old_mesh.interpolate_at(u_full_old, pts)
    # Re-impose hanging consistency on the new mesh.  For nested trilinear
    # meshes the evaluation is already consistent; this guards the
    # coarsening direction where injection can break it at new hanging
    # nodes whose parents changed.
    return new_mesh.expand(vals[new_mesh.indep_nodes])


def interpolate_many(old_mesh: Mesh, fields: dict, new_mesh: Mesh) -> dict:
    """Transfer several nodal fields at once; returns a same-keyed dict."""
    return {k: interpolate_fields(old_mesh, v, new_mesh) for k, v in fields.items()}
