"""EXTRACTMESH: build a hexahedral finite element mesh from an octree.

Each leaf octant becomes a trilinear hexahedral element (Section IV).
Nonconforming coarse-to-fine transitions produce *hanging nodes* on faces
and edges; these carry no degrees of freedom — algebraic constraints
interpolate them from the independent nodes of the coarse side:

- an edge-midpoint hanging node is the average of the two edge endpoints;
- a face-center hanging node is the average of the four face corners.

Constraint parents may themselves be hanging (a fine element's corner can
sit on a coarser neighbor's edge); the closure is resolved transitively,
which terminates because parents always belong to strictly coarser
elements.  The full constraint operator is assembled as a sparse matrix
``Z`` mapping independent dofs to all mesh nodes, so a constrained
Galerkin operator is simply ``Z.T @ A_full @ Z`` — the element-level
constraint enforcement the paper describes, in matrix form.

The mesh pipeline expects a *fully* 2:1 balanced tree (corner
connectivity).  The paper balances faces and edges only; we use the
stronger p4est-style full balance so that ghost layers and node ownership
in the distributed mesh (see :mod:`repro.mesh.parmesh`) stay one level
deep.  Full balance is a superset, so all paper invariants hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..octree import ROOT_LEN
from ..octree.linear import LinearOctree as _LinearOctree
from .opcache import operator_cache

__all__ = ["Mesh", "extract_mesh", "extract_submesh", "node_keys"]

_R1 = np.uint64(ROOT_LEN + 1)

# Corner offsets in units of the element edge length, vertex i at
# ((i & 1), (i >> 1) & 1, (i >> 2) & 1) — x fastest, matching OctantArray.
_CORNER = np.array(
    [[(i & 1), (i >> 1) & 1, (i >> 2) & 1] for i in range(8)], dtype=np.int64
)

# The 12 edges as corner-index pairs (local vertex numbering above).
_EDGES = np.array(
    [
        (0, 1), (2, 3), (4, 5), (6, 7),  # x-directed
        (0, 2), (1, 3), (4, 6), (5, 7),  # y-directed
        (0, 4), (1, 5), (2, 6), (3, 7),  # z-directed
    ],
    dtype=np.int64,
)

# The 6 faces as corner-index quadruples.
_FACES = np.array(
    [
        (0, 2, 4, 6),  # -x
        (1, 3, 5, 7),  # +x
        (0, 1, 4, 5),  # -y
        (2, 3, 6, 7),  # +y
        (0, 1, 2, 3),  # -z
        (4, 5, 6, 7),  # +z
    ],
    dtype=np.int64,
)


def node_keys(coords: np.ndarray) -> np.ndarray:
    """Collapse integer node coordinates (values in [0, ROOT_LEN]) to a
    unique uint64 key: ``(z*(R+1) + y)*(R+1) + x``."""
    c = coords.astype(np.uint64)
    return (c[:, 2] * _R1 + c[:, 1]) * _R1 + c[:, 0]


@dataclass
class Mesh:
    """A hexahedral finite element mesh extracted from an octree.

    Attributes
    ----------
    tree:
        The (balanced, complete) octree the mesh was extracted from, or
        ``None`` for distributed submeshes (local + ghost octants), where
        ``leaves`` holds the octant set directly.
    domain:
        Physical size ``(Lx, Ly, Lz)`` of the root box; the unit cube is
        scaled anisotropically (this is how RHEA's 8 x 4 x 1 Cartesian
        domain is realized on a single octree).
    node_coords_int:
        ``(n_nodes, 3)`` integer node coordinates in finest-cell units.
    element_nodes:
        ``(n_elements, 8)`` node indices per element, vertex-ordered with
        x fastest (matching trilinear shape function ordering).
    hanging:
        Boolean mask of hanging nodes.
    Z:
        ``(n_nodes, n_independent)`` CSR constraint operator; row ``i``
        expresses node ``i`` as a combination of independent dofs.
    indep_nodes:
        Node index of each independent dof (column order of ``Z``).
    """

    tree: _LinearOctree | None
    leaves: "object"  # OctantArray of the mesh elements (= tree.leaves when tree given)
    domain: np.ndarray
    node_coords_int: np.ndarray
    element_nodes: np.ndarray
    hanging: np.ndarray
    Z: sp.csr_matrix
    indep_nodes: np.ndarray
    dof_of_node: np.ndarray = field(repr=False)  # -1 for hanging nodes

    # -- sizes --------------------------------------------------------------

    @property
    def n_elements(self) -> int:
        return self.element_nodes.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.node_coords_int.shape[0]

    @property
    def n_independent(self) -> int:
        return len(self.indep_nodes)

    # -- geometry ------------------------------------------------------------

    def node_coords(self) -> np.ndarray:
        """(n_nodes, 3) physical node coordinates."""
        return self.node_coords_int.astype(np.float64) / ROOT_LEN * self.domain

    def element_sizes(self) -> np.ndarray:
        """(n_elements, 3) physical element edge lengths (hx, hy, hz)."""

        def build():
            h = self.leaves.lengths().astype(np.float64) / ROOT_LEN
            return h[:, None] * self.domain[None, :]

        return operator_cache(self).get("element_sizes", build)

    def element_centers(self) -> np.ndarray:
        return operator_cache(self).get(
            "element_centers", lambda: self.leaves.centers() * self.domain
        )

    def boundary_node_mask(self, axis: int | None = None, side: int | None = None) -> np.ndarray:
        """Nodes on the domain boundary; optionally one face only
        (``axis`` in 0..2, ``side`` 0 for the low face, 1 for the high)."""
        c = self.node_coords_int
        if axis is None:
            return np.any((c == 0) | (c == ROOT_LEN), axis=1)
        val = 0 if side == 0 else ROOT_LEN
        return c[:, axis] == val

    # -- constrained field handling --------------------------------------------

    def expand(self, u_indep: np.ndarray) -> np.ndarray:
        """Independent dof vector -> full node vector (hanging nodes
        interpolated).  Works on (n_indep,) or (n_indep, k) arrays."""
        return self.Z @ u_indep

    def restrict_values(self, u_full: np.ndarray) -> np.ndarray:
        """Full node vector -> independent dof values (pure extraction of
        the independent entries, NOT the transpose of expand)."""
        return u_full[self.indep_nodes]

    def interpolate_at(self, u_full: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Evaluate the trilinear FE field at physical points.

        ``points`` is (m, 3) inside the domain; returns (m,) values.
        Used by INTERPOLATEFIELDS (field transfer between meshes).
        """
        pts = np.asarray(points, dtype=np.float64) / self.domain  # unit cube
        pint = np.clip((pts * ROOT_LEN).astype(np.int64), 0, ROOT_LEN - 1)
        from ..octree import morton_encode

        pkeys = morton_encode(pint[:, 0], pint[:, 1], pint[:, 2])
        eidx = np.searchsorted(self.leaves.keys(), pkeys, side="right") - 1
        leaves = self.leaves
        # containment check (meaningful for submeshes whose leaves do not
        # tile the whole domain)
        from ..octree import key_range_size

        safe = np.clip(eidx, 0, len(leaves) - 1)
        start = leaves.keys()[safe]
        inside = (eidx >= 0) & (pkeys >= start) & (
            pkeys < start + key_range_size(leaves.level[safe])
        )
        if not np.all(inside):
            raise ValueError("interpolation point outside the local mesh")
        eidx = safe
        h = leaves.lengths().astype(np.float64)
        # local coordinates in [0, 1]^3 within the containing element
        anchors = np.stack([leaves.x, leaves.y, leaves.z], axis=1).astype(np.float64)
        loc = (pts * ROOT_LEN - anchors[eidx]) / h[eidx, None]
        loc = np.clip(loc, 0.0, 1.0)
        xi, eta, zeta = loc[:, 0], loc[:, 1], loc[:, 2]
        # trilinear shape functions, vertex order x fastest
        sx = np.stack([1 - xi, xi], axis=1)
        sy = np.stack([1 - eta, eta], axis=1)
        sz = np.stack([1 - zeta, zeta], axis=1)
        vals = np.zeros(len(pts), dtype=np.float64)
        en = self.element_nodes[eidx]
        for i in range(8):
            w = sx[:, i & 1] * sy[:, (i >> 1) & 1] * sz[:, (i >> 2) & 1]
            vals += w * u_full[en[:, i]]
        return vals


def _find_hanging_constraints(
    coords: np.ndarray,
    keys: np.ndarray,
    elements,  # OctantArray of the leaves
    face_algorithm: str = "search",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Identify hanging nodes and their direct parent lists.

    Returns ``(child_idx, parent_idx, weight)`` COO triplets where
    ``child_idx`` are node indices of hanging nodes (repeated per parent).

    ``face_algorithm`` selects how candidate node keys are resolved:
    ``"search"`` binary-searches the sorted key array per candidate,
    ``"recursive"`` answers all candidates in one stable merge
    (:func:`repro.octree.faces.merge_lookup`).  Identical results.
    """
    h = elements.lengths()
    if len(h) and int(h.min()) < 2:
        raise ValueError("mesh extraction requires element level <= MAX_LEVEL - 1")
    anchors = np.stack([elements.x, elements.y, elements.z], axis=1)

    key_sorter = np.argsort(keys)
    keys_sorted = keys[key_sorter]

    if face_algorithm == "recursive":
        from ..octree.faces import merge_lookup

        def lookup(cand_keys: np.ndarray) -> np.ndarray:
            """Node index of each key, or -1 if not a mesh node."""
            return merge_lookup(keys_sorted, key_sorter, cand_keys)

    elif face_algorithm == "search":

        def lookup(cand_keys: np.ndarray) -> np.ndarray:
            """Node index of each key, or -1 if not a mesh node."""
            pos = np.searchsorted(keys_sorted, cand_keys)
            pos_c = np.clip(pos, 0, len(keys_sorted) - 1)
            hit = keys_sorted[pos_c] == cand_keys
            out = np.where(hit, key_sorter[pos_c], -1)
            return out

    else:
        raise ValueError(f"unknown face algorithm {face_algorithm!r}")

    children, parents, weights = [], [], []

    # corner coordinates per element, (ne, 8, 3)
    corner_xyz = anchors[:, None, :] + _CORNER[None, :, :] * h[:, None, None]

    # Edge midpoints: if the midpoint of an element's edge is a mesh node,
    # it hangs on that edge (weight 1/2 to each endpoint).
    for e0, e1 in _EDGES:
        mid = (corner_xyz[:, e0, :] + corner_xyz[:, e1, :]) // 2
        mid_idx = lookup(node_keys(mid))
        present = mid_idx >= 0
        if not present.any():
            continue
        p0 = node_keys(corner_xyz[present, e0, :])
        p1 = node_keys(corner_xyz[present, e1, :])
        i0 = lookup(p0)
        i1 = lookup(p1)
        m = mid_idx[present]
        children.append(np.concatenate([m, m]))
        parents.append(np.concatenate([i0, i1]))
        weights.append(np.full(2 * len(m), 0.5))

    # Face centers: weight 1/4 to each of the four face corners.
    for quad in _FACES:
        ctr = corner_xyz[:, quad, :].sum(axis=1) // 4
        ctr_idx = lookup(node_keys(ctr))
        present = ctr_idx >= 0
        if not present.any():
            continue
        m = ctr_idx[present]
        for q in quad:
            children.append(m)
            parents.append(lookup(node_keys(corner_xyz[present, q, :])))
        weights.append(np.full(4 * len(m), 0.25))

    if not children:
        empty_i = np.zeros(0, dtype=np.int64)
        return empty_i, empty_i, np.zeros(0)
    child = np.concatenate(children)
    parent = np.concatenate([p for p in parents])
    weight = np.concatenate(weights)
    if np.any(parent < 0):
        raise AssertionError("constraint parent is not a mesh node")
    return child, parent, weight


def extract_mesh(
    tree: _LinearOctree, domain=(1.0, 1.0, 1.0), *, face_algorithm: str = "search"
) -> Mesh:
    """Extract the hexahedral mesh and hanging-node constraints.

    ``tree`` must be complete and fully (corner-)balanced.
    """
    mesh = extract_submesh(tree.leaves, domain, face_algorithm=face_algorithm)
    mesh.tree = tree
    return mesh


def extract_submesh(
    leaves, domain=(1.0, 1.0, 1.0), *, face_algorithm: str = "search"
) -> Mesh:
    """Extract a mesh from an arbitrary (sorted, fully balanced) octant
    set — the local + ghost element union of a distributed mesh.

    Hanging-node classification is local: a node is detected as hanging
    when the coarse element whose face/edge it bisects is present in the
    set, which the ghost layer guarantees for all nodes of owned elements.
    """
    domain = np.asarray(domain, dtype=np.float64)
    h = leaves.lengths()
    anchors = np.stack([leaves.x, leaves.y, leaves.z], axis=1)
    corner_xyz = anchors[:, None, :] + _CORNER[None, :, :] * h[:, None, None]
    all_keys = node_keys(corner_xyz.reshape(-1, 3))
    keys, inverse = np.unique(all_keys, return_inverse=True)
    element_nodes = inverse.reshape(-1, 8).astype(np.int64)
    # recover coordinates of the unique nodes
    x = (keys % _R1).astype(np.int64)
    y = ((keys // _R1) % _R1).astype(np.int64)
    z = (keys // (_R1 * _R1)).astype(np.int64)
    coords = np.stack([x, y, z], axis=1)
    n_nodes = len(keys)

    child, parent, weight = _find_hanging_constraints(
        coords, keys, leaves, face_algorithm
    )
    hanging = np.zeros(n_nodes, dtype=bool)
    hanging[child] = True

    # Deduplicate constraint rows (a hanging node is discovered once per
    # coarse element touching it; all discoveries agree, keep the first).
    if len(child):
        order = np.argsort(child, kind="stable")
        child_s, parent_s, weight_s = child[order], parent[order], weight[order]
        starts = np.flatnonzero(np.r_[True, child_s[1:] != child_s[:-1]])
        # within one hanging node, keep the first group of rows: edge rows
        # have 2 parents, face rows 4; group size identified by weights.
        keep_rows = []
        ends = np.r_[starts[1:], len(child_s)]
        for s, e in zip(starts, ends):
            take = 2 if weight_s[s] == 0.5 else 4
            keep_rows.append(np.arange(s, s + take))
        keep = np.concatenate(keep_rows)
        child, parent, weight = child_s[keep], parent_s[keep], weight_s[keep]

    # Transitive closure: replace hanging parents by their own parents.
    direct = sp.csr_matrix(
        (weight, (child, parent)), shape=(n_nodes, n_nodes)
    )
    indep_nodes = np.flatnonzero(~hanging)
    dof_of_node = np.full(n_nodes, -1, dtype=np.int64)
    dof_of_node[indep_nodes] = np.arange(len(indep_nodes))

    # Transitive closure: substitute hanging parents by their own parents
    # until every parent is independent.  S = diag(independent) + direct
    # keeps independent columns and expands hanging ones; parents belong to
    # strictly coarser elements so the chain terminates.
    closure = direct.copy()
    subst = sp.diags((~hanging).astype(np.float64)) + direct
    for _ in range(8):
        if len(child) == 0 or not hanging[closure.indices].any():
            break
        closure = closure @ subst
        closure.eliminate_zeros()
    else:
        raise AssertionError("hanging constraint closure did not terminate")

    # Assemble Z in COO form: identity rows for independent nodes, closure
    # rows for hanging nodes, columns renumbered to independent dofs.
    hang_idx = np.flatnonzero(hanging)
    ch = closure[hang_idx]
    rows_h = np.repeat(hang_idx, np.diff(ch.indptr))
    cols_h = dof_of_node[ch.indices]
    if len(cols_h) and cols_h.min() < 0:
        raise AssertionError("closure row references a hanging parent")
    Z = sp.csr_matrix(
        (
            np.concatenate([np.ones(len(indep_nodes)), ch.data]),
            (
                np.concatenate([indep_nodes, rows_h]),
                np.concatenate([np.arange(len(indep_nodes)), cols_h]),
            ),
        ),
        shape=(n_nodes, len(indep_nodes)),
    )

    return Mesh(
        tree=None,
        leaves=leaves,
        domain=domain,
        node_coords_int=coords,
        element_nodes=element_nodes,
        hanging=hanging,
        Z=Z,
        indep_nodes=indep_nodes,
        dof_of_node=dof_of_node,
    )
