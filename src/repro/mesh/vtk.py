"""Legacy-VTK export of octree meshes and fields (visualization).

Writes ASCII legacy ``.vtk`` unstructured-grid files viewable in
ParaView/VisIt — the figures of the paper (adapted meshes colored by
temperature, viscosity, partition rank) are reproducible from these
exports.  No third-party dependencies.
"""

from __future__ import annotations

import numpy as np

from .extract import Mesh

__all__ = ["write_vtk"]

# VTK_HEXAHEDRON expects vertices ordered as the 4 bottom corners CCW then
# the 4 top corners CCW; our element vertex order is x-fastest binary.
_VTK_ORDER = np.array([0, 1, 3, 2, 4, 5, 7, 6], dtype=np.int64)


def write_vtk(
    path: str,
    mesh: Mesh,
    point_fields: dict | None = None,
    cell_fields: dict | None = None,
    title: str = "repro octree mesh",
) -> None:
    """Write the mesh and optional nodal / per-element fields.

    Parameters
    ----------
    path:
        Output file path (conventionally ``*.vtk``).
    point_fields:
        Name -> (n_nodes,) arrays (full node vectors, hanging included).
    cell_fields:
        Name -> (n_elements,) arrays (e.g. viscosity, level, rank).
    """
    pts = mesh.node_coords()
    cells = mesh.element_nodes[:, _VTK_ORDER]
    ne = mesh.n_elements
    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {mesh.n_nodes} double",
    ]
    lines.extend(" ".join(f"{v:.10g}" for v in p) for p in pts)
    lines.append(f"CELLS {ne} {ne * 9}")
    lines.extend("8 " + " ".join(str(i) for i in c) for c in cells)
    lines.append(f"CELL_TYPES {ne}")
    lines.extend("12" for _ in range(ne))  # VTK_HEXAHEDRON

    if point_fields:
        lines.append(f"POINT_DATA {mesh.n_nodes}")
        for name, arr in point_fields.items():
            arr = np.asarray(arr, dtype=np.float64)
            if arr.shape != (mesh.n_nodes,):
                raise ValueError(f"point field {name!r} has wrong length")
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{v:.10g}" for v in arr)
    if cell_fields:
        lines.append(f"CELL_DATA {ne}")
        for name, arr in cell_fields.items():
            arr = np.asarray(arr, dtype=np.float64)
            if arr.shape != (ne,):
                raise ValueError(f"cell field {name!r} has wrong length")
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{v:.10g}" for v in arr)

    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
