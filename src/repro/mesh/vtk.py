"""Legacy-VTK export of octree meshes and fields (visualization).

Writes ASCII legacy ``.vtk`` unstructured-grid files viewable in
ParaView/VisIt — the figures of the paper (adapted meshes colored by
temperature, viscosity, partition rank) are reproducible from these
exports.  No third-party dependencies.
"""

from __future__ import annotations

import os
import re

import numpy as np

from .extract import Mesh

__all__ = ["write_vtk", "VtkSeries"]

# VTK_HEXAHEDRON expects vertices ordered as the 4 bottom corners CCW then
# the 4 top corners CCW; our element vertex order is x-fastest binary.
_VTK_ORDER = np.array([0, 1, 3, 2, 4, 5, 7, 6], dtype=np.int64)


def write_vtk(
    path: str,
    mesh: Mesh,
    point_fields: dict | None = None,
    cell_fields: dict | None = None,
    title: str = "repro octree mesh",
    step: int | None = None,
    time: float | None = None,
) -> None:
    """Write the mesh and optional nodal / per-element fields.

    Parameters
    ----------
    path:
        Output file path (conventionally ``*.vtk``).
    point_fields:
        Name -> (n_nodes,) arrays (full node vectors, hanging included).
    cell_fields:
        Name -> (n_elements,) arrays (e.g. viscosity, level, rank).
    step, time:
        Simulation counters, written as a legacy ``FIELD`` block
        (``CYCLE`` / ``TIME``, the convention ParaView and VisIt read);
        pass the restored driver counters so a resumed run's outputs
        carry the true step/time rather than restarting at 0.
    """
    pts = mesh.node_coords()
    cells = mesh.element_nodes[:, _VTK_ORDER]
    ne = mesh.n_elements
    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
    ]
    n_meta = (step is not None) + (time is not None)
    if n_meta:
        lines.append(f"FIELD FieldData {n_meta}")
        if step is not None:
            lines.append("CYCLE 1 1 int")
            lines.append(str(int(step)))
        if time is not None:
            lines.append("TIME 1 1 double")
            lines.append(f"{float(time):.17g}")
    lines.append(f"POINTS {mesh.n_nodes} double")
    lines.extend(" ".join(f"{v:.10g}" for v in p) for p in pts)
    lines.append(f"CELLS {ne} {ne * 9}")
    lines.extend("8 " + " ".join(str(i) for i in c) for c in cells)
    lines.append(f"CELL_TYPES {ne}")
    lines.extend("12" for _ in range(ne))  # VTK_HEXAHEDRON

    if point_fields:
        lines.append(f"POINT_DATA {mesh.n_nodes}")
        for name, arr in point_fields.items():
            arr = np.asarray(arr, dtype=np.float64)
            if arr.shape != (mesh.n_nodes,):
                raise ValueError(f"point field {name!r} has wrong length")
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{v:.10g}" for v in arr)
    if cell_fields:
        lines.append(f"CELL_DATA {ne}")
        for name, arr in cell_fields.items():
            arr = np.asarray(arr, dtype=np.float64)
            if arr.shape != (ne,):
                raise ValueError(f"cell field {name!r} has wrong length")
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{v:.10g}" for v in arr)

    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


class VtkSeries:
    """A step-indexed sequence of VTK files (``<prefix>_<step:06d>.vtk``).

    The series is resumable: on construction any files already matching
    the prefix are scanned, and subsequent writes must carry a strictly
    larger step than everything on disk.  A run resumed from a
    checkpoint therefore *extends* the series from its restored step
    counter — it cannot silently clobber earlier outputs by counting
    from 0 again, and the step/time metadata inside each file stays
    monotone across the restart.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        directory = os.path.dirname(prefix) or "."
        base = os.path.basename(prefix)
        pat = re.compile(re.escape(base) + r"_(\d{6})\.vtk$")
        steps = []
        if os.path.isdir(directory):
            for name in sorted(os.listdir(directory)):
                m = pat.match(name)
                if m:
                    steps.append(int(m.group(1)))
        self.last_step: int | None = max(steps) if steps else None
        self.last_time: float | None = None

    def path_for(self, step: int) -> str:
        return f"{self.prefix}_{step:06d}.vtk"

    def write(
        self,
        mesh: Mesh,
        step: int,
        time: float,
        point_fields: dict | None = None,
        cell_fields: dict | None = None,
        title: str = "repro octree mesh",
    ) -> str:
        """Write the next member; enforces strictly increasing steps and
        non-decreasing times.  Returns the path written."""
        if self.last_step is not None and step <= self.last_step:
            raise ValueError(
                f"VtkSeries {self.prefix!r}: step {step} does not extend the "
                f"series (last written step is {self.last_step}); resumed "
                "runs must continue from their restored counters"
            )
        if self.last_time is not None and time < self.last_time:
            raise ValueError(
                f"VtkSeries {self.prefix!r}: time {time} moves backwards "
                f"(last written time is {self.last_time})"
            )
        path = self.path_for(step)
        write_vtk(
            path, mesh,
            point_fields=point_fields, cell_fields=cell_fields,
            title=title, step=step, time=time,
        )
        self.last_step = step
        self.last_time = time
        return path
