"""Correctness tooling for the SPMD reproduction.

The paper's scalability argument rests on properties that are easy to
break silently in a growing codebase:

- **bulk-synchronous SPMD symmetry** — every rank must issue the same
  collective sequence (``BalanceTree``, ``PartitionTree``,
  ``ExtractMesh`` all hinge on matched ``allgather`` / ``allreduce`` /
  ``alltoall`` rounds); a single rank-dependent branch around a
  collective deadlocks or corrupts a run,
- **cache purity** — the setup-amortization layer (PR 1) memoizes
  mesh-derived operators and lags the AMG preconditioner; both are only
  correct if cached state is never mutated in place,
- **dtype discipline** — hot kernels assume float64 arithmetic;
  accidental float32 mixing degrades MINRES/AMG convergence invisibly.

Two prongs check these properties:

``repro.analysis.lint``
    A static AST linter with repo-specific rules R1-R6, runnable as
    ``python -m repro.analysis.lint src/`` (``--commflow`` adds the
    interprocedural rules R7-R9).  Stdlib-only.

``repro.analysis.commflow``
    Interprocedural communication-flow analysis: a module-level call
    graph, per-function collective signatures, rules R7 (divergent
    collective order through call chains), R8 (send/recv pairing &
    deadlock), R9 (shared-buffer publication), and the static comm
    schedule of the AMR pipeline entry points
    (``python -m repro.analysis.commflow src/ --schedule out.json``).

``repro.analysis.conformance``
    Runtime schedule-conformance monitoring: under ``REPRO_SANITIZE=1``
    the observed collective stream is replayed against the static
    schedule (``REPRO_COMMFLOW_SCHEDULE=<json>``) and a mismatch raises
    a structured :class:`~repro.analysis.conformance.ScheduleMismatch`.

``repro.analysis.sanitize``
    Runtime sanitizers: :class:`~repro.analysis.sanitize.CheckedComm`
    (collective-divergence detection that raises instead of
    deadlocking, plus a seeded message-delivery fuzzer) and
    :func:`~repro.analysis.sanitize.freeze` /
    :func:`~repro.analysis.sanitize.verify_frozen` hash guards wired
    into the operator cache and the lagged preconditioner.  Enabled by
    ``REPRO_SANITIZE=1``.

The submodules are imported lazily so the linter stays importable
without numpy (CI runs it before installing the numeric toolchain).
"""

from __future__ import annotations

__all__ = ["commflow", "conformance", "linkcheck", "lint", "sanitize"]


def __getattr__(name):
    if name in __all__:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
