"""Correctness tooling for the SPMD reproduction.

The paper's scalability argument rests on properties that are easy to
break silently in a growing codebase:

- **bulk-synchronous SPMD symmetry** — every rank must issue the same
  collective sequence (``BalanceTree``, ``PartitionTree``,
  ``ExtractMesh`` all hinge on matched ``allgather`` / ``allreduce`` /
  ``alltoall`` rounds); a single rank-dependent branch around a
  collective deadlocks or corrupts a run,
- **cache purity** — the setup-amortization layer (PR 1) memoizes
  mesh-derived operators and lags the AMG preconditioner; both are only
  correct if cached state is never mutated in place,
- **dtype discipline** — hot kernels assume float64 arithmetic;
  accidental float32 mixing degrades MINRES/AMG convergence invisibly.

Two prongs check these properties:

``repro.analysis.lint``
    A static AST linter with repo-specific rules R1-R4, runnable as
    ``python -m repro.analysis.lint src/``.  Stdlib-only.

``repro.analysis.sanitize``
    Runtime sanitizers: :class:`~repro.analysis.sanitize.CheckedComm`
    (collective-divergence detection that raises instead of
    deadlocking, plus a seeded message-delivery fuzzer) and
    :func:`~repro.analysis.sanitize.freeze` /
    :func:`~repro.analysis.sanitize.verify_frozen` hash guards wired
    into the operator cache and the lagged preconditioner.  Enabled by
    ``REPRO_SANITIZE=1``.

The submodules are imported lazily so the linter stays importable
without numpy (CI runs it before installing the numeric toolchain).
"""

from __future__ import annotations

__all__ = ["lint", "sanitize"]


def __getattr__(name):
    if name in __all__:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
