"""Runtime sanitizers for SPMD collectives and memoized state.

Two failure classes that static linting (:mod:`repro.analysis.lint`)
cannot fully rule out are checked at runtime:

**Collective divergence** — :class:`CheckedComm` wraps the simulated
communicator and, before every collective, exchanges a small metadata
record ``(sequence number, op, call-site, payload signature)`` across
the world.  If the records disagree — one rank calls ``allreduce``
where another calls ``allgather``, from a different line, or with a
different payload dtype — every rank raises a structured
:class:`CollectiveMismatch` naming each rank's op and call-site instead
of deadlocking.  A rank that never shows up (the classic
rank-dependent-branch hang) trips a barrier timeout, which aborts the
world with the same report.  A seeded *delivery fuzzer* additionally
perturbs the order in which point-to-point messages are handed to the
transport (holding and releasing whole channels in shuffled order,
FIFO per channel as MPI guarantees) to surface latent ordering
assumptions.

**Cache mutation** — :func:`freeze` fingerprints the numpy content of
a memoized value; :func:`verify_frozen` recomputes the fingerprint at
the next access and raises :class:`CacheMutationError` if the value was
written in place.  :mod:`repro.mesh.opcache` and
:class:`repro.solvers.blockprec.LaggedStokesPreconditioner` call these
guards on every hit when sanitizing is enabled.

Enabling
--------
``REPRO_SANITIZE=1`` in the environment switches both prongs on:
:func:`repro.parallel.simcomm.run_spmd` substitutes :class:`CheckedComm`
for :class:`~repro.parallel.simcomm.SimComm`, and the cache guards
activate.  Programmatic control: :func:`install` / :func:`uninstall`
(which also take a fuzzer seed), or pass :class:`CheckedComm` to
:func:`repro.parallel.simcomm.set_comm_factory` directly.

The tier-1 suite is required to pass with ``REPRO_SANITIZE=1`` — the
sanitizers change failure modes, never results.

``REPRO_SANITIZE_TIMEOUT`` (seconds) overrides the metadata-barrier
timeout; with ``REPRO_COMMFLOW_SCHEDULE`` pointing at a static comm
schedule (see :mod:`repro.analysis.commflow`), every checked collective
is additionally replayed against the schedule automaton and a
divergence raises :class:`repro.analysis.conformance.ScheduleMismatch`.
"""

from __future__ import annotations

import hashlib
import os
import threading
import traceback
from collections import deque
from typing import Any

import numpy as np

from ..parallel.simcomm import SimComm, SimWorld, SpmdAbort, set_comm_factory
from . import conformance

__all__ = [
    "CheckedComm",
    "CollectiveMismatch",
    "CacheMutationError",
    "sanitize_enabled",
    "freeze",
    "verify_frozen",
    "maybe_freeze",
    "maybe_verify",
    "checked_comm_factory",
    "install",
    "uninstall",
]

_THIS_DIR = os.path.dirname(os.path.abspath(__file__))
_SIMCOMM_FILE = "simcomm.py"


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to anything but ``""``/``0``."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


# --------------------------------------------------------------------------
# collective divergence


class CollectiveMismatch(RuntimeError):
    """Raised on every rank when the world's collective sequences diverge.

    ``report`` maps rank -> its metadata record at the point of
    divergence: ``{"seq": int, "op": str, "site": "file:line",
    "sig": str}`` (or ``None`` for a rank that never reached the
    collective — the timeout case also attaches recent history).
    """

    def __init__(self, message: str, report: dict | None = None):
        super().__init__(message)
        self.report = report or {}

    def __reduce__(self):
        # preserve ``report`` across pickling (the process SPMD backend
        # ships worker exceptions back to the parent)
        return (CollectiveMismatch, (self.args[0], self.report))


def _payload_signature(obj: Any) -> str:
    """Coarse dtype/shape-class signature of a collective payload.

    Exact shapes and container lengths are legitimately rank-dependent
    (each rank contributes its local slice), so only the structure that
    MUST agree is fingerprinted: array dtype and rank (ndim), scalar
    kind, container kind.
    """
    if obj is None:
        return "none"
    if isinstance(obj, np.ndarray):
        return f"ndarray[{obj.dtype},{obj.ndim}d]"
    if isinstance(obj, (bool, np.bool_)):
        return "bool"
    if isinstance(obj, (int, np.integer)):
        return "int"
    if isinstance(obj, (float, np.floating)):
        return "float"
    if isinstance(obj, (list, tuple)):
        return "seq"
    if isinstance(obj, dict):
        return "dict"
    if isinstance(obj, str):
        return "str"
    return type(obj).__name__


def _call_site() -> str:
    """``file.py:line`` of the nearest caller outside the comm layers."""
    for fs in reversed(traceback.extract_stack()):
        base = os.path.basename(fs.filename)
        if os.path.dirname(os.path.abspath(fs.filename)) == _THIS_DIR:
            continue
        if base == _SIMCOMM_FILE:
            continue
        return f"{base}:{fs.lineno}"
    return "<unknown>"


class CheckedComm(SimComm):
    """A :class:`SimComm` that verifies collective symmetry as it runs.

    Every collective first exchanges ``(seq, op, call-site, payload
    signature)`` through the world's slot array (with a timeout on the
    barrier) and raises :class:`CollectiveMismatch` when ranks disagree,
    turning both silent corruption *and* deadlock into a structured
    error.  With ``fuzz_seed`` set, point-to-point sends are routed
    through a seeded hold-and-release queue that perturbs cross-channel
    delivery order while preserving MPI's per-``(source, dest, tag)``
    FIFO guarantee.
    """

    #: seconds a rank waits at a metadata barrier before declaring the
    #: world diverged (some rank never issued the matching collective);
    #: overridable per-run with ``REPRO_SANITIZE_TIMEOUT`` (seconds)
    DEFAULT_TIMEOUT = 10.0

    def __init__(
        self,
        world: SimWorld,
        rank: int,
        timeout: float | None = None,
        fuzz_seed: int | None = None,
        max_history: int = 64,
    ):
        super().__init__(world, rank)
        if timeout is None:
            env = os.environ.get("REPRO_SANITIZE_TIMEOUT", "")
            try:
                timeout = float(env) if env else None
            except ValueError:
                timeout = None
        self.timeout = self.DEFAULT_TIMEOUT if timeout is None else float(timeout)
        self._seq = 0
        self._history: deque = deque(maxlen=max_history)
        # shared registry of per-rank histories for divergence reports;
        # communicators are built sequentially in run_spmd, so plain
        # attribute initialization is race-free
        registry = getattr(world, "_checked_histories", None)
        if registry is None:
            registry = {}
            world._checked_histories = registry
        registry[rank] = self._history
        self._rng = None if fuzz_seed is None else np.random.default_rng(
            np.random.SeedSequence(entropy=fuzz_seed, spawn_key=(rank,))
        )
        self._pending: dict[tuple[int, int], list] = {}
        self.n_held = 0
        self.n_shuffles = 0

    # -- metadata exchange -------------------------------------------------

    def _timed_barrier(self, meta: dict) -> None:
        w = self._world
        try:
            w._barrier.wait(self.timeout)
        except threading.BrokenBarrierError:
            if w._error is not None:
                raise SpmdAbort("another rank aborted") from None
            # nobody failed: some rank never reached this collective
            exc = CollectiveMismatch(
                f"rank {self.rank}: no matching collective from all ranks "
                f"within {self.timeout:.1f}s at {meta['op']} ({meta['site']}); "
                f"rank histories: {self._histories_snapshot()}",
                report=self._divergence_report([None] * self.size),
            )
            w.abort(exc)
            raise exc from None

    def _histories_snapshot(self) -> dict:
        registry = getattr(self._world, "_checked_histories", {})
        return {r: list(h)[-3:] for r, h in sorted(registry.items())}

    def _divergence_report(self, metas: list) -> dict:
        report = {}
        for r in range(self.size):
            m = metas[r] if r < len(metas) else None
            report[r] = dict(m) if isinstance(m, dict) else None
        return report

    def _checked(self, op: str, payload: Any) -> None:
        """Exchange and compare collective metadata before the payload."""
        self._flush_pending()
        meta = {
            "seq": self._seq,
            "op": op,
            "site": _call_site(),
            "sig": _payload_signature(payload),
        }
        # schedule conformance: replay the observed stream against the
        # static comm schedule (no-op unless a schedule is installed);
        # checked *before* the metadata barrier so a divergent rank
        # raises a structured diff instead of engaging the exchange
        conformance.observe_collective(op.partition("[")[0], meta["site"])
        self._seq += 1
        self._history.append((meta["seq"], op, meta["site"], meta["sig"]))
        w = self._world
        w._slots[self.rank] = meta
        self._timed_barrier(meta)
        metas = list(w._slots)
        self._timed_barrier(meta)
        mine = (meta["seq"], meta["op"], meta["site"], meta["sig"])
        for r, other in enumerate(metas):
            theirs = (other["seq"], other["op"], other["site"], other["sig"])
            if theirs != mine:
                exc = CollectiveMismatch(
                    f"collective divergence at step {meta['seq']}: rank "
                    f"{self.rank} called {meta['op']} at {meta['site']} "
                    f"(payload {meta['sig']}) but rank {r} called "
                    f"{other['op']} at {other['site']} (payload "
                    f"{other['sig']})",
                    report=self._divergence_report(metas),
                )
                w.abort(exc)
                raise exc

    # -- checked collectives ----------------------------------------------

    def barrier(self) -> None:
        self._checked("barrier", None)
        super().barrier()

    def allgather(self, obj: Any) -> list[Any]:
        self._checked("allgather", obj)
        return super().allgather(obj)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._checked(f"gather[root={root}]", obj)
        return super().gather(obj, root)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        # only the root's payload travels, so there is no cross-rank
        # signature to compare — check op/site/sequence symmetry only
        self._checked(f"bcast[root={root}]", None)
        return super().bcast(obj, root)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        self._checked(f"allreduce[{op}]", value)
        return super().allreduce(value, op)

    def exscan(self, value, op: str = "sum"):
        self._checked(f"exscan[{op}]", value)
        return super().exscan(value, op)

    def alltoall(self, sendlist: list[Any]) -> list[Any]:
        self._checked("alltoall", sendlist)
        return super().alltoall(sendlist)

    # -- fuzzed point-to-point ---------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if self._rng is None:
            super().send(obj, dest, tag)
            return
        key = (dest, tag)
        # once a channel holds a message, later sends on it must queue
        # behind it to preserve per-channel FIFO
        if key in self._pending or self._rng.random() < 0.5:
            self._pending.setdefault(key, []).append(obj)
            self.n_held += 1
        else:
            super().send(obj, dest, tag)
        if self._pending and self._rng.random() < 0.25:
            self._flush_pending()

    def recv(self, source: int, tag: int = 0) -> Any:
        self._flush_pending()
        return super().recv(source, tag)

    def _flush_pending(self) -> None:
        """Release held channels in a seeded shuffled order (FIFO within
        each channel, perturbed order across channels)."""
        if not self._pending:
            return
        keys = list(self._pending.keys())
        if self._rng is not None and len(keys) > 1:
            self._rng.shuffle(keys)
            self.n_shuffles += 1
        for dest, tag in keys:
            for obj in self._pending.pop((dest, tag)):
                super().send(obj, dest, tag)

    def _finalize(self) -> None:
        self._flush_pending()


def checked_comm_factory(
    timeout: float | None = None, fuzz_seed: int | None = None
):
    """A :func:`~repro.parallel.simcomm.set_comm_factory`-compatible
    factory producing configured :class:`CheckedComm` instances."""

    def factory(world: SimWorld, rank: int) -> CheckedComm:
        return CheckedComm(world, rank, timeout=timeout, fuzz_seed=fuzz_seed)

    return factory


def install(timeout: float | None = None, fuzz_seed: int | None = None) -> None:
    """Substitute :class:`CheckedComm` in every subsequent
    :func:`~repro.parallel.simcomm.run_spmd` world."""
    set_comm_factory(checked_comm_factory(timeout=timeout, fuzz_seed=fuzz_seed))


def uninstall() -> None:
    """Restore the plain :class:`~repro.parallel.simcomm.SimComm`."""
    set_comm_factory(None)


# --------------------------------------------------------------------------
# cache mutation guards


class CacheMutationError(RuntimeError):
    """A memoized value was mutated in place after being cached."""


def _iter_arrays(obj: Any, _depth: int = 0):
    """Yield the ndarrays reachable from a cached value.

    Handles arrays, scipy sparse matrices (via their buffer triplet),
    and list/tuple/dict containers; opaque objects are skipped (guard
    call sites pass their arrays explicitly).
    """
    if _depth > 6 or obj is None:
        return
    if isinstance(obj, np.ndarray):
        yield obj
        return
    # scipy CSR/CSC/BSR expose .data/.indices/.indptr; COO .data/.row/.col
    for triplet in (("data", "indices", "indptr"), ("data", "row", "col")):
        if all(hasattr(obj, a) for a in triplet):
            for a in triplet:
                yield from _iter_arrays(getattr(obj, a), _depth + 1)
            return
    if isinstance(obj, (list, tuple)):
        for x in obj:
            yield from _iter_arrays(x, _depth + 1)
    elif isinstance(obj, dict):
        for x in obj.values():
            yield from _iter_arrays(x, _depth + 1)


def freeze(value: Any) -> str:
    """Content fingerprint of the numpy state of ``value``.

    dtype, shape, and bytes of every reachable array feed a blake2b
    hash; any in-place write changes the digest.
    """
    h = hashlib.blake2b(digest_size=16)
    count = 0
    for arr in _iter_arrays(value):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
        count += 1
    h.update(count.to_bytes(4, "little"))
    return h.hexdigest()


def verify_frozen(value: Any, token: str | None, context: str = "") -> None:
    """Raise :class:`CacheMutationError` if ``value`` no longer matches
    the fingerprint taken by :func:`freeze` (``token=None`` is a no-op,
    so call sites can pass through un-sanitized tokens)."""
    if token is None:
        return
    if freeze(value) != token:
        where = f" ({context})" if context else ""
        raise CacheMutationError(
            f"memoized value was mutated in place{where}: cached state is "
            "shared across solves and must be treated as immutable — copy "
            "before writing, or invalidate the cache"
        )


def maybe_freeze(value: Any) -> str | None:
    """:func:`freeze` when sanitizing is enabled, else ``None``."""
    return freeze(value) if sanitize_enabled() else None


def maybe_verify(value: Any, token: str | None, context: str = "") -> None:
    """:func:`verify_frozen` when sanitizing is enabled (cheap no-op
    otherwise, so guards can stay wired in unconditionally)."""
    if token is not None and sanitize_enabled():
        verify_frozen(value, token, context)
