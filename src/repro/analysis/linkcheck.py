"""Markdown link checker for the repository docs (stdlib-only).

Walks ``*.md`` files, extracts inline ``[text](target)`` and
reference-style ``[label]: target`` links, and verifies that

* **relative file links** (``DESIGN.md``, ``src/repro/obs/timer.py``)
  resolve to an existing file or directory relative to the *linking*
  file, and
* **anchor links** (``#phase-timers`` or ``OBSERVABILITY.md#traces``)
  name a heading that actually exists in the target file, using the
  GitHub slug rules (lowercase, punctuation stripped, spaces to
  hyphens, duplicate slugs suffixed ``-1``, ``-2``, ...).

External links (``http://``, ``https://``, ``mailto:``) are skipped —
CI must not depend on the network.  Links inside fenced code blocks and
inline code spans are ignored.

Usage::

    python -m repro.analysis.linkcheck             # check ./**/*.md
    python -m repro.analysis.linkcheck README.md docs/

Exit status 1 if any dead link is found, listing each as
``file:line: message``.  Stdlib-only on purpose: the CI docs job runs
before installing numpy/scipy.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DeadLink",
    "github_slug",
    "heading_slugs",
    "extract_links",
    "check_file",
    "check_paths",
    "main",
]

#: directories never descended into when expanding a tree
SKIP_DIRS = {".git", ".venv", "__pycache__", "node_modules", ".pytest_cache"}

_INLINE_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()\s]*\))?)\)")
_REF_DEF_RE = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^\s{0,3}(```|~~~)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
# markup GitHub strips before slugging: emphasis, code ticks, images/links
_SLUG_MARKUP_RE = re.compile(r"[`*_]|!?\[([^\]]*)\]\([^)]*\)")
_SLUG_DROP_RE = re.compile(r"[^\w\- ]")


@dataclass(frozen=True)
class DeadLink:
    """One broken link: where it was written and why it is dead."""

    file: str
    line: int
    target: str
    message: str

    def render(self) -> str:
        """``file:line: message`` display form."""
        return f"{self.file}:{self.line}: {self.message}"


def github_slug(heading: str) -> str:
    """The GitHub anchor slug of one heading's text.

    Example::

        github_slug("Phase timers & traces")   # -> "phase-timers--traces"
    """
    text = _SLUG_MARKUP_RE.sub(lambda m: m.group(1) or "", heading)
    text = _SLUG_DROP_RE.sub("", text.strip().lower())
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    """All anchor slugs a markdown document exposes, with GitHub's
    ``-1``/``-2`` suffixing for duplicate headings.

    Example::

        heading_slugs("# A\\n# A\\n")   # -> {"a", "a-1"}
    """
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in markdown.splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if m is None:
            continue
        base = github_slug(m.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        slugs.add(base if n == 0 else f"{base}-{n}")
    return slugs


def extract_links(markdown: str) -> list[tuple[int, str]]:
    """``(line_number, target)`` pairs of every checkable link.

    Fenced code blocks and inline code spans are skipped; both inline
    links and reference-style definitions are collected.
    """
    out: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(markdown.splitlines(), start=1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = _CODE_SPAN_RE.sub("", line)
        for m in _INLINE_LINK_RE.finditer(stripped):
            out.append((lineno, m.group(1)))
        m = _REF_DEF_RE.match(stripped)
        if m is not None:
            out.append((lineno, m.group(1)))
    return out


def _check_target(md_path: Path, lineno: int, target: str, root: Path) -> DeadLink | None:
    if _EXTERNAL_RE.match(target):
        return None  # http(s)/mailto — never checked (no network in CI)
    rel = md_path.as_posix()
    path_part, _, anchor = target.partition("#")
    path_part = path_part.split("?", 1)[0]
    if path_part:
        if path_part.startswith("/"):
            dest = (root / path_part.lstrip("/")).resolve()
        else:
            dest = (md_path.parent / path_part).resolve()
        if not dest.exists():
            return DeadLink(rel, lineno, target, f"dead link {target!r}: no such file {path_part!r}")
        anchor_file = dest
    else:
        anchor_file = md_path.resolve()
    if anchor and anchor_file.is_file() and anchor_file.suffix.lower() == ".md":
        slugs = heading_slugs(anchor_file.read_text(encoding="utf-8"))
        if anchor.lower() not in slugs:
            return DeadLink(
                rel, lineno, target,
                f"dead anchor {target!r}: no heading slug {anchor!r} in {anchor_file.name}",
            )
    return None


def check_file(path: str | Path, root: str | Path = ".") -> list[DeadLink]:
    """Dead links in one markdown file.

    Example::

        dead = check_file("README.md")
        assert dead == []
    """
    p = Path(path)
    links = extract_links(p.read_text(encoding="utf-8"))
    out = []
    for lineno, target in links:
        d = _check_target(p, lineno, target, Path(root))
        if d is not None:
            out.append(d)
    return out


def check_paths(paths: list[str | Path], root: str | Path = ".") -> list[DeadLink]:
    """Dead links across files and directory trees (``*.md``, sorted;
    the directories in :data:`SKIP_DIRS` are never descended into)."""
    files: list[Path] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*.md"))
                if not (SKIP_DIRS & set(f.parts))
            )
        else:
            files.append(p)
    seen: set[Path] = set()
    dead: list[DeadLink] = []
    for f in files:
        if f in seen:
            continue
        seen.add(f)
        dead.extend(check_file(f, root))
    return dead


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.analysis.linkcheck [paths]``.

    Prints each dead link as ``file:line: message`` and returns 1 if
    any were found, else 0."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis.linkcheck",
        description="Check relative links and anchors in markdown files.",
    )
    ap.add_argument("paths", nargs="*", default=["."], help="files or trees to check")
    ap.add_argument("--root", default=".", help="repo root for absolute (/-prefixed) links")
    args = ap.parse_args(argv)
    dead = check_paths(args.paths or ["."], root=args.root)
    for d in dead:
        print(d.render())
    print(f"{len(dead)} dead link(s)", file=sys.stderr)
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
