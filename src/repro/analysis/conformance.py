"""Runtime schedule-conformance monitoring for the sanitized comm layer.

:mod:`repro.analysis.commflow` emits the **static comm schedule** of the
:class:`~repro.amr.pardriver.ParAmrPipeline` entry points as a JSON
artifact.  This module replays the collective stream that
:class:`~repro.analysis.sanitize.CheckedComm` observes at runtime
against that schedule: each pipeline entry body runs inside a
:func:`schedule_phase` context, every checked collective is fed to the
phase's :class:`~repro.analysis.commflow.ScheduleNFA`, and any
divergence — an unexpected op/site, or a phase ending before the
automaton accepts (a *skipped* collective) — raises a structured
:class:`ScheduleMismatch` naming the phase, the position in the stream,
the observed operation, and the set of statically expected next
operations.

The monitor is inert unless a schedule is installed — either explicitly
via :func:`install_schedule` or automatically from the
``REPRO_COMMFLOW_SCHEDULE`` environment variable (a path to the JSON
artifact).  Observation only happens under ``REPRO_SANITIZE=1``, because
only ``CheckedComm`` reports its collective stream.  Monitors are
thread-local: each simulated SPMD rank (one thread) checks its own
stream independently, which is exactly the SPMD property — every rank
must traverse the same static automaton.

Usage::

    python -m repro.analysis.commflow src/ --schedule comm_schedule.json
    REPRO_SANITIZE=1 REPRO_COMMFLOW_SCHEDULE=comm_schedule.json \\
        python examples/parallel_amr.py 3 --cycles 1
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "ScheduleMismatch",
    "install_schedule",
    "uninstall_schedule",
    "schedule_installed",
    "schedule_phase",
    "observe_collective",
]

#: environment variable holding the path of a schedule JSON to auto-load
SCHEDULE_ENV = "REPRO_COMMFLOW_SCHEDULE"

_LOCK = threading.Lock()
_COMPILED: dict | None = None  # phase name -> (ScheduleNFA, entry qname)
_TLS = threading.local()
_ENV_TRIED = False
_SOURCE = None  # raw JSON document of the installed schedule


class ScheduleMismatch(RuntimeError):
    """The observed collective stream diverged from the static schedule.

    Carries a structured ``diff`` dict with keys ``phase``, ``entry``,
    ``position``, ``observed`` (``{"op", "site"}`` or ``None`` when the
    phase ended early), ``expected`` (list of ``{"op", "site"}``), and
    ``history`` (the tail of the already-matched stream).
    """

    def __init__(self, message: str, diff: dict):
        super().__init__(message)
        self.diff = diff

    def __reduce__(self):
        # args replay alone would drop ``diff`` (needed when the process
        # SPMD backend ships the exception back to the parent)
        return (ScheduleMismatch, (self.args[0], self.diff))

    def report(self) -> str:
        """Multi-line human-readable rendering of the diff."""
        d = self.diff
        obs = d.get("observed")
        lines = [
            "schedule conformance mismatch",
            f"  phase    : {d.get('phase')} ({d.get('entry')})",
            f"  position : collective #{d.get('position')} of this phase",
            f"  observed : "
            + (f"{obs['op']} at {obs['site']}" if obs else "<phase ended>"),
            "  expected : "
            + (
                " | ".join(
                    f"{e['op']} at {e['site'] or '<any>'}" for e in d.get("expected", [])
                )
                or "<end of phase>"
            ),
        ]
        hist = d.get("history", [])
        if hist:
            lines.append("  matched  : " + ", ".join(f"{op}@{site}" for op, site in hist))
        return "\n".join(lines)


def install_schedule(source) -> None:
    """Install a schedule (a JSON document dict, or a path to one)."""
    global _COMPILED, _SOURCE
    from .commflow import ScheduleNFA

    if isinstance(source, (str, Path)):
        doc = json.loads(Path(source).read_text(encoding="utf-8"))
    else:
        doc = source
    compiled: dict = {}
    for phase, entry in doc.get("entries", {}).items():
        compiled[phase] = (ScheduleNFA.from_tree(entry.get("tree")), entry.get("qname", "?"))
    with _LOCK:
        _COMPILED = compiled
        _SOURCE = doc


def installed_source():
    """The JSON document of the installed schedule, or None.

    The process SPMD backend re-broadcasts this to worker ranks so a
    schedule installed in the parent is monitored inside every worker.
    """
    with _LOCK:
        return _SOURCE


def uninstall_schedule() -> None:
    """Remove any installed schedule (monitoring becomes a no-op)."""
    global _COMPILED, _ENV_TRIED, _SOURCE
    with _LOCK:
        _COMPILED = None
        _SOURCE = None
        _ENV_TRIED = True  # do not silently re-load from the environment


def _maybe_autoload() -> None:
    global _ENV_TRIED
    if _COMPILED is not None or _ENV_TRIED:
        return
    with _LOCK:
        if _COMPILED is not None or _ENV_TRIED:
            return
        _ENV_TRIED = True
    path = os.environ.get(SCHEDULE_ENV)
    if path:
        install_schedule(path)


def schedule_installed() -> bool:
    """Is a schedule currently installed (after env auto-load)?"""
    _maybe_autoload()
    return _COMPILED is not None


class _Monitor:
    """Per-phase, per-thread NFA run over the observed collective stream."""

    __slots__ = ("phase", "entry", "nfa", "states", "history")

    def __init__(self, phase: str, entry: str, nfa):
        self.phase = phase
        self.entry = entry
        self.nfa = nfa
        self.states = nfa.initial()
        self.history: list = []

    def _diff(self, observed) -> dict:
        return {
            "phase": self.phase,
            "entry": self.entry,
            "position": len(self.history),
            "observed": observed,
            "expected": [
                {"op": op, "site": site} for op, site in self.nfa.expected(self.states)
            ],
            "history": list(self.history[-8:]),
        }

    def observe(self, op: str, site: str) -> None:
        nxt = self.nfa.feed(self.states, op, site)
        if not nxt:
            diff = self._diff({"op": op, "site": site})
            raise ScheduleMismatch(
                f"phase '{self.phase}': observed collective '{op}' at {site} "
                f"(position {len(self.history)}) does not match the static "
                "schedule",
                diff,
            )
        self.states = nxt
        self.history.append((op, site))

    def finish(self) -> None:
        if not self.nfa.accepts(self.states):
            diff = self._diff(None)
            raise ScheduleMismatch(
                f"phase '{self.phase}' ended after {len(self.history)} "
                "collective(s) but the static schedule expects more — a "
                "collective was skipped",
                diff,
            )


def _stack() -> list:
    s = getattr(_TLS, "stack", None)
    if s is None:
        s = []
        _TLS.stack = s
    return s


@contextmanager
def schedule_phase(name: str):
    """Monitor the enclosed block against schedule entry ``name``.

    A no-op when no schedule is installed or the schedule has no entry
    for ``name``.  Monitors nest: every monitor on the thread's stack
    observes the full stream, so an outer phase whose static signature
    contains an inner phase's collectives stays consistent.
    """
    _maybe_autoload()
    compiled = _COMPILED
    if compiled is None or name not in compiled:
        yield
        return
    nfa, entry = compiled[name]
    mon = _Monitor(name, entry, nfa)
    stack = _stack()
    stack.append(mon)
    try:
        yield
    finally:
        stack.pop()
    mon.finish()


def observe_collective(op: str, site: str) -> None:
    """Feed one observed collective to every active monitor.

    Called by ``CheckedComm`` for each checked collective; ``op`` is the
    canonical op name (decorations like ``allreduce[sum]`` stripped by
    the caller) and ``site`` the user call site (``file.py:line``).
    """
    stack = getattr(_TLS, "stack", None)
    if not stack:
        return
    for mon in list(stack):
        mon.observe(op, site)
