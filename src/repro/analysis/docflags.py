"""Example-flag consistency checker for the repository docs (stdlib-only).

The README and the subsystem guides quote command lines like
``python examples/parallel_amr.py 4 --trace trace.json``.  Those
snippets drift: a flag gets renamed in the example's ``argparse`` setup,
or a doc recommends a flag the example never had.  This checker pins the
two together:

* **ground truth** — every ``examples/*.py`` is parsed with :mod:`ast`
  and its ``add_argument("--flag", ...)`` calls collected (no import, no
  execution: stdlib-only so the CI docs job can run it before numpy is
  available);
* **claims** — every ``*.md`` file is scanned for command lines that
  mention ``examples/<name>.py``; the ``--flag`` tokens on that line
  (and on backslash-continued lines, as in the README's multi-line
  invocations) are the documented flags.

Every documented flag must exist in the example's parser, and any flag
documented for an example that has *no* argument parser at all (e.g.
``quickstart.py``) is an error.  The converse is deliberately not
enforced — docs may legitimately show a subset of the flags.

Usage::

    python -m repro.analysis.docflags            # check ./ (repo root)
    python -m repro.analysis.docflags path/to/repo

Exit status 1 if any drift is found, listing each as
``file:line: message``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FlagDrift",
    "example_flags",
    "documented_flags",
    "check_repo",
    "main",
]

#: directories never descended into when expanding a tree
SKIP_DIRS = {".git", ".venv", "__pycache__", "node_modules", ".pytest_cache"}

_EXAMPLE_RE = re.compile(r"examples/(\w+)\.py")
_FLAG_RE = re.compile(r"(--[A-Za-z][\w-]*)")


@dataclass(frozen=True)
class FlagDrift:
    """One documented flag that the example's parser does not define."""

    file: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: {self.message}"


def example_flags(root: Path) -> dict:
    """Map example name -> set of ``--flags`` its parser defines, or
    ``None`` for examples with no ``add_argument`` calls at all (they
    take no command-line arguments)."""
    out: dict = {}
    for path in sorted((root / "examples").glob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        flags: set | None = None
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            if flags is None:
                flags = set()
            for arg in node.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    if arg.value.startswith("--"):
                        flags.add(arg.value)
        out[path.stem] = flags
    return out


_BULLET_RE = re.compile(r"^(\s*)[-*]\s")


def _command_lines(text: str):
    """Yield ``(lineno, logical_line)`` with continuations joined onto
    the line that starts them (lineno is where it starts): backslash
    continuations (multi-line shell snippets) and soft-wrapped markdown
    bullets (a bullet's indented follow-on lines, where the README lists
    per-example flags)."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        start = i
        logical = lines[i]
        while logical.rstrip().endswith("\\") and i + 1 < len(lines):
            i += 1
            logical = logical.rstrip().rstrip("\\") + " " + lines[i]
        bullet = _BULLET_RE.match(lines[start])
        if bullet is not None:
            indent = len(bullet.group(1))
            while (
                i + 1 < len(lines)
                and lines[i + 1].strip()
                and not _BULLET_RE.match(lines[i + 1])
                and len(lines[i + 1]) - len(lines[i + 1].lstrip()) > indent
            ):
                i += 1
                logical = logical.rstrip() + " " + lines[i].strip()
        yield start + 1, logical
        i += 1


_SENTENCE_END_RE = re.compile(r"\.(\s|$)")


def documented_flags(md_path: Path):
    """Yield ``(lineno, example_name, flag)`` for every ``--flag`` that a
    command line or prose sentence mentioning ``examples/<name>.py``
    documents.  Attribution stops at the end of the sentence so a later
    sentence about a different tool's flags is not charged to the
    example."""
    for lineno, line in _command_lines(md_path.read_text()):
        m = _EXAMPLE_RE.search(line)
        if m is None:
            continue
        # only tokens after the script path, before the sentence ends,
        # belong to its command line
        rest = line[m.end():]
        end = _SENTENCE_END_RE.search(rest)
        if end is not None:
            rest = rest[: end.start()]
        for flag in _FLAG_RE.findall(rest):
            yield lineno, m.group(1), flag


def check_repo(root: Path) -> list:
    """All flag drifts in the repository's markdown files."""
    root = Path(root)
    known = example_flags(root)
    drifts: list = []
    md_files = [
        p
        for p in sorted(root.rglob("*.md"))
        if not any(part in SKIP_DIRS for part in p.parts)
    ]
    for md in md_files:
        rel = md.relative_to(root)
        for lineno, name, flag in documented_flags(md):
            if name not in known:
                drifts.append(
                    FlagDrift(str(rel), lineno, f"unknown example '{name}.py'")
                )
            elif known[name] is None:
                drifts.append(
                    FlagDrift(
                        str(rel),
                        lineno,
                        f"examples/{name}.py takes no flags but doc shows {flag}",
                    )
                )
            elif flag not in known[name]:
                drifts.append(
                    FlagDrift(
                        str(rel),
                        lineno,
                        f"examples/{name}.py has no {flag} flag "
                        f"(has: {', '.join(sorted(known[name]))})",
                    )
                )
    return drifts


def main(argv: list | None = None) -> int:
    """CLI entry point; prints one drift per line, exit 1 on any."""
    ap = argparse.ArgumentParser(
        description="check doc-quoted example flags against argparse reality"
    )
    ap.add_argument("root", nargs="?", default=".", help="repository root")
    args = ap.parse_args(argv)
    drifts = check_repo(Path(args.root))
    for d in drifts:
        print(d)
    n_md = len(list(Path(args.root).rglob("*.md")))
    print(
        f"[docflags] {len(drifts)} drift(s) across {n_md} markdown file(s)",
        file=sys.stderr,
    )
    return 1 if drifts else 0


if __name__ == "__main__":
    raise SystemExit(main())
