"""SPMD correctness linter: repo-specific static rules over the AST.

Generic linters cannot know that ``comm.allreduce`` must be reached by
every rank, that values handed out by :mod:`repro.mesh.opcache` are
shared and must never be written in place, or that the PR-1 vectorized
kernels must not regrow per-element Python loops.  This module encodes
those invariants as six rules:

R1  **collective symmetry** — a collective call (``allreduce``,
    ``allgather``, ``alltoall``, ``barrier``, ``bcast``, ``exscan``,
    ``gather``, ...) lexically inside an ``if``/``while``/``for`` whose
    condition (or iterable) derives from ``comm.rank`` or other
    rank-local data (``recv`` results, ``exscan`` prefixes).  Results
    of symmetric collectives (``allreduce``, ``allgather``, ``bcast``)
    are replicated on every rank, so branching on them is fine and does
    not propagate taint.

R2  **cache purity** — attribute writes, element writes (``x[...] =``),
    in-place operators (``x += ...``), and mutating ufunc calls
    (``np.add.at(x, ...)``, ``out=x``) applied to names bound from
    ``operator_cache(...)`` / ``*cache*.get(...)`` or from the known
    memoized mesh getters (``element_sizes``, ``element_centers``).
    ``x.copy()`` launders the value; a plain alias or ``np.asarray``
    does not.

R3  **dtype discipline** (hot packages ``fem/``, ``solvers/``,
    ``mangll/`` only) — ``np.array`` / ``np.zeros`` / ``np.empty``
    without an explicit ``dtype``, and float32/float64 mixing through a
    literal-typed accumulator (``acc = 0.0`` then ``acc += f32_data``).

R4  **hot-loop hygiene** (modules PR 1 vectorized: ``assembly``,
    ``amg``, ``dg``, ``transfer``) — per-element Python ``for`` loops
    (``range(...)`` over a non-trivial bound, or ``enumerate(...)``)
    unless the line carries ``# lint: allow-loop``.

R5  **serialization determinism** (``checkpoint/`` only) — iteration
    over ``dict.items()`` / ``.keys()`` / ``.values()`` (in ``for``
    statements or comprehensions) not wrapped in ``sorted(...)``, and
    iteration over ``set`` literals / ``set(...)`` values / set-typed
    names.  Checkpoint bytes and digests must not depend on dict
    insertion order or salted set order, which vary with code path,
    restart history, and interpreter run.

R6  **public-API docstrings** (documented packages ``obs/``, ``perf/``,
    ``checkpoint/`` only) — a module, top-level public class/function,
    or public method of a public class without a docstring.  Names
    starting with ``_`` (including dunders) and anything nested inside
    a function are exempt.  These packages are the user-facing
    instrumentation surface; their API reference is the docstrings.

R7/R8/R9 are the *interprocedural* communication-flow rules (divergent
collective order through call chains, send/recv pairing & deadlock,
shared-buffer publication).  They live in
:mod:`repro.analysis.commflow` and are merged into this CLI's findings,
suppression, and baseline machinery by the ``--commflow`` flag.

R10 **module-global mutable state read inside an SPMD kernel** — a
    function taking a comm-like parameter reads a module-level name
    bound to a mutable value (list/dict/set literal or constructor) or
    rebound through a ``global`` statement.  Under the threaded backend
    all ranks share one interpreter and such reads happen to see the
    caller's writes; under the process backend each worker has its own
    copy of the module, so the read silently sees stale state (the
    original ``_fault`` bug: a fault armed in the parent never fired in
    workers).  State a kernel needs must travel through the world /
    run envelope.  ALL_CAPS constants and dunders are exempt.

Suppression and baselining
--------------------------
``# lint: disable=R1`` (comma-separated rule ids) on the flagged line
suppresses a finding; ``# lint: allow-loop`` on the ``for`` line or the
line above suppresses R4.  Grandfathered findings live in a baseline
file (``lint_baseline.json`` at the repo root); a finding matches the
baseline by ``(file, rule, normalized source line)`` so it survives
unrelated line-number drift.  New findings fail the run.

Usage::

    python -m repro.analysis.lint src/                 # auto-loads ./lint_baseline.json
    python -m repro.analysis.lint src/ --baseline      # require the baseline file
    python -m repro.analysis.lint src/ --no-baseline   # full finding list
    python -m repro.analysis.lint src/ --write-baseline

Stdlib-only on purpose: CI lints before installing numpy/scipy.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from collections import Counter
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "main",
    "RULES",
]

#: rule id -> short description (the catalog; mirrored in DESIGN.md)
RULES = {
    "R1": "collective call under rank-dependent control flow",
    "R2": "in-place mutation of a cached/memoized value",
    "R3": "missing explicit dtype / float32-float64 mixing in hot path",
    "R4": "per-element Python loop in a vectorized hot module",
    "R5": "unordered dict/set iteration while serializing state",
    "R6": "missing docstring on a public symbol in a documented package",
    "R7": "rank-dependent call chain reaching a collective (interprocedural)",
    "R8": "unpaired or deadlocking point-to-point communication",
    "R9": "in-place mutation of a buffer published to a comm op or shared cache",
    "R10": "module-global mutable state read inside an SPMD kernel",
}

#: methods on a communicator that every rank must call collectively
COLLECTIVE_OPS = {
    "allreduce",
    "allgather",
    "allgather_concat",
    "alltoall",
    "alltoallv_arrays",
    "barrier",
    "bcast",
    "exscan",
    "gather",
    "global_offsets",
}

#: collectives whose *result* is replicated on every rank — branching on
#: them is symmetric, so they block taint propagation
SYMMETRIC_OPS = {"allreduce", "allgather", "allgather_concat", "bcast", "barrier"}

#: collective results that are rank-dependent (taint sources)
RANK_LOCAL_OPS = {"exscan", "gather"}

#: numpy constructors R3 requires an explicit dtype for
DTYPE_CTORS = {"array", "zeros", "empty"}

#: path fragments where R3 (dtype discipline) is enforced
R3_PACKAGES = ("fem", "solvers", "mangll")

#: module stems PR 1 vectorized — R4 (hot-loop hygiene) applies here;
#: matfree joined in PR 4 (the sum-factorized apply engine is the hottest
#: loop in the code and must stay loop-free outside annotated exceptions);
#: traverse / faces / recursive joined in PR 6 (the recursive forest
#: algorithms on the AMR hot path are breadth-first vectorized);
#: batch joined in PR 8 (the fleet's lockstep batched cycle is the
#: multi-tenant hot path — only annotated O(B) per-job loops allowed);
#: procomm joined in PR 9 (the shared-memory transport packs/unpacks
#: every SPMD payload — per-element loops there tax every rank)
R4_MODULES = {
    "assembly",
    "amg",
    "gmg",
    "dg",
    "transfer",
    "matfree",
    "traverse",
    "faces",
    "recursive",
    "batch",
    "procomm",
}

#: path fragments where R5 (serialization determinism) is enforced —
#: the state-serializing subsystem, where byte layout = dict order
R5_PACKAGES = ("checkpoint",)

#: path fragments where R6 (public-API docstrings) is enforced — the
#: user-facing instrumentation packages whose reference docs *are* the
#: docstrings (see OBSERVABILITY.md); fleet joined in PR 8 (the
#: multi-tenant service API is user-facing)
R6_PACKAGES = ("obs", "perf", "checkpoint", "fleet", "solvers")

#: dict-view methods whose iteration order is insertion order
DICT_VIEW_METHODS = {"items", "keys", "values"}

#: memoized getters on Mesh whose return values are cache-shared
CACHED_GETTERS = {"element_sizes", "element_centers"}

_SMALL_RANGE = 8  # `for a in range(3)` (components, corners) is not per-element

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9,\s]+)")
_ALLOW_LOOP_RE = re.compile(r"#\s*lint:\s*allow-loop")


@dataclass(frozen=True)
class Finding:
    """One linter finding, stable across runs."""

    file: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: file + rule + normalized source line (no
        line number, so the baseline survives unrelated edits above)."""
        return (self.file, self.rule, self.snippet)

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"


# --------------------------------------------------------------------------
# expression helpers


def _is_comm_expr(node: ast.AST) -> bool:
    """Does this expression look like a communicator? (``comm``,
    ``self.comm``, ``self._comm``, ``checked_comm``, ...)"""
    if isinstance(node, ast.Name):
        return "comm" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "comm" in node.attr.lower()
    return False


def _collective_call(node: ast.Call) -> str | None:
    """The collective op name if ``node`` is ``<comm-like>.<collective>(...)``."""
    f = node.func
    if isinstance(f, ast.Attribute) and f.attr in COLLECTIVE_OPS and _is_comm_expr(f.value):
        return f.attr
    return None


def _root_name(node: ast.AST) -> str | None:
    """Base ``Name`` id of an attribute/subscript chain (``x[0].y`` -> ``x``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _TaintScan(ast.NodeVisitor):
    """Does an expression derive from rank-local data?

    Taint sources: ``<anything>.rank``, ``comm.recv(...)`` results,
    rank-local collective results (``exscan``, ``gather``), and names
    already in the tainted set.  Subtrees of *symmetric* collective
    calls are skipped — their results are replicated.
    """

    def __init__(self, tainted: set[str]):
        self.tainted = tainted
        self.found = False

    def visit_Call(self, node: ast.Call) -> None:
        op = _collective_call(node)
        if op is not None:
            if op in RANK_LOCAL_OPS:
                self.found = True
            # symmetric collective: replicated result, do not descend
            return
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr in ("recv", "Get_rank") and _is_comm_expr(f.value):
            self.found = True
            return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "rank":
            self.found = True
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.tainted:
            self.found = True


def _is_tainted(node: ast.AST | None, tainted: set[str]) -> bool:
    if node is None:
        return False
    scan = _TaintScan(tainted)
    scan.visit(node)
    return scan.found


def _names_in(node: ast.AST, names: set[str]) -> bool:
    return any(isinstance(n, ast.Name) and n.id in names for n in ast.walk(node))


def _target_names(target: ast.AST) -> list[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            if isinstance(elt, ast.Starred):
                elt = elt.value
            out.extend(_target_names(elt))
        return out
    return []


def _int_literal(node: ast.AST) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and (v := _int_literal(node.operand)) is not None
    ):
        return -v
    return None


def _is_float32_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "float32":
        return True
    if isinstance(node, ast.Constant) and node.value == "float32":
        return True
    return False


def _unsorted_dict_view(node: ast.AST) -> str | None:
    """The dict-view method name if ``node`` iterates ``d.items()`` /
    ``.keys()`` / ``.values()`` without a ``sorted(...)`` wrapper.

    Order-preserving wrappers (``enumerate``, ``reversed``, ``list``,
    ``tuple``, ``iter``) are looked through; ``sorted(...)`` makes the
    iteration deterministic and clears the finding.
    """
    if not isinstance(node, ast.Call):
        return None
    f = node.func
    if isinstance(f, ast.Name):
        if f.id == "sorted":
            return None
        if f.id in ("enumerate", "reversed", "list", "tuple", "iter"):
            for a in node.args:
                if (m := _unsorted_dict_view(a)) is not None:
                    return m
        return None
    if isinstance(f, ast.Attribute) and f.attr in DICT_VIEW_METHODS and not node.args:
        return f.attr
    return None


def _set_valued_rhs(node: ast.AST, set_names: set[str]) -> bool:
    """RHS that yields a ``set`` (literal, comprehension, constructor,
    set-algebra method on a known set, or alias of a set-typed name)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Name) and f.id in ("set", "frozenset"):
            return True
        if isinstance(f, ast.Attribute) and f.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _set_valued_rhs(f.value, set_names)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _set_valued_rhs(node.left, set_names) or _set_valued_rhs(
            node.right, set_names
        )
    return False


def _unordered_set_iter(node: ast.AST, set_names: set[str]) -> bool:
    """Does ``node`` iterate a set value without a ``sorted(...)``
    wrapper?  Order-preserving wrappers are looked through, mirroring
    :func:`_unsorted_dict_view`."""
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Name):
            if f.id == "sorted":
                return False
            if f.id in ("enumerate", "reversed", "list", "tuple", "iter"):
                return any(_unordered_set_iter(a, set_names) for a in node.args)
    return _set_valued_rhs(node, set_names)


def _cache_handle_rhs(node: ast.AST) -> bool:
    """RHS that yields a cache handle: ``operator_cache(mesh)``."""
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Name) and f.id == "operator_cache":
            return True
        if isinstance(f, ast.Attribute) and f.attr == "operator_cache":
            return True
    return False


def _cacheish_expr(node: ast.AST, handles: set[str]) -> bool:
    """Receiver that is a cache: a handle name, ``*cache*``-named
    name/attribute, or an inline ``operator_cache(...)`` call."""
    if isinstance(node, ast.Name):
        return node.id in handles or "cache" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "cache" in node.attr.lower()
    if _cache_handle_rhs(node):
        return True
    return False


def _cached_value_rhs(node: ast.AST, handles: set[str], cached: set[str]) -> bool:
    """RHS that yields a *cached value* (shared, must not be mutated)."""
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Attribute):
            if f.attr == "get" and _cacheish_expr(f.value, handles):
                return True
            if f.attr in CACHED_GETTERS:
                return True
            # np.asarray(x) may alias x; x.view() aliases x
            if f.attr in ("asarray", "view") and node.args and _names_in(node.args[0], cached):
                return True
            if f.attr == "view" and isinstance(f.value, ast.Name) and f.value.id in cached:
                return True
        if isinstance(f, ast.Name) and f.id == "asarray" and node.args and _names_in(node.args[0], cached):
            return True
        return False
    # plain alias keeps the cached mark; arithmetic / .copy() launder it
    if isinstance(node, ast.Name):
        return node.id in cached
    return False


# --------------------------------------------------------------------------
# the per-file visitor


@dataclass
class _Scope:
    """Per-function analysis state (copied into nested functions)."""

    tainted: set[str]
    handles: set[str]
    cached: set[str]
    f32_names: set[str]
    literal_accums: set[str]
    set_names: set[str]


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: str, lines: list[str]):
        self.path = path
        self.lines = lines
        self.findings: list[Finding] = []
        norm = path.replace("\\", "/")
        parts = norm.split("/")
        self.r3_active = any(p in parts for p in R3_PACKAGES)
        stem = Path(norm).stem
        self.r4_active = stem in R4_MODULES
        self.r5_active = any(p in parts for p in R5_PACKAGES)
        self.r6_active = any(p in parts for p in R6_PACKAGES)
        # stack of rank-dependent control constructs (kind, line)
        self._ctrl: list[tuple[str, int]] = []
        self._scope = _Scope(set(), set(), set(), set(), set(), set())
        # R6 context: (container kind, is a checked public surface)
        self._doc_ctx: list[tuple[str, bool]] = [("module", True)]

    # -- bookkeeping -------------------------------------------------------

    def _snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                file=self.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
                snippet=self._snippet(line),
            )
        )

    # -- R6: public-API docstrings -----------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        if self.r6_active and ast.get_docstring(node) is None:
            self._emit(node, "R6", "missing module docstring")
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        public = self._doc_ctx[-1][1] and not node.name.startswith("_")
        if self.r6_active and public and ast.get_docstring(node) is None:
            self._emit(node, "R6", f"public class '{node.name}' missing docstring")
        self._doc_ctx.append(("class", public))
        try:
            self.generic_visit(node)
        finally:
            self._doc_ctx.pop()

    def _check_def_docstring(self, node) -> None:
        kind, checked = self._doc_ctx[-1]
        if (
            self.r6_active
            and checked
            and not node.name.startswith("_")
            and ast.get_docstring(node) is None
        ):
            what = "method" if kind == "class" else "function"
            self._emit(node, "R6", f"public {what} '{node.name}' missing docstring")

    # -- functions get fresh (inherited) state -----------------------------

    def _visit_function(self, node) -> None:
        self._check_def_docstring(node)
        self._doc_ctx.append(("func", False))
        outer = self._scope
        self._scope = _Scope(
            tainted=set(outer.tainted),
            handles=set(outer.handles),
            cached=set(outer.cached),
            f32_names=set(),
            literal_accums=set(),
            set_names=set(outer.set_names),
        )
        # parameters named like caches are treated as handles
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if "cache" in arg.arg.lower():
                self._scope.handles.add(arg.arg)
        try:
            self.generic_visit(node)
        finally:
            self._scope = outer
            self._doc_ctx.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- R1: control-flow tracking -----------------------------------------

    def _visit_controlled(self, node, test: ast.AST | None, kind: str) -> None:
        dependent = _is_tainted(test, self._scope.tainted)
        if dependent:
            self._ctrl.append((kind, node.lineno))
        try:
            self.generic_visit(node)
        finally:
            if dependent:
                self._ctrl.pop()

    def visit_If(self, node: ast.If) -> None:
        self._visit_controlled(node, node.test, "if")

    def visit_While(self, node: ast.While) -> None:
        self._visit_controlled(node, node.test, "while")

    def visit_For(self, node: ast.For) -> None:
        if self.r4_active:
            self._check_hot_loop(node)
        if self.r5_active:
            self._check_dict_iter(node.iter)
        dependent = _is_tainted(node.iter, self._scope.tainted)
        if dependent:
            for name in _target_names(node.target):
                self._scope.tainted.add(name)
        self._visit_controlled(node, node.iter, "for")

    def visit_Call(self, node: ast.Call) -> None:
        op = _collective_call(node)
        if op is not None and self._ctrl:
            kind, line = self._ctrl[-1]
            self._emit(
                node,
                "R1",
                f"collective '{op}' inside rank-dependent '{kind}' (line {line}); "
                "every rank must issue the same collective sequence",
            )
        self._check_mutating_call(node)
        self.generic_visit(node)

    # -- R2: cache purity ---------------------------------------------------

    def _check_mutating_call(self, node: ast.Call) -> None:
        cached = self._scope.cached
        f = node.func
        # np.add.at(x, ...) / np.<ufunc>.at(x, ...)
        if isinstance(f, ast.Attribute) and f.attr == "at" and node.args:
            root = _root_name(node.args[0])
            if root in cached:
                self._emit(
                    node,
                    "R2",
                    f"mutating ufunc '.at' call on cached value '{root}'",
                )
        # any call with out=<cached>
        for kw in node.keywords:
            if kw.arg == "out" and (root := _root_name(kw.value)) in cached:
                self._emit(node, "R2", f"ufunc writes into cached value '{root}' via out=")

    def _check_store(self, target: ast.AST, node: ast.AST, what: str) -> None:
        cached = self._scope.cached
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _root_name(target)
            if root in cached:
                kind = "element write" if isinstance(target, ast.Subscript) else "attribute write"
                self._emit(node, "R2", f"{kind} to cached value '{root}' ({what})")

    def visit_Assign(self, node: ast.Assign) -> None:
        scope = self._scope
        for target in node.targets:
            self._check_store(target, node, "assignment")
        rhs_taint = _is_tainted(node.value, scope.tainted)
        is_handle = _cache_handle_rhs(node.value)
        is_cached = _cached_value_rhs(node.value, scope.handles, scope.cached)
        is_f32 = self._float32_rhs(node.value)
        is_set = _set_valued_rhs(node.value, scope.set_names)
        is_literal = isinstance(node.value, ast.Constant) and isinstance(
            node.value.value, (int, float)
        ) and not isinstance(node.value.value, bool)
        for target in node.targets:
            for name in _target_names(target):
                scope.tainted.add(name) if rhs_taint else scope.tainted.discard(name)
                scope.handles.add(name) if is_handle else scope.handles.discard(name)
                scope.cached.add(name) if is_cached else scope.cached.discard(name)
                scope.f32_names.add(name) if is_f32 else scope.f32_names.discard(name)
                scope.set_names.add(name) if is_set else scope.set_names.discard(name)
                if is_literal:
                    scope.literal_accums.add(name)
                else:
                    scope.literal_accums.discard(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target, node, "assignment")
            if isinstance(node.target, ast.Name):
                scope = self._scope
                name = node.target.id
                if _is_tainted(node.value, scope.tainted):
                    scope.tainted.add(name)
                if _cached_value_rhs(node.value, scope.handles, scope.cached):
                    scope.cached.add(name)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        scope = self._scope
        target = node.target
        if isinstance(target, ast.Name) and target.id in scope.cached:
            self._emit(node, "R2", f"in-place operator on cached value '{target.id}'")
        else:
            self._check_store(target, node, "augmented assignment")
        if isinstance(target, ast.Name) and _is_tainted(node.value, scope.tainted):
            scope.tainted.add(target.id)
        # R3 mixing: float literal accumulator += float32 data
        if (
            self.r3_active
            and isinstance(target, ast.Name)
            and target.id in scope.literal_accums
            and _names_in(node.value, scope.f32_names)
        ):
            self._emit(
                node,
                "R3",
                f"float64 literal accumulator '{target.id}' mixed with float32 data",
            )
        self.generic_visit(node)

    # -- R3: dtype discipline ----------------------------------------------

    def _float32_rhs(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr == "astype" and node.args:
            return _is_float32_dtype(node.args[0])
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_float32_dtype(kw.value):
                return True
        return False

    def _check_dtype_ctor(self, node: ast.Call) -> None:
        f = node.func
        if not (
            isinstance(f, ast.Attribute)
            and f.attr in DTYPE_CTORS
            and isinstance(f.value, ast.Name)
            and f.value.id in ("np", "numpy")
        ):
            return
        if not any(kw.arg == "dtype" for kw in node.keywords):
            self._emit(
                node,
                "R3",
                f"np.{f.attr} without explicit dtype in hot path "
                "(float64 intent must be spelled out)",
            )

    # -- R5: serialization determinism -------------------------------------

    def _check_dict_iter(self, it: ast.AST) -> None:
        if (method := _unsorted_dict_view(it)) is not None:
            self._emit(
                it,
                "R5",
                f"iteration over dict '.{method}()' while serializing state; "
                "wrap in sorted(...) so byte layout and digests are "
                "insertion-order independent",
            )
        elif _unordered_set_iter(it, self._scope.set_names):
            self._emit(
                it,
                "R5",
                "iteration over a set while serializing state; set order is "
                "salted and varies across runs — wrap in sorted(...)",
            )

    def _visit_comprehension(self, node) -> None:
        if self.r5_active:
            for gen in node.generators:
                self._check_dict_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- R4: hot-loop hygiene ----------------------------------------------

    def _check_hot_loop(self, node: ast.For) -> None:
        it = node.iter
        if not isinstance(it, ast.Call) or not isinstance(it.func, ast.Name):
            return
        if it.func.id == "range":
            bounds = [_int_literal(a) for a in it.args]
            if all(b is not None and abs(b) <= _SMALL_RANGE for b in bounds):
                return  # small constant loop (components, corners, sweeps)
        elif it.func.id != "enumerate":
            return
        self._emit(
            node,
            "R4",
            f"per-element Python '{it.func.id}' loop in vectorized hot module; "
            "vectorize or mark '# lint: allow-loop'",
        )

    # dispatch wrapper so R3 ctor checks run on every call expression
    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call) and self.r3_active:
                self._check_dtype_ctor(child)
            self.visit(child)


# --------------------------------------------------------------------------
# R10: module-global mutable state read inside SPMD kernels
#
# A two-pass, module-at-a-time rule (it needs the whole module before it
# can judge any function), so it runs as its own walk after the
# single-pass _FileLinter rather than inside it.

#: constructors whose results are mutable containers
_MUTABLE_CTORS = {
    "list",
    "dict",
    "set",
    "deque",
    "defaultdict",
    "Counter",
    "bytearray",
    "OrderedDict",
}


def _mutable_rhs(node: ast.AST) -> bool:
    """Is this expression a freshly built mutable container?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        f = node.func
        name = f.id if isinstance(f, ast.Name) else f.attr if isinstance(f, ast.Attribute) else None
        return name in _MUTABLE_CTORS
    return False


def _r10_exempt(name: str) -> bool:
    # ALL_CAPS module constants are read-only by convention; dunders
    # (__all__ etc.) are interpreter plumbing
    return name.upper() == name or (name.startswith("__") and name.endswith("__"))


def _module_mutable_globals(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable containers, plus any name a
    function rebinds through a ``global`` statement (the latter is
    mutable *state* regardless of what value currently sits there —
    ``_fault`` is ``None`` at module scope but re-armed via ``global``)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _mutable_rhs(stmt.value):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        elif (
            isinstance(stmt, ast.AnnAssign)
            and stmt.value is not None
            and _mutable_rhs(stmt.value)
            and isinstance(stmt.target, ast.Name)
        ):
            names.add(stmt.target.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return {n for n in names if not _r10_exempt(n)}


class _KernelBodyScan(ast.NodeVisitor):
    """Collect stores and offending loads within one function body,
    without descending into nested function/class definitions (those are
    judged on their own merits by the outer walk)."""

    def __init__(self, mutable_globals: set[str]):
        self.mutable_globals = mutable_globals
        self.bound: set[str] = set()
        self.loads: list[ast.Name] = []

    def visit_FunctionDef(self, node) -> None:  # no descent
        self.bound.add(node.name)

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # no descent

    def visit_Global(self, node: ast.Global) -> None:
        # a `global` declaration means loads refer to module state —
        # exactly what R10 flags — so deliberately NOT marked as bound
        pass

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.id in self.mutable_globals and node.id not in self.bound:
                self.loads.append(node)
        else:  # Store / Del: a local shadows the global from here on
            self.bound.add(node.id)


def _lint_r10(tree: ast.Module, path: str, lines: list[str]) -> list[Finding]:
    mutable = _module_mutable_globals(tree)
    if not mutable:
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        a = node.args
        params = [x.arg for x in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
        if not any("comm" in p.lower() for p in params):
            continue  # not an SPMD kernel
        scan = _KernelBodyScan(mutable)
        scan.bound.update(params)
        if a.vararg:
            scan.bound.add(a.vararg.arg)
        if a.kwarg:
            scan.bound.add(a.kwarg.arg)
        for stmt in node.body:
            scan.visit(stmt)
        for load in scan.loads:
            line = load.lineno
            findings.append(
                Finding(
                    file=path,
                    line=line,
                    col=load.col_offset + 1,
                    rule="R10",
                    message=(
                        f"SPMD kernel '{node.name}' reads module-global mutable "
                        f"'{load.id}'; process-backend workers see a stale "
                        "per-process copy — pass it through the world/run envelope"
                    ),
                    snippet=lines[line - 1].strip() if 1 <= line <= len(lines) else "",
                )
            )
    return findings


# --------------------------------------------------------------------------
# suppression + entry points


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    line = lines[finding.line - 1] if 1 <= finding.line <= len(lines) else ""
    m = _DISABLE_RE.search(line)
    if m and finding.rule in {r.strip().upper() for r in m.group(1).split(",")}:
        return True
    if finding.rule == "R4":
        prev = lines[finding.line - 2] if finding.line >= 2 else ""
        if _ALLOW_LOOP_RE.search(line) or _ALLOW_LOOP_RE.search(prev):
            return True
    return False


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint python source text; ``path`` controls path-scoped rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                file=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="E0",
                message=f"syntax error: {exc.msg}",
                snippet="",
            )
        ]
    lines = source.splitlines()
    linter = _FileLinter(path, lines)
    linter.visit(tree)
    findings = linter.findings + _lint_r10(tree, path, lines)
    out = [f for f in findings if not _suppressed(f, lines)]
    out.sort(key=lambda f: (f.line, f.col, f.rule))
    return out


def lint_file(path: str | Path) -> list[Finding]:
    p = Path(path)
    rel = p.as_posix()
    return lint_source(p.read_text(encoding="utf-8"), rel)


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    """Lint files and directory trees (``*.py``, sorted, deduplicated)."""
    files: list[Path] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    seen: set[Path] = set()
    findings: list[Finding] = []
    for f in files:
        if f in seen:
            continue
        seen.add(f)
        findings.extend(lint_file(f))
    return findings


# -- baseline ---------------------------------------------------------------

DEFAULT_BASELINE = "lint_baseline.json"


def load_baseline(path: str | Path) -> Counter:
    """Baseline as a multiset of finding fingerprints."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    c: Counter = Counter()
    for entry in data.get("findings", []):
        c[(entry["file"], entry["rule"], entry["snippet"])] += entry.get("count", 1)
    return c


def write_baseline(findings: list[Finding], path: str | Path) -> None:
    c = Counter(f.fingerprint() for f in findings)
    entries = [
        {"file": file, "rule": rule, "snippet": snippet, "count": n}
        for (file, rule, snippet), n in sorted(c.items())
    ]
    payload = {
        "comment": (
            "Grandfathered repro.analysis.lint findings. New findings fail; "
            "regenerate with: python -m repro.analysis.lint src/ --write-baseline"
        ),
        "findings": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(findings: list[Finding], baseline: Counter) -> list[Finding]:
    """Findings not covered by the baseline multiset."""
    budget = Counter(baseline)
    fresh: list[Finding] = []
    for f in findings:
        fp = f.fingerprint()
        if budget[fp] > 0:
            budget[fp] -= 1
        else:
            fresh.append(f)
    return fresh


# -- CLI --------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="SPMD correctness linter (rules R1-R6) for this repository.",
    )
    ap.add_argument("paths", nargs="*", default=["src"], help="files or trees to lint")
    ap.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help=f"require a baseline file (default path: {DEFAULT_BASELINE})",
    )
    ap.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every finding",
    )
    ap.add_argument(
        "--write-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help="write current findings as the new baseline and exit 0",
    )
    ap.add_argument(
        "--commflow",
        action="store_true",
        help="also run the interprocedural comm-flow analysis (rules R7-R9)",
    )
    ap.add_argument("--format", choices=("text", "json", "github"), default="text")
    args = ap.parse_args(argv)

    paths = args.paths or ["src"]
    findings = lint_paths(paths)
    if args.commflow:
        from .commflow import commflow_findings

        merged = findings + commflow_findings(paths)
        # drop interprocedural R7 findings that duplicate a lexical R1
        # at the same location (R7 subsumes R1 but must not double-report)
        r1_sites = {(f.file, f.line) for f in merged if f.rule == "R1"}
        findings = sorted(
            (
                f
                for f in merged
                if not (f.rule == "R7" and (f.file, f.line) in r1_sites)
            ),
            key=lambda f: (f.file, f.line, f.col, f.rule),
        )

    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0

    baseline: Counter = Counter()
    if not args.no_baseline:
        bl_path = args.baseline or DEFAULT_BASELINE
        if Path(bl_path).exists():
            baseline = load_baseline(bl_path)
        elif args.baseline is not None:
            print(f"error: baseline file {bl_path!r} not found", file=sys.stderr)
            return 2

    fresh = apply_baseline(findings, baseline)

    if args.format == "json":
        print(json.dumps([asdict(f) for f in fresh], indent=2))
    elif args.format == "github":
        # GitHub Actions workflow-command annotations: findings surface
        # inline on the PR diff.  Messages must be single-line with
        # %, \r, \n escaped per the workflow-command encoding.
        def esc(s: str) -> str:
            return s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")

        for f in fresh:
            print(
                f"::error file={f.file},line={f.line},col={f.col},"
                f"title=repro-lint {f.rule}::{esc(f.message)}"
            )
        print(f"{len(fresh)} new finding(s)", file=sys.stderr)
    else:
        for f in fresh:
            print(f.render())
        n_base = len(findings) - len(fresh)
        print(
            f"{len(fresh)} new finding(s), {n_base} baselined, "
            f"{len(findings)} total",
            file=sys.stderr,
        )
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
