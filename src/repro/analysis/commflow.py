"""Interprocedural communication-flow analysis.

The PR-2 linter (:mod:`repro.analysis.lint`) checks collective symmetry
*lexically, inside one function* — a rank-dependent branch that reaches
an ``allreduce`` through a helper call is invisible to it.  This module
closes that hole and goes further: it builds a module-level call graph
over a source tree, abstractly interprets every function body into a
**collective signature** (the ordered sequence of communication
operations the function may issue, with branches joined into choice
nodes and loops summarized as repetitions), and propagates those
signatures bottom-up to check three interprocedural rules:

R7  **divergent collective order** — a rank-tainted condition guarding
    a *call* whose transitive signature contains a collective (the
    interprocedural generalization of R1), or a lexical collective
    whose guard is tainted only through channels R1 cannot see
    (rank-valued parameters, rank-local function results).

R8  **send/recv pairing & deadlock cycles** — a blocking ``recv`` whose
    matching ``send`` (complementary rank shift, equal tag) is only
    issued *later* in SPMD program order deadlocks every rank; a
    ``recv``/``send`` with no complementary endpoint anywhere in the
    program is unmatched.  ``SimComm`` sends are buffered, so only
    recv-before-send orderings block.

R9  **shared-buffer publication** — in-place mutation of a buffer after
    it was handed to ``send``/``alltoall``/``bcast`` (the payload may
    still be in flight under a zero-copy backend) or after it was
    returned by a function that hands out cached/shared values (the
    race class a process-pool backend cannot tolerate).

Beyond findings, the same signatures yield the **whole-program static
comm schedule** of the :class:`~repro.amr.pardriver.ParAmrPipeline`
entry points as a JSON artifact, and :class:`ScheduleNFA` compiles a
schedule tree into a nondeterministic finite automaton that
:mod:`repro.analysis.conformance` replays the observed collective
stream against at runtime (under ``REPRO_SANITIZE=1``).

Scope and precision
-------------------
* ``parallel/``, ``analysis/``, and ``obs/`` modules are treated as
  opaque primitives: communicator *method calls* are recognized
  syntactically wherever they appear, but the comm layer's internals
  are never interpreted (they intentionally branch on rank).
* Convenience collectives that delegate inside ``SimComm``
  (``global_offsets``/``allgather_concat`` -> ``allgather``,
  ``alltoallv_arrays`` -> ``alltoall``) are canonicalized to the op the
  runtime sanitizer observes, at the caller's line, so static schedule
  sites match ``CheckedComm`` call sites exactly.
* Lightweight type inference (constructor calls, parameter/return/field
  annotations, per-class ``self.attr`` registries) resolves method
  calls; unresolved calls contribute no events.
* Branch bodies are interpreted in source order with one shared
  environment (the same approximation the lexical linter makes).

Usage::

    python -m repro.analysis.commflow src/ --schedule comm_schedule.json
    python -m repro.analysis.lint src/ --commflow --baseline

Stdlib-only on purpose: CI runs this before installing numpy/scipy.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path

from .lint import (
    Finding,
    _collective_call,
    _int_literal,
    _is_comm_expr,
    _is_tainted,
    _root_name,
    _suppressed,
    _target_names,
)

__all__ = [
    "CommEvent",
    "Program",
    "ScheduleNFA",
    "build_program",
    "build_schedule",
    "commflow_findings",
    "DEFAULT_ROOT",
    "DEFAULT_ENTRIES",
    "main",
]

#: package names whose modules are opaque primitives (never interpreted)
OPAQUE_PACKAGES = ("parallel", "analysis", "obs")

#: convenience collectives -> the base op CheckedComm actually observes
CANONICAL_OP = {
    "global_offsets": "allgather",
    "allgather_concat": "allgather",
    "alltoallv_arrays": "alltoall",
}

#: collectives whose payload argument is published to other ranks
PUBLISHING_COLLECTIVES = {"alltoall", "alltoallv_arrays", "bcast"}

#: ndarray methods that mutate the receiver in place
MUTATING_METHODS = {"fill", "sort", "partition", "put"}

#: the pipeline whose entry points define the static comm schedule
DEFAULT_ROOT = "repro.amr.pardriver.ParAmrPipeline"
DEFAULT_ENTRIES = {
    "init": "__init__",
    "adapt": "adapt",
    "advance": "advance",
    "advance_time": "advance_time",
}

_MAX_PATHS = 64  # R8 path enumeration cap per function
_MAX_INLINE = 4  # R8 call-inlining depth
_MAX_RESOLVE = 8  # re-export chain depth


@dataclass(frozen=True)
class CommEvent:
    """One abstract communication operation in a signature."""

    kind: str  # "coll" | "send" | "recv"
    op: str  # canonical op name
    site: str  # "<basename>.py:<line>" — matches CheckedComm._call_site()
    file: str  # repo-relative path (for findings)
    line: int
    col: int
    func: str  # qualified name of the containing function
    tag: int | None = 0  # p2p tag (None = statically unknown)
    shift: tuple | None = None  # ("rank", d) | ("const", c) | None
    guarded: bool = False  # under rank-tainted control flow


# Signature node grammar (plain tuples, cheap to build and walk):
#   ("op", CommEvent)
#   ("call", qname, site, line, col, guarded)
#   ("choice", [(items, viable), ...])      viable=False means the arm raises
#   ("loop", items)


@dataclass
class FuncInfo:
    """One analyzed function/method and its interpretation products."""

    qname: str
    module: str
    cls: str | None
    node: ast.AST
    file: str
    sig: list = field(default_factory=list)
    timeline: list = field(default_factory=list)  # R9 replay events
    guarded_calls: list = field(default_factory=list)  # R7 candidates
    guarded_colls: list = field(default_factory=list)  # R7 (lexical, interp-only taint)
    returns_tainted: bool = False
    returns_cached: bool = False


@dataclass
class ClassInfo:
    qname: str
    module: str
    node: ast.ClassDef
    bases: list = field(default_factory=list)  # resolved base class qnames
    methods: dict = field(default_factory=dict)  # name -> func qname
    attrs: dict = field(default_factory=dict)  # attr name -> class qname


@dataclass
class ModuleInfo:
    name: str
    path: Path
    file: str
    is_pkg: bool
    tree: ast.Module
    lines: list


@dataclass
class Summary:
    """Bottom-up transitive facts about one function."""

    qname: str
    has_collective: bool = False
    has_p2p: bool = False
    chain: tuple = ()  # ((callee-or-op, site), ..., (op, site)) to 1st collective
    returns_tainted: bool = False
    returns_cached: bool = False


def _module_name(path: Path) -> str:
    """Dotted module name from the package structure on disk."""
    parts = [] if path.stem == "__init__" else [path.stem]
    d = path.parent
    while (d / "__init__.py").exists():
        parts.insert(0, d.name)
        parent = d.parent
        if parent == d:
            break
        d = parent
    return ".".join(parts) or path.stem


def _is_opaque(path: Path) -> bool:
    return any(p in OPAQUE_PACKAGES for p in path.parts)


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chain as a dotted string (Name base only)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _shift_of(node: ast.AST, endpoints: dict) -> tuple | None:
    """Symbolic p2p endpoint: ("rank", d), ("const", c), or None."""
    if isinstance(node, ast.Name) and node.id in endpoints:
        return endpoints[node.id]
    if (c := _int_literal(node)) is not None:
        return ("const", c)
    if isinstance(node, ast.Attribute) and node.attr == "rank":
        return ("rank", 0)
    if isinstance(node, ast.Name) and node.id == "rank":
        return ("rank", 0)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Mod):
            return _shift_of(node.left, endpoints)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            sign = 1 if isinstance(node.op, ast.Add) else -1
            left = _shift_of(node.left, endpoints)
            c = _int_literal(node.right)
            if left is not None and left[0] == "rank" and c is not None:
                return ("rank", left[1] + sign * c)
            if isinstance(node.op, ast.Add):
                right = _shift_of(node.right, endpoints)
                c = _int_literal(node.left)
                if right is not None and right[0] == "rank" and c is not None:
                    return ("rank", right[1] + c)
    return None


def _call_arg(node: ast.Call, idx: int, name: str) -> ast.AST | None:
    if len(node.args) > idx:
        return node.args[idx]
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _tag_of(node: ast.Call, idx: int) -> int | None:
    expr = _call_arg(node, idx, "tag")
    if expr is None:
        return 0  # SimComm default tag
    return _int_literal(expr)


def _is_launder_rhs(node: ast.AST) -> bool:
    """RHS that yields a fresh buffer (clears publish/shared marks)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in ("copy", "deepcopy", "tolist")
    return False


def _is_cacheget_rhs(node: ast.AST) -> bool:
    """Lexical cached-value RHS (``*cache*.get(...)`` / ``operator_cache``)."""
    if not isinstance(node, ast.Call):
        return False
    f = node.func
    if isinstance(f, ast.Attribute) and f.attr == "get":
        recv = f.value
        if isinstance(recv, ast.Name) and "cache" in recv.id.lower():
            return True
        if isinstance(recv, ast.Attribute) and "cache" in recv.attr.lower():
            return True
    if isinstance(f, ast.Name) and f.id == "operator_cache":
        return True
    if isinstance(f, ast.Attribute) and f.attr == "operator_cache":
        return True
    return False


# --------------------------------------------------------------------------
# the abstract interpreter (one function body -> signature + bookkeeping)


class _Interp:
    def __init__(self, prog: Program, fn: FuncInfo, summaries: dict):
        self.prog = prog
        self.fn = fn
        self.mod = prog.modules[fn.module]
        self.summaries = summaries
        self.symbols = dict(prog.module_symbols[fn.module])
        self.types: dict[str, object] = {}
        self.tainted: set[str] = set()  # full model (params, interproc)
        self.lex_tainted: set[str] = set()  # the lexical linter's model
        self.endpoints: dict[str, tuple] = {}
        self.cached: set[str] = set()  # lexical cache-get locals
        self.guards: list[tuple] = []  # (kind, line, full_taint, lex_taint)
        self.basename = Path(fn.file).name

    def run(self) -> None:
        fn = self.fn
        fn.sig = []
        fn.timeline = []
        fn.guarded_calls = []
        fn.guarded_colls = []
        fn.returns_tainted = False
        fn.returns_cached = False
        node = fn.node
        if fn.cls is not None:
            self.types["self"] = fn.cls
        args = node.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if a.annotation is not None:
                t = self.prog.resolve_annotation(a.annotation, fn.module)
                if isinstance(t, str):
                    self.types[a.arg] = t
            if a.arg == "rank" or a.arg.endswith("_rank"):
                self.tainted.add(a.arg)
                self.endpoints[a.arg] = ("rank", 0)
        items, _term = self.block(node.body)
        fn.sig = items

    # -- blocks -------------------------------------------------------------

    def block(self, stmts: list) -> tuple[list, str | None]:
        items: list = []
        for idx, st in enumerate(stmts):
            if isinstance(st, ast.If):
                sub, term = self._if(st, stmts[idx + 1 :])
                return items + sub, term
            got, term = self.stmt(st)
            items.extend(got)
            if term is not None:
                return items, term
        return items, None

    def _if(self, st: ast.If, rest: list) -> tuple[list, str | None]:
        items = self.expr(st.test)
        full = _is_tainted(st.test, self.tainted)
        lex = _is_tainted(st.test, self.lex_tainted)
        self.guards.append(("if", st.lineno, full, lex))
        then_items, then_term = self.block(st.body)
        else_items, else_term = self.block(st.orelse)
        self.guards.pop()
        if then_term is None and else_term is None and not then_items and not else_items:
            rest_items, rest_term = self.block(rest)
            return items + rest_items, rest_term
        if then_term is not None and else_term is not None:
            arms = [
                (then_items, then_term != "raise"),
                (else_items, else_term != "raise"),
            ]
            items.append(("choice", arms))
            term = "raise" if then_term == else_term == "raise" else "return"
            return items, term
        rest_items, rest_term = self.block(rest)
        arms = []
        for s, t in ((then_items, then_term), (else_items, else_term)):
            if t is None:
                arms.append((s + rest_items, rest_term != "raise"))
            else:
                arms.append((s, t != "raise"))
        items.append(("choice", arms))
        return items, rest_term

    def _loop_orelse(self, orelse: list) -> list:
        """A loop's ``else`` clause runs only when the loop exits without
        ``break``, so it is optional: model it as a choice between the
        clause and nothing, and never let it terminate the block (the
        post-loop code stays reachable through the break path)."""
        if not orelse:
            return []
        more, oterm = self.block(orelse)
        if not more and oterm is None:
            return []
        return [("choice", [(more, oterm != "raise"), ([], True)])]

    # -- statements ---------------------------------------------------------

    def stmt(self, st: ast.stmt) -> tuple[list, str | None]:
        if isinstance(st, ast.Expr):
            return self.expr(st.value), None
        if isinstance(st, ast.Assign):
            items = self.expr(st.value)
            for target in st.targets:
                self._check_store(target, st)
            self._bind(st.targets, st.value)
            return items, None
        if isinstance(st, ast.AnnAssign):
            items = self.expr(st.value) if st.value is not None else []
            self._check_store(st.target, st)
            self._bind([st.target], st.value, annotation=st.annotation)
            return items, None
        if isinstance(st, ast.AugAssign):
            items = self.expr(st.value)
            root = _root_name(st.target)
            if root is not None:
                self._mutate(root, st, "in-place operator")
            if isinstance(st.target, ast.Name) and _is_tainted(st.value, self.tainted):
                self.tainted.add(st.target.id)
            if isinstance(st.target, ast.Name) and _is_tainted(st.value, self.lex_tainted):
                self.lex_tainted.add(st.target.id)
            return items, None
        if isinstance(st, ast.Return):
            items = self.expr(st.value) if st.value is not None else []
            self._note_return(st.value)
            return items, "return"
        if isinstance(st, ast.Raise):
            items = self.expr(st.exc) if st.exc is not None else []
            return items, "raise"
        if isinstance(st, ast.Assert):
            items = self.expr(st.test)
            if st.msg is not None:
                items += self.expr(st.msg)
            return items, None
        if isinstance(st, ast.While):
            head = self.expr(st.test)
            full = _is_tainted(st.test, self.tainted)
            lex = _is_tainted(st.test, self.lex_tainted)
            self.guards.append(("while", st.lineno, full, lex))
            body, _t = self.block(st.body)
            self.guards.pop()
            items = head + ([("loop", body + head)] if body or head else [])
            return items + self._loop_orelse(st.orelse), None
        if isinstance(st, ast.For):
            head = self.expr(st.iter)
            full = _is_tainted(st.iter, self.tainted)
            lex = _is_tainted(st.iter, self.lex_tainted)
            if full:
                for name in _target_names(st.target):
                    self.tainted.add(name)
            if lex:
                for name in _target_names(st.target):
                    self.lex_tainted.add(name)
            self.guards.append(("for", st.lineno, full, lex))
            body, _t = self.block(st.body)
            self.guards.pop()
            items = head + ([("loop", body)] if body else [])
            return items + self._loop_orelse(st.orelse), None
        if isinstance(st, ast.With):
            items: list = []
            for wi in st.items:
                items += self.expr(wi.context_expr)
            body, term = self.block(st.body)
            return items + body, term
        if isinstance(st, ast.Try):
            items, term = self.block(st.body)
            handler_arms = []
            for h in st.handlers:
                h_items, _ht = self.block(h.body)
                if h_items:
                    handler_arms.append((h_items, True))
            if handler_arms:
                items.append(("choice", [([], True)] + handler_arms))
                term = None  # an exception may skip the tail of the body
            fin, fterm = self.block(st.finalbody)
            items += fin
            return items, term if fterm is None else fterm
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.symbols[st.name] = f"{self.fn.qname}.<locals>.{st.name}"
            return [], None
        if isinstance(st, ast.ClassDef):
            return [], None
        if isinstance(st, (ast.Import, ast.ImportFrom)):
            self.prog.apply_import(self.symbols, self.mod, st)
            return [], None
        if isinstance(st, ast.Break):
            return [], "break"
        if isinstance(st, ast.Continue):
            return [], "continue"
        if isinstance(st, ast.Delete):
            items = []
            for t in st.targets:
                items += self.expr(t)
            return items, None
        if hasattr(ast, "Match") and isinstance(st, ast.Match):
            items = self.expr(st.subject)
            arms = []
            for case in st.cases:
                c_items, _ct = self.block(case.body)
                arms.append((c_items, True))
            if any(a for a, _v in arms):
                items.append(("choice", arms))
            return items, None
        return [], None

    # -- expressions --------------------------------------------------------

    def expr(self, node: ast.AST | None) -> list:
        out: list = []
        if node is not None:
            self._expr(node, out)
        return out

    def _expr(self, node: ast.AST, out: list) -> None:
        if isinstance(node, ast.Call):
            self._expr(node.func, out)
            for a in node.args:
                self._expr(a.value if isinstance(a, ast.Starred) else a, out)
            for kw in node.keywords:
                self._expr(kw.value, out)
            self._call(node, out)
            return
        if isinstance(node, ast.IfExp):
            self._expr(node.test, out)
            a: list = []
            b: list = []
            self._expr(node.body, a)
            self._expr(node.orelse, b)
            if a or b:
                out.append(("choice", [(a, True), (b, True)]))
            return
        if isinstance(node, ast.BoolOp):
            self._expr(node.values[0], out)
            tail: list = []
            for v in node.values[1:]:
                self._expr(v, tail)
            if tail:
                out.append(("choice", [(tail, True), ([], True)]))
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            gens = node.generators
            self._expr(gens[0].iter, out)
            body: list = []
            for g in gens[1:]:
                self._expr(g.iter, body)
            for g in gens:
                for cond in g.ifs:
                    self._expr(cond, body)
            if isinstance(node, ast.DictComp):
                self._expr(node.key, body)
                self._expr(node.value, body)
            else:
                self._expr(node.elt, body)
            if body:
                out.append(("loop", body))
            return
        if isinstance(node, ast.Lambda):
            return
        for child in ast.iter_child_nodes(node):
            self._expr(child, out)

    def _guard(self) -> tuple | None:
        """Innermost rank-tainted guard (kind, line, lex_tainted_too)."""
        for kind, line, full, lex in reversed(self.guards):
            if full:
                return (kind, line, lex)
        return None

    def _event(self, kind: str, op: str, node: ast.AST, **kw) -> CommEvent:
        return CommEvent(
            kind=kind,
            op=op,
            site=f"{self.basename}:{node.lineno}",
            file=self.fn.file,
            line=node.lineno,
            col=node.col_offset + 1,
            func=self.fn.qname,
            guarded=self._guard() is not None,
            **kw,
        )

    def _call(self, node: ast.Call, out: list) -> None:
        f = node.func
        # mutation-by-call bookkeeping (any call)
        if isinstance(f, ast.Attribute) and f.attr == "at" and node.args:
            root = _root_name(node.args[0])
            if root:
                self._mutate(root, node, "mutating ufunc '.at'")
        if isinstance(f, ast.Attribute) and f.attr in MUTATING_METHODS:
            root = _root_name(f.value)
            if root:
                self._mutate(root, node, f"mutating method '.{f.attr}'")
        for kw in node.keywords:
            if kw.arg == "out" and (root := _root_name(kw.value)):
                self._mutate(root, node, "ufunc out=")

        op = _collective_call(node)
        if op is not None:
            canon = CANONICAL_OP.get(op, op)
            ev = self._event("coll", canon, node)
            out.append(("op", ev))
            g = self._guard()
            lex_guarded = any(gl for _k, _l, _f, gl in self.guards)
            if g is not None and not lex_guarded:
                # tainted only through interp channels R1 cannot see
                self.fn.guarded_colls.append((ev, g[0], g[1]))
            if op in PUBLISHING_COLLECTIVES and node.args:
                self._publish(node.args[0], canon, node)
            return
        if isinstance(f, ast.Attribute) and _is_comm_expr(f.value):
            if f.attr == "send":
                dest = _call_arg(node, 1, "dest")
                ev = self._event(
                    "send",
                    "send",
                    node,
                    tag=_tag_of(node, 2),
                    shift=_shift_of(dest, self.endpoints) if dest is not None else None,
                )
                out.append(("op", ev))
                if node.args:
                    self._publish(node.args[0], "send", node)
                return
            if f.attr == "recv":
                source = _call_arg(node, 0, "source")
                ev = self._event(
                    "recv",
                    "recv",
                    node,
                    tag=_tag_of(node, 1),
                    shift=_shift_of(source, self.endpoints) if source is not None else None,
                )
                out.append(("op", ev))
                return
            if f.attr == "sendrecv":
                dest = _call_arg(node, 1, "dest")
                source = _call_arg(node, 2, "source")
                out.append(
                    (
                        "op",
                        self._event(
                            "send",
                            "send",
                            node,
                            tag=_tag_of(node, 3),
                            shift=_shift_of(dest, self.endpoints) if dest is not None else None,
                        ),
                    )
                )
                out.append(
                    (
                        "op",
                        self._event(
                            "recv",
                            "recv",
                            node,
                            tag=_tag_of(node, 3),
                            shift=_shift_of(source, self.endpoints)
                            if source is not None
                            else None,
                        ),
                    )
                )
                if node.args:
                    self._publish(node.args[0], "send", node)
                return

        target = self._call_target(node)
        if target is not None:
            kind, qn = target
            if kind == "class":
                init = self.prog.method_of(qn, "__init__")
                if init is None:
                    return
                qn = init
            elif kind != "func":
                return
            if qn == self.fn.qname:
                return  # direct self-recursion adds nothing
            g = self._guard()
            out.append(
                ("call", qn, f"{self.basename}:{node.lineno}", node.lineno, node.col_offset + 1, g is not None)
            )
            if g is not None:
                self.fn.guarded_calls.append((qn, node, g[0], g[1]))

    def _publish(self, payload: ast.AST, op: str, node: ast.AST) -> None:
        """Record buffers handed to a communication op (R9)."""
        if isinstance(payload, (ast.List, ast.Tuple)):
            for elt in payload.elts:
                self._publish(elt, op, node)
            return
        if isinstance(payload, ast.Call):
            return  # fresh value (e.g. .copy(), list(...)) — laundered
        root = _root_name(payload)
        if root:
            self.fn.timeline.append(("publish", root, op, node.lineno, node.col_offset + 1))

    def _mutate(self, name: str, node: ast.AST, how: str) -> None:
        self.fn.timeline.append(("mutate", name, how, node.lineno, node.col_offset + 1))

    # -- binding / typing ---------------------------------------------------

    def _resolve_symbol(self, name: str):
        dotted = self.symbols.get(name)
        if dotted is None:
            return None
        return self.prog.resolve_dotted(dotted)

    def _call_target(self, node: ast.Call):
        """Resolve a call to ("func"|"class", qname), or None."""
        f = node.func
        if isinstance(f, ast.Name):
            r = self._resolve_symbol(f.id)
            if r is not None and r[0] in ("func", "class"):
                return r
            return None
        if isinstance(f, ast.Attribute):
            if isinstance(f.value, ast.Name):
                r = self._resolve_symbol(f.value.id)
                if r is not None and r[0] == "mod":
                    sub = self.prog.resolve_dotted(f"{r[1]}.{f.attr}")
                    if sub is not None and sub[0] in ("func", "class"):
                        return sub
            base = self._value_type(f.value)
            if isinstance(base, str):
                m = self.prog.method_of(base, f.attr)
                if m is not None:
                    return ("func", m)
        return None

    def _value_type(self, node: ast.AST | None):
        if node is None:
            return None
        if isinstance(node, ast.Name):
            t = self.types.get(node.id)
            if t is not None:
                return t
            r = self._resolve_symbol(node.id)
            if r is not None and r[0] == "class":
                return None  # the class object itself, not an instance
            return None
        if isinstance(node, ast.Attribute):
            base = self._value_type(node.value)
            if isinstance(base, str):
                return self.prog.attr_type(base, node.attr)
            return None
        if isinstance(node, ast.Call):
            target = self._call_target(node)
            if target is None:
                return None
            kind, qn = target
            if kind == "class":
                return qn
            fi = self.prog.functions.get(qn)
            if fi is not None and getattr(fi.node, "returns", None) is not None:
                return self.prog.resolve_annotation(fi.node.returns, fi.module)
            return None
        if isinstance(node, ast.Tuple):
            return ("tuple", [self._value_type(e) for e in node.elts])
        if isinstance(node, ast.Await):
            return self._value_type(node.value)
        return None

    def _bind(self, targets: list, value: ast.AST | None, annotation: ast.AST | None = None) -> None:
        vtype = None
        if annotation is not None:
            vtype = self.prog.resolve_annotation(annotation, self.fn.module)
        if vtype is None and value is not None:
            vtype = self._value_type(value)
        full = value is not None and _is_tainted(value, self.tainted)
        lex = value is not None and _is_tainted(value, self.lex_tainted)
        shift = _shift_of(value, self.endpoints) if value is not None else None
        cacheget = value is not None and _is_cacheget_rhs(value)
        launder = value is not None and _is_launder_rhs(value)
        alias = value.id if isinstance(value, ast.Name) else None
        call_q = None
        if isinstance(value, ast.Call):
            t = self._call_target(value)
            if t is not None and t[0] == "func":
                call_q = t[1]
                s = self.summaries.get(call_q)
                if s is not None and s.returns_tainted:
                    full = True

        for target in targets:
            self._bind_one(target, vtype, full, lex, shift, cacheget, launder, alias, call_q)

    def _bind_one(self, target, vtype, full, lex, shift, cacheget, launder, alias, call_q) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            elts = [e.value if isinstance(e, ast.Starred) else e for e in target.elts]
            sub = (
                vtype[1]
                if isinstance(vtype, tuple) and vtype[0] == "tuple" and len(vtype[1]) == len(elts)
                else [None] * len(elts)
            )
            for e, t in zip(elts, sub):
                self._bind_one(e, t, full, lex, None, False, launder, None, call_q)
            return
        if isinstance(target, ast.Attribute):
            # record self.<attr> types into the class registry
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn.cls is not None
                and isinstance(vtype, str)
            ):
                ci = self.prog.classes.get(self.fn.cls)
                if ci is not None:
                    ci.attrs.setdefault(target.attr, vtype)
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if isinstance(vtype, str):
            self.types[name] = vtype
        else:
            self.types.pop(name, None)
        self.tainted.add(name) if full else self.tainted.discard(name)
        self.lex_tainted.add(name) if lex else self.lex_tainted.discard(name)
        if shift is not None:
            self.endpoints[name] = shift
        else:
            self.endpoints.pop(name, None)
        if cacheget:
            self.cached.add(name)
        elif alias is not None and alias in self.cached:
            self.cached.add(name)
        else:
            self.cached.discard(name)
        # R9 replay events
        if call_q is not None:
            self.fn.timeline.append(("bind_call", name, call_q))
        elif alias is not None and not launder:
            self.fn.timeline.append(("bind_alias", name, alias))
        else:
            self.fn.timeline.append(("bind", name, None))

    def _check_store(self, target: ast.AST, st: ast.stmt) -> None:
        if isinstance(target, (ast.Subscript,)):
            root = _root_name(target)
            if root:
                self._mutate(root, st, "element write")
        if isinstance(target, ast.Tuple):
            for e in target.elts:
                self._check_store(e, st)

    def _note_return(self, value: ast.AST | None) -> None:
        if value is None:
            return
        if _is_tainted(value, self.tainted):
            self.fn.returns_tainted = True
        if _is_cacheget_rhs(value):
            self.fn.returns_cached = True
        if isinstance(value, ast.Name) and value.id in self.cached:
            self.fn.returns_cached = True
        if isinstance(value, ast.Call):
            t = self._call_target(value)
            if t is not None and t[0] == "func":
                s = self.summaries.get(t[1])
                if s is not None and s.returns_cached:
                    self.fn.returns_cached = True
                if s is not None and s.returns_tainted:
                    self.fn.returns_tainted = True


# --------------------------------------------------------------------------
# the whole-program analysis


class Program:
    """A collection of analyzed modules with interprocedural summaries."""

    def __init__(self, paths: list):
        self.modules: dict[str, ModuleInfo] = {}
        self.module_symbols: dict[str, dict] = {}
        self.functions: dict[str, FuncInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.sources: dict[str, list] = {}
        self.notes: list[str] = []
        self._sums: dict[str, Summary] = {}
        self._ran = False
        self._collect(paths)

    # -- collection ---------------------------------------------------------

    def _collect(self, paths: list) -> None:
        files: list[Path] = []
        for path in paths:
            p = Path(path)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
        seen: set[Path] = set()
        for f in files:
            if f in seen or _is_opaque(f):
                continue
            seen.add(f)
            try:
                source = f.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(f))
            except (OSError, SyntaxError) as exc:
                self.notes.append(f"skipped {f}: {exc}")
                continue
            name = _module_name(f)
            rel = f.as_posix()
            mod = ModuleInfo(
                name=name,
                path=f,
                file=rel,
                is_pkg=f.stem == "__init__",
                tree=tree,
                lines=source.splitlines(),
            )
            self.modules[name] = mod
            self.sources[rel] = mod.lines
        for mod in self.modules.values():
            self._collect_module(mod)
        for ci in self.classes.values():
            self._resolve_bases(ci)
            self._collect_class_attrs(ci)

    def _collect_module(self, mod: ModuleInfo) -> None:
        symbols: dict[str, str] = {}
        self.module_symbols[mod.name] = symbols
        for st in mod.tree.body:
            if isinstance(st, (ast.Import, ast.ImportFrom)):
                self.apply_import(symbols, mod, st)
            elif isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{mod.name}.{st.name}"
                symbols[st.name] = qname
                self.functions[qname] = FuncInfo(
                    qname=qname, module=mod.name, cls=None, node=st, file=mod.file
                )
                self._register_nested(mod, st.body, qname)
            elif isinstance(st, ast.ClassDef):
                qname = f"{mod.name}.{st.name}"
                symbols[st.name] = qname
                ci = ClassInfo(qname=qname, module=mod.name, node=st)
                self.classes[qname] = ci
                for m in st.body:
                    if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mq = f"{qname}.{m.name}"
                        ci.methods[m.name] = mq
                        self.functions[mq] = FuncInfo(
                            qname=mq, module=mod.name, cls=qname, node=m, file=mod.file
                        )
                        self._register_nested(mod, m.body, mq)

    def _register_nested(self, mod: ModuleInfo, body: list, prefix: str) -> None:
        for st in body:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.<locals>.{st.name}"
                self.functions[qname] = FuncInfo(
                    qname=qname, module=mod.name, cls=None, node=st, file=mod.file
                )
                self._register_nested(mod, st.body, qname)
            elif isinstance(st, (ast.If, ast.While, ast.For, ast.With, ast.Try)):
                for attr in ("body", "orelse", "finalbody"):
                    self._register_nested(mod, getattr(st, attr, []) or [], prefix)
                for h in getattr(st, "handlers", []) or []:
                    self._register_nested(mod, h.body, prefix)

    def apply_import(self, symbols: dict, mod: ModuleInfo, node: ast.stmt) -> None:
        """Fold an import statement into a symbol table."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    symbols[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    symbols[head] = head
            return
        if not isinstance(node, ast.ImportFrom):
            return
        parts = mod.name.split(".")
        if node.level:
            if not mod.is_pkg:
                parts = parts[:-1]
            if node.level > 1:
                parts = parts[: len(parts) - (node.level - 1)]
        if node.module:
            parts = parts + node.module.split(".")
        base = ".".join(parts)
        for alias in node.names:
            if alias.name == "*":
                continue
            symbols[alias.asname or alias.name] = f"{base}.{alias.name}" if base else alias.name

    def resolve_dotted(self, dotted: str, depth: int = 0):
        """Resolve a dotted path to ("func"|"class"|"mod", qname)."""
        if depth > _MAX_RESOLVE:
            return None
        if dotted in self.functions:
            return ("func", dotted)
        if dotted in self.classes:
            return ("class", dotted)
        if dotted in self.modules:
            return ("mod", dotted)
        head, _, tail = dotted.rpartition(".")
        if head and head in self.module_symbols:
            target = self.module_symbols[head].get(tail)
            if target is not None and target != dotted:
                return self.resolve_dotted(target, depth + 1)
        return None

    # -- classes ------------------------------------------------------------

    def _resolve_bases(self, ci: ClassInfo) -> None:
        symbols = self.module_symbols.get(ci.module, {})
        for b in ci.node.bases:
            dotted = _dotted_name(b)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            root = symbols.get(head, head)
            r = self.resolve_dotted(f"{root}.{rest}" if rest else root)
            if r is not None and r[0] == "class":
                ci.bases.append(r[1])

    def _collect_class_attrs(self, ci: ClassInfo) -> None:
        for st in ci.node.body:
            if isinstance(st, ast.AnnAssign) and isinstance(st.target, ast.Name):
                t = self.resolve_annotation(st.annotation, ci.module)
                if isinstance(t, str):
                    ci.attrs.setdefault(st.target.id, t)

    def mro(self, cls_qname: str):
        seen = [cls_qname]
        queue = [cls_qname]
        while queue:
            q = queue.pop(0)
            ci = self.classes.get(q)
            if ci is None:
                continue
            for b in ci.bases:
                if b not in seen:
                    seen.append(b)
                    queue.append(b)
        return seen

    def method_of(self, cls_qname: str, name: str) -> str | None:
        for q in self.mro(cls_qname):
            ci = self.classes.get(q)
            if ci is not None and name in ci.methods:
                return ci.methods[name]
        return None

    def attr_type(self, cls_qname: str, attr: str) -> str | None:
        for q in self.mro(cls_qname):
            ci = self.classes.get(q)
            if ci is not None and attr in ci.attrs:
                return ci.attrs[attr]
        return None

    def resolve_annotation(self, node: ast.AST | None, module: str):
        """Annotation expression -> class qname, ("tuple", [...]), or None."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        symbols = self.module_symbols.get(module, {})
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _dotted_name(node)
            if dotted is None:
                return None
            head, _, rest = dotted.partition(".")
            root = symbols.get(head, head)
            r = self.resolve_dotted(f"{root}.{rest}" if rest else root)
            if r is not None and r[0] == "class":
                return r[1]
            return None
        if isinstance(node, ast.Subscript):
            base = _dotted_name(node.value)
            base_tail = (base or "").rpartition(".")[2]
            if base_tail in ("tuple", "Tuple"):
                sl = node.slice
                elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
                return ("tuple", [self.resolve_annotation(e, module) for e in elts])
            if base_tail == "Optional":
                return self.resolve_annotation(node.slice, module)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self.resolve_annotation(node.left, module)
            if left is not None:
                return left
            return self.resolve_annotation(node.right, module)
        return None

    # -- interpretation + summaries -----------------------------------------

    def run(self) -> None:
        """Interpret every function twice (second pass sees summaries)."""
        if self._ran:
            return
        self._ran = True
        sums: dict[str, Summary] = {}
        for _ in range(2):
            for fn in self.functions.values():
                _Interp(self, fn, sums).run()
            sums = {}
            self._sums = sums
            for qn in self.functions:
                self.summary(qn)
        self._sums = sums

    def summary(self, qname: str, _visiting: frozenset = frozenset()) -> Summary:
        """Transitive facts for one function (memoized; cycles -> empty)."""
        if qname in self._sums:
            return self._sums[qname]
        if qname in _visiting:
            return Summary(qname)
        fn = self.functions.get(qname)
        if fn is None:
            return Summary(qname)
        s = Summary(
            qname,
            returns_tainted=fn.returns_tainted,
            returns_cached=fn.returns_cached,
        )
        self._walk_sig(fn.sig, s, _visiting | {qname})
        self._sums[qname] = s
        return s

    def _walk_sig(self, items: list, s: Summary, visiting: frozenset) -> None:
        for it in items:
            tag = it[0]
            if tag == "op":
                ev = it[1]
                if ev.kind == "coll":
                    if not s.has_collective:
                        s.has_collective = True
                        s.chain = ((ev.op, ev.site),)
                else:
                    s.has_p2p = True
            elif tag == "call":
                sub = self.summary(it[1], visiting)
                if sub.has_p2p:
                    s.has_p2p = True
                if sub.has_collective and not s.has_collective:
                    s.has_collective = True
                    s.chain = ((it[1], it[2]),) + sub.chain
            elif tag == "choice":
                for arm, _viable in it[1]:
                    self._walk_sig(arm, s, visiting)
            elif tag == "loop":
                self._walk_sig(it[1], s, visiting)

    # -- findings -----------------------------------------------------------

    def findings(self) -> list[Finding]:
        """All R7/R8/R9 findings (suppression comments applied)."""
        self.run()
        out = self._r7() + self._r8() + self._r9()
        kept = []
        for f in out:
            lines = self.sources.get(f.file, [])
            if not _suppressed(f, lines):
                kept.append(f)
        kept.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
        return kept

    def _snippet(self, file: str, line: int) -> str:
        lines = self.sources.get(file, [])
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def _finding(self, file: str, line: int, col: int, rule: str, message: str) -> Finding:
        return Finding(
            file=file,
            line=line,
            col=col,
            rule=rule,
            message=message,
            snippet=self._snippet(file, line),
        )

    @staticmethod
    def _short(qname: str) -> str:
        return qname.rpartition(".")[2]

    def _chain_str(self, qname: str) -> tuple[str, str]:
        """(rendered call chain, final collective op) for an R7 message."""
        s = self._sums.get(qname) or Summary(qname)
        hops = []
        for name, site in s.chain[:-1]:
            hops.append(f"{self._short(name)} [{site}]")
        op, site = s.chain[-1] if s.chain else ("?", "?")
        hops.append(f"{op} [{site}]")
        return " -> ".join(hops), op

    def _r7(self) -> list[Finding]:
        out = []
        for fn in self.functions.values():
            for qn, node, kind, gline in fn.guarded_calls:
                s = self._sums.get(qn)
                if s is None or not s.has_collective:
                    continue
                chain, op = self._chain_str(qn)
                out.append(
                    self._finding(
                        fn.file,
                        node.lineno,
                        node.col_offset + 1,
                        "R7",
                        f"call to '{self._short(qn)}' inside rank-dependent "
                        f"'{kind}' (line {gline}) transitively issues collective "
                        f"'{op}' via {chain}; every rank must issue the same "
                        "collective sequence",
                    )
                )
            for ev, kind, gline in fn.guarded_colls:
                out.append(
                    self._finding(
                        fn.file,
                        ev.line,
                        ev.col,
                        "R7",
                        f"collective '{ev.op}' inside rank-dependent '{kind}' "
                        f"(line {gline}); the guard is rank-tainted through a "
                        "parameter or call result the lexical R1 rule cannot see",
                    )
                )
        return out

    # -- R8: p2p pairing & deadlock -----------------------------------------

    @staticmethod
    def _p2p_match(send: CommEvent, recv: CommEvent) -> bool:
        if send.tag is not None and recv.tag is not None and send.tag != recv.tag:
            return False
        ss, rs = send.shift, recv.shift
        if ss is None or rs is None:
            return True
        if ss[0] == "rank" and rs[0] == "rank":
            return ss[1] == -rs[1]
        return True

    def _direct_events(self, items: list, acc: list) -> None:
        for it in items:
            if it[0] == "op":
                acc.append(it[1])
            elif it[0] == "choice":
                for arm, _v in it[1]:
                    self._direct_events(arm, acc)
            elif it[0] == "loop":
                self._direct_events(it[1], acc)

    def _expand_p2p(self, qname: str, depth: int, visiting: frozenset) -> list:
        fn = self.functions.get(qname)
        if fn is None:
            return [[]]
        return self._expand_items(fn.sig, depth, visiting | {qname})

    def _expand_items(self, items: list, depth: int, visiting: frozenset) -> list:
        paths: list[list] = [[]]
        for it in items:
            tag = it[0]
            if tag == "op":
                ev = it[1]
                if ev.kind in ("send", "recv"):
                    paths = [p + [ev] for p in paths]
            elif tag == "call":
                qn = it[1]
                s = self._sums.get(qn)
                if depth > 0 and qn not in visiting and s is not None and s.has_p2p:
                    subs = self._expand_p2p(qn, depth - 1, visiting)
                    if it[5]:  # guarded call: inlined events inherit the guard
                        subs = [[replace(e, guarded=True) for e in sp] for sp in subs]
                    paths = [p + sp for p in paths for sp in subs][:_MAX_PATHS]
            elif tag == "choice":
                arm_paths: list[list] = []
                for arm, viable in it[1]:
                    if viable:
                        arm_paths.extend(self._expand_items(arm, depth, visiting))
                if arm_paths:
                    paths = [p + ap for p in paths for ap in arm_paths][:_MAX_PATHS]
            elif tag == "loop":
                body = self._expand_items(it[1], depth, visiting)
                opts = [[]] + [b for b in body if b]
                paths = [p + o for p in paths for o in opts][:_MAX_PATHS]
        return paths[:_MAX_PATHS]

    def _r8(self) -> list[Finding]:
        out = []
        all_events: list[CommEvent] = []
        for fn in self.functions.values():
            self._direct_events(fn.sig, all_events)
        sends = [e for e in all_events if e.kind == "send"]
        recvs = [e for e in all_events if e.kind == "recv"]

        reported: set[tuple] = set()
        # deadlock: recv before its matching send in SPMD program order
        for fn in self.functions.values():
            s = self._sums.get(fn.qname)
            if s is None or not s.has_p2p:
                continue
            for path in self._expand_p2p(fn.qname, _MAX_INLINE, frozenset()):
                for i, ev in enumerate(path):
                    if ev.kind != "recv" or ev.guarded:
                        continue
                    if ev.shift is None or ev.shift[0] != "rank" or ev.shift[1] == 0:
                        continue
                    if any(
                        p.kind == "send" and self._p2p_match(p, ev) for p in path[:i]
                    ):
                        continue
                    later = next(
                        (p for p in path[i + 1 :] if p.kind == "send" and self._p2p_match(p, ev)),
                        None,
                    )
                    if later is None:
                        continue
                    key = ("deadlock", ev.site, later.site)
                    if key in reported:
                        continue
                    reported.add(key)
                    out.append(
                        self._finding(
                            ev.file,
                            ev.line,
                            ev.col,
                            "R8",
                            f"blocking recv(source=rank{ev.shift[1]:+d}) precedes "
                            f"its matching send at {later.site} in SPMD program "
                            f"order (via {self._short(fn.qname)}); every rank "
                            "blocks here — send first or use sendrecv",
                        )
                    )
        # unmatched endpoints program-wide
        for ev in recvs:
            key = ("unmatched-recv", ev.site)
            if key in reported:
                continue
            if not any(self._p2p_match(snd, ev) for snd in sends):
                reported.add(key)
                shift = "?" if ev.shift is None else f"rank{ev.shift[1]:+d}" if ev.shift[0] == "rank" else str(ev.shift[1])
                out.append(
                    self._finding(
                        ev.file,
                        ev.line,
                        ev.col,
                        "R8",
                        f"recv(source={shift}, tag={ev.tag}) has no matching send "
                        "(complementary shift, equal tag) anywhere in the analyzed "
                        "program; every rank would block forever",
                    )
                )
        for ev in sends:
            key = ("unmatched-send", ev.site)
            if key in reported:
                continue
            if not any(self._p2p_match(ev, rcv) for rcv in recvs):
                reported.add(key)
                out.append(
                    self._finding(
                        ev.file,
                        ev.line,
                        ev.col,
                        "R8",
                        f"send(tag={ev.tag}) has no matching recv anywhere in the "
                        "analyzed program; the message is never received",
                    )
                )
        return out

    # -- R9: shared-buffer publication --------------------------------------

    def _r9(self) -> list[Finding]:
        out = []
        for fn in self.functions.values():
            published: dict[str, tuple] = {}
            shared: dict[str, str] = {}
            reported: set[tuple] = set()
            for ev in fn.timeline:
                what = ev[0]
                if what == "publish":
                    _w, name, op, line, _col = ev
                    published[name] = (op, line)
                elif what == "bind_call":
                    _w, name, qn = ev
                    published.pop(name, None)
                    s = self._sums.get(qn)
                    if s is not None and s.returns_cached:
                        shared[name] = qn
                    else:
                        shared.pop(name, None)
                elif what == "bind_alias":
                    _w, name, src = ev
                    if src != name:
                        if src in published:
                            published[name] = published[src]
                        else:
                            published.pop(name, None)
                        if src in shared:
                            shared[name] = shared[src]
                        else:
                            shared.pop(name, None)
                elif what == "bind":
                    _w, name, _ = ev
                    published.pop(name, None)
                    shared.pop(name, None)
                elif what == "mutate":
                    _w, name, how, line, col = ev
                    if name in published and ("pub", name, line) not in reported:
                        reported.add(("pub", name, line))
                        op, pline = published[name]
                        out.append(
                            self._finding(
                                fn.file,
                                line,
                                col,
                                "R9",
                                f"{how} on '{name}' after it was handed to "
                                f"'{op}' (line {pline}); the buffer may still be "
                                "in flight — publish a copy or mutate before "
                                "sending",
                            )
                        )
                    if name in shared and ("shr", name, line) not in reported:
                        reported.add(("shr", name, line))
                        out.append(
                            self._finding(
                                fn.file,
                                line,
                                col,
                                "R9",
                                f"{how} on '{name}' returned by "
                                f"'{self._short(shared[name])}' which hands out "
                                "cached/shared values; mutate a copy",
                            )
                        )
            del published, shared
        return out

    # -- static schedule -----------------------------------------------------

    def schedule_tree(self, qname: str):
        """Viable-collective schedule tree for one entry function."""
        self.run()
        return self._fn_tree(qname, frozenset())

    def _fn_tree(self, qname: str, visiting: frozenset):
        if qname in visiting:
            self.notes.append(f"recursive call dropped from schedule: {qname}")
            return None
        fn = self.functions.get(qname)
        if fn is None:
            return None
        return self._items_tree(fn.sig, visiting | {qname})

    def _items_tree(self, items: list, visiting: frozenset):
        seq = []
        for it in items:
            tag = it[0]
            if tag == "op":
                ev = it[1]
                if ev.kind == "coll":
                    seq.append({"op": ev.op, "site": ev.site})
            elif tag == "call":
                sub = self._fn_tree(it[1], visiting)
                if sub is not None:
                    seq.append(sub)
            elif tag == "choice":
                arms = []
                for arm, viable in it[1]:
                    if not viable:
                        continue
                    arms.append(self._items_tree(arm, visiting))
                keys = {json.dumps(a, sort_keys=True) for a in arms}
                if not arms or keys == {"null"}:
                    continue
                if len(keys) == 1:
                    if arms[0] is not None:
                        seq.append(arms[0])
                    continue
                dedup = []
                seen: set[str] = set()
                for a in arms:
                    k = json.dumps(a, sort_keys=True)
                    if k not in seen:
                        seen.add(k)
                        dedup.append(a if a is not None else {"seq": []})
                seq.append({"choice": dedup})
            elif tag == "loop":
                sub = self._items_tree(it[1], visiting)
                if sub is not None:
                    seq.append({"loop": sub})
        if not seq:
            return None
        if len(seq) == 1:
            return seq[0]
        return {"seq": seq}


# --------------------------------------------------------------------------
# schedule automaton (compiled from a schedule tree; used by conformance)


class ScheduleNFA:
    """Thompson NFA over (op, site) labels for one schedule tree.

    ``site=None`` in a tree node acts as a wildcard (any site for that
    op) — handy for hand-written schedules in tests.
    """

    def __init__(self):
        self._eps: list[list[int]] = []
        self._edges: list[list] = []  # state -> [((op, site), dst), ...]
        self.start = 0
        self.accept = 0

    @classmethod
    def from_tree(cls, tree) -> "ScheduleNFA":
        nfa = cls()
        s = nfa._new()
        t = nfa._build(tree, s)
        nfa.start, nfa.accept = s, t
        return nfa

    def _new(self) -> int:
        self._eps.append([])
        self._edges.append([])
        return len(self._eps) - 1

    def _build(self, node, src: int) -> int:
        if node is None:
            return src
        if "op" in node:
            dst = self._new()
            self._edges[src].append(((node["op"], node.get("site")), dst))
            return dst
        if "seq" in node:
            cur = src
            for child in node["seq"]:
                cur = self._build(child, cur)
            return cur
        if "choice" in node:
            out = self._new()
            for arm in node["choice"]:
                a = self._new()
                self._eps[src].append(a)
                end = self._build(arm, a)
                self._eps[end].append(out)
            return out
        if "loop" in node:
            head = self._new()
            self._eps[src].append(head)
            end = self._build(node["loop"], head)
            self._eps[end].append(head)
            out = self._new()
            self._eps[src].append(out)
            self._eps[end].append(out)
            return out
        raise ValueError(f"bad schedule node: {node!r}")

    def _closure(self, states) -> frozenset:
        stack = list(states)
        seen = set(states)
        while stack:
            s = stack.pop()
            for t in self._eps[s]:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return frozenset(seen)

    def initial(self) -> frozenset:
        return self._closure({self.start})

    def feed(self, states: frozenset, op: str, site: str | None) -> frozenset:
        nxt = {
            dst
            for s in states
            for (label, dst) in self._edges[s]
            if label[0] == op and (label[1] is None or site is None or label[1] == site)
        }
        return self._closure(nxt) if nxt else frozenset()

    def accepts(self, states: frozenset) -> bool:
        return self.accept in states

    def expected(self, states: frozenset) -> list:
        labels = {label for s in states for (label, _dst) in self._edges[s]}
        return sorted(labels, key=lambda t: (t[0], t[1] or ""))


# --------------------------------------------------------------------------
# public API + CLI


def build_program(paths: list) -> Program:
    """Collect + interpret a source tree; returns the analyzed program."""
    prog = Program(paths)
    prog.run()
    return prog


def commflow_findings(paths: list) -> list[Finding]:
    """R7/R8/R9 findings over ``paths`` (what ``lint --commflow`` merges)."""
    return build_program(paths).findings()


def build_schedule(
    paths: list,
    root: str = DEFAULT_ROOT,
    entries: dict | None = None,
) -> dict:
    """The static comm schedule JSON document for the pipeline entries."""
    prog = build_program(paths)
    entries = dict(DEFAULT_ENTRIES if entries is None else entries)
    doc: dict = {
        "version": 1,
        "generated_by": "repro.analysis.commflow",
        "root": root,
        "entries": {},
        "notes": [],
    }
    for phase, method in entries.items():
        qname = prog.method_of(root, method) if root in prog.classes else None
        if qname is None:
            qname = f"{root}.{method}"
            if qname not in prog.functions:
                doc["notes"].append(f"entry '{phase}': {root}.{method} not found")
                continue
        tree = prog.schedule_tree(qname)
        doc["entries"][phase] = {"qname": qname, "tree": tree}
    doc["notes"].extend(prog.notes)
    return doc


def _count_ops(tree) -> int:
    if tree is None:
        return 0
    if "op" in tree:
        return 1
    if "seq" in tree:
        return sum(_count_ops(c) for c in tree["seq"])
    if "choice" in tree:
        return sum(_count_ops(c) for c in tree["choice"])
    if "loop" in tree:
        return _count_ops(tree["loop"])
    return 0


def main(argv: list | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis.commflow",
        description="Interprocedural comm-flow analysis: static schedules + R7-R9.",
    )
    ap.add_argument("paths", nargs="*", default=["src"], help="files or trees to analyze")
    ap.add_argument(
        "--schedule",
        metavar="PATH",
        default=None,
        help="write the static comm schedule JSON for the pipeline entries",
    )
    ap.add_argument("--root", default=DEFAULT_ROOT, help="pipeline class qname")
    ap.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any R7/R8/R9 finding is reported (no baseline applied)",
    )
    args = ap.parse_args(argv)

    paths = args.paths or ["src"]
    prog = build_program(paths)
    findings = prog.findings()
    for f in findings:
        print(f.render())
    print(f"{len(findings)} commflow finding(s)", file=sys.stderr)

    if args.schedule:
        doc = build_schedule(paths, root=args.root)
        Path(args.schedule).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        for phase, entry in doc["entries"].items():
            print(
                f"schedule[{phase}]: {_count_ops(entry['tree'])} collective site(s)"
                f" ({entry['qname']})",
                file=sys.stderr,
            )
        for note in doc["notes"]:
            print(f"note: {note}", file=sys.stderr)
        print(f"wrote {args.schedule}", file=sys.stderr)

    return 1 if (args.check and findings) else 0


if __name__ == "__main__":
    sys.exit(main())
