"""Matrix-free sum-factorized element apply kernels (Section VII).

MANGLL's kernel study contrasts *matrix-based* element application (one
precomputed dense matrix per operator, large GEMMs over all elements)
with *tensor-product* (sum-factorized) application that exploits the
Kronecker structure of the reference element.  PR 1 amortized operator
*setup*; this module removes the assembled sparse matrix from the
per-iteration hot path entirely: MINRES saddle applies and SUPG rate
evaluations run as batched dense element kernels over every element at
once, so a viscosity update between Picard passes only rebinds
per-element scalar coefficients instead of re-running sparse assembly.

Discretization facts the kernels rely on (see :mod:`repro.fem.hexops`):
every element is an axis-aligned box, all trilinear element matrices
factor as ``kron(Az, Ay, Ax)`` of two-node 1-D matrices, and the 2-point
Gauss rule on each axis integrates every Q1 operator integrand exactly
(per-axis polynomial degree <= 2).  The apply is therefore *bitwise
exact* quadrature, not an approximation: forward-evaluate fields and
reference gradients at the Gauss points of each element (batched GEMMs
built from :func:`repro.mangll.tensor.kron3` factors), combine pointwise
with the per-element coefficients (viscosity, metric scalings ``1/h``,
quadrature weight ``vol/8``), and contract back with the transposed
evaluation matrices.  Two refinements make this fast at Q1: gradient
channels live on *reduced* 4-point grids (a trilinear reference
derivative is constant along its own axis), and all element-space data
is *element-minor* — ``(channels, ne)`` — so coefficient multiplies are
long contiguous runs and the GEMMs are ``(small, small) @ (small, ne)``.

Hanging-node constraints and Dirichlet masking are folded into a single
cached CSR *gather* operator per mesh (rows of ``Z``/``Z3`` indexed by
the element connectivity, Dirichlet columns zeroed) and its transpose
for the scatter — replacing the sparse ``Z^T A Z`` triple products of
the assembled path with two thin sparse matvecs per apply.  All
mesh-derived state lives in :func:`repro.mesh.opcache.operator_cache`,
so it participates in the same structural invalidation and
``REPRO_SANITIZE=1`` freeze/verify guards as the assembly scatters.

The assembled CSR path remains the source of truth for AMG setup,
Dirichlet elimination of the rhs, and the ``variant="matrix"`` legacy
path; parity between the two applies is pinned to ~1e-12 by the tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..mangll.tensor import kron3
from ..mesh import Mesh
from ..mesh.opcache import operator_cache
from .assembly import Z3, vector_dofs

__all__ = [
    "MatFreeStokesOperator",
    "MatFreeAdvectionOperator",
    "apply_scalar_mass",
    "lumped_scalar_mass",
    "batched_lumped_scalar_mass",
    "velocity_gather",
    "scalar_gather",
    "gauss_matrices",
    "saddle_apply_flops",
    "saddle_apply_bytes",
    "advection_apply_flops",
    "csr_apply_flops",
    "csr_apply_bytes",
]

# -- 2-point Gauss quadrature on the unit reference cell ------------------------
#
# Points g0, g1 on [0, 1]; E1 evaluates the two 1-D hat functions at the
# points, D1 their (constant) reference derivatives.  The 3-D evaluation
# matrices are Kronecker products matching hexops' vertex ordering
# (x fastest).  Exactness: (h/2) E1^T E1 = M1, (1/2h) D1^T D1 = K1,
# (1/2) E1^T D1 = G1 — so these kernels reproduce the assembled
# operators to rounding.

_S3 = 1.0 / np.sqrt(3.0)
_GPTS = np.array([(1.0 - _S3) / 2.0, (1.0 + _S3) / 2.0], dtype=np.float64)
_E1 = np.column_stack([1.0 - _GPTS, _GPTS])  # (2 pts, 2 nodes)
_D1 = np.array([[-1.0, 1.0], [-1.0, 1.0]], dtype=np.float64)  # d/dr of the two hats

#: (8, 8) value-evaluation matrix: (E8 @ u_e)[q] = u(x_q).
E8 = kron3(_E1, _E1, _E1)
#: (3, 8, 8) reference-gradient evaluation, axis order (x, y, z).
G8 = np.stack([kron3(_E1, _E1, _D1), kron3(_E1, _D1, _E1), kron3(_D1, _E1, _E1)])

# fused forward/backward factors: one GEMM produces/consumes all three
# reference derivatives of all components of all elements at once
_FWD_GRAD = np.concatenate([G8[0], G8[1], G8[2]], axis=0).T  # (8, 24)
_BWD_GRAD = np.concatenate([G8[0], G8[1], G8[2]], axis=0)  # (24, 8)
# scalar transport fuses the value channel in as well
_FWD_SCAL = np.concatenate([E8, G8[0], G8[1], G8[2]], axis=0).T  # (8, 32)
_BWD_SCAL = np.concatenate([E8, G8[0], G8[1], G8[2]], axis=0)  # (32, 8)

_DIAG3 = np.arange(3)

# Reduced quadrature grids: a trilinear reference derivative along axis b
# is *constant* in the b direction, so G8[b] has pairwise-equal rows and
# the gradient channel (a, b) lives on a 4-point grid (the two transverse
# Gauss axes).  This halves the GEMM flops and the pointwise stress
# traffic.  Row subsets below pick one representative of each duplicated
# pair (q = qx + 2 qy + 4 qz, x fastest); ``_dup_sum(a, X)`` sums the
# rows of a full-grid matrix over axis-``a`` pairs, which is how a
# backward contraction consumes data stored on an ``a``-reduced grid.
_RED_ROWS = (
    np.array([0, 2, 4, 6], dtype=np.intp),
    np.array([0, 1, 4, 5], dtype=np.intp),
    np.array([0, 1, 2, 3], dtype=np.intp),
)
_PAIR_OFFSET = (1, 2, 4)
_GRED = np.stack([G8[b][_RED_ROWS[b]] for b in range(3)])  # (3, 4, 8)
#: fused reduced forward: (3 ne, 8) @ (8, 12) -> all nine grad channels
_FWD_RED = np.concatenate([_GRED[0], _GRED[1], _GRED[2]], axis=0).T


def _dup_sum(a: int, X: np.ndarray) -> np.ndarray:
    """(4, 8) sums of the rows of ``X`` over axis-``a`` quadrature pairs."""
    return X[_RED_ROWS[a]] + X[_RED_ROWS[a] + _PAIR_OFFSET[a]]


#: fused backward for the grad-grad term Sum_b G8[b]^T (c_b g[a, b]):
#: channel (a, b) is b-reduced, so each block is Dup_b^T G8[b] = 2 Gred[b]
_BWD_RED = np.concatenate([_dup_sum(b, G8[b]) for b in range(3)], axis=0)
#: basis-value backward on an a-reduced grid (divergence row of the saddle)
_PSUM = np.stack([_dup_sum(a, E8) for a in range(3)])  # (3, 4, 8)
#: batched correction matrices, one GEMM for the whole coupling block:
#: batch a < 3 is velocity component a, consuming the three
#: transposed-gradient channels g[b, a] (all a-reduced, blocks
#: Dup_a^T G8[b]) plus the full-grid B^T pressure channel (block G8[a]);
#: batch 3 is the pressure row, consuming the three a-reduced diagonal
#: gradient channels (divergence, blocks -Dup_a^T E8) plus the
#: stabilization-mass channel (block -E8)
_CORR = np.stack(
    [
        np.concatenate([_dup_sum(a, G8[0]), _dup_sum(a, G8[1]), _dup_sum(a, G8[2]), G8[a]], axis=0)
        for a in range(3)
    ]
    + [np.concatenate([-_PSUM[0], -_PSUM[1], -_PSUM[2], -E8], axis=0)]
)  # (4, 20, 8)

# Element-minor (transposed) factors.  All element-space arrays are laid
# out channel-major / element-minor — ``(channels, ne)`` — so every
# pointwise coefficient multiply runs over a contiguous length-``ne``
# inner loop instead of ne separate length-4/8 runs (which are dominated
# by per-loop overhead and strided traffic), and the batched GEMMs become
# ``(small, small) @ (small, ne)``.
_FWD_RED_T = np.ascontiguousarray(_FWD_RED.T)  # (12, 8)
_BWD_RED_T = np.ascontiguousarray(_BWD_RED.T)  # (8, 12)
_CORR_T = np.ascontiguousarray(_CORR.transpose(0, 2, 1))  # (4, 8, 20)
_FWD_GRAD_T = np.ascontiguousarray(_FWD_GRAD.T)  # (24, 8)
_FWD_SCAL_T = np.ascontiguousarray(_FWD_SCAL.T)  # (32, 8)
_BWD_SCAL_T = np.ascontiguousarray(_BWD_SCAL.T)  # (8, 32)


def gauss_matrices() -> tuple[np.ndarray, np.ndarray]:
    """The (E8, G8) Gauss-point evaluation matrices (for tests/bench)."""
    return E8, G8


# -- cached constraint-folded gathers -------------------------------------------


class _Gather:
    """CSR gather (independent dofs -> element-local values) and its
    transpose scatter, with hanging-node constraints — and optionally a
    Dirichlet column mask — folded in."""

    def __init__(self, G: sp.csr_matrix, mask: np.ndarray | None):
        G.sort_indices()
        GT = G.T.tocsr()
        GT.sort_indices()
        self.G = G
        self.GT = GT
        self.mask = mask
        #: 1 on Dirichlet-constrained dofs (identity rows of the apply)
        self.imask = None if mask is None else 1.0 - mask


def velocity_gather(mesh: Mesh, bc_key, bc_dofs: np.ndarray) -> _Gather:
    """Element gather for component-blocked velocity in element-minor
    layout: row ``(8 a + i) ne + e`` of ``G`` is the ``Z3`` row of
    component ``a`` at vertex ``i`` of element ``e``, with constrained
    columns zeroed (cached per mesh/BC), so ``G @ u`` reshapes to
    ``(3, 8, ne)``."""

    def build():
        z3 = Z3(mesh)
        vd = vector_dofs(mesh)
        ne = mesh.n_elements
        rows = vd.reshape(ne, 3, 8).transpose(1, 2, 0).ravel()
        mask = np.ones(3 * mesh.n_independent, dtype=np.float64)
        mask[bc_dofs] = 0.0
        G = sp.csr_matrix(z3[rows] @ sp.diags(mask))
        return _Gather(G, mask)

    return operator_cache(mesh).get(("mf_gather_u", bc_key), build)


def scalar_gather(mesh: Mesh) -> _Gather:
    """Element gather for scalar fields in element-minor layout: row
    ``i ne + e`` of ``G`` is the ``Z`` row of vertex ``i`` of element
    ``e`` (cached per mesh), so ``G @ x`` reshapes to ``(8, ne)``."""

    def build():
        G = sp.csr_matrix(mesh.Z[mesh.element_nodes.T.ravel()])
        return _Gather(G, None)

    return operator_cache(mesh).get("mf_gather_p", build)


def _geometry(mesh: Mesh) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(w, ih, vol): Gauss weight ``vol/8``, inverse edge lengths, volume."""

    def build():
        sizes = mesh.element_sizes()
        vol = sizes.prod(axis=1)
        return (vol / 8.0, 1.0 / sizes, vol)

    return operator_cache(mesh).get("mf_geometry", build)


# -- Stokes saddle apply --------------------------------------------------------


class MatFreeStokesOperator:
    """Sum-factorized apply of the constrained saddle operator
    ``[[A, B^T], [B, -C]]`` (strain stiffness, divergence,
    Dohrmann-Bochev stabilization) in one element sweep.

    Equivalent to the assembled path's
    ``apply_dirichlet(Z3^T A Z3) x + ...`` because the gather applies the
    Dirichlet mask ``D`` on input, the scatter applies it on output
    (``D Z3^T A_elem Z3 D``), and the identity rows are restored
    explicitly.  Mesh-derived pieces are cached; per-viscosity pieces are
    plain per-element scalar arrays, so a Picard viscosity update costs
    O(ne) instead of a sparse reassembly.
    """

    def __init__(self, mesh: Mesh, viscosity: np.ndarray, bc_key, bc_dofs: np.ndarray):
        self.mesh = mesh
        ne = mesh.n_elements
        self.n_u = 3 * mesh.n_independent
        self.n_p = mesh.n_independent
        self.gu = velocity_gather(mesh, bc_key, bc_dofs)
        self.gp = scalar_gather(mesh)
        w, ih, vol = _geometry(mesh)
        # Batched mode: a (nb, ne) viscosity advances nb scenarios per
        # GEMM by merging the batch axis into the element axis (flat
        # order e * nb + b, which is exactly how a (24 ne, nb) gather
        # result reshapes to (3, 8, ne * nb)).  Geometry is shared, so
        # per-element coefficients are repeated scenario-minor.
        eta0 = np.asarray(viscosity, dtype=np.float64)
        self.nb = 1 if eta0.ndim == 1 else int(eta0.shape[0])
        if self.nb > 1:
            w = np.repeat(w, self.nb)
            ih = np.repeat(ih, self.nb, axis=0)
            vol = np.repeat(vol, self.nb)
        m = ne * self.nb
        self.ih = ih
        self.ihT = np.ascontiguousarray(ih.T)  # (3, m)
        self.w = w
        self.vol = vol
        self.update_viscosity(viscosity)
        # per-apply workspaces (reused across MINRES iterations), all in
        # element-minor layout
        self._g = np.empty((3, 12, m), dtype=np.float64)
        self._t1 = np.empty((3, 12, m), dtype=np.float64)
        self._acc = np.empty((3, 8, m), dtype=np.float64)
        self._pq = np.empty((8, m), dtype=np.float64)
        self._cin = np.empty((4, 20, m), dtype=np.float64)
        self._cout = np.empty((4, 8, m), dtype=np.float64)

    def update_viscosity(self, viscosity: np.ndarray) -> None:
        """Rebind the per-element coefficients (no mesh-derived rebuild) —
        this is all a Picard viscosity update costs the tensor path.

        The gathered velocity components are pre-scaled by
        ``sih_a = sqrt(w eta) / h_a`` before the forward gradient GEMM, so
        the scaled reference gradients ``gs[a, b] = sih_a d_b u_a`` turn
        every downstream coefficient into a cheap per-element broadcast:
        the grad-grad channel needs ``sih_b^2 / sih_a``, the
        transposed-gradient channels of output component ``a`` need just
        ``sih_a``, and the divergence channels the axis-independent
        ``sqrt(w / eta)``.
        """
        eta = np.asarray(viscosity, dtype=np.float64)
        if eta.ndim == 2:
            if eta.shape[0] != self.nb:
                raise ValueError(
                    f"batched viscosity has {eta.shape[0]} scenarios, "
                    f"operator was built for {self.nb}"
                )
            # element-major, scenario-minor flat order e * nb + b
            eta = np.ascontiguousarray(eta.T).ravel()
        elif self.nb > 1:
            raise ValueError("batched operator needs a (nb, ne) viscosity")
        sihT = np.sqrt(self.w * eta)[None, :] * self.ihT  # (3, ne)
        self.sihT = sihT
        # grad-grad coefficient on pre-scaled gradients:
        # c1T[a, b, e] gs[a, b] = w eta / h_b^2 * d_b u_a
        self.c1T = sihT[None, :, :] ** 2 / sihT[:, None, :]
        self.negwihT = -(self.w[None, :] * self.ihT)  # (3, ne)
        self.s_div = np.sqrt(self.w / eta)  # divergence-channel prefactor
        self.w_over_eta = self.w / eta  # stabilization mass prefactor
        self.stab_mean = self.vol / 64.0 / eta  # rank-one DB projection term

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Full saddle matvec ``[[A, B^T], [B, -C]] x``.

        In batched mode ``x`` is ``(n_dof, nb)`` — one scenario per
        column — and the result has the same shape; every GEMM below then
        advances all ``nb`` scenarios at once on the merged
        element-batch axis.
        """
        obs.counter("matfree_applies")
        ne = self.mesh.n_elements
        m = ne * self.nb
        u, p = x[: self.n_u], x[self.n_u :]
        # gather to element space (constraints + Dirichlet mask folded in)
        # and pre-scale each component by sih_a (see update_viscosity)
        UeT = (self.gu.G @ u).reshape(3, 8, m)
        UeT *= self.sihT[:, None, :]
        peT = (self.gp.G @ p).reshape(8, m)
        # forward: all nine reduced-grid reference gradients in one
        # batched GEMM; gs[a, 4 b + m, e] = sih_a d_b u_a at reduced
        # point m of element e
        gs = np.matmul(_FWD_RED_T[None], UeT, out=self._g)
        pqT = np.matmul(E8, peT, out=self._pq)
        # velocity row, term 1: Sum_b G8[b]^T (w eta / h_b^2) d_b u_a —
        # every channel is b-reduced, one fused backward GEMM
        t1 = self._t1
        np.multiply(
            gs.reshape(3, 3, 4, m), self.c1T[:, :, None, :], out=t1.reshape(3, 3, 4, m)
        )
        acc = np.matmul(_BWD_RED_T[None], t1, out=self._acc)
        # one batched GEMM for everything else.  Batch a < 3 (velocity
        # component a): transposed gradients d_a u_b are all a-reduced,
        # contracted with Dup_a^T G8[b], plus the B^T p channel
        # -w/h_a p(x_q) through the G8[a] block.  Batch 3 (pressure row):
        # divergence channels sqrt(w/eta) gs[a, a] through -Dup_a^T E8 and
        # the Dohrmann-Bochev mass channel w/eta p(x_q) through -E8.
        cin = self._cin
        gs4 = gs.reshape(3, 3, 4, m)
        for a in range(3):  # lint: allow-loop
            np.multiply(
                gs4[:, a, :, :],
                self.sihT[a, None, None, :],
                out=cin[a, :12].reshape(3, 4, m),
            )
            np.multiply(
                gs4[a, a, :, :],
                self.s_div[None, :],
                out=cin[3, 4 * a : 4 * a + 4],
            )
        np.multiply(self.negwihT[:, None, :], pqT[None], out=cin[:3, 12:])
        np.multiply(self.w_over_eta[None, :], pqT, out=cin[3, 12:])
        cout = np.matmul(_CORR_T, cin, out=self._cout)
        acc += cout[:3]
        ope = cout[3]
        ope += (self.stab_mean * peT.sum(axis=0))[None, :]
        out = np.empty_like(x)
        if x.ndim == 1:
            out[self.n_u :] = self.gp.GT @ ope.ravel()
            out_u = out[: self.n_u]
            out_u[:] = self.gu.GT @ acc.ravel()
            out_u += self.gu.imask * u  # identity rows of apply_dirichlet
        else:
            # also reached by a width-1 batch (a lone compacted column)
            # (8, ne * nb) -> (8 ne, nb) is a free reshape (same strides)
            out[self.n_u :] = self.gp.GT @ ope.reshape(8 * ne, self.nb)
            out_u = out[: self.n_u]
            out_u[:] = self.gu.GT @ acc.reshape(24 * ne, self.nb)
            out_u += self.gu.imask[:, None] * u
        return out

    def apply_divergence(self, u: np.ndarray) -> np.ndarray:
        """``B u`` alone (for divergence residual norms)."""
        if self.nb != 1:
            raise ValueError("apply_divergence is serial-only; slice one scenario")
        ne = self.mesh.n_elements
        UeT = (self.gu.G @ u).reshape(3, 8, ne)
        g = np.matmul(_FWD_GRAD_T[None], UeT).reshape(3, 3, 8, ne)
        g *= self.ihT[None, :, None, :]
        div = g[0, 0] + g[1, 1] + g[2, 2]  # (8, ne)
        return self.gp.GT @ (E8.T @ (-self.w[None, :] * div)).ravel()


# -- scalar mass / lumped mass --------------------------------------------------


def apply_scalar_mass(
    mesh: Mesh,
    x: np.ndarray,
    coeff: np.ndarray | float = 1.0,
    supg_vel: np.ndarray | None = None,
    supg_tau: np.ndarray | None = None,
) -> np.ndarray:
    """Matrix-free ``(Z^T M(coeff) Z) x`` for the scalar (optionally
    SUPG-weighted) mass: ``int (N_i + tau a . grad N_i) c N_j``.

    With ``supg_vel``/``supg_tau`` this applies the streamline-weighted
    mass (the matfree analogue of ``ElementOps.supg_mass``); without, the
    plain Galerkin mass.
    """
    gp = scalar_gather(mesh)
    w, ih, _ = _geometry(mesh)
    ne = mesh.n_elements
    TeT = (gp.G @ x).reshape(8, ne)
    TqT = E8 @ TeT
    wc = w * np.asarray(coeff, dtype=np.float64)
    out_e = E8.T @ (wc[None, :] * TqT)
    if supg_vel is not None:
        tau = np.asarray(supg_tau, dtype=np.float64)
        chan = (
            (wc * tau)[None, None, :]
            * np.ascontiguousarray(np.asarray(supg_vel, dtype=np.float64).T)[:, None, :]
            * TqT[None, :, :]
        )
        chan *= np.ascontiguousarray(ih.T)[:, None, :]
        out_e += _BWD_GRAD.T @ chan.reshape(24, ne)
    return gp.GT @ out_e.ravel()


def lumped_scalar_mass(mesh: Mesh, coeff: np.ndarray | float = 1.0) -> np.ndarray:
    """Row sums of the constrained scalar mass, computed matrix-free as
    ``(Z^T M Z) 1`` — the tensor-path Schur diagonal ``Stilde``."""
    d = apply_scalar_mass(mesh, np.ones(mesh.n_independent, dtype=np.float64), coeff)
    if np.any(d <= 0):
        raise AssertionError("non-positive lumped mass entry")
    return d


def batched_lumped_scalar_mass(mesh: Mesh, coeff: np.ndarray) -> np.ndarray:
    """Per-scenario Schur diagonals in one sweep: ``coeff`` is
    ``(nb, ne)`` and the result is ``(n, nb)``, column ``b`` equal to
    ``lumped_scalar_mass(mesh, coeff[b])`` up to GEMM reassociation.

    This is the batched-channel-scaling form used by the fleet engine:
    the gather/backward GEMMs run once on the merged element-batch axis
    instead of ``nb`` separate sparse passes.
    """
    coeff = np.asarray(coeff, dtype=np.float64)
    if coeff.ndim != 2:
        raise ValueError("coeff must be (nb, ne)")
    nb, ne = coeff.shape
    gp = scalar_gather(mesh)
    w, _, _ = _geometry(mesh)
    ones = np.ones((mesh.n_independent, nb), dtype=np.float64)
    TqT = E8 @ (gp.G @ ones).reshape(8, ne * nb)
    wc = (w[:, None] * coeff.T).reshape(-1)  # e * nb + b flat order
    out_e = E8.T @ (wc[None, :] * TqT)
    d = gp.GT @ out_e.reshape(8 * ne, nb)
    if np.any(d <= 0):
        raise AssertionError("non-positive lumped mass entry")
    return d


# -- SUPG advection-diffusion rate operator -------------------------------------


class MatFreeAdvectionOperator:
    """Sum-factorized apply of the SUPG transport operator
    ``kappa K + N(a) + tau G(a)`` (stiffness + convection + streamline
    diffusion) used by :meth:`repro.fem.advection.AdvectionDiffusion.rate`.

    One fused forward GEMM produces the value and all three reference
    gradients at the Gauss points; one fused backward GEMM consumes the
    mass channel and the three flux channels.
    """

    def __init__(self, mesh: Mesh, kappa, vel: np.ndarray, tau: np.ndarray):
        self.mesh = mesh
        ne = mesh.n_elements
        self.gp = scalar_gather(mesh)
        w, ih, _ = _geometry(mesh)
        vel = np.asarray(vel, dtype=np.float64)
        # Batched mode mirrors MatFreeStokesOperator: vel (nb, ne, 3),
        # tau (nb, ne), kappa scalar or (nb,), merged flat order e*nb+b.
        self.nb = 1 if vel.ndim == 2 else int(vel.shape[0])
        if vel.ndim == 2:  # serial layout (a width-1 batch stays batched)
            self.velT = np.ascontiguousarray(vel.T)
            self.w = w
            self.wk = w * float(kappa)  # diffusive flux prefactor
            wtau = w * np.asarray(tau, dtype=np.float64)
        else:
            ih = np.repeat(ih, self.nb, axis=0)
            self.velT = np.ascontiguousarray(vel.transpose(2, 1, 0)).reshape(3, -1)
            kb = np.broadcast_to(
                np.asarray(kappa, dtype=np.float64), (self.nb,)
            )
            self.w = np.repeat(w, self.nb)
            self.wk = (w[:, None] * kb[None, :]).ravel()
            wtau = (w[:, None] * np.asarray(tau, dtype=np.float64).T).ravel()
        self.ihT = np.ascontiguousarray(ih.T)  # (3, m)
        self.wtauvelT = wtau[None, :] * self.velT
        m = ne * self.nb
        self._f = np.empty((32, m), dtype=np.float64)
        self._c = np.empty((32, m), dtype=np.float64)

    def apply(self, T: np.ndarray) -> np.ndarray:
        """``A T`` for the assembled-equivalent SUPG operator.

        Batched mode: ``T`` is ``(n, nb)``, one scenario per column, and
        the result matches that shape.
        """
        ne = self.mesh.n_elements
        TeT = (self.gp.G @ T).reshape(8, ne * self.nb)
        f = np.matmul(_FWD_SCAL_T, TeT, out=self._f)
        g = f[8:].reshape(3, 8, -1)
        g *= self.ihT[:, None, :]  # physical gradients
        adv = np.einsum("be,bqe->qe", self.velT, g)  # a . grad T
        c = self._c
        # mass channel: w N_i (a . grad T); flux channels: test-gradient
        # contractions of w (kappa grad T + tau (a . grad T) a), with the
        # test-function metric 1/h folded in before the backward GEMM
        np.multiply(adv, self.w[None, :], out=c[:8])
        cg = c[8:].reshape(3, 8, -1)
        np.multiply(g, self.wk[None, None, :], out=cg)
        cg += self.wtauvelT[:, None, :] * adv[None, :, :]
        cg *= self.ihT[:, None, :]
        out_e = _BWD_SCAL_T @ c
        if T.ndim == 1:
            return self.gp.GT @ out_e.ravel()
        return self.gp.GT @ out_e.reshape(8 * self.mesh.n_elements, self.nb)


# -- flop / byte accounting (prices the kernel choice in MachineModel) ----------


def saddle_apply_flops(n_elements: int) -> int:
    """Flops per tensor-variant saddle apply with the reduced-grid
    kernel: the batched forward/backward gradient GEMMs run on 4-point
    grids (12 channels per component), the correction GEMM carries 20
    channels for 4 batches, and every coefficient application is a
    broadcast multiply."""
    per_elem = (
        2 * 3 * 8 * 12  # forward reduced-gradient GEMM (3 components)
        + 2 * 8 * 8  # pressure value evaluation
        + 36  # grad-grad coefficient multiply
        + 2 * 3 * 12 * 8  # backward grad-grad GEMM
        + (36 + 12 + 24 + 8)  # correction channel fills
        + 2 * 4 * 20 * 8  # batched correction GEMM
        + (24 + 16)  # accumulate + stabilization rank-one term
    )
    return per_elem * n_elements


def saddle_apply_bytes(n_elements: int, gather_nnz: int) -> int:
    """Bytes streamed per tensor saddle apply: gather/scatter CSR traffic
    (8-byte value + 8-byte column index per entry, both directions) plus
    one read + one write of each element-minor workspace (Ue 24, pe 8,
    gs 36, t1 36, acc 24, pq 8, cin 80, cout 32 doubles per element)."""
    return 2 * 16 * gather_nnz + 8 * n_elements * 2 * (24 + 8 + 36 + 36 + 24 + 8 + 80 + 32)


def advection_apply_flops(n_elements: int) -> int:
    """Flops per tensor-variant SUPG rate apply (fused 8x32 GEMMs plus
    the pointwise flux combination)."""
    per_elem = 2 * 2 * 8 * 32 + 8 * (3 * 2 + 3 * 4 + 3)
    return per_elem * n_elements


def csr_apply_flops(nnz: int) -> int:
    """Flops per assembled-CSR apply (one multiply-add per stored entry)."""
    return 2 * nnz


def csr_apply_bytes(nnz: int, n_rows: int) -> int:
    """Bytes streamed per assembled-CSR apply: 8-byte value + 8-byte
    column index per entry, plus the gathered input and written output."""
    return 16 * nnz + 8 * 2 * n_rows
