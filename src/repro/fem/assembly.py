"""Global sparse assembly with hanging-node constraint elimination.

Element matrices (produced by :class:`~repro.fem.hexops.ElementOps`) are
scattered into global CSR operators over *all* mesh nodes, then the
hanging-node constraint operator ``Z`` folds them onto independent dofs:
``A_c = Z^T A Z``.  This is the matrix form of the element-level constraint
enforcement described in Section IV ("algebraic constraints on hanging
nodes impose continuity").

Velocity operators use a component-blocked layout: dof ``a * n + i`` is
component ``a`` at independent node ``i``.

Everything mesh-derived — scatter index patterns, the COO -> CSR merge
order, the block-diagonal constraint operator ``Z3``, the vector dof maps
— is memoized per mesh through :mod:`repro.mesh.opcache`, so repeated
assembly (Picard passes, time steps between adaptations) only recomputes
coefficient data.  Memoization is value-transparent: results are bitwise
identical with the cache disabled.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..mesh import Mesh
from ..mesh.opcache import CachedScatter, operator_cache

__all__ = [
    "assemble_scalar",
    "assemble_vector",
    "assemble_divergence",
    "assemble_rhs",
    "lumped_mass",
    "apply_dirichlet",
    "Z3",
    "vector_dofs",
    "assembly_counts",
    "reset_assembly_counts",
]

#: global sparse-assembly call counters, keyed by operator kind.  The
#: matrix-free paths (tensor applies, GMG preconditioning) are certified
#: assembly-free by resetting these and asserting they stay zero.
_ASSEMBLY_COUNTS = {"scalar": 0, "vector": 0, "divergence": 0}


def assembly_counts() -> dict:
    """Snapshot of the global sparse-assembly call counters."""
    return dict(_ASSEMBLY_COUNTS)


def reset_assembly_counts() -> None:
    """Zero the global sparse-assembly call counters."""
    for k in _ASSEMBLY_COUNTS:
        _ASSEMBLY_COUNTS[k] = 0


def _scalar_scatter(mesh: Mesh) -> CachedScatter:
    """COO -> CSR pattern for (ne, 8, 8) scalar element scatters."""

    def build():
        en = mesh.element_nodes
        k = en.shape[1]
        rows = np.repeat(en, k, axis=1).ravel()
        cols = np.tile(en, (1, k)).ravel()
        return CachedScatter(rows, cols, (mesh.n_nodes, mesh.n_nodes))

    return operator_cache(mesh).get("scatter_scalar", build)


def vector_dofs(mesh: Mesh) -> np.ndarray:
    """(ne, 24) component-blocked global velocity dofs of each element."""

    def build():
        n = mesh.n_nodes
        en = mesh.element_nodes
        return np.concatenate([a * n + en for a in range(3)], axis=1)

    return operator_cache(mesh).get("vector_dofs", build)


def _vector_scatter(mesh: Mesh) -> CachedScatter:
    def build():
        gdofs = vector_dofs(mesh)
        k = gdofs.shape[1]
        rows = np.repeat(gdofs, k, axis=1).ravel()
        cols = np.tile(gdofs, (1, k)).ravel()
        n3 = 3 * mesh.n_nodes
        return CachedScatter(rows, cols, (n3, n3))

    return operator_cache(mesh).get("scatter_vector", build)


def _divergence_scatter(mesh: Mesh) -> CachedScatter:
    def build():
        en = mesh.element_nodes
        vdofs = vector_dofs(mesh)
        rows = np.repeat(en, 24, axis=1).ravel()
        cols = np.tile(vdofs, (1, 8)).ravel()
        return CachedScatter(rows, cols, (mesh.n_nodes, 3 * mesh.n_nodes))

    return operator_cache(mesh).get("scatter_divergence", build)


def assemble_scalar(mesh: Mesh, elem_mats: np.ndarray, constrain: bool = True) -> sp.csr_matrix:
    """Assemble (ne, 8, 8) element matrices into a global scalar operator.

    With ``constrain=True`` (default) the result acts on independent dofs
    (``Z^T A Z``); otherwise on all mesh nodes.
    """
    if elem_mats.shape != (mesh.n_elements, 8, 8):
        raise ValueError("element matrix array has wrong shape")
    _ASSEMBLY_COUNTS["scalar"] += 1
    A = _scalar_scatter(mesh).assemble(elem_mats)
    if not constrain:
        return A
    return sp.csr_matrix(mesh.Z.T @ A @ mesh.Z)


def Z3(mesh: Mesh) -> sp.csr_matrix:
    """Constraint operator for component-blocked vector fields (cached)."""
    return operator_cache(mesh).get(
        "Z3", lambda: sp.block_diag([mesh.Z] * 3, format="csr")
    )


def assemble_vector(mesh: Mesh, elem_mats: np.ndarray, constrain: bool = True) -> sp.csr_matrix:
    """Assemble (ne, 24, 24) component-blocked velocity element matrices.

    Local dof ``8a + i`` maps to global node dof ``a * n_nodes +
    element_nodes[e, i]``.
    """
    if elem_mats.shape != (mesh.n_elements, 24, 24):
        raise ValueError("element matrix array has wrong shape")
    _ASSEMBLY_COUNTS["vector"] += 1
    A = _vector_scatter(mesh).assemble(elem_mats)
    if not constrain:
        return A
    z3 = Z3(mesh)
    return sp.csr_matrix(z3.T @ A @ z3)


def assemble_divergence(mesh: Mesh, elem_B: np.ndarray, constrain: bool = True) -> sp.csr_matrix:
    """Assemble (ne, 8, 24) pressure-velocity coupling blocks into the
    (n_p, 3 n_u) divergence operator."""
    if elem_B.shape != (mesh.n_elements, 8, 24):
        raise ValueError("element matrix array has wrong shape")
    _ASSEMBLY_COUNTS["divergence"] += 1
    B = _divergence_scatter(mesh).assemble(elem_B)
    if not constrain:
        return B
    return sp.csr_matrix(mesh.Z.T @ B @ Z3(mesh))


def assemble_rhs(mesh: Mesh, elem_vecs: np.ndarray, constrain: bool = True) -> np.ndarray:
    """Assemble (ne, 8) element load vectors into a global rhs."""
    if elem_vecs.shape != (mesh.n_elements, 8):
        raise ValueError("element vector array has wrong shape")
    b = np.zeros(mesh.n_nodes, dtype=np.float64)
    np.add.at(b, mesh.element_nodes.ravel(), elem_vecs.ravel())
    if not constrain:
        return b
    return mesh.Z.T @ b


def lumped_mass(mesh: Mesh, elem_mass: np.ndarray, constrain: bool = True) -> np.ndarray:
    """Row-sum lumped mass vector from (ne, 8, 8) element mass matrices.

    Lumping happens after constraint folding so the lumped operator is
    consistent with the constrained Galerkin mass (``Z^T M Z`` row sums).
    """
    M = assemble_scalar(mesh, elem_mass, constrain=constrain)
    d = np.asarray(M.sum(axis=1)).ravel()
    if np.any(d <= 0):
        raise AssertionError("non-positive lumped mass entry")
    return d


def apply_dirichlet(
    A: sp.csr_matrix,
    b: np.ndarray | None,
    dofs: np.ndarray,
    values: np.ndarray | float = 0.0,
) -> tuple[sp.csr_matrix, np.ndarray | None]:
    """Impose Dirichlet conditions symmetrically.

    Rows and columns of constrained dofs are zeroed (column elimination
    moves the known values to the rhs), the diagonal is set to 1 and the
    rhs entries to the prescribed values.  Returns new ``(A, b)``.
    """
    dofs = np.asarray(dofs)
    if dofs.dtype == bool:
        dofs = np.flatnonzero(dofs)
    n = A.shape[0]
    vals = np.zeros(n, dtype=np.float64)
    vals[dofs] = values
    if b is not None:
        b = b - A @ vals
    mask = np.ones(n)
    mask[dofs] = 0.0
    D = sp.diags(mask)
    A = sp.csr_matrix(D @ A @ D + sp.diags(1.0 - mask))
    if b is not None:
        b[dofs] = vals[dofs]
    return A, b
