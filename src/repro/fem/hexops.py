"""Element matrices for trilinear elements on axis-aligned boxes.

Every element in an octree mesh (with a diagonally scaled domain) is an
axis-aligned box ``hx x hy x hz``, so all 8x8 trilinear element matrices
factor exactly into Kronecker products of three 1-D two-node matrices —
no quadrature loop is needed and matrices for all elements are produced in
one vectorized sweep (the per-element sizes enter only through scalar
prefactors).

1-D building blocks on an interval of length ``h`` (nodes at the ends):

- mass        ``M(h)   = h/6 * [[2, 1], [1, 2]]``
- stiffness   ``K(h)   = 1/h * [[1, -1], [-1, 1]]``
- convection  ``G      = [[-1/2, 1/2], [-1/2, 1/2]]``   (h-independent),
  ``G[i, j] = integral N_i dN_j/dx``.

Vertex ordering is x fastest (vertex ``i`` at ``((i&1), (i>>1)&1,
(i>>2)&1)``), matching mesh extraction, so 3-D operators are
``kron(Az, Ay, Ax)``.

The main entry point :func:`ElementOps.build` precomputes the nine
h-independent 8x8 "shape" matrices; per-element matrices are then linear
combinations with coefficients that depend on ``(hx, hy, hz)`` and the
element's material data — this is what makes assembly of million-element
meshes feasible in NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ElementOps", "M1_UNIT", "K1_UNIT", "G1"]

#: Unit-interval 1-D mass matrix (multiply by h).
M1_UNIT = np.array([[2.0, 1.0], [1.0, 2.0]], dtype=np.float64) / 6.0
#: Unit-interval 1-D stiffness matrix (divide by h).
K1_UNIT = np.array([[1.0, -1.0], [-1.0, 1.0]], dtype=np.float64)
#: 1-D convection matrix integral N_i N_j' (h-independent).
G1 = np.array([[-0.5, 0.5], [-0.5, 0.5]], dtype=np.float64)


def _kron3(az: np.ndarray, ay: np.ndarray, ax: np.ndarray) -> np.ndarray:
    """kron(Az, Ay, Ax) -> 8x8, vertex index i = ix + 2*iy + 4*iz."""
    return np.kron(az, np.kron(ay, ax))


class ElementOps:
    """Precomputed shape matrices for axis-aligned trilinear hexahedra.

    All returned element matrices have shape ``(n_elements, 8, 8)``.
    ``sizes`` is the ``(n_elements, 3)`` array of physical edge lengths.
    """

    def __init__(self):
        M, K, G = M1_UNIT, K1_UNIT, G1
        # mass:     hx*hy*hz * MMM
        self.MMM = _kron3(M, M, M)
        # stiffness parts: Sxx scales by hy*hz/hx, etc.
        self.Sxx = _kron3(M, M, K)
        self.Syy = _kron3(M, K, M)
        self.Szz = _kron3(K, M, M)
        # convection parts: Dx scales by hy*hz (G is h-free), etc.
        self.Dx = _kron3(M, M, G)
        self.Dy = _kron3(M, G, M)
        self.Dz = _kron3(G, M, M)
        # mixed derivative parts for SUPG: integral dN_i/da dN_j/db.
        # d/dx couples G^T in x; e.g. Sxy = integral dx(N_i) dy(N_j)
        # = (int Nx_i' Nx_j dx)(int Ny_i Ny_j' dy)(int Nz_i Nz_j dz)
        #   -> scale hz
        self.Sxy = _kron3(M, G, G.T)
        self.Sxz = _kron3(G, M, G.T)
        self.Syz = _kron3(G, G.T, M)

    # -- scalar operators ------------------------------------------------------

    def mass(self, sizes: np.ndarray, coeff: np.ndarray | float = 1.0) -> np.ndarray:
        """Element mass matrices, optionally scaled by a per-element
        coefficient (used e.g. for the 1/viscosity-weighted pressure
        mass of the Schur complement approximation)."""
        vol = sizes.prod(axis=1) * np.asarray(coeff, dtype=np.float64)
        return vol[:, None, None] * self.MMM[None, :, :]

    def stiffness(self, sizes: np.ndarray, coeff: np.ndarray | float = 1.0) -> np.ndarray:
        """Variable-coefficient Poisson element matrices
        ``coeff * int grad(N_i) . grad(N_j)``."""
        hx, hy, hz = sizes[:, 0], sizes[:, 1], sizes[:, 2]
        c = np.broadcast_to(np.asarray(coeff, dtype=np.float64), hx.shape)
        return (
            (c * hy * hz / hx)[:, None, None] * self.Sxx[None]
            + (c * hx * hz / hy)[:, None, None] * self.Syy[None]
            + (c * hx * hy / hz)[:, None, None] * self.Szz[None]
        )

    def convection(self, sizes: np.ndarray, vel: np.ndarray) -> np.ndarray:
        """Element advection matrices ``int N_i (a . grad N_j)`` with a
        constant per-element velocity ``vel`` of shape (n, 3)."""
        hx, hy, hz = sizes[:, 0], sizes[:, 1], sizes[:, 2]
        ax, ay, az = vel[:, 0], vel[:, 1], vel[:, 2]
        return (
            (ax * hy * hz)[:, None, None] * self.Dx[None]
            + (ay * hx * hz)[:, None, None] * self.Dy[None]
            + (az * hx * hy)[:, None, None] * self.Dz[None]
        )

    def grad_grad(self, sizes: np.ndarray, vel: np.ndarray) -> np.ndarray:
        """SUPG streamline matrices ``int (a.grad N_i)(a.grad N_j)``.

        Expands to ``sum_ab a_a a_b int d_a N_i d_b N_j`` using the pure
        (Sxx, ...) and mixed (Sxy, ...) shape matrices.
        """
        hx, hy, hz = sizes[:, 0], sizes[:, 1], sizes[:, 2]
        ax, ay, az = vel[:, 0], vel[:, 1], vel[:, 2]
        out = (
            (ax * ax * hy * hz / hx)[:, None, None] * self.Sxx[None]
            + (ay * ay * hx * hz / hy)[:, None, None] * self.Syy[None]
            + (az * az * hx * hy / hz)[:, None, None] * self.Szz[None]
        )
        # mixed terms appear twice (ab and ba): S_ab^T = S_ba shape-wise
        out += (ax * ay * hz)[:, None, None] * (self.Sxy + self.Sxy.T)[None]
        out += (ax * az * hy)[:, None, None] * (self.Sxz + self.Sxz.T)[None]
        out += (ay * az * hx)[:, None, None] * (self.Syz + self.Syz.T)[None]
        return out

    def supg_mass(self, sizes: np.ndarray, vel: np.ndarray) -> np.ndarray:
        """``int (a.grad N_i) N_j`` — the SUPG-weighted mass term
        (transpose of :meth:`convection`)."""
        return np.swapaxes(self.convection(sizes, vel), 1, 2)

    # -- Stokes blocks ------------------------------------------------------------

    def strain_stiffness(self, sizes: np.ndarray, viscosity: np.ndarray) -> np.ndarray:
        """(n, 24, 24) viscous element matrices for the strain-rate form
        ``int eta (grad u + grad u^T) : grad v``.

        Velocity dofs are component-blocked: local dof ``8*a + i`` is
        component ``a`` at vertex ``i``.  Block (a, b) equals
        ``eta * (delta_ab * sum_c S_cc + S_ba)``.
        """
        hx, hy, hz = sizes[:, 0], sizes[:, 1], sizes[:, 2]
        eta = np.asarray(viscosity, dtype=np.float64)
        n = len(sizes)
        # per-element pure and mixed gradient matrices
        S = np.empty((3, 3, n, 8, 8), dtype=np.float64)
        S[0, 0] = (hy * hz / hx)[:, None, None] * self.Sxx[None]
        S[1, 1] = (hx * hz / hy)[:, None, None] * self.Syy[None]
        S[2, 2] = (hx * hy / hz)[:, None, None] * self.Szz[None]
        S[0, 1] = hz[:, None, None] * self.Sxy[None]  # int dx(N_i) dy(N_j)
        S[1, 0] = np.swapaxes(S[0, 1], 1, 2)
        S[0, 2] = hy[:, None, None] * self.Sxz[None]
        S[2, 0] = np.swapaxes(S[0, 2], 1, 2)
        S[1, 2] = hx[:, None, None] * self.Syz[None]
        S[2, 1] = np.swapaxes(S[1, 2], 1, 2)
        lap = S[0, 0] + S[1, 1] + S[2, 2]
        out = np.zeros((n, 24, 24), dtype=np.float64)
        for a in range(3):
            for b in range(3):
                blk = S[b, a].copy()
                if a == b:
                    blk += lap
                out[:, 8 * a : 8 * a + 8, 8 * b : 8 * b + 8] = (
                    eta[:, None, None] * blk
                )
        return out

    def divergence(self, sizes: np.ndarray) -> np.ndarray:
        """(n, 8, 24) element matrices ``B_e[i, 8a+j] = int N_i d_a N_j``
        (pressure row block of the Stokes saddle system)."""
        hx, hy, hz = sizes[:, 0], sizes[:, 1], sizes[:, 2]
        n = len(sizes)
        out = np.zeros((n, 8, 24), dtype=np.float64)
        out[:, :, 0:8] = (hy * hz)[:, None, None] * self.Dx[None]
        out[:, :, 8:16] = (hx * hz)[:, None, None] * self.Dy[None]
        out[:, :, 16:24] = (hx * hy)[:, None, None] * self.Dz[None]
        return out

    def pressure_stabilization(
        self, sizes: np.ndarray, viscosity: np.ndarray
    ) -> np.ndarray:
        """Dohrmann-Bochev polynomial pressure projection stabilization:
        ``C_e = (1/eta_e) (M_e - m_e m_e^T / V_e)`` where ``m_e`` are the
        element shape integrals and ``V_e`` the volume.  Annihilates
        element-wise constant pressures; spectrally equivalent scaling by
        the inverse viscosity follows Section III."""
        vol = sizes.prod(axis=1)
        Me = vol[:, None, None] * self.MMM[None]
        m = Me.sum(axis=2)  # int N_i = row sums
        outer = m[:, :, None] * m[:, None, :] / vol[:, None, None]
        eta = np.asarray(viscosity, dtype=np.float64)
        return (Me - outer) / eta[:, None, None]
