"""Distributed SUPG advection-diffusion (the Section-V benchmark solver).

Each rank assembles the stabilized operator from its *owned* elements on
the local union (owned + ghost) mesh; the semi-discrete residual is then
globally assembled with one shared-dof sum-exchange per operator
application, and the lumped mass likewise (once).  The explicit
predictor-corrector step therefore costs two exchanges per time step plus
one allreduce for the CFL bound — the classic surface-to-volume
communication pattern that makes the transport solver weakly scalable.

P-invariance: stepping a field here produces bitwise-comparable values to
the serial :class:`~repro.fem.advection.AdvectionDiffusion` on the
gathered mesh (verified in the test suite).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .. import obs
from ..mesh.parmesh import ParMesh
from .advection import supg_tau
from .hexops import ElementOps

__all__ = ["ParAdvectionDiffusion"]

_OPS = ElementOps()


class ParAdvectionDiffusion:
    """Distributed explicit SUPG transport on a :class:`ParMesh`.

    Parameters
    ----------
    pm:
        The distributed mesh.
    kappa:
        Diffusivity.
    velocity:
        Callable mapping (m, 3) physical points to (m, 3) velocities;
        evaluated at element centers.
    dirichlet:
        ``(axis, side, value)`` tuples as in the serial solver.
    """

    def __init__(
        self,
        pm: ParMesh,
        kappa: float,
        velocity: Callable[[np.ndarray], np.ndarray],
        source: float = 0.0,
        dirichlet: list[tuple[int, int, float]] | None = None,
    ):
        self.pm = pm
        self.kappa = float(kappa)
        mesh = pm.mesh
        owned = pm.owned_elements

        sizes_all = mesh.element_sizes()
        centers_all = mesh.element_centers()
        self.vel_all = velocity(centers_all)
        sizes = sizes_all[owned]
        vel = self.vel_all[owned]
        self.tau = supg_tau(sizes, vel, self.kappa)
        self._owned_sizes = sizes
        self._owned_vel = vel

        # assemble from owned elements only, on union-mesh dofs
        elem = _OPS.stiffness(sizes, self.kappa)
        elem += _OPS.convection(sizes, vel)
        elem += self.tau[:, None, None] * _OPS.grad_grad(sizes, vel)
        self.A = self._assemble_owned(elem)
        ml_local = self._lumped_owned(_OPS.mass(sizes))
        self.ML = pm.exchange_sum(ml_local)
        self.ML[~pm.active] = 1.0  # avoid divide-by-zero at inactive dofs

        load = source * _OPS.mass(sizes).sum(axis=2)
        if source != 0.0:
            load += source * self.tau[:, None] * _OPS.convection(sizes, vel).sum(axis=2)
        b_local = self._rhs_owned(load)
        self.b = pm.exchange_sum(b_local)

        self.dirichlet = dirichlet or []
        self._bc_mask = np.zeros(mesh.n_independent, dtype=bool)
        self._bc_values = np.zeros(mesh.n_independent, dtype=np.float64)
        for axis, side, value in self.dirichlet:
            nodes = mesh.boundary_node_mask(axis=axis, side=side)
            dofs = mesh.dof_of_node[np.flatnonzero(nodes)]
            dofs = dofs[dofs >= 0]
            self._bc_mask[dofs] = True
            self._bc_values[dofs] = value

    # -- owned-element assembly helpers ---------------------------------------

    def _assemble_owned(self, elem_mats: np.ndarray):
        import scipy.sparse as sp

        mesh = self.pm.mesh
        en = mesh.element_nodes[self.pm.owned_elements]
        rows = np.repeat(en, 8, axis=1).ravel()
        cols = np.tile(en, (1, 8)).ravel()
        A = sp.csr_matrix(
            (elem_mats.ravel(), (rows, cols)), shape=(mesh.n_nodes, mesh.n_nodes)
        )
        return sp.csr_matrix(mesh.Z.T @ A @ mesh.Z)

    def _rhs_owned(self, elem_vecs: np.ndarray) -> np.ndarray:
        mesh = self.pm.mesh
        en = mesh.element_nodes[self.pm.owned_elements]
        b = np.zeros(mesh.n_nodes, dtype=np.float64)
        np.add.at(b, en.ravel(), elem_vecs.ravel())
        return mesh.Z.T @ b

    def _lumped_owned(self, elem_mass: np.ndarray) -> np.ndarray:
        M = self._assemble_owned(elem_mass)
        return np.asarray(M.sum(axis=1)).ravel()

    # -- operator -------------------------------------------------------------------

    def apply_bcs(self, T: np.ndarray) -> np.ndarray:
        out = T.copy()
        out[self._bc_mask] = self._bc_values[self._bc_mask]
        return out

    def rate(self, T: np.ndarray) -> np.ndarray:
        """Globally assembled dT/dt on this rank's union-mesh dofs."""
        # the stiffness contribution is local (owned elements only) and
        # needs the exchange; b was already globally assembled in setup
        local = -(self.A @ T)
        with obs.phase("exchange"):
            r = self.pm.exchange_sum(local) + self.b
        r = r / self.ML
        r[self._bc_mask] = 0.0
        r[~self.pm.active] = 0.0
        return r

    def cfl_dt(self, cfl: float = 0.5) -> float:
        h = self._owned_sizes.min(axis=1) if len(self._owned_sizes) else np.array([np.inf], dtype=np.float64)
        speed = np.linalg.norm(self._owned_vel, axis=1) if len(self._owned_vel) else np.array([0.0], dtype=np.float64)
        adv = np.where(speed > 0, h / np.maximum(speed, 1e-300), np.inf)
        diff = h**2 / (6.0 * self.kappa) if self.kappa > 0 else np.full_like(h, np.inf)
        local = float(np.minimum(adv, diff).min()) if len(h) else np.inf
        dt = cfl * self.pm.comm.allreduce(local, op="min")
        if not np.isfinite(dt):
            raise ValueError("no finite CFL bound")
        return dt

    def step(self, T: np.ndarray, dt: float) -> np.ndarray:
        T = self.apply_bcs(T)
        k1 = self.rate(T)
        Tstar = self.apply_bcs(T + dt * k1)
        k2 = self.rate(Tstar)
        return self.apply_bcs(T + 0.5 * dt * (k1 + k2))

    def advance(self, T: np.ndarray, dt: float, n_steps: int) -> np.ndarray:
        for _ in range(n_steps):
            T = self.step(T, dt)
        return T
