"""The variable-viscosity Stokes saddle-point system (Section III).

Equal-order trilinear velocity/pressure with Dohrmann-Bochev polynomial
pressure stabilization gives the symmetric indefinite system

    [ A   B^T ] [u]   [f]
    [ B   -C  ] [p] = [0]

where ``A`` is the viscous strain-rate operator, ``B`` the (negative)
discrete divergence, and ``C`` the inverse-viscosity-scaled stabilization.
The system is solved by preconditioned MINRES (:mod:`repro.solvers`); the
preconditioner blocks exposed here follow the paper exactly:

- ``Atilde`` — a *scalar* variable-viscosity Poisson operator applied to
  each velocity component (the discrete vector Laplacian approximation of
  ``A``), approximated by one AMG V-cycle per application;
- ``Stilde`` — the inverse-viscosity-weighted lumped pressure mass, a
  diagonal spectrally equivalent to the Schur complement.

Velocity boundary conditions: ``"free_slip"`` (zero normal component on
every face — the mantle convection choice) or ``"no_slip"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..mesh import Mesh
from ..mesh.opcache import operator_cache
from .assembly import (
    apply_dirichlet,
    assemble_divergence,
    assemble_scalar,
    assemble_vector,
)
from .hexops import ElementOps
from .matfree import MatFreeStokesOperator, lumped_scalar_mass

__all__ = ["StokesSystem"]

_OPS = ElementOps()


@dataclass
class _BCInfo:
    dofs: np.ndarray  # constrained velocity dof indices (component-blocked)
    per_component: list[np.ndarray]  # constrained scalar dofs per component


class StokesSystem:
    """Assembled Stokes blocks, boundary conditions, and the saddle
    operator used by MINRES.

    Parameters
    ----------
    mesh:
        The mesh.
    viscosity:
        Per-element viscosity ``eta_e`` (may vary over many orders of
        magnitude).
    body_force:
        ``(n_nodes, 3)`` nodal body force density (e.g. ``Ra T e_r``); the
        consistent load is the nodal mass applied per component.
    bc:
        ``"free_slip"`` or ``"no_slip"``.
    variant:
        ``"tensor"`` (default) applies the saddle operator matrix-free
        through :class:`repro.fem.matfree.MatFreeStokesOperator`; the
        assembled blocks ``A``/``B``/``C`` are then built lazily, only if
        something asks for them (AMG setup assembles its own scalar
        Poisson blocks either way).  ``"matrix"`` is the legacy fully
        assembled path.
    """

    def __init__(
        self,
        mesh: Mesh,
        viscosity: np.ndarray,
        body_force: np.ndarray | None = None,
        bc: str = "free_slip",
        variant: str = "tensor",
    ):
        if variant not in ("tensor", "matrix"):
            raise ValueError(f"unknown variant {variant!r}")
        self.mesh = mesh
        self.variant = variant
        self.viscosity = np.asarray(viscosity, dtype=np.float64)
        if self.viscosity.shape != (mesh.n_elements,):
            raise ValueError("viscosity must be per-element")
        if np.any(self.viscosity <= 0):
            raise ValueError("viscosity must be positive")
        sizes = mesh.element_sizes()
        n = mesh.n_independent
        cache = operator_cache(mesh)
        self._A = self._C = self._B = None

        # consistent body-force load
        self.f = np.zeros(3 * n, dtype=np.float64)
        if body_force is not None:
            bf = np.asarray(body_force, dtype=np.float64)
            if bf.shape != (mesh.n_nodes, 3):
                raise ValueError("body_force must be (n_nodes, 3)")
            M_node = cache.get(
                "node_mass",
                lambda: assemble_scalar(mesh, _OPS.mass(sizes), constrain=False),
            )
            for a in range(3):
                self.f[a * n : (a + 1) * n] = mesh.Z.T @ (M_node @ bf[:, a])

        # velocity boundary conditions
        self.bc_kind = bc
        self.bc = cache.get(("stokes_bcs", bc), lambda: self._build_bcs(bc))
        self.matfree = None
        if variant == "tensor":
            # Dirichlet values are homogeneous, so eliminating them from
            # the rhs is just zeroing the constrained entries; the
            # operator-side elimination is folded into the matfree gather
            self.f[self.bc.dofs] = 0.0
            self.matfree = MatFreeStokesOperator(
                mesh, self.viscosity, bc, self.bc.dofs
            )
        else:
            self._A = assemble_vector(
                mesh, _OPS.strain_stiffness(sizes, self.viscosity)
            )
            self._C = assemble_scalar(
                mesh, _OPS.pressure_stabilization(sizes, self.viscosity)
            )
            self._A, self.f = apply_dirichlet(self._A, self.f, self.bc.dofs)

        self.n_u = 3 * n
        self.n_p = n

    # -- assembled blocks (lazy in tensor mode) ---------------------------------

    @property
    def A(self) -> sp.csr_matrix:
        """Dirichlet-eliminated strain stiffness (assembled on demand)."""
        if self._A is None:
            with obs.phase("assemble"):
                A = assemble_vector(
                    self.mesh,
                    _OPS.strain_stiffness(self.mesh.element_sizes(), self.viscosity),
                )
                self._A, _ = apply_dirichlet(A, None, self.bc.dofs)
        return self._A

    @property
    def C(self) -> sp.csr_matrix:
        """Pressure stabilization block (assembled on demand)."""
        if self._C is None:
            with obs.phase("assemble"):
                self._C = assemble_scalar(
                    self.mesh,
                    _OPS.pressure_stabilization(
                        self.mesh.element_sizes(), self.viscosity
                    ),
                )
        return self._C

    @property
    def B(self) -> sp.csr_matrix:
        """Column-masked negative divergence (viscosity-independent,
        cached per mesh/BC, assembled on demand)."""
        if self._B is None:
            with obs.phase("assemble"):
                self._B = operator_cache(self.mesh).get(
                    ("stokes_B", self.bc_kind), self._build_divergence
                )
        return self._B

    def _build_divergence(self) -> sp.csr_matrix:
        """-(divergence) with constrained-velocity columns zeroed."""
        mesh = self.mesh
        B = -assemble_divergence(mesh, _OPS.divergence(mesh.element_sizes()))
        col_mask = np.ones(3 * mesh.n_independent)
        col_mask[self.bc.dofs] = 0.0
        return B @ sp.diags(col_mask)

    # -- boundary conditions ----------------------------------------------------

    def _build_bcs(self, bc: str) -> _BCInfo:
        mesh = self.mesh
        per_component: list[np.ndarray] = []
        all_dofs: list[np.ndarray] = []
        n = mesh.n_independent
        for a in range(3):
            if bc == "free_slip":
                nodes = mesh.boundary_node_mask(axis=a, side=0) | mesh.boundary_node_mask(
                    axis=a, side=1
                )
            elif bc == "no_slip":
                nodes = mesh.boundary_node_mask()
            else:
                raise ValueError(f"unknown bc {bc!r}")
            dofs = mesh.dof_of_node[np.flatnonzero(nodes)]
            dofs = np.unique(dofs[dofs >= 0])
            per_component.append(dofs)
            all_dofs.append(a * n + dofs)
        return _BCInfo(dofs=np.concatenate(all_dofs), per_component=per_component)

    # -- saddle operator -----------------------------------------------------------

    @property
    def n_dof(self) -> int:
        return self.n_u + self.n_p

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the full saddle operator [[A, B^T], [B, -C]]."""
        if self.matfree is not None:
            return self.matfree.apply(x)
        u, p = x[: self.n_u], x[self.n_u :]
        out = np.empty_like(x)
        out[: self.n_u] = self.A @ u + self.B.T @ p
        out[self.n_u :] = self.B @ u - self.C @ p
        return out

    def rhs(self) -> np.ndarray:
        b = np.zeros(self.n_dof, dtype=np.float64)
        b[: self.n_u] = self.f
        return b

    def project_pressure_mean(self, x: np.ndarray) -> np.ndarray:
        """Remove the constant-pressure null component (enclosed-flow
        Stokes determines pressure only up to a constant)."""
        out = x.copy()
        p = out[self.n_u :]
        p -= p.mean()
        return out

    # -- preconditioner ingredients ----------------------------------------------

    def poisson_blocks(self) -> list[sp.csr_matrix]:
        """The scalar variable-viscosity Poisson operator ``Atilde``, one
        copy per velocity component with that component's Dirichlet rows
        (Section III: for constant viscosity and Dirichlet BCs, ``A`` and
        ``Atilde`` are equivalent)."""
        sizes = self.mesh.element_sizes()
        K = assemble_scalar(self.mesh, _OPS.stiffness(sizes, self.viscosity))
        blocks = []
        for a in range(3):
            Ka, _ = apply_dirichlet(K, None, self.bc.per_component[a])
            blocks.append(Ka)
        return blocks

    def schur_diagonal(self) -> np.ndarray:
        """``Stilde``: inverse-viscosity-weighted lumped pressure mass."""
        if self.matfree is not None:
            return lumped_scalar_mass(self.mesh, 1.0 / self.viscosity)
        sizes = self.mesh.element_sizes()
        from .assembly import lumped_mass

        d = lumped_mass(self.mesh, _OPS.mass(sizes, 1.0 / self.viscosity))
        return d

    def velocity_divergence_norm(self, x: np.ndarray) -> float:
        """||B u|| — discrete divergence residual of a solution vector."""
        if self.matfree is not None:
            return float(np.linalg.norm(self.matfree.apply_divergence(x[: self.n_u])))
        return float(np.linalg.norm(self.B @ x[: self.n_u]))
