"""SUPG-stabilized advection-diffusion (the energy equation, eq. 3).

Galerkin discretizations of strongly advection-dominated transport
oscillate; the paper stabilizes with streamline upwind / Petrov-Galerkin
(SUPG) and advances in time with an explicit predictor-corrector scheme,
because at mantle Peclet numbers the equation is hyperbolic in character.

This module builds the stabilized spatial operator on an adapted mesh and
provides the explicit predictor-corrector step (Heun form: predict with
forward Euler, correct with the trapezoid average), plus the CFL time step
bound used by the application.
"""

from __future__ import annotations

import numpy as np

from ..mesh import Mesh
from ..mesh.opcache import operator_cache
from .assembly import assemble_rhs, assemble_scalar, lumped_mass
from .hexops import ElementOps
from .matfree import MatFreeAdvectionOperator

__all__ = ["AdvectionDiffusion", "element_velocity_from_nodal", "supg_tau"]

_OPS = ElementOps()


def element_velocity_from_nodal(mesh: Mesh, u_full: np.ndarray) -> np.ndarray:
    """Per-element advection velocity: average of the 8 corner values.

    ``u_full`` is (3, n_nodes) or (n_nodes, 3); returns (n_elements, 3).
    """
    u = np.asarray(u_full, dtype=np.float64)
    if u.shape[0] == 3 and u.ndim == 2 and u.shape[1] != 3:
        u = u.T
    return u[mesh.element_nodes].mean(axis=1)


def supg_tau(sizes: np.ndarray, vel: np.ndarray, kappa: float, dt: float | None = None) -> np.ndarray:
    """Per-element SUPG stabilization parameter.

    The standard inverse-quadrature form
    ``tau = ((2|a|/h)^2 + (4 kappa C / h^2)^2 [+ (2/dt)^2])^{-1/2}``
    with ``h`` the smallest element edge; degenerates gracefully in both
    the advection- and diffusion-dominated limits.
    """
    h = sizes.min(axis=1)
    speed = np.linalg.norm(vel, axis=1)
    terms = (2.0 * speed / h) ** 2 + (12.0 * kappa / h**2) ** 2
    if dt is not None:
        terms = terms + (2.0 / dt) ** 2
    return 1.0 / np.sqrt(np.maximum(terms, 1e-300))


class AdvectionDiffusion:
    """SUPG advection-diffusion operator with explicit time stepping.

    Parameters
    ----------
    mesh:
        The (possibly adapted) mesh.
    kappa:
        Thermal diffusivity (non-dimensional; 1 in eq. 3).
    vel:
        (n_elements, 3) advection velocity per element.
    source:
        Uniform internal heating ``gamma``.
    dirichlet:
        List of ``(axis, side, value)`` tuples fixing the field on domain
        faces; remaining boundaries are natural (insulated).
    variant:
        ``"tensor"`` (default) applies the SUPG operator matrix-free
        through :class:`repro.fem.matfree.MatFreeAdvectionOperator`; the
        assembled ``A`` is built lazily on access.  ``"matrix"`` is the
        legacy assembled path.
    """

    def __init__(
        self,
        mesh: Mesh,
        kappa: float,
        vel: np.ndarray,
        source: float = 0.0,
        dirichlet: list[tuple[int, int, float]] | None = None,
        variant: str = "tensor",
    ):
        if variant not in ("tensor", "matrix"):
            raise ValueError(f"unknown variant {variant!r}")
        self.mesh = mesh
        self.variant = variant
        self.kappa = float(kappa)
        self.vel = np.asarray(vel, dtype=np.float64)
        if self.vel.shape != (mesh.n_elements, 3):
            raise ValueError("vel must be (n_elements, 3)")
        sizes = mesh.element_sizes()
        self.tau = supg_tau(sizes, self.vel, self.kappa)

        self._A = None
        self.matfree = None
        if variant == "tensor":
            self.matfree = MatFreeAdvectionOperator(mesh, self.kappa, self.vel, self.tau)
        else:
            self._A = self._assemble_operator()

        cache = operator_cache(mesh)
        mass_e = cache.get("elem_mass", lambda: _OPS.mass(sizes))
        self.ML = cache.get("lumped_mass", lambda: lumped_mass(mesh, mass_e))

        # source: gamma * int N_i, plus SUPG source tau * gamma * int a.grad N_i
        load_e = source * mass_e.sum(axis=2)
        if source != 0.0:
            load_e += (
                source
                * self.tau[:, None]
                * _OPS.convection(sizes, self.vel).sum(axis=2)
            )
        self.b = assemble_rhs(mesh, load_e)

        self.dirichlet = dirichlet or []
        self._bc_mask = np.zeros(mesh.n_independent, dtype=bool)
        self._bc_values = np.zeros(mesh.n_independent, dtype=np.float64)
        for axis, side, value in self.dirichlet:

            def build(axis=axis, side=side):
                nodes = mesh.boundary_node_mask(axis=axis, side=side)
                dofs = mesh.dof_of_node[np.flatnonzero(nodes)]
                return dofs[dofs >= 0]

            dofs = cache.get(("bdofs", axis, side), build)
            self._bc_mask[dofs] = True
            self._bc_values[dofs] = value

    # -- semi-discrete operator ---------------------------------------------

    def _assemble_operator(self):
        sizes = self.mesh.element_sizes()
        elem = _OPS.stiffness(sizes, self.kappa)
        elem += _OPS.convection(sizes, self.vel)
        elem += self.tau[:, None, None] * _OPS.grad_grad(sizes, self.vel)
        return assemble_scalar(self.mesh, elem)

    @property
    def A(self):
        """Assembled SUPG operator (built on demand in tensor mode)."""
        if self._A is None:
            self._A = self._assemble_operator()
        return self._A

    def apply_bcs(self, T: np.ndarray) -> np.ndarray:
        """Overwrite Dirichlet dofs with their prescribed values."""
        out = T.copy()
        out[self._bc_mask] = self._bc_values[self._bc_mask]
        return out

    def rate(self, T: np.ndarray) -> np.ndarray:
        """dT/dt on independent dofs (Dirichlet rows frozen)."""
        AT = self.matfree.apply(T) if self.matfree is not None else self.A @ T
        r = (self.b - AT) / self.ML
        r[self._bc_mask] = 0.0
        return r

    # -- time stepping --------------------------------------------------------------

    def cfl_dt(self, cfl: float = 0.5) -> float:
        """Stable explicit step: min over elements of the advective and
        diffusive limits."""
        sizes = self.mesh.element_sizes()
        h = sizes.min(axis=1)
        speed = np.linalg.norm(self.vel, axis=1)
        adv = np.where(speed > 0, h / np.maximum(speed, 1e-300), np.inf)
        diff = h**2 / (6.0 * self.kappa) if self.kappa > 0 else np.full_like(h, np.inf)
        dt = cfl * float(np.minimum(adv, diff).min())
        if not np.isfinite(dt):
            raise ValueError("no finite CFL bound (zero velocity and diffusivity)")
        return dt

    def step(self, T: np.ndarray, dt: float) -> np.ndarray:
        """One explicit predictor-corrector step (Heun).

        Predictor: ``T* = T + dt * L(T)``;
        corrector: ``T1 = T + dt/2 * (L(T) + L(T*))``.
        """
        T = self.apply_bcs(T)
        k1 = self.rate(T)
        Tstar = self.apply_bcs(T + dt * k1)
        k2 = self.rate(Tstar)
        return self.apply_bcs(T + 0.5 * dt * (k1 + k2))

    def advance(self, T: np.ndarray, dt: float, n_steps: int) -> np.ndarray:
        for _ in range(n_steps):
            T = self.step(T, dt)
        return T
