"""Trilinear hexahedral finite elements on octree meshes.

Element matrices are exact tensor products (axis-aligned boxes), assembly
folds hanging-node constraints algebraically, and the two discretizations
the paper uses are provided: SUPG advection-diffusion (energy equation)
and the stabilized variable-viscosity Stokes saddle system.
"""

from .advection import AdvectionDiffusion, element_velocity_from_nodal, supg_tau
from .assembly import (
    Z3,
    apply_dirichlet,
    assemble_divergence,
    assemble_rhs,
    assemble_scalar,
    assemble_vector,
    assembly_counts,
    lumped_mass,
    reset_assembly_counts,
    vector_dofs,
)
from .hexops import ElementOps
from .paradvection import ParAdvectionDiffusion
from .stokes import StokesSystem

__all__ = [
    "ElementOps",
    "assemble_scalar",
    "assemble_vector",
    "assemble_divergence",
    "assemble_rhs",
    "lumped_mass",
    "apply_dirichlet",
    "Z3",
    "vector_dofs",
    "assembly_counts",
    "reset_assembly_counts",
    "AdvectionDiffusion",
    "element_velocity_from_nodal",
    "supg_tau",
    "StokesSystem",
    "ParAdvectionDiffusion",
]
