"""MARKELEMENTS: threshold-based refinement/coarsening marking.

Given a per-element error indicator, MARKELEMENTS selects elements to
refine and coarsen so that the *expected* element count after adaptation
lands within a tolerance of a target.  The paper avoids a global sort of
indicators; instead, global thresholds are adjusted iteratively using only
collective reductions.  We implement the same scheme in two phases, each
a bisection costing one allreduce per iteration:

1. **Refinement threshold.**  If the mesh is below target, bisect
   ``theta_r`` so the refinement count supplies the deficit.  Otherwise
   keep a fixed high threshold (``refine_frac * max(eta)``) so resolution
   keeps following the solution as it moves — the churn visible in
   Figure 5.
2. **Coarsening threshold.**  Bisect ``theta_c`` in ``[0, theta_r)`` so
   the expected post-adaptation count returns to the target.

Works serially (``comm=None``) or SPMD — every rank executes the identical
deterministic bisection, so all ranks agree on the thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["mark_elements", "MarkResult"]

#: Threshold comparisons run on indicators quantized to this many buckets
#: of ``eta / max(eta)``.  Distributed indicator evaluation carries tiny
#: rank-count-dependent rounding noise (~1e-11 relative, from the order
#: of ghost-exchange summation); the bisection converges its threshold
#: right into the data, so an unquantized ``eta > theta`` comparison can
#: flip a marginal mark when the rank count changes.  On a 2^-24 grid the
#: noise is ~4 orders of magnitude below the bucket width, making marks
#: deterministic and rank-count-invariant.
_QSCALE = 2.0**24


@dataclass
class MarkResult:
    """Masks chosen by MARKELEMENTS plus the bookkeeping used in Fig. 5."""

    refine: np.ndarray
    coarsen: np.ndarray
    refine_threshold: float
    coarsen_threshold: float
    expected_count: int
    iterations: int


def _gsum(comm, val: int) -> int:
    return int(val) if comm is None else int(comm.allreduce(int(val)))


def mark_elements(
    eta: np.ndarray,
    levels: np.ndarray,
    target: int,
    *,
    comm=None,
    tol: float = 0.05,
    refine_frac: float = 0.5,
    min_level: int = 0,
    max_level: int = 18,
    max_iterations: int = 30,
) -> MarkResult:
    """Choose refine/coarsen masks whose expected outcome is ``target``
    elements (within ``tol`` relative tolerance).

    Parameters
    ----------
    eta:
        Per-(local-)element non-negative error indicator.
    levels:
        Per-element octree level (enforces ``min_level`` / ``max_level``).
    target:
        Desired global element count after adaptation.
    comm:
        Optional :class:`~repro.parallel.SimComm` for SPMD marking.
    refine_frac:
        When the mesh is at/above target, elements with
        ``eta > refine_frac * max(eta)`` are still refined (resolution
        follows the moving solution); coarsening compensates.

    Notes
    -----
    The expected count assumes every refined element nets +7 leaves and
    every 8 coarsen-marked elements net -7; the realized outcome differs
    by partial sibling families and by whatever BALANCETREE adds, exactly
    as in the paper (Figure 5 tracks both).
    """
    eta = np.asarray(eta, dtype=np.float64)
    levels = np.asarray(levels, dtype=np.int64)
    if eta.shape != levels.shape:
        raise ValueError("eta and levels must align")
    if np.any(eta < 0):
        raise ValueError("error indicator must be non-negative")

    local_max = float(eta.max()) if len(eta) else 0.0
    emax = local_max if comm is None else comm.allreduce(local_max, op="max")
    n_global = _gsum(comm, len(eta))
    zeros = np.zeros(len(eta), dtype=bool)
    if emax == 0.0:
        return MarkResult(zeros, zeros.copy(), 0.0, 0.0, n_global, 0)

    can_refine = levels < max_level
    can_coarsen = levels > min_level
    iterations = 0
    # quantized indicator: all threshold tests are exact integer compares
    qeta = np.floor(eta / emax * _QSCALE)

    # -- phase 1: refinement threshold ------------------------------------
    deficit = target - n_global
    if deficit > 7:
        # bisect theta_r for ~deficit/7 refinements
        want = deficit / 7.0
        lo, hi = 0.0, 1.0
        best = None
        for _ in range(max_iterations):
            iterations += 1
            s = 0.5 * (lo + hi)
            refine = (qeta > np.floor(s * _QSCALE)) & can_refine
            r = _gsum(comm, refine.sum())
            if best is None or abs(r - want) < abs(best[0] - want):
                best = (r, refine, s)
            if abs(r - want) <= max(tol * want, 1.0):
                break
            if r > want:
                lo = s
            else:
                hi = s
        _, refine, s_r = best
        theta_r = emax * s_r
    else:
        theta_r = emax * refine_frac
        refine = (qeta > np.floor(refine_frac * _QSCALE)) & can_refine
        r = _gsum(comm, refine.sum())
        # churn cap: following the solution must not blow the budget —
        # if the fixed threshold marks more than ~25% of the target's
        # worth of refinement, bisect the threshold up to the cap.
        cap = max(int(0.25 * target / 7), 1)
        if r > cap:
            lo, hi = refine_frac, 1.0
            best = (r, refine, refine_frac)
            for _ in range(max_iterations):
                iterations += 1
                s = 0.5 * (lo + hi)
                refine = (qeta > np.floor(s * _QSCALE)) & can_refine
                r = _gsum(comm, refine.sum())
                if abs(r - cap) < abs(best[0] - cap):
                    best = (r, refine, s)
                if abs(r - cap) <= max(tol * cap, 1.0):
                    break
                if r > cap:
                    lo = s
                else:
                    hi = s
            r, refine, s_r = best
            theta_r = emax * s_r
    r_count = _gsum(comm, refine.sum())

    # -- phase 2: coarsening threshold ------------------------------------
    base = n_global + 7 * r_count

    def expected(theta_c: float):
        coarsen = (qeta < np.floor(theta_c / emax * _QSCALE)) & can_coarsen & ~refine
        c = _gsum(comm, coarsen.sum())
        return base - 7 * (c // 8), coarsen

    if base <= target * (1 + tol):
        coarsen = zeros.copy()
        theta_c = 0.0
        n_new = base
    else:
        lo, hi = 0.0, max(theta_r, emax * 1e-12)
        best = None
        for _ in range(max_iterations):
            iterations += 1
            theta_c = 0.5 * (lo + hi)
            n_new, coarsen = expected(theta_c)
            if best is None or abs(n_new - target) < abs(best[0] - target):
                best = (n_new, coarsen, theta_c)
            if abs(n_new - target) <= tol * target:
                break
            if n_new > target:
                lo = theta_c  # coarsen more
            else:
                hi = theta_c
        n_new, coarsen, theta_c = best

    return MarkResult(
        refine=refine,
        coarsen=coarsen,
        refine_threshold=theta_r,
        coarsen_threshold=theta_c,
        expected_count=n_new,
        iterations=iterations,
    )
