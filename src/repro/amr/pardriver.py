"""The distributed Figure-4 adaptation pipeline, timed per function.

This is the end-to-end SPMD loop the paper benchmarks in Section V:
explicit SUPG advection-diffusion of a sharp front, with the mesh
re-adapted every N steps through NEWTREE / MARKELEMENTS / COARSENTREE /
REFINETREE / BALANCETREE / PARTITIONTREE / EXTRACTMESH /
INTERPOLATEFIELDS / TRANSFERFIELDS, every stage wall-clock timed and its
communication counted (for the machine-model extrapolation to paper-scale
core counts).

The workload (:class:`RotatingFrontWorkload`) mirrors the paper's: a thin
spherical temperature front advected by a rotating velocity field, so the
refined region sweeps through the domain and "typically half the elements
are coarsened or refined at each adaptation step" (Fig. 5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import obs
from ..analysis.conformance import schedule_phase
from ..fem import ParAdvectionDiffusion
from ..mesh.parmesh import ParMesh, extract_parmesh, par_interpolate_at
from ..octree import morton_encode, new_tree
from ..octree.partree import (
    ParTree,
    balance_tree,
    coarsen_tree,
    partition_markers,
    partition_tree,
    refine_tree,
)
from ..parallel import SimComm, check_fault
from .mark import mark_elements

__all__ = ["ParAmrPipeline", "ParAdaptStats", "RotatingFrontWorkload", "rotating_velocity"]


@dataclass
class ParAdaptStats:
    """Per-adaptation-step bookkeeping (global counts, rank-0 timings)."""

    n_before: int
    n_after: int
    n_refined: int
    n_coarsened: int
    n_balance_added: int
    n_unchanged: int
    level_histogram: dict
    timings: dict = field(default_factory=dict)


def rotating_velocity(center=(0.5, 0.5, 0.5), omega=(0.0, 0.0, 1.0), scale=1.0):
    """Rigid rotation about an axis through ``center`` — keeps sharp
    fronts moving through the mesh forever (maximal AMR stress)."""
    c = np.asarray(center, dtype=np.float64)
    om = np.asarray(omega, dtype=np.float64) * scale

    def vel(x: np.ndarray) -> np.ndarray:
        return np.cross(np.broadcast_to(om, x.shape), x - c)

    return vel


@dataclass
class RotatingFrontWorkload:
    """Advection-dominated transport of a thin spherical front."""

    kappa: float = 1e-6
    front_radius: float = 0.25
    front_width: float = 0.05
    front_center: tuple = (0.5, 0.35, 0.5)
    velocity: Callable = field(default_factory=rotating_velocity)

    def initial(self, coords: np.ndarray) -> np.ndarray:
        r = np.linalg.norm(coords - np.asarray(self.front_center), axis=1)
        return 0.5 * (1.0 - np.tanh((r - self.front_radius) / self.front_width))


class ParAmrPipeline:
    """SPMD driver: owns the distributed tree, mesh and temperature field.

    All timing entries accumulate in ``self.timings`` (seconds, this
    rank); communication totals are read from ``comm.stats``.
    """

    def __init__(
        self,
        comm: SimComm,
        workload: RotatingFrontWorkload | None = None,
        coarse_level: int = 2,
        min_level: int = 1,
        max_level: int = 6,
        connectivity: str = "corner",
        tree=None,
        ghost_algorithm: str = "recursive",
        balance_algorithm: str = "recursive",
        face_algorithm: str = "recursive",
    ):
        self.comm = comm
        self.workload = workload or RotatingFrontWorkload()
        self.min_level = min_level
        self.max_level = max_level
        self.connectivity = connectivity
        # recursive and search variants are bitwise-identical; the
        # defaults take the low-collective path (see DESIGN.md section 4e)
        self.ghost_algorithm = ghost_algorithm
        self.balance_algorithm = balance_algorithm
        self.face_algorithm = face_algorithm
        self.timings: dict[str, float] = {}
        self.adapt_history: list[ParAdaptStats] = []
        self.steps_taken = 0
        self.sim_time = 0.0
        self.cycles_done = 0

        with schedule_phase("init"):
            t0 = time.perf_counter()
            if tree is not None:
                # restart path: ``tree`` is this rank's Morton segment of an
                # already-balanced leaf set (checkpoints save post-balance
                # state), so NEWTREE and BALANCETREE are skipped
                self.pt = ParTree(comm, tree)
                self._tic("NewTree", t0)
            else:
                self.pt = new_tree(comm, coarse_level)
                self._tic("NewTree", t0)
                t0 = time.perf_counter()
                self.pt, _, _ = balance_tree(
                    self.pt, connectivity, algorithm=balance_algorithm
                )
                self._tic("BalanceTree", t0)
            t0 = time.perf_counter()
            self.pm: ParMesh = extract_parmesh(
                self.pt,
                ghost_algorithm=ghost_algorithm,
                face_algorithm=face_algorithm,
            )
            self._tic("ExtractMesh", t0)
            coords = self.pm.mesh.node_coords()
            T0 = self.workload.initial(coords)
            self.T = T0[self.pm.mesh.indep_nodes]

    @classmethod
    def resume_from(cls, comm: SimComm, path: str, workload=None) -> "ParAmrPipeline":
        """Rebuild a pipeline from a checkpoint (any rank count); see
        :func:`repro.checkpoint.restore_pipeline`."""
        from ..checkpoint import restore_pipeline

        return restore_pipeline(comm, path, workload=workload)

    def _tic(self, name: str, t0: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + time.perf_counter() - t0

    # -- error indicator --------------------------------------------------------

    def indicator(self) -> np.ndarray:
        """h * |grad T| over owned elements."""
        from ..rhea.error import element_gradient

        mesh = self.pm.mesh
        u_full = mesh.expand(self.T)
        g = element_gradient(mesh, u_full)
        h = mesh.element_sizes().min(axis=1)
        return (h * np.linalg.norm(g, axis=1))[self.pm.owned_elements]

    # -- one adaptation step ----------------------------------------------------------

    def adapt(self, target: int) -> ParAdaptStats:
        with schedule_phase("adapt"):
            comm = self.comm
            old_pm = self.pm
            old_markers = partition_markers(comm, self.pt.local)
            u_full_old = old_pm.mesh.expand(self.T)
            eta = self.indicator()
            n_before = self.pt.global_count()

            t0 = time.perf_counter()
            with obs.phase("amr/mark"):
                mark = mark_elements(
                    eta,
                    self.pt.levels.astype(np.int64),
                    target,
                    comm=comm,
                    min_level=self.min_level,
                    max_level=self.max_level,
                )
            self._tic("MarkElements", t0)

            t0 = time.perf_counter()
            with obs.phase("amr/coarsen"):
                coarsen_mask = mark.coarsen & ~mark.refine
                pt, nfam = coarsen_tree(self.pt, coarsen_mask)
                obs.counter("elements_coarsened", 8 * nfam)
            self._tic("CoarsenTree", t0)

            t0 = time.perf_counter()
            with obs.phase("amr/refine"):
                # relocate refine marks on the coarsened local tree
                ref = self.pt.local[mark.refine]
                mask = np.zeros(len(pt), dtype=bool)
                if len(ref):
                    h = ref.lengths()
                    keys = morton_encode(ref.x + h // 2, ref.y + h // 2, ref.z + h // 2)
                    idx = np.searchsorted(pt.keys, keys, side="right") - 1
                    mask[idx] = True
                n_refined = comm.allreduce(int(mask.sum()))
                pt = refine_tree(pt, mask)
                obs.counter("elements_marked_refine", int(mask.sum()))
            self._tic("RefineTree", t0)

            t0 = time.perf_counter()
            with obs.phase("amr/balance"):
                pt, added, _ = balance_tree(
                    pt, self.connectivity, algorithm=self.balance_algorithm
                )
                obs.counter("balance_added", added)
            self._tic("BalanceTree", t0)

            t0 = time.perf_counter()
            with obs.phase("amr/partition"):
                pt, plan = partition_tree(pt)
            self._tic("PartitionTree", t0)

            t0 = time.perf_counter()
            with obs.phase("amr/extract_mesh"):
                pm = extract_parmesh(
                    pt,
                    ghost_algorithm=self.ghost_algorithm,
                    face_algorithm=self.face_algorithm,
                )
            self._tic("ExtractMesh", t0)

            t0 = time.perf_counter()
            with obs.phase("amr/interpolate"):
                new_coords = pm.mesh.node_coords()
                vals = par_interpolate_at(old_pm, old_markers, u_full_old, new_coords)
                self.T = vals[pm.mesh.indep_nodes]
            self._tic("InterpolateFields", t0)

            t0 = time.perf_counter()
            with obs.phase("amr/transfer"):
                # TRANSFERFIELDS: per-element data rides the partition plan (here:
                # the post-adaptation error indicator placeholder, exercising the
                # same code path the paper times)
                elem_payload = np.zeros((plan.send_slices[-1][1], 1))
                plan.transfer(comm, elem_payload)
            self._tic("TransferFields", t0)

            self.pt, self.pm = pt, pm
            n_after = pt.global_count()
            n_coarsened = 8 * comm.allreduce(nfam)
            stats = ParAdaptStats(
                n_before=n_before,
                n_after=n_after,
                n_refined=n_refined,
                n_coarsened=n_coarsened,
                n_balance_added=added,
                n_unchanged=n_before - n_refined - n_coarsened,
                level_histogram=pt.level_histogram(),
                timings={},
            )
            self.adapt_history.append(stats)
            return stats

    # -- time integration -------------------------------------------------------------

    def advance(self, n_steps: int, cfl: float = 0.4) -> float:
        with schedule_phase("advance"):
            t0 = time.perf_counter()
            with obs.phase("advection"):
                eq = ParAdvectionDiffusion(
                    self.pm, self.workload.kappa, self.workload.velocity
                )
                dt = eq.cfl_dt(cfl)
                self.T = eq.advance(self.T, dt, n_steps)
                obs.counter("advection_steps", n_steps)
            self.steps_taken += n_steps
            self.sim_time += n_steps * dt
            self._tic("TimeIntegration", t0)
            return dt

    def advance_time(self, t_span: float, cfl: float = 0.4) -> int:
        """Advance by a fixed physical time (however many CFL steps that
        takes on the current mesh); returns the step count."""
        with schedule_phase("advance_time"):
            eq = ParAdvectionDiffusion(self.pm, self.workload.kappa, self.workload.velocity)
            dt = eq.cfl_dt(cfl)
            n = max(int(np.ceil(t_span / dt)), 1)
            t0 = time.perf_counter()
            with obs.phase("advection"):
                self.T = eq.advance(self.T, t_span / n, n)
                obs.counter("advection_steps", n)
            self.steps_taken += n
            self.sim_time += n * (t_span / n)
            self._tic("TimeIntegration", t0)
            return n

    def run_cycles(
        self,
        n_cycles: int,
        steps_per_cycle: int,
        target: int,
        checkpoint=None,
    ) -> None:
        """The outer loop: adapt, advance, optionally snapshot.

        ``checkpoint`` is a path / CheckpointConfig / Checkpointer (see
        :mod:`repro.checkpoint.driver`); the fault-injection hook is
        polled mid-cycle, between adaptation and time integration, so an
        armed fault loses exactly the work since the last snapshot.
        """
        ckpt = None
        if checkpoint is not None:
            from ..checkpoint import Checkpointer

            ckpt = Checkpointer.coerce(checkpoint)
        for _ in range(n_cycles):
            self.adapt(target)
            check_fault(self.comm, self.steps_taken)
            self.advance(steps_per_cycle)
            self.cycles_done += 1
            if ckpt is not None and ckpt.due(self.cycles_done):
                ckpt.save_pipeline(self)

    # -- reporting --------------------------------------------------------------------

    def timing_breakdown(self) -> dict[str, float]:
        """This rank's accumulated per-function seconds."""
        return dict(self.timings)

    def amr_fraction(self) -> float:
        """Fraction of total time spent in AMR functions (everything but
        TimeIntegration) — the Figure-7 headline quantity."""
        total = sum(self.timings.values())
        amr = total - self.timings.get("TimeIntegration", 0.0)
        return amr / total if total > 0 else 0.0
