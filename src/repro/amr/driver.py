"""The Figure-4 adaptation pipeline (serial driver).

One adaptation step chains, in order: MARKELEMENTS -> COARSENTREE ->
REFINETREE -> BALANCETREE -> EXTRACTMESH -> INTERPOLATEFIELDS, timing each
stage and recording the element bookkeeping (refined / coarsened /
balance-added / unchanged) that Figure 5 plots.

The serial driver operates on a :class:`~repro.mesh.Mesh` and is what the
RHEA application uses; the SPMD pipeline over distributed trees lives in
:mod:`repro.amr.pardriver`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..mesh import Mesh, extract_mesh
from ..mesh.fields import interpolate_fields
from ..octree import balance, morton_encode
from .mark import MarkResult, mark_elements

__all__ = ["AdaptReport", "adapt_mesh"]


@dataclass
class AdaptReport:
    """Bookkeeping of one adaptation step (Figure 5 quantities)."""

    n_before: int
    n_after: int
    n_refined: int          # elements replaced by children
    n_coarsened: int        # elements merged away (8 per family)
    n_balance_added: int    # leaves created by BALANCETREE
    n_unchanged: int
    mark: MarkResult
    timings: dict = field(default_factory=dict)

    @property
    def fraction_changed(self) -> float:
        return 1.0 - self.n_unchanged / max(self.n_before, 1)


def adapt_mesh(
    mesh: Mesh,
    eta: np.ndarray,
    target: int,
    fields: dict | None = None,
    *,
    min_level: int = 0,
    max_level: int = 18,
    connectivity: str = "corner",
    face_algorithm: str = "search",
    **mark_kwargs,
) -> tuple[Mesh, dict, AdaptReport]:
    """Run one full adaptation step on a serial mesh.

    Parameters
    ----------
    mesh:
        Current mesh.
    eta:
        Per-element error indicator (length ``mesh.n_elements``).
    target:
        Desired element count after adaptation (MARKELEMENTS tolerance
        band applies).
    fields:
        Optional dict of full node vectors to transfer to the new mesh.

    Returns
    -------
    ``(new_mesh, new_fields, report)``.
    """
    tree = mesh.tree
    t = {}

    t0 = time.perf_counter()
    mark = mark_elements(
        eta, tree.levels, target, min_level=min_level, max_level=max_level, **mark_kwargs
    )
    t["MarkElements"] = time.perf_counter() - t0

    # COARSENTREE: never coarsen a leaf that is also marked for refinement.
    t0 = time.perf_counter()
    coarsen_mask = mark.coarsen & ~mark.refine
    tree_c, nfam = tree.coarsen(coarsen_mask)
    t["CoarsenTree"] = time.perf_counter() - t0

    # REFINETREE: refine-marked leaves survive coarsening untouched, so
    # re-locate them in the coarsened tree by their center points.
    t0 = time.perf_counter()
    ref_leaves = tree.leaves[mark.refine]
    refine_mask_c = np.zeros(len(tree_c), dtype=bool)
    if len(ref_leaves):
        h = ref_leaves.lengths()
        idx = tree_c.find_containing_keys(
            morton_encode(ref_leaves.x + h // 2, ref_leaves.y + h // 2, ref_leaves.z + h // 2)
        )
        # guard: a refine-marked leaf must still exist at the same level
        if not np.array_equal(tree_c.levels[idx], ref_leaves.level):
            raise AssertionError("refine-marked leaf was coarsened away")
        refine_mask_c[idx] = True
    tree_r = tree_c.refine(refine_mask_c)
    t["RefineTree"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    bres = balance(tree_r, connectivity)
    t["BalanceTree"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    new_mesh = extract_mesh(bres.tree, mesh.domain, face_algorithm=face_algorithm)
    t["ExtractMesh"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    new_fields = {}
    if fields:
        for k, v in fields.items():
            new_fields[k] = interpolate_fields(mesh, v, new_mesh)
    t["InterpolateFields"] = time.perf_counter() - t0

    n_refined = int(mark.refine.sum())
    n_coarsened = 8 * nfam
    report = AdaptReport(
        n_before=len(tree),
        n_after=len(bres.tree),
        n_refined=n_refined,
        n_coarsened=n_coarsened,
        n_balance_added=bres.leaves_added,
        n_unchanged=len(tree) - n_refined - n_coarsened,
        mark=mark,
        timings=t,
    )
    return new_mesh, new_fields, report
