"""The Figure-4 AMR pipeline: MARKELEMENTS and the adaptation drivers
(serial driver for RHEA, SPMD driver for the Section-V benchmarks)."""

from .driver import AdaptReport, adapt_mesh
from .mark import MarkResult, mark_elements
from .pardriver import (
    ParAdaptStats,
    ParAmrPipeline,
    RotatingFrontWorkload,
    rotating_velocity,
)

__all__ = [
    "AdaptReport",
    "adapt_mesh",
    "MarkResult",
    "mark_elements",
    "ParAmrPipeline",
    "ParAdaptStats",
    "RotatingFrontWorkload",
    "rotating_velocity",
]
