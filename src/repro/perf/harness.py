"""Measured-plus-modeled scaling harness.

Policy (see DESIGN.md section 5): every scalability benchmark
distinguishes **executed** data — real SPMD runs on simulated ranks, real
distributed data structures, wall-clock timed — from **modeled** data —
the Ranger machine model applied to measured communication tallies and
analytic per-element work, evaluated at the paper's core counts.  Tables
print both, labeled.

Analytic work constants are order-of-magnitude calibrations of the
low-order kernels (flops per element per explicit SUPG step; flops per
element per MINRES iteration for the vector Stokes operator); the *shape*
of the scaling curves depends on the ratio of this work to the modeled
communication, not on their absolute values.
"""

from __future__ import annotations

from typing import Sequence

from ..amr import ParAmrPipeline, RotatingFrontWorkload
from ..parallel import RANGER, CommStats, MachineModel, run_spmd_with_comms

__all__ = [
    "format_table",
    "measured_pipeline_run",
    "model_weak_scaling",
    "model_strong_scaling",
    "ADV_FLOPS_PER_ELEMENT_STEP",
    "STOKES_FLOPS_PER_ELEMENT_ITER",
]

#: Explicit SUPG advection-diffusion: ~2 sparse matvecs (27-point stencil)
#: plus stabilization per predictor-corrector step.
ADV_FLOPS_PER_ELEMENT_STEP = 600.0

#: One MINRES iteration on the vector Stokes operator: 24x24 element
#: matvec plus preconditioner V-cycle work per element.
STOKES_FLOPS_PER_ELEMENT_ITER = 6.0e3


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width text table (the benches print paper-style tables)."""
    cells = [[str(h) for h in headers]]
    for r in rows:
        cells.append([
            f"{v:.3g}" if isinstance(v, float) else str(v) for v in r
        ])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for j, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def measured_pipeline_run(
    p: int,
    *,
    coarse_level: int = 2,
    max_level: int = 6,
    target: int = 400,
    cycles: int = 2,
    steps_per_cycle: int = 4,
    workload: RotatingFrontWorkload | None = None,
) -> dict:
    """Execute the full SPMD AMR pipeline on ``p`` simulated ranks.

    Returns per-function timing breakdown (max over ranks), the final
    global element count, total steps, and the merged communication tally.
    """

    def kernel(comm):
        pipe = ParAmrPipeline(
            comm, workload=workload, coarse_level=coarse_level, max_level=max_level
        )
        pipe.run_cycles(cycles, steps_per_cycle, target)
        return pipe.timing_breakdown(), pipe.pt.global_count(), pipe.adapt_history

    results, comms = run_spmd_with_comms(p, kernel)
    timings: dict[str, float] = {}
    for t, _, _ in results:
        for k, v in t.items():
            timings[k] = max(timings.get(k, 0.0), v)
    stats = CommStats()
    for c in comms:
        s = c.stats
        stats.p2p_messages += s.p2p_messages
        stats.p2p_bytes += s.p2p_bytes
        for k, v in s.collective_calls.items():
            stats.collective_calls[k] = stats.collective_calls.get(k, 0) + v
        for k, v in s.collective_bytes.items():
            stats.collective_bytes[k] = stats.collective_bytes.get(k, 0) + v
    n_elements = results[0][1]
    return {
        "p": p,
        "timings": timings,
        "n_elements": n_elements,
        "adapt_history": results[0][2],
        "comm_per_rank": _per_rank(stats, p),
        "total_time": sum(timings.values()),
    }


def _per_rank(stats: CommStats, p: int) -> CommStats:
    out = CommStats()
    out.p2p_messages = stats.p2p_messages // max(p, 1)
    out.p2p_bytes = stats.p2p_bytes // max(p, 1)
    out.collective_calls = {k: v // max(p, 1) for k, v in stats.collective_calls.items()}
    out.collective_bytes = {k: v / max(p, 1) for k, v in stats.collective_bytes.items()}
    return out


def model_weak_scaling(
    core_counts: Sequence[int],
    elements_per_core: int,
    steps: int,
    comm_template: CommStats,
    flops_per_element_step: float = ADV_FLOPS_PER_ELEMENT_STEP,
    machine: MachineModel = RANGER,
) -> list[dict]:
    """Model isogranular scaling: per-rank work fixed, comm priced at P.

    ``comm_template`` is a measured per-rank tally at the executed scale
    (payloads per collective stay ~constant under weak scaling — the
    surface-to-volume property).  Returns one row per core count with
    modeled compute/comm seconds and parallel efficiency vs P = 1.
    """
    t_flops = machine.t_flops(flops_per_element_step * elements_per_core * steps)
    rows = []
    t1 = None
    for p in core_counts:
        t_comm = machine.t_comm(comm_template, p)
        total = t_flops + t_comm
        if t1 is None:
            t1 = total
        rows.append(
            {
                "cores": p,
                "elements": p * elements_per_core,
                "t_compute": t_flops,
                "t_comm": t_comm,
                "t_total": total,
                "efficiency": t1 / total,
            }
        )
    return rows


def model_strong_scaling(
    core_counts: Sequence[int],
    total_elements: int,
    steps: int,
    comm_template: CommStats,
    flops_per_element_step: float = ADV_FLOPS_PER_ELEMENT_STEP,
    machine: MachineModel = RANGER,
) -> list[dict]:
    """Model fixed-size scaling: per-rank work shrinks 1/P, per-rank
    surface communication shrinks ~P^{-2/3}, collective latency grows
    log P.  Speedups are measured against the first core count."""
    rows = []
    t_base = None
    p0 = core_counts[0]
    for p in core_counts:
        work = total_elements / p
        t_flops = machine.t_flops(flops_per_element_step * work * steps)
        # scale measured per-rank payload volumes by the surface ratio
        scaled = CommStats()
        ratio = (p0 / p) ** (2.0 / 3.0)
        scaled.p2p_messages = comm_template.p2p_messages
        scaled.p2p_bytes = int(comm_template.p2p_bytes * ratio)
        scaled.collective_calls = dict(comm_template.collective_calls)
        scaled.collective_bytes = {
            k: v * ratio for k, v in comm_template.collective_bytes.items()
        }
        t_comm = machine.t_comm(scaled, p)
        total = t_flops + t_comm
        if t_base is None:
            t_base = total
        rows.append(
            {
                "cores": p,
                "t_total": total,
                "speedup": t_base / total * p0,
                "ideal": p,
                "efficiency": (t_base / total * p0) / p,
            }
        )
    return rows
