"""Setup-amortization regression mini-suite (BENCH_tentpole.json).

Measures the PR-1 optimizations against an honest pre-PR baseline run in
the same process:

- ``stokes_repeat``: repeated Stokes solves on a fixed mesh (3 Picard
  passes x 5 time steps).  The baseline arm disables the operator cache,
  the lagged preconditioner, and MINRES warm starts, and restores the
  per-sweep triangular smoother and sequential aggregation — the seed
  code path.  A third arm (cache + warm start, rebuild-every-pass
  preconditioner) anchors the lagged-preconditioner iteration-inflation
  check.
- ``convection_mini``: a short adaptive convection run exercising cache
  invalidation; records operator-cache hit/miss and preconditioner
  build/reuse counters.
- ``dg_cubed_sphere``: DG setup on the cubed-sphere shell, batched face
  construction vs. the per-face loop, plus one RK step.
- ``amg_setup``: AMG setup on a model Poisson operator, vectorized vs.
  sequential aggregation.

A third suite (``--suite matvec``, BENCH_matvec.json) measures the PR-4
matrix-free apply engine:

- ``saddle_apply``: per-iteration saddle-operator cost on a *fresh* mesh
  (the adaptive-workload reality: the assembled arm pays block assembly
  before its first apply, the tensor arm only builds gathers), raw
  warm-cache apply times, flop ratios, and tensor/matrix parity.
- ``stokes_e2e``: full MINRES solves under both variants; residual
  histories must track to ~1e-10 of the initial residual.
- ``advection_rate``: SUPG rate-operator apply, tensor vs assembled.
- ``kernel_crossover``: the Section VII matrix-vs-tensor derivative
  kernel comparison (measured throughput per order + the modeled-Ranger
  crossover order).

A fifth suite (``--suite amr``, BENCH_amr.json) measures the recursive
forest algorithms against their search oracles on the AMR hot path:

- ``amr_kernels``: ghost construction, 2:1 balance, and mesh extraction
  on a random adaptive distributed tree — wall seconds and collective
  counts per algorithm, bitwise-equality flags, and the balance exchange
  count (the low-collective variant must converge in <= 2 exchanges).
- ``amr_pipeline``: the full SPMD adaptation pipeline run search-vs-
  recursive end to end; records both walls and AMR fractions.

A second suite (``--suite checkpoint``, BENCH_checkpoint.json) measures
the overhead of the PR-3 checkpoint subsystem:

- ``checkpoint_overhead``: the SPMD AMR pipeline with a snapshot every
  cycle; records the snapshot wall-fraction per cycle, shard bytes per
  element, and the wall time of a restore onto a different rank count.

A sixth suite (``--suite fleet``, BENCH_fleet.json) measures the PR-8
multi-tenant batched scenario service:

- ``fleet_throughput``: N same-structure scenarios run through the
  fleet's lockstep batch groups vs. the honest serial one-scenario
  loop (per-job mesh, per-job AMG, per-job MINRES); records the
  aggregate throughput ratio (target: >= 10x at N >= 16) and the
  batched-vs-serial per-job diagnostics deviation.
- ``fleet_preempt``: budget exhaustion mid-fleet -> per-job snapshots ->
  resume -> finish; the resumed per-job diagnostics must reproduce the
  uninterrupted run.

A fourth suite (``--suite obs``, BENCH_obs.json) exercises the
:mod:`repro.obs` observability layer:

- ``pipeline_phases``: the 4-rank AMR pipeline run twice — timer bound
  vs. unbound — recording the enabled-timer overhead fraction, the
  Table IV-style per-phase report (AMR / Stokes / advection fractions,
  modeled comm-vs-compute split per core count), and writing the
  Chrome-trace artifact (``obs_trace.json``).
- ``convection_phases``: a serial convection cycle with
  ``RheaConfig(observe=True)``; pins the solver counters (MINRES
  iterations, AMG setups, cache hits) flowing through the phase tree.
- ``disabled_overhead``: per-call cost of ``obs.phase``/``obs.counter``
  with no timer bound (the hot-path guarantee) and with one bound.

``--smoke`` shrinks every scenario so CI can validate JSON emission in
seconds; timings in smoke mode are not meaningful and are not gated.

Run: ``PYTHONPATH=src python -m repro.perf.regress [--suite NAME]
[--smoke] [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np
import scipy.sparse as sp

from ..forest import Forest, cubed_sphere_connectivity
from ..mangll import DGAdvection, solid_body_rotation
from ..mesh.opcache import cache_stats, reset_cache_stats
from ..rhea import MantleConvection, RheaConfig
from ..solvers.amg import (
    SmoothedAggregationAMG,
    aggregate,
    aggregate_reference,
    legacy_aggregation,
    legacy_smoother,
    strength_graph,
)

__all__ = [
    "run_suite",
    "run_checkpoint_suite",
    "run_matvec_suite",
    "run_obs_suite",
    "run_amr_suite",
    "run_fleet_suite",
    "run_multiproc_suite",
    "main",
]


def _stokes_arm(config: RheaConfig, level: int, n_solves: int, adv_steps: int):
    """One repeated-Stokes arm: fixed mesh, alternating Stokes solve and
    temperature advance (so the viscosity drifts realistically)."""
    from ..octree import LinearOctree

    sim = MantleConvection(config, tree=LinearOctree.uniform(level))
    t0 = time.perf_counter()
    iters = 0
    for _ in range(n_solves):
        stats = sim.solve_stokes()
        iters += stats["minres_iterations"]
        sim.advance_temperature(adv_steps)
    wall = time.perf_counter() - t0
    return wall, iters, sim.vrms()


def bench_stokes_repeat(smoke: bool) -> dict:
    """Repeated Stokes solves with and without the PR-1 setup
    amortizations (operator cache, lagged preconditioner, warm starts).

    Returns baseline/optimized wall seconds, the speedup, MINRES
    iteration counts (baseline, no-lag, lagged), the vrms drift between
    the arms, and operator-cache hit/miss totals.

    Example::

        r = bench_stokes_repeat(smoke=True)
        assert r["speedup"] > 0 and r["vrms_rel_diff"] < 1e-6
    """
    level = 2 if smoke else 3
    n_solves = 2 if smoke else 5
    adv_steps = 1 if smoke else 2
    picard = 3

    def cfg(**kw):
        return RheaConfig(picard_iterations=picard, adapt_every=adv_steps, **kw)

    # pre-PR baseline: no cache, rebuild preconditioner every pass, cold
    # starts, per-sweep triangular solves, sequential aggregation
    reset_cache_stats()
    with legacy_smoother(), legacy_aggregation():
        base_s, base_it, base_vrms = _stokes_arm(
            cfg(cache_operators=False, prec_lag_rtol=None, warm_start=False),
            level, n_solves, adv_steps,
        )
    # iteration reference: all optimizations except preconditioner lagging
    _, nolag_it, _ = _stokes_arm(cfg(prec_lag_rtol=None), level, n_solves, adv_steps)
    # full optimized path (PR defaults)
    reset_cache_stats()
    opt_s, opt_it, opt_vrms = _stokes_arm(cfg(), level, n_solves, adv_steps)
    stats = cache_stats()
    return {
        "n_solves": n_solves,
        "picard_iterations": picard,
        "baseline_s": base_s,
        "optimized_s": opt_s,
        "speedup": base_s / opt_s,
        "minres_iters_baseline": base_it,
        "minres_iters_nolag": nolag_it,
        "minres_iters_lagged": opt_it,
        "lag_iter_ratio": opt_it / max(nolag_it, 1),
        "vrms_baseline": base_vrms,
        "vrms_optimized": opt_vrms,
        "vrms_rel_diff": abs(opt_vrms - base_vrms) / max(abs(base_vrms), 1e-30),
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
    }


def bench_convection_mini(smoke: bool) -> dict:
    """A small end-to-end convection run (AMR + Stokes + advection)
    timing the whole :meth:`MantleConvection.run` loop.

    Returns wall seconds, the final element count, and the
    operator-cache statistics accumulated over the run.
    """
    cfg = RheaConfig(
        initial_level=2,
        max_level=3 if smoke else 4,
        adapt_every=2,
        picard_iterations=2,
    )
    sim = MantleConvection(cfg)
    t0 = time.perf_counter()
    sim.run(1 if smoke else 3, adapt=True)
    wall = time.perf_counter() - t0
    out = {"wall_s": wall, "n_elements": sim.mesh.n_elements}
    out.update(sim.cache_stats())
    return out


def bench_dg_cubed_sphere(smoke: bool) -> dict:
    """DG advection setup on the cubed-sphere shell: per-face loop vs
    batched face assembly.

    Returns setup seconds for both paths, the speedup, a bitwise
    equality check of the resulting rate evaluations, and the cost of
    one advection step.
    """
    conn = cubed_sphere_connectivity(r_inner=0.55, r_outer=1.0)
    forest = Forest.uniform(conn, 0 if smoke else 1)
    if not smoke:
        mask = np.zeros(len(forest), dtype=bool)
        mask[::7] = True
        forest, _ = forest.refine(mask).balance()
    p = 2 if smoke else 3
    wind = solid_body_rotation()
    t0 = time.perf_counter()
    dg_loop = DGAdvection(forest, p=p, velocity=wind, batch_faces=False)
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    dg = DGAdvection(forest, p=p, velocity=wind, batch_faces=True)
    bat_s = time.perf_counter() - t0
    u = dg.project(lambda x: np.exp(-20.0 * ((x[:, 0] - 0.7) ** 2 + x[:, 1] ** 2 + x[:, 2] ** 2)))
    same = np.array_equal(dg_loop.rate(u), dg.rate(u))
    dt = dg.cfl_dt()
    t0 = time.perf_counter()
    dg.advance(u, dt, 1)
    step_s = time.perf_counter() - t0
    return {
        "n_elements": dg.ne,
        "p": p,
        "setup_loop_s": loop_s,
        "setup_batched_s": bat_s,
        "setup_speedup": loop_s / bat_s,
        "rate_bitwise_equal": bool(same),
        "step_s": step_s,
    }


def bench_amg_setup(smoke: bool) -> dict:
    """AMG setup on a 3-D Poisson matrix: reference (sequential greedy)
    vs vectorized aggregation, and full hierarchy construction with the
    legacy vs current smoother.

    Returns aggregation and setup seconds for both arms, speedups, and
    the aggregate counts (which may differ slightly between algorithms).
    """
    m = 12 if smoke else 24
    I = sp.eye(m)
    T = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(m, m))
    A = sp.csr_matrix(
        sp.kron(sp.kron(T, I), I) + sp.kron(sp.kron(I, T), I) + sp.kron(sp.kron(I, I), T)
    )
    S = strength_graph(A, 0.08)
    t0 = time.perf_counter()
    _, n_ref = aggregate_reference(S)
    ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _, n_vec = aggregate(S)
    vec_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    with legacy_aggregation(), legacy_smoother():
        SmoothedAggregationAMG(A)
    setup_ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    SmoothedAggregationAMG(A)
    setup_vec_s = time.perf_counter() - t0
    return {
        "n": A.shape[0],
        "aggregate_reference_s": ref_s,
        "aggregate_vectorized_s": vec_s,
        "aggregate_speedup": ref_s / vec_s,
        "n_agg_reference": int(n_ref),
        "n_agg_vectorized": int(n_vec),
        "setup_reference_s": setup_ref_s,
        "setup_vectorized_s": setup_vec_s,
        "setup_speedup": setup_ref_s / setup_vec_s,
    }


def bench_checkpoint_overhead(smoke: bool) -> dict:
    """SPMD AMR pipeline with a per-cycle snapshot: how much wall time
    does checkpointing add, and how dense is the on-disk format?"""
    import shutil
    import tempfile

    from ..amr import ParAmrPipeline
    from ..checkpoint import load_checkpoint, restore_pipeline, save_pipeline
    from ..parallel import run_spmd

    p = 2
    restore_p = 3  # prove the resharded-restore path in the same run
    cycles = 2 if smoke else 4
    steps = 2
    target = 250 if smoke else 600
    max_level = 4 if smoke else 5
    root = tempfile.mkdtemp(prefix="bench_ckpt_")
    try:

        def kernel(comm):
            pipe = ParAmrPipeline(comm, coarse_level=2, max_level=max_level)
            compute_s = snapshot_s = 0.0
            for _ in range(cycles):
                t0 = time.perf_counter()
                pipe.adapt(target)
                pipe.advance(steps)
                pipe.cycles_done += 1
                compute_s += time.perf_counter() - t0
                t0 = time.perf_counter()
                save_pipeline(pipe, root, keep=2)
                snapshot_s += time.perf_counter() - t0
            return {
                "compute_s": compute_s,
                "snapshot_s": snapshot_s,
                "n_global": pipe.pt.global_count(),
            }

        outs = run_spmd(p, kernel)
        # the slowest rank sets the wall clock in both phases
        compute_s = max(o["compute_s"] for o in outs)
        snapshot_s = max(o["snapshot_s"] for o in outs)
        n_global = outs[0]["n_global"]

        t0 = time.perf_counter()
        run_spmd(restore_p, lambda comm: (restore_pipeline(comm, root), None)[1])
        restore_s = time.perf_counter() - t0

        manifest, _ = load_checkpoint(root)
        shard_bytes = sum(s.nbytes for s in manifest.shards)
        return {
            "ranks": p,
            "cycles": cycles,
            "n_elements_global": int(n_global),
            "compute_s": compute_s,
            "snapshot_s": snapshot_s,
            "snapshot_s_per_cycle": snapshot_s / cycles,
            "snapshot_fraction": snapshot_s / (compute_s + snapshot_s),
            "shard_bytes_total": int(shard_bytes),
            "shard_bytes_per_element": shard_bytes / n_global,
            "restore_ranks": restore_p,
            "restore_s": restore_s,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _matvec_mesh(level: int, seed: int = 0):
    """Fresh adapted hanging-node mesh (never seen by any operator cache)."""
    from ..mesh import extract_mesh
    from ..octree import LinearOctree, balance

    tree = LinearOctree.uniform(level)
    rng = np.random.default_rng(seed)
    tree = tree.refine(rng.random(len(tree)) < 0.25)
    tree = balance(tree, "corner").tree
    return extract_mesh(tree, (1.0, 1.0, 1.0))


def _matvec_problem(mesh):
    """Layered-viscosity buoyancy problem (smooth enough for MINRES)."""
    z = mesh.element_centers()[:, 2]
    eta = np.exp(4.0 * z)  # ~55x layered viscosity contrast
    c = mesh.node_coords()
    bf = np.zeros((mesh.n_nodes, 3))
    bf[:, 2] = np.sin(np.pi * c[:, 0]) * np.cos(np.pi * c[:, 2])
    return eta, bf


def _time_repeat(fn, reps: int) -> float:
    fn()
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - t0) / reps


def bench_saddle_apply(smoke: bool) -> dict:
    """The gated comparison: per-iteration cost of the saddle operator in
    an adaptive workload (every mesh is fresh, so the assembled arm pays
    sparse assembly before its first apply while the tensor arm only
    builds gathers), plus the honest raw warm-cache apply timings."""
    from ..fem import StokesSystem
    from ..fem.matfree import csr_apply_flops, saddle_apply_flops

    level = 2 if smoke else 3
    reps = 5 if smoke else 50
    k = 10 if smoke else 100  # MINRES applies per fresh mesh (~1 solve)

    # matrix arm on a fresh mesh: setup = full block assembly
    mesh_m = _matvec_mesh(level)
    eta, bf = _matvec_problem(mesh_m)
    t0 = time.perf_counter()
    st_m = StokesSystem(mesh_m, eta, bf, bc="free_slip", variant="matrix")
    st_m.B  # noqa: B018 — force the lazy divergence block like matvec will
    setup_matrix_s = time.perf_counter() - t0
    rng = np.random.default_rng(1)
    x = rng.standard_normal(st_m.n_dof)
    apply_matrix_s = _time_repeat(lambda: st_m.matvec(x), reps)

    # tensor arm on its own fresh mesh: setup = gathers + coefficient bind
    mesh_t = _matvec_mesh(level)
    eta_t, bf_t = _matvec_problem(mesh_t)
    t0 = time.perf_counter()
    st_t = StokesSystem(mesh_t, eta_t, bf_t, bc="free_slip", variant="tensor")
    setup_tensor_s = time.perf_counter() - t0
    apply_tensor_s = _time_repeat(lambda: st_t.matvec(x), reps)

    parity = float(
        np.max(np.abs(st_t.matvec(x) - st_m.matvec(x)))
        / np.max(np.abs(st_m.matvec(x)))
    )
    amort_matrix = setup_matrix_s / k + apply_matrix_s
    amort_tensor = setup_tensor_s / k + apply_tensor_s
    nnz = st_m.A.nnz + 2 * st_m.B.nnz + st_m.C.nnz
    tensor_flops_n = saddle_apply_flops(mesh_t.n_elements)
    matrix_flops_n = csr_apply_flops(nnz)
    return {
        "level": level,
        "n_elements": mesh_t.n_elements,
        "n_dof": st_t.n_dof,
        "applies_per_mesh": k,
        "setup_matrix_s": setup_matrix_s,
        "setup_tensor_s": setup_tensor_s,
        "apply_matrix_s": apply_matrix_s,
        "apply_tensor_s": apply_tensor_s,
        "raw_apply_ratio": apply_matrix_s / apply_tensor_s,
        "amortized_matrix_s": amort_matrix,
        "amortized_tensor_s": amort_tensor,
        "amortized_speedup": amort_matrix / amort_tensor,
        "parity_rel": parity,
        "saddle_nnz": int(nnz),
        "tensor_flops_per_apply": int(tensor_flops_n),
        "matrix_flops_per_apply": int(matrix_flops_n),
        "flop_ratio_matrix_over_tensor": matrix_flops_n / tensor_flops_n,
        "tensor_apply_mdofs_per_s": st_t.n_dof / apply_tensor_s / 1e6,
    }


def bench_stokes_e2e(smoke: bool) -> dict:
    """End-to-end MINRES Stokes solves, tensor vs matrix variant: the
    residual histories must agree to ~1e-10 of the initial residual and
    the solves report their wall-clock ratio."""
    from ..fem import StokesSystem
    from ..solvers import StokesBlockPreconditioner, minres

    level = 2 if smoke else 3
    tol = 1e-8
    results = {}
    for variant in ("matrix", "tensor"):
        mesh = _matvec_mesh(level)
        eta, bf = _matvec_problem(mesh)
        t0 = time.perf_counter()
        st = StokesSystem(mesh, eta, bf, bc="free_slip", variant=variant)
        prec = StokesBlockPreconditioner(st)
        res = minres(st.matvec, st.rhs(), M=prec.apply, tol=tol, maxiter=500)
        wall = time.perf_counter() - t0
        results[variant] = (res, wall, st)
    res_m, wall_m, st_m = results["matrix"]
    res_t, wall_t, st_t = results["tensor"]
    hist_m = np.asarray(res_m.residuals)
    hist_t = np.asarray(res_t.residuals)
    npts = min(len(hist_m), len(hist_t))
    hist_dev = float(
        np.max(np.abs(hist_m[:npts] - hist_t[:npts])) / max(hist_m[0], 1e-300)
    )
    x_dev = float(
        np.max(np.abs(res_m.x - res_t.x)) / max(np.max(np.abs(res_m.x)), 1e-300)
    )
    return {
        "level": level,
        "tol": tol,
        "iterations_matrix": res_m.iterations,
        "iterations_tensor": res_t.iterations,
        "converged_matrix": bool(res_m.converged),
        "converged_tensor": bool(res_t.converged),
        "wall_matrix_s": wall_m,
        "wall_tensor_s": wall_t,
        "e2e_speedup": wall_m / wall_t,
        "residual_history_max_dev": hist_dev,
        "solution_max_rel_dev": x_dev,
        "div_norm_tensor": st_t.velocity_divergence_norm(res_t.x),
        "div_norm_matrix": st_m.velocity_divergence_norm(res_m.x),
    }


def bench_advection_rate(smoke: bool) -> dict:
    """SUPG rate-operator apply, tensor vs assembled, on a fresh mesh."""
    from ..fem import AdvectionDiffusion
    from ..fem.matfree import advection_apply_flops

    level = 2 if smoke else 3
    reps = 5 if smoke else 50
    mesh_t = _matvec_mesh(level)
    rng = np.random.default_rng(2)
    vel = rng.standard_normal((mesh_t.n_elements, 3))
    T = rng.standard_normal(mesh_t.n_independent)

    t0 = time.perf_counter()
    eq_t = AdvectionDiffusion(mesh_t, 1e-3, vel, source=0.5, variant="tensor")
    setup_tensor_s = time.perf_counter() - t0
    rate_tensor_s = _time_repeat(lambda: eq_t.rate(T), reps)

    mesh_m = _matvec_mesh(level)
    t0 = time.perf_counter()
    eq_m = AdvectionDiffusion(mesh_m, 1e-3, vel, source=0.5, variant="matrix")
    setup_matrix_s = time.perf_counter() - t0
    rate_matrix_s = _time_repeat(lambda: eq_m.rate(T), reps)

    parity = float(
        np.max(np.abs(eq_t.rate(T) - eq_m.rate(T)))
        / max(np.max(np.abs(eq_m.rate(T))), 1e-300)
    )
    return {
        "level": level,
        "n_elements": mesh_t.n_elements,
        "setup_matrix_s": setup_matrix_s,
        "setup_tensor_s": setup_tensor_s,
        "rate_matrix_s": rate_matrix_s,
        "rate_tensor_s": rate_tensor_s,
        "raw_rate_ratio": rate_matrix_s / rate_tensor_s,
        "parity_rel": parity,
        "tensor_flops_per_rate": int(advection_apply_flops(mesh_t.n_elements)),
    }


def bench_kernel_crossover(smoke: bool) -> dict:
    """Section VII matrix-vs-tensor derivative kernel comparison: measured
    throughput of the batched DerivativeKernel at several orders, the
    analytic flop ratio, and the modeled-Ranger crossover order."""
    from ..mangll.tensor import DerivativeKernel, matrix_flops, tensor_flops
    from ..parallel.machine import RANGER

    orders = [1, 2] if smoke else [1, 2, 4, 6]
    ne = 8 if smoke else 64
    reps = 3 if smoke else 10
    per_order = {}
    for p in orders:
        kern = DerivativeKernel(p)
        rng = np.random.default_rng(p)
        u = rng.standard_normal((ne, (p + 1) ** 3))
        t_mat = _time_repeat(lambda: kern.gradient_matrix(u), reps)
        t_ten = _time_repeat(lambda: kern.gradient_tensor(u), reps)
        per_order[str(p)] = {
            "flops_matrix": matrix_flops(p) * ne,
            "flops_tensor": tensor_flops(p) * ne,
            "flop_ratio": matrix_flops(p) / tensor_flops(p),
            "measured_matrix_s": t_mat,
            "measured_tensor_s": t_ten,
            "measured_matrix_gflops": matrix_flops(p) * ne / t_mat / 1e9,
            "measured_tensor_gflops": tensor_flops(p) * ne / t_ten / 1e9,
            "modeled_matrix_s": RANGER.t_element_kernel(p, "matrix", ne),
            "modeled_tensor_s": RANGER.t_element_kernel(p, "tensor", ne),
        }
    modeled_crossover = next(
        (
            p
            for p in range(1, 17)
            if RANGER.t_element_kernel(p, "tensor", 1)
            < RANGER.t_element_kernel(p, "matrix", 1)
        ),
        None,
    )
    return {
        "n_elements": ne,
        "orders": per_order,
        "modeled_crossover_order": modeled_crossover,
    }


def bench_pipeline_phases(smoke: bool, trace_path: str = "obs_trace.json") -> dict:
    """The 4-rank AMR pipeline, observed vs. plain: phase report, trace
    artifact, and the enabled-timer overhead fraction."""
    from .. import obs
    from ..amr import ParAmrPipeline
    from ..parallel import run_spmd

    p = 4
    cycles = 2 if smoke else 3
    target = 250 if smoke else 600
    max_level = 4 if smoke else 5

    def run_pipe(comm):
        pipe = ParAmrPipeline(comm, coarse_level=2, max_level=max_level)
        pipe.run_cycles(cycles, steps_per_cycle=2, target=target)
        return pipe

    def kernel_plain(comm):
        t0 = time.perf_counter()
        run_pipe(comm)
        return time.perf_counter() - t0

    def kernel_observed(comm):
        timer = obs.enable(comm)
        t0 = time.perf_counter()
        run_pipe(comm)
        wall = time.perf_counter() - t0
        obs.disable()
        return {
            "wall": wall,
            "results": timer.results(),
            "trace": timer.trace_data(),
        }

    wall_plain = max(run_spmd(p, kernel_plain))
    observed = run_spmd(p, kernel_observed)
    wall_obs = max(o["wall"] for o in observed)
    report = obs.generate_report(
        [o["results"] for o in observed], executed_ranks=p
    )
    obs.chrome_trace([o["trace"] for o in observed], trace_path)
    big = str(report["core_counts"][-1])
    return {
        "ranks": p,
        "cycles": cycles,
        "wall_plain_s": wall_plain,
        "wall_observed_s": wall_obs,
        "observe_overhead_fraction": (wall_obs - wall_plain) / wall_plain,
        "trace_path": trace_path,
        "fractions": report["fractions"],
        "amr_fraction": report["amr_fraction"],
        "comm_fraction_at": {
            g: report["groups"][g]["comm_fraction"][big]
            for g in report["groups"]
            if report["groups"][g]["phases"]
        },
        "modeled_core_count": int(big),
        "report": report,
        "markdown_report": obs.markdown_report(report),
    }


def bench_convection_phases(smoke: bool) -> dict:
    """Serial convection cycle with ``observe=True``: the phase tree must
    carry the solver counters end to end."""
    from .. import obs

    cfg = RheaConfig(
        initial_level=2,
        max_level=3 if smoke else 4,
        adapt_every=2,
        picard_iterations=2,
        observe=True,
        target_elements=150 if smoke else None,
    )
    sim = MantleConvection(cfg)
    sim.run(1 if smoke else 2)
    timer = obs.active()
    results = timer.results()
    obs.disable()
    report = obs.generate_report([results], executed_ranks=1)
    stokes = report["groups"]["stokes"]["counters"]
    nested = {
        path: dict(e["counters"])
        for path, e in report["phases"].items()
        if e["counters"]
    }
    return {
        "n_elements": sim.mesh.n_elements,
        "fractions": report["fractions"],
        "minres_iterations": stokes.get("minres_iterations", 0),
        "picard_iterations": stokes.get("picard_iterations", 0),
        "prec_builds": stokes.get("prec_builds", 0),
        "cache_hits": stokes.get("cache_hits", 0),
        "cache_misses": stokes.get("cache_misses", 0),
        "phase_counters": nested,
    }


def bench_disabled_overhead(smoke: bool) -> dict:
    """Per-call cost of the obs hooks: disabled (no bound timer — the
    always-on production path) and enabled."""
    from .. import obs

    n = 20_000 if smoke else 200_000
    obs.disable()
    assert obs.active() is None
    # the disabled path must hand back the shared singleton (no allocation)
    singleton = obs.phase("a") is obs.phase("b") is obs.NULL_PHASE

    t0 = time.perf_counter()
    for _ in range(n):  # lint: allow-loop (microbenchmark)
        with obs.phase("x"):
            pass
    disabled_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):  # lint: allow-loop (microbenchmark)
        obs.counter("c")
    disabled_counter_s = time.perf_counter() - t0

    obs.enable(record_events=False)
    t0 = time.perf_counter()
    for _ in range(n):  # lint: allow-loop (microbenchmark)
        with obs.phase("x"):
            pass
    enabled_s = time.perf_counter() - t0
    obs.disable()
    return {
        "calls": n,
        "null_phase_singleton": bool(singleton),
        "disabled_ns_per_phase": disabled_s / n * 1e9,
        "disabled_ns_per_counter": disabled_counter_s / n * 1e9,
        "enabled_ns_per_phase": enabled_s / n * 1e9,
    }


def bench_amr_kernels(smoke: bool) -> dict:
    """Ghost / balance / extract on a random adaptive distributed tree:
    search oracle vs recursive algorithm, wall seconds plus the collective
    operation counts behind each (the paper-scale argument is collective
    count, not local flops)."""
    from ..mesh.parmesh import collect_ghosts, extract_parmesh
    from ..octree import balance_tree, gather_tree, new_tree, refine_tree
    from ..octree.partree import partition_tree
    from ..parallel import run_spmd

    p = 2 if smoke else 4
    level = 2 if smoke else 3
    algs = ("search", "recursive")

    def kernel(comm):
        from ..octree import ROOT_LEN

        pt0 = new_tree(comm, level)
        offset = pt0.global_offset()
        total = comm.allreduce(len(pt0))
        rng = np.random.default_rng(3)
        gmask = rng.random(total) < 0.3
        pt0 = refine_tree(pt0, gmask[offset : offset + len(pt0)])
        # drill a single leaf at the domain center so the 2:1 repair must
        # propagate through several levels (multi-round ripple, the paper
        # regime; refining whole center shells would stay graded)
        from ..octree import morton_encode
        from ..octree.partree import owners_of_keys, partition_markers

        mid = ROOT_LEN // 2
        ckey = morton_encode(np.array([mid]), np.array([mid]), np.array([mid]))
        for _ in range(3 if smoke else 4):
            markers = partition_markers(comm, pt0.local)
            owner = owners_of_keys(markers, ckey)[0]
            mask = np.zeros(len(pt0), dtype=bool)
            if comm.rank == owner and len(pt0):
                idx = np.searchsorted(pt0.keys, ckey[0], side="right") - 1
                mask[idx] = True
            pt0 = refine_tree(pt0, mask)
        out = {}

        balanced = {}
        for alg in algs:
            s0 = comm.stats.snapshot()
            t0 = time.perf_counter()
            ptb, added, rounds = balance_tree(pt0, "corner", algorithm=alg)
            out[f"balance_{alg}_s"] = time.perf_counter() - t0
            d = comm.stats.since(s0)
            out[f"balance_{alg}_collectives"] = d.total_collective_calls
            out[f"balance_{alg}_rounds"] = int(rounds)
            balanced[alg] = ptb
        gs, gr = gather_tree(balanced["search"]), gather_tree(balanced["recursive"])
        out["balance_bitwise_equal"] = bool(
            np.array_equal(gs.keys, gr.keys) and np.array_equal(gs.levels, gr.levels)
        )

        pt, _ = partition_tree(balanced["search"])
        ghosts = {}
        for alg in algs:
            s0 = comm.stats.snapshot()
            t0 = time.perf_counter()
            ghosts[alg] = collect_ghosts(pt, algorithm=alg)
            out[f"ghost_{alg}_s"] = time.perf_counter() - t0
            d = comm.stats.since(s0)
            out[f"ghost_{alg}_collectives"] = d.total_collective_calls
        (g_s, o_s), (g_r, o_r) = ghosts["search"], ghosts["recursive"]
        out["ghost_bitwise_equal"] = bool(
            np.array_equal(g_s.keys(), g_r.keys()) and np.array_equal(o_s, o_r)
        )

        for alg in algs:
            s0 = comm.stats.snapshot()
            t0 = time.perf_counter()
            extract_parmesh(pt, ghost_algorithm=alg, face_algorithm=alg)
            out[f"extract_{alg}_s"] = time.perf_counter() - t0
            out[f"extract_{alg}_collectives"] = comm.stats.since(
                s0
            ).total_collective_calls
        out["n_elements_global"] = pt.global_count()
        return out

    outs = run_spmd(p, kernel)
    res = {"ranks": p, "level": level}
    for key in outs[0]:
        if key.endswith("_s"):
            res[key] = max(o[key] for o in outs)  # slowest rank = wall
        elif key.endswith("equal"):
            res[key] = all(o[key] for o in outs)
        else:
            res[key] = outs[0][key]
    res["ghost_speedup"] = res["ghost_search_s"] / res["ghost_recursive_s"]
    res["balance_speedup"] = res["balance_search_s"] / res["balance_recursive_s"]
    res["balance_exchanges"] = res["balance_recursive_rounds"]
    res["collective_reduction_balance"] = (
        res["balance_search_collectives"] / max(res["balance_recursive_collectives"], 1)
    )
    return res


def bench_amr_pipeline(smoke: bool) -> dict:
    """The full SPMD adaptation pipeline, all-search vs all-recursive:
    end-to-end wall, AMR wall fraction, and total collective calls."""
    from ..amr import ParAmrPipeline
    from ..parallel import run_spmd

    p = 2 if smoke else 4
    cycles = 2
    target = 250 if smoke else 600
    max_level = 4 if smoke else 5
    out = {"ranks": p, "cycles": cycles, "target": target}
    for alg in ("search", "recursive"):

        def kernel(comm):
            pipe = ParAmrPipeline(
                comm,
                coarse_level=2,
                max_level=max_level,
                ghost_algorithm=alg,
                balance_algorithm=alg,
                face_algorithm=alg,
            )
            t0 = time.perf_counter()
            pipe.run_cycles(cycles, steps_per_cycle=2, target=target)
            wall = time.perf_counter() - t0
            return {
                "wall": wall,
                "amr_fraction": pipe.amr_fraction(),
                "collectives": comm.stats.total_collective_calls,
                "n": pipe.pt.global_count(),
            }

        outs = run_spmd(p, kernel)
        out[f"wall_{alg}_s"] = max(o["wall"] for o in outs)
        out[f"amr_fraction_{alg}"] = max(o["amr_fraction"] for o in outs)
        out[f"collectives_{alg}"] = outs[0]["collectives"]
        out[f"n_elements_{alg}"] = outs[0]["n"]
    out["trees_identical"] = out["n_elements_search"] == out["n_elements_recursive"]
    out["pipeline_speedup"] = out["wall_search_s"] / out["wall_recursive_s"]
    return out


def run_amr_suite(smoke: bool = False) -> dict:
    """Run the recursive-forest-algorithms suite (kernel-level ghost /
    balance / extract comparison plus the end-to-end pipeline) and return
    the BENCH_amr payload.

    Example::

        data = run_amr_suite(smoke=True)
        assert data["scenarios"]["amr_kernels"]["ghost_bitwise_equal"]
        assert data["scenarios"]["amr_kernels"]["balance_exchanges"] <= 2
    """
    out = {
        "suite": "PR6 recursive forest algorithms",
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {},
    }
    for name, fn in (
        ("amr_kernels", bench_amr_kernels),
        ("amr_pipeline", bench_amr_pipeline),
    ):
        t0 = time.perf_counter()
        out["scenarios"][name] = fn(smoke)
        out["scenarios"][name]["scenario_wall_s"] = time.perf_counter() - t0
        print(f"[regress] {name}: {json.dumps(out['scenarios'][name])}", flush=True)
    return out


def run_obs_suite(smoke: bool = False) -> dict:
    """Run the observability suite (pipeline phases, convection phase
    counters, disabled-hook overhead) and return the BENCH_obs payload.

    Example::

        data = run_obs_suite(smoke=True)
        data["scenarios"]["pipeline_phases"]["amr_fraction"]
    """
    out = {
        "suite": "PR5 observability layer",
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {},
    }
    for name, fn in (
        ("pipeline_phases", bench_pipeline_phases),
        ("convection_phases", bench_convection_phases),
        ("disabled_overhead", bench_disabled_overhead),
    ):
        t0 = time.perf_counter()
        out["scenarios"][name] = fn(smoke)
        out["scenarios"][name]["scenario_wall_s"] = time.perf_counter() - t0
        summary = {
            k: v
            for k, v in out["scenarios"][name].items()
            if not isinstance(v, (dict, str)) or k == "trace_path"
        }
        print(f"[regress] {name}: {json.dumps(summary)}", flush=True)
    return out


def run_matvec_suite(smoke: bool = False) -> dict:
    """Run the matrix-free apply suite (saddle apply, Stokes end-to-end,
    advection rate, kernel crossover) and return the BENCH_matvec
    payload."""
    out = {
        "suite": "PR4 matrix-free apply engine",
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {},
    }
    for name, fn in (
        ("saddle_apply", bench_saddle_apply),
        ("stokes_e2e", bench_stokes_e2e),
        ("advection_rate", bench_advection_rate),
        ("kernel_crossover", bench_kernel_crossover),
    ):
        t0 = time.perf_counter()
        out["scenarios"][name] = fn(smoke)
        out["scenarios"][name]["scenario_wall_s"] = time.perf_counter() - t0
        print(f"[regress] {name}: {json.dumps(out['scenarios'][name])}", flush=True)
    return out


def run_suite(smoke: bool = False) -> dict:
    """Run the setup-amortization suite (Stokes repeat, mini convection,
    DG cubed sphere, AMG setup) and return the BENCH_tentpole payload."""
    out = {
        "suite": "PR1 setup amortization",
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {},
    }
    for name, fn in (
        ("stokes_repeat", bench_stokes_repeat),
        ("convection_mini", bench_convection_mini),
        ("dg_cubed_sphere", bench_dg_cubed_sphere),
        ("amg_setup", bench_amg_setup),
    ):
        t0 = time.perf_counter()
        out["scenarios"][name] = fn(smoke)
        out["scenarios"][name]["scenario_wall_s"] = time.perf_counter() - t0
        print(f"[regress] {name}: {json.dumps(out['scenarios'][name])}", flush=True)
    return out


def run_checkpoint_suite(smoke: bool = False) -> dict:
    """Run the checkpoint suite (save/restore overhead and shard sizes)
    and return the BENCH_checkpoint payload."""
    out = {
        "suite": "PR3 checkpoint overhead",
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {},
    }
    t0 = time.perf_counter()
    out["scenarios"]["checkpoint_overhead"] = bench_checkpoint_overhead(smoke)
    out["scenarios"]["checkpoint_overhead"]["scenario_wall_s"] = time.perf_counter() - t0
    print(
        f"[regress] checkpoint_overhead: "
        f"{json.dumps(out['scenarios']['checkpoint_overhead'])}",
        flush=True,
    )
    return out


def _fleet_specs(n_jobs: int, cycles: int, level: int) -> list:
    """Heterogeneous same-structure scenario specs for the fleet benches:
    per-job Ra / activation energy sweeps with every fourth job on the
    yielding rheology, spread over three tenants."""
    from ..fleet import ScenarioSpec

    specs = []
    for i in range(n_jobs):
        law = "yielding" if i % 4 == 3 else "arrhenius"
        specs.append(
            ScenarioSpec(
                job_id=f"j{i:02d}",
                tenant=f"t{i % 3}",
                Ra=1e4 * (1.0 + 0.5 * (i % 16)),
                viscosity_law=law,
                activation_energy=3.0 + 0.25 * (i % 12),
                yield_stress=(4.0 + 0.1 * (i % 12)) if law == "yielding" else None,
                initial_level=level,
                max_level=level + 1,
                cycles=cycles,
                seed=i,
                priority=i % 2,
            )
        )
    return specs


def _diag_rel_dev(a, b) -> float:
    """Max relative deviation between two StepDiagnostics records over
    the physics observables (vrms, Nusselt, mean temperature)."""
    return max(
        abs(x - y) / max(abs(y), 1e-30)
        for x, y in ((a.vrms, b.vrms), (a.nusselt, b.nusselt), (a.mean_T, b.mean_T))
    )


def bench_fleet_throughput(smoke: bool) -> dict:
    """Aggregate throughput of the batched fleet vs the serial scenario
    loop over N same-structure scenarios (the PR-8 headline).

    The fleet arm runs first so any process warmup (BLAS thread pools,
    page cache) favors the *serial* arm, making the reported ratio
    conservative.  The serial arm is the honest pre-fleet workflow: one
    mesh extraction, one AMG hierarchy, and one MINRES solve per
    scenario.  Returns both walls, the throughput ratio (target >= 10x
    at 64 jobs in full mode), the batched-vs-serial per-job diagnostics
    deviation, and the mesh-registry sharing counters.
    """
    from ..fleet import FleetService

    n_jobs = 6 if smoke else 64
    cycles = 1 if smoke else 2
    level = 2
    specs = _fleet_specs(n_jobs, cycles, level)

    svc = FleetService()
    for spec in specs:
        svc.admit(spec)
    t0 = time.perf_counter()
    svc.run()
    fleet_s = time.perf_counter() - t0
    fleet_last = {j.job_id: j.sim.history[-1] for j in svc.jobs.values()}
    usage = svc.report()

    t0 = time.perf_counter()
    serial_last = {}
    for spec in specs:
        sim = MantleConvection(spec.to_config(), spec.t_init())
        sim.run(cycles, adapt=False)
        serial_last[spec.job_id] = sim.history[-1]
    serial_s = time.perf_counter() - t0

    dev = max(
        _diag_rel_dev(fleet_last[jid], serial_last[jid]) for jid in serial_last
    )
    return {
        "n_jobs": n_jobs,
        "cycles": cycles,
        "initial_level": level,
        "serial_s": serial_s,
        "fleet_s": fleet_s,
        "throughput_ratio": serial_s / fleet_s,
        "parity_max_rel_dev": dev,
        "meshes_built": svc.registry.built,
        "meshes_shared": svc.registry.shared,
        "minres_iterations": sum(
            led["minres_iterations"] for led in usage["jobs"].values()
        ),
    }


def bench_fleet_preempt(smoke: bool) -> dict:
    """Budget exhaustion mid-fleet: snapshot every started job, rebuild
    the fleet from the manifest, finish, and check the resumed per-job
    diagnostics reproduce the uninterrupted run (deterministic per-cycle
    solver schedule => the deviation should be exactly zero)."""
    import shutil
    import tempfile

    from ..fleet import FleetService

    n_jobs = 3 if smoke else 4
    cycles = 2 if smoke else 3
    specs = _fleet_specs(n_jobs, cycles, level=2)

    base = FleetService()
    for spec in specs:
        base.admit(spec)
    base.run()
    ref = {j.job_id: j.sim.history for j in base.jobs.values()}

    root = tempfile.mkdtemp(prefix="fleet_regress_")
    try:
        svc = FleetService(root=root)
        for spec in specs:
            svc.admit(spec)
        svc.arm_budget(1)
        t0 = time.perf_counter()
        svc.run()  # one quantum, then preempt-to-checkpoint
        preempt_s = time.perf_counter() - t0
        statuses = svc.statuses()
        t0 = time.perf_counter()
        resumed = FleetService.resume(root)
        restore_s = time.perf_counter() - t0
        resumed.run()
        dev = 0.0
        n_compared = 0
        for jid, history in ref.items():
            got = resumed.jobs[jid].sim.history
            for a, b in zip(got, history):
                dev = max(dev, _diag_rel_dev(a, b))
                n_compared += 1
        usage = resumed.accountant.json_report()
        return {
            "n_jobs": n_jobs,
            "cycles": cycles,
            "preempt_wall_s": preempt_s,
            "restore_wall_s": restore_s,
            "statuses_at_preempt": statuses,
            "resumed_max_rel_dev": dev,
            "diags_compared": n_compared,
            "resumed_cycles": sum(
                led["cycles"] for led in usage["jobs"].values()
            ),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_fleet_suite(smoke: bool = False) -> dict:
    """Run the multi-tenant fleet suite (batched throughput vs the
    serial scenario loop, preempt/resume reproducibility) and return the
    BENCH_fleet payload.

    Example::

        data = run_fleet_suite(smoke=True)
        assert data["scenarios"]["fleet_throughput"]["parity_max_rel_dev"] < 1e-4
        assert data["scenarios"]["fleet_preempt"]["resumed_max_rel_dev"] == 0.0
    """
    out = {
        "suite": "PR8 multi-tenant scenario fleet",
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {},
    }
    for name, fn in (
        ("fleet_throughput", bench_fleet_throughput),
        ("fleet_preempt", bench_fleet_preempt),
    ):
        t0 = time.perf_counter()
        out["scenarios"][name] = fn(smoke)
        out["scenarios"][name]["scenario_wall_s"] = time.perf_counter() - t0
        print(f"[regress] {name}: {json.dumps(out['scenarios'][name])}", flush=True)
    return out


# --------------------------------------------------------------------------
# multiproc suite: threaded oracle vs process backend, *real* wall clock


def _state_digest(*arrays) -> str:
    """Order-sensitive bitwise digest of a tuple of arrays."""
    import hashlib

    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _mp_forest_kernel(comm, level):
    """Ghost construction + 2:1 balance on a random adaptive tree — the
    collective-heavy workload (transport cost dominates local flops)."""
    from ..mesh.parmesh import collect_ghosts
    from ..octree import balance_tree, gather_tree, new_tree, refine_tree

    pt = new_tree(comm, level)
    offset = pt.global_offset()
    total = comm.allreduce(len(pt))
    rng = np.random.default_rng(11)
    gmask = rng.random(total) < 0.3
    pt = refine_tree(pt, gmask[offset : offset + len(pt)])
    t0 = time.perf_counter()
    ptb, _added, _rounds = balance_tree(pt, "corner")
    ghost, owners = collect_ghosts(ptb)
    wall = time.perf_counter() - t0
    g = gather_tree(ptb)
    return {
        "wall": wall,
        "digest": _state_digest(g.keys, g.levels, ghost.keys(), owners),
    }


def _mp_minres_kernel(comm, level, tol):
    """One full matfree MINRES Stokes solve per rank on its own mesh —
    embarrassingly parallel, so it isolates the GIL-vs-process story."""
    from ..fem import StokesSystem
    from ..solvers import StokesBlockPreconditioner, minres

    mesh = _matvec_mesh(level, seed=100 + comm.rank)
    eta, bf = _matvec_problem(mesh)
    t0 = time.perf_counter()
    st = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
    prec = StokesBlockPreconditioner(st)
    res = minres(st.matvec, st.rhs(), M=prec.apply, tol=tol, maxiter=300)
    wall = time.perf_counter() - t0
    comm.barrier()
    return {
        "wall": wall,
        "iterations": res.iterations,
        "digest": _state_digest(np.asarray(res.residuals), res.x),
    }


def _mp_pipeline_kernel(comm, cycles, target, max_level):
    """One full ParAmrPipeline AMR+solve cycle — the end-to-end workload
    the acceptance speedup is measured on."""
    from ..amr import ParAmrPipeline
    from ..octree import gather_tree

    pipe = ParAmrPipeline(comm, coarse_level=2, max_level=max_level)
    t0 = time.perf_counter()
    pipe.run_cycles(cycles, steps_per_cycle=2, target=target)
    wall = time.perf_counter() - t0
    g = gather_tree(pipe.pt)
    return {
        "wall": wall,
        "n": pipe.pt.global_count(),
        "digest": _state_digest(g.keys, g.levels, pipe.T),
    }


def _mp_compare(p, kernel, *args):
    """Run a kernel on both backends; max-over-ranks wall each, plus a
    per-rank bitwise comparison of the returned digests."""
    from ..parallel import run_spmd_with_comms

    out = {}
    stats = None
    for backend in ("thread", "process"):
        results, comms = run_spmd_with_comms(p, kernel, *args, backend=backend)
        out[f"wall_{backend}_s"] = max(r["wall"] for r in results)
        out[f"digests_{backend}"] = [r["digest"] for r in results]
        if backend == "process":
            stats = comms[0].stats
    out["bitwise_identical"] = out["digests_thread"] == out["digests_process"]
    for backend in ("thread", "process"):
        del out[f"digests_{backend}"]
    out["speedup"] = out["wall_thread_s"] / out["wall_process_s"]
    return out, stats


def bench_multiproc_kernels(smoke: bool) -> dict:
    """Forest ghost/balance and per-rank matfree MINRES, threaded vs
    process backend at one rank count."""
    p = 2 if smoke else 4
    level = 2 if smoke else 3
    out = {"ranks": p, "level": level, "host_cores": os.cpu_count()}
    forest, _ = _mp_compare(p, _mp_forest_kernel, level)
    for k, v in forest.items():
        out[f"forest_{k}"] = v
    minres_cmp, _ = _mp_compare(p, _mp_minres_kernel, level, 1e-8)
    for k, v in minres_cmp.items():
        out[f"minres_{k}"] = v
    return out


def bench_multiproc_pipeline(smoke: bool) -> dict:
    """The acceptance workload: a full ParAmrPipeline cycle at P in
    {2, 4, 8}, threaded vs process, with per-rank bitwise identity and a
    MachineModel anchored at the largest measured process run.

    The >= 3x-at-P=8 acceptance gate presumes an 8-core host;
    ``host_cores`` records what this run actually had, so a 1-core CI
    box reports speedup ~1 honestly instead of faking the gate.
    """
    from ..parallel import RANGER

    cycles = 1 if smoke else 2
    target = 250 if smoke else 400
    max_level = 4
    ps = [2] if smoke else [2, 4, 8]
    out = {
        "cycles": cycles,
        "target": target,
        "host_cores": os.cpu_count(),
        "by_ranks": {},
    }
    anchor_stats = None
    for p in ps:
        cmp_out, stats = _mp_compare(
            p, _mp_pipeline_kernel, cycles, target, max_level
        )
        out["by_ranks"][str(p)] = cmp_out
        anchor_stats, anchor_p = stats, p
    # anchor the extrapolation model at the largest measured process run
    # (rank 0's tally, the same convention t_total prices)
    measured = out["by_ranks"][str(anchor_p)]["wall_process_s"]
    anchored = RANGER.anchored_to(anchor_stats, anchor_p, measured)
    out["anchor"] = {
        "ranks": anchor_p,
        "measured_s": measured,
        "modeled_unanchored_s": RANGER.t_total(anchor_stats, anchor_p),
        "speed_factor": RANGER.flop_rate / anchored.flop_rate,
        "model_name": anchored.name,
        "modeled_62464_s": anchored.t_total(anchor_stats, 62464),
    }
    pmax = str(max(int(k) for k in out["by_ranks"]))
    out["speedup_at_pmax"] = out["by_ranks"][pmax]["speedup"]
    out["all_bitwise_identical"] = all(
        v["bitwise_identical"] for v in out["by_ranks"].values()
    )
    return out


def run_multiproc_suite(smoke: bool = False) -> dict:
    """Run the process-backend suite (threaded oracle vs multiprocess
    shared-memory ranks) and return the BENCH_multiproc payload.

    Runs under ``REPRO_SANITIZE=1`` (forced for the comparison) so the
    bitwise-identity flags certify the process backend against the
    threaded oracle with CheckedComm live on both.

    Example::

        data = run_multiproc_suite(smoke=True)
        assert data["scenarios"]["multiproc_pipeline"]["all_bitwise_identical"]
    """
    from ..parallel import procomm

    out = {
        "suite": "PR9 multiprocess shared-memory backend",
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host_cores": os.cpu_count(),
        "shm_available": procomm.available(),
        "scenarios": {},
    }
    if not procomm.available():
        print("[regress] POSIX shared memory unavailable; multiproc suite skipped")
        return out
    prev = os.environ.get("REPRO_SANITIZE")
    os.environ["REPRO_SANITIZE"] = "1"
    try:
        for name, fn in (
            ("multiproc_kernels", bench_multiproc_kernels),
            ("multiproc_pipeline", bench_multiproc_pipeline),
        ):
            t0 = time.perf_counter()
            out["scenarios"][name] = fn(smoke)
            out["scenarios"][name]["scenario_wall_s"] = time.perf_counter() - t0
            print(f"[regress] {name}: {json.dumps(out['scenarios'][name])}", flush=True)
    finally:
        if prev is None:
            os.environ.pop("REPRO_SANITIZE", None)
        else:
            os.environ["REPRO_SANITIZE"] = prev
        procomm.shutdown_pools()
    return out


# --------------------------------------------------------------------------
# PR10: geometric vs algebraic multigrid preconditioning


def _gmg_problem(mesh, contrast: float):
    """Gaussian viscosity blob with a controlled max/min contrast."""
    c = mesh.element_centers()
    r2 = ((c - 0.5) ** 2).sum(axis=1)
    eta = np.exp(np.log(contrast) * np.exp(-r2 / 0.08))
    x = mesh.node_coords()
    bf = np.zeros((mesh.n_nodes, 3))
    bf[:, 2] = np.sin(np.pi * x[:, 0]) * np.cos(np.pi * x[:, 2])
    return eta, bf


def bench_gmg_vs_amg(smoke: bool) -> dict:
    """The PR-10 gated comparison: GMG vs AMG block preconditioning of
    the same MINRES Stokes solve across a viscosity-contrast sweep.

    Every (contrast, kind) cell gets a *fresh* mesh of identical
    structure, so both arms pay cold setup: AMG assembles the three
    scalar Poisson blocks and runs smoothed aggregation, GMG coarsens the
    forest and builds matrix-free level operators.  Gates: GMG iterations
    within 1.5x of AMG at every contrast, cold GMG setup >= 5x faster,
    and zero sparse assembly on the GMG arm (counted, not assumed).
    """
    from ..fem import StokesSystem, assembly_counts, reset_assembly_counts
    from ..solvers import (
        GMGStokesPreconditioner,
        StokesBlockPreconditioner,
        minres,
    )

    level = 2 if smoke else 4
    tol = 1e-8
    maxiter = 200 if smoke else 600
    contrasts = [1e2] if smoke else [1e2, 1e4, 1e6]
    reps = 1 if smoke else 3
    sweep = []
    for contrast in contrasts:
        row = {"contrast": contrast}
        for kind in ("amg", "gmg"):
            setups, solves = [], []
            for _ in range(reps):  # min-of-reps: cold setup timing is noisy
                mesh = _matvec_mesh(level)  # fresh per rep: cold opcache
                eta, bf = _gmg_problem(mesh, contrast)
                t0 = time.perf_counter()
                st = StokesSystem(mesh, eta, bf, bc="free_slip", variant="tensor")
                system = time.perf_counter() - t0
                # count and time the preconditioner build in isolation:
                # the system construction (identical on both arms,
                # includes the one-off body-force mass assembly) is
                # reported separately
                reset_assembly_counts()
                t0 = time.perf_counter()
                if kind == "gmg":
                    prec = GMGStokesPreconditioner(st)
                else:
                    prec = StokesBlockPreconditioner(st)
                setups.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                res = minres(
                    st.matvec, st.rhs(), M=prec.apply, tol=tol, maxiter=maxiter
                )
                solves.append(time.perf_counter() - t0)
                counts = assembly_counts()
            row[kind] = {
                "system_s": system,
                "setup_s": min(setups),
                "solve_s": min(solves),
                "iterations": res.iterations,
                "converged": bool(res.converged),
                "operator_complexity": float(prec.operator_complexity),
                "assembly_counts": counts,
            }
            if kind == "gmg":
                row["gmg"]["grid_sizes"] = prec.grid_sizes()
        row["iter_ratio"] = row["gmg"]["iterations"] / row["amg"]["iterations"]
        row["setup_speedup"] = row["amg"]["setup_s"] / row["gmg"]["setup_s"]
        row["gmg_zero_assembly"] = not any(
            row["gmg"]["assembly_counts"].values()
        )
        sweep.append(row)
    return {
        "level": level,
        "tol": tol,
        "contrasts": contrasts,
        "sweep": sweep,
        "max_iter_ratio": max(r["iter_ratio"] for r in sweep),
        "min_setup_speedup": min(r["setup_speedup"] for r in sweep),
        "all_gmg_zero_assembly": all(r["gmg_zero_assembly"] for r in sweep),
    }


def run_gmg_suite(smoke: bool = False) -> dict:
    """Run the GMG-vs-AMG preconditioner suite and return the BENCH_gmg
    payload."""
    out = {
        "suite": "PR10 geometric multigrid preconditioner",
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {},
    }
    t0 = time.perf_counter()
    out["scenarios"]["gmg_vs_amg"] = bench_gmg_vs_amg(smoke)
    out["scenarios"]["gmg_vs_amg"]["scenario_wall_s"] = time.perf_counter() - t0
    print(
        f"[regress] gmg_vs_amg: {json.dumps(out['scenarios']['gmg_vs_amg'])}",
        flush=True,
    )
    return out


def main(argv=None) -> int:
    """CLI entry point: ``python -m repro.perf.regress --suite <name>``.

    Runs the selected suite, writes ``BENCH_<suite>.json`` (or
    ``BENCH_<suite>_smoke.json`` with ``--smoke``), prints the headline
    numbers, and returns the process exit code."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--suite",
        choices=[
            "tentpole", "checkpoint", "matvec", "obs", "amr", "fleet",
            "multiproc", "gmg",
        ],
        default="tentpole",
        help="which scenario suite to run (default tentpole)",
    )
    ap.add_argument("--smoke", action="store_true", help="tiny sizes, emission check only")
    ap.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_<suite>.json, or "
        "BENCH_<suite>_smoke.json in smoke mode so smoke runs never "
        "clobber the full-mode artifact)",
    )
    args = ap.parse_args(argv)
    if args.out is None:
        stem = args.suite
        args.out = f"BENCH_{stem}_smoke.json" if args.smoke else f"BENCH_{stem}.json"
        if args.suite == "tentpole" and args.smoke:
            args.out = "BENCH_smoke.json"  # historical name, used by CI
    if args.suite == "checkpoint":
        result = run_checkpoint_suite(smoke=args.smoke)
    elif args.suite == "matvec":
        result = run_matvec_suite(smoke=args.smoke)
    elif args.suite == "obs":
        result = run_obs_suite(smoke=args.smoke)
    elif args.suite == "amr":
        result = run_amr_suite(smoke=args.smoke)
    elif args.suite == "fleet":
        result = run_fleet_suite(smoke=args.smoke)
    elif args.suite == "multiproc":
        result = run_multiproc_suite(smoke=args.smoke)
    elif args.suite == "gmg":
        result = run_gmg_suite(smoke=args.smoke)
    else:
        result = run_suite(smoke=args.smoke)
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
    print(f"[regress] wrote {args.out}")
    if args.suite == "matvec":
        sa = result["scenarios"]["saddle_apply"]
        ee = result["scenarios"]["stokes_e2e"]
        print(
            f"[regress] saddle amortized speedup {sa['amortized_speedup']:.2f}x "
            f"(raw apply ratio {sa['raw_apply_ratio']:.2f}x), "
            f"e2e residual-history max dev {ee['residual_history_max_dev']:.2e}"
        )
    elif args.suite == "tentpole":
        sr = result["scenarios"]["stokes_repeat"]
        print(
            f"[regress] stokes_repeat speedup {sr['speedup']:.2f}x "
            f"(baseline {sr['baseline_s']:.2f}s -> optimized {sr['optimized_s']:.2f}s), "
            f"lag iteration ratio {sr['lag_iter_ratio']:.3f}"
        )
    elif args.suite == "obs":
        pp = result["scenarios"]["pipeline_phases"]
        do = result["scenarios"]["disabled_overhead"]
        print(
            f"[regress] AMR fraction {100 * pp['amr_fraction']:.1f}%, "
            f"observe overhead {100 * pp['observe_overhead_fraction']:.1f}%, "
            f"disabled hook {do['disabled_ns_per_phase']:.0f} ns/phase; "
            f"trace at {pp['trace_path']}"
        )
    elif args.suite == "fleet":
        ft = result["scenarios"]["fleet_throughput"]
        fp = result["scenarios"]["fleet_preempt"]
        print(
            f"[regress] fleet {ft['n_jobs']} jobs x {ft['cycles']} cycles: "
            f"{ft['throughput_ratio']:.2f}x over the serial loop "
            f"(serial {ft['serial_s']:.2f}s -> fleet {ft['fleet_s']:.2f}s), "
            f"parity dev {ft['parity_max_rel_dev']:.2e}, "
            f"meshes built {ft['meshes_built']} shared {ft['meshes_shared']}; "
            f"preempt/resume dev {fp['resumed_max_rel_dev']:.2e} over "
            f"{fp['diags_compared']} diagnostics"
        )
    elif args.suite == "amr":
        ak = result["scenarios"]["amr_kernels"]
        pl = result["scenarios"]["amr_pipeline"]
        print(
            f"[regress] ghost {ak['ghost_speedup']:.2f}x "
            f"({ak['ghost_search_collectives']} -> "
            f"{ak['ghost_recursive_collectives']} collectives), "
            f"balance {ak['balance_speedup']:.2f}x in "
            f"{ak['balance_exchanges']} exchange(s) "
            f"({ak['balance_search_collectives']} -> "
            f"{ak['balance_recursive_collectives']} collectives), "
            f"bitwise ghost={ak['ghost_bitwise_equal']} "
            f"balance={ak['balance_bitwise_equal']}; "
            f"pipeline {pl['pipeline_speedup']:.2f}x, AMR fraction "
            f"{100 * pl['amr_fraction_search']:.1f}% -> "
            f"{100 * pl['amr_fraction_recursive']:.1f}%"
        )
    elif args.suite == "gmg":
        gv = result["scenarios"]["gmg_vs_amg"]
        per_c = ", ".join(
            f"{r['contrast']:g}: {r['gmg']['iterations']}/{r['amg']['iterations']} it "
            f"(setup {r['setup_speedup']:.1f}x)"
            for r in gv["sweep"]
        )
        print(
            f"[regress] gmg-vs-amg at contrasts {per_c}; "
            f"max iter ratio {gv['max_iter_ratio']:.2f}, "
            f"min setup speedup {gv['min_setup_speedup']:.1f}x, "
            f"zero-assembly={gv['all_gmg_zero_assembly']}"
        )
    elif args.suite == "multiproc":
        if result["scenarios"]:
            mk = result["scenarios"]["multiproc_kernels"]
            mp_ = result["scenarios"]["multiproc_pipeline"]
            per_p = ", ".join(
                f"P={p}: {v['speedup']:.2f}x"
                f"{'' if v['bitwise_identical'] else ' (NOT bitwise!)'}"
                for p, v in sorted(
                    mp_["by_ranks"].items(), key=lambda kv: int(kv[0])
                )
            )
            print(
                f"[regress] multiproc on {mp_['host_cores']}-core host — "
                f"pipeline process-over-thread {per_p}; "
                f"minres {mk['minres_speedup']:.2f}x, "
                f"forest {mk['forest_speedup']:.2f}x; "
                f"bitwise={mp_['all_bitwise_identical']}; "
                f"anchored {mp_['anchor']['model_name']} "
                f"speed factor {mp_['anchor']['speed_factor']:.2f} "
                f"(modeled@62464 {mp_['anchor']['modeled_62464_s']:.3g}s)"
            )
    else:
        co = result["scenarios"]["checkpoint_overhead"]
        print(
            f"[regress] snapshot fraction {100 * co['snapshot_fraction']:.1f}% "
            f"of cycle wall, {co['shard_bytes_per_element']:.0f} B/element, "
            f"restore on {co['restore_ranks']} ranks in {co['restore_s']:.2f}s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
