"""Scaling-experiment harness: table formatting and machine-model
extrapolation of measured runs to paper-scale core counts."""

from .harness import (
    ADV_FLOPS_PER_ELEMENT_STEP,
    STOKES_FLOPS_PER_ELEMENT_ITER,
    format_table,
    measured_pipeline_run,
    model_strong_scaling,
    model_weak_scaling,
)

__all__ = [
    "format_table",
    "measured_pipeline_run",
    "model_weak_scaling",
    "model_strong_scaling",
    "ADV_FLOPS_PER_ELEMENT_STEP",
    "STOKES_FLOPS_PER_ELEMENT_ITER",
]
