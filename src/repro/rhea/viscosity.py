"""Mantle viscosity laws, including plastic yielding (Section VI).

The paper's regional simulation uses a three-layer temperature-dependent
viscosity with stress-limited yielding in the lithosphere:

    eta = min(10 exp(-6.9 T), sigma_y / (2 edot))   z > 0.9      (lithosphere)
          0.8 exp(-6.9 T)                           0.77 < z<=0.9 (aesthenosphere)
          50 exp(-6.9 T)                            z <= 0.77     (lower mantle)

where ``edot`` is the second invariant of the deviatoric strain rate.
``exp(-6.9 T)`` spans three orders of magnitude over T in [0, 1]; with the
layer prefactors the total variation is about four orders of magnitude,
the regime quoted in the paper.

Also provided: the strain-rate invariant computed from a nodal velocity
field (needed both by the yielding law and by the Picard iteration of the
nonlinear Stokes solve).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh import Mesh

__all__ = [
    "ArrheniusViscosity",
    "YieldingViscosity",
    "strain_rate_invariant",
    "element_temperature",
]


def element_temperature(mesh: Mesh, T_full: np.ndarray) -> np.ndarray:
    """Element-average temperature from a full node vector."""
    return T_full[mesh.element_nodes].mean(axis=1)


def strain_rate_invariant(mesh: Mesh, u_full: np.ndarray) -> np.ndarray:
    """Second invariant of the strain rate per element.

    ``u_full`` is (n_nodes, 3).  The velocity gradient is evaluated at the
    element center (exact for the trilinear average over a box element),
    then ``edot = sqrt(1/2 e_ij e_ij)`` with ``e = (grad u + grad u^T)/2``.
    """
    u = np.asarray(u_full, dtype=np.float64)
    if u.shape != (mesh.n_nodes, 3):
        raise ValueError("u_full must be (n_nodes, 3)")
    en = mesh.element_nodes
    sizes = mesh.element_sizes()
    uc = u[en]  # (ne, 8, 3)
    # dN_i/dx at center = sgn_x(i) / (4 hx), with sgn from vertex parity
    grads = np.empty((mesh.n_elements, 3, 3))
    parity = np.array([[(i >> a) & 1 for a in range(3)] for i in range(8)])
    sgn = 2.0 * parity - 1.0  # (8, 3): -1 on low side, +1 on high side
    for b in range(3):  # derivative direction
        w = sgn[:, b] / 4.0
        # du_a/dx_b = sum_i w_i u_a(i) / h_b
        grads[:, :, b] = np.einsum("eia,i->ea", uc, w) / sizes[:, b][:, None]
    e = 0.5 * (grads + np.swapaxes(grads, 1, 2))
    return np.sqrt(0.5 * np.einsum("eab,eab->e", e, e))


@dataclass(frozen=True)
class ArrheniusViscosity:
    """Simple temperature-dependent law ``eta = eta0 exp(-E T)`` with
    optional floor/cap (used for verification against isoviscous and
    temperature-dependent benchmarks)."""

    eta0: float = 1.0
    E: float = 0.0
    eta_min: float = 1e-6
    eta_max: float = 1e6

    def __call__(self, T: np.ndarray, z: np.ndarray, edot: np.ndarray | None = None) -> np.ndarray:
        eta = self.eta0 * np.exp(-self.E * np.asarray(T, dtype=np.float64))
        return np.clip(eta, self.eta_min, self.eta_max)


@dataclass(frozen=True)
class YieldingViscosity:
    """The Section-VI three-layer law with lithospheric yielding.

    Parameters
    ----------
    sigma_y:
        Yield stress; shallow material (z above ``z_lith``) yields when
        ``sigma_y / (2 edot)`` undercuts the temperature-dependent value.
    z_lith, z_astheno:
        Layer interfaces as fractions of the domain depth (paper: 0.9 and
        0.77 of the unit-depth domain).
    """

    sigma_y: float = 1.0
    E: float = 6.9
    pre_lith: float = 10.0
    pre_astheno: float = 0.8
    pre_lower: float = 50.0
    z_lith: float = 0.9
    z_astheno: float = 0.77
    eta_min: float = 1e-4
    eta_max: float = 1e4

    def __call__(self, T: np.ndarray, z: np.ndarray, edot: np.ndarray | None = None) -> np.ndarray:
        T = np.asarray(T, dtype=np.float64)
        z = np.asarray(z, dtype=np.float64)
        arr = np.exp(-self.E * T)
        eta = np.where(
            z > self.z_lith,
            self.pre_lith * arr,
            np.where(z > self.z_astheno, self.pre_astheno * arr, self.pre_lower * arr),
        )
        if edot is not None:
            edot = np.asarray(edot, dtype=np.float64)
            yield_eta = self.sigma_y / np.maximum(2.0 * edot, 1e-30)
            eta = np.where(z > self.z_lith, np.minimum(eta, yield_eta), eta)
        return np.clip(eta, self.eta_min, self.eta_max)

    def yielded_mask(self, T: np.ndarray, z: np.ndarray, edot: np.ndarray) -> np.ndarray:
        """Elements where the stress limiter is active (the weak plate
        boundary zones tracked in Figure 11)."""
        arr = self.pre_lith * np.exp(-self.E * np.asarray(T))
        yield_eta = self.sigma_y / np.maximum(2.0 * np.asarray(edot), 1e-30)
        return (np.asarray(z) > self.z_lith) & (yield_eta < arr)
